//! Property-based tests over the core invariants, spanning crates.

use std::sync::Arc;

use proptest::prelude::*;

use fair_gossip::analysis::epidemic::{
    carrying_capacity, imperfect_dissemination_probability, psi,
};
use fair_gossip::analysis::lambert::lambert_w0;
use fair_gossip::analysis::ttl::ttl_for;
use fair_gossip::gossip::store::BlockStore;
use fair_gossip::ledger::ledger::Ledger;
use fair_gossip::metrics::cdf::Cdf;
use fair_gossip::metrics::fairness::jain_index;
use fair_gossip::orderer::cutter::{BatchConfig, BlockCutter};
use fair_gossip::sim::Duration;
use fair_gossip::types::block::Block;
use fair_gossip::types::crypto::{sha256, Hash256, Sha256};
use fair_gossip::types::ids::{ClientId, PeerId, TxId};
use fair_gossip::types::msp::Msp;
use fair_gossip::types::rwset::RwSet;
use fair_gossip::types::transaction::{EndorsementPolicy, Transaction};

proptest! {
    /// SHA-256 must not care how the input is chunked.
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                         cuts in proptest::collection::vec(0usize..2048, 0..8)) {
        let oneshot = sha256(&data);
        let mut hasher = Sha256::new();
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        for pair in cuts.windows(2) {
            hasher.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(hasher.finalize(), oneshot);
    }

    /// Distinct inputs produce distinct digests (collision resistance at
    /// property-test scale).
    #[test]
    fn sha256_distinguishes_inputs(a in proptest::collection::vec(any::<u8>(), 0..256),
                                   b in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
    }

    /// The block store delivers every inserted block exactly once, in
    /// height order, whatever the arrival order.
    #[test]
    fn block_store_delivers_in_order(order in proptest::sample::subsequence((1u64..40).collect::<Vec<_>>(), 1..39)) {
        let mut shuffled = order.clone();
        shuffled.reverse();
        let mut store = BlockStore::new();
        let mut delivered = Vec::new();
        for n in &shuffled {
            if let Some(run) = store.insert(Block::new(*n, Hash256::ZERO, vec![]).into()) {
                delivered.extend(run.iter().map(|b| b.number()));
            }
        }
        // Delivered = the maximal contiguous prefix 1..=k of the inserted set.
        let mut expected = Vec::new();
        let mut k = 1;
        while shuffled.contains(&k) {
            expected.push(k);
            k += 1;
        }
        prop_assert_eq!(delivered, expected);
        prop_assert_eq!(store.height(), k);
    }

    /// ψ is monotone in the round number and bounded by n.
    #[test]
    fn psi_monotone_and_bounded(n in 2.0f64..500.0, fout in 1.0f64..8.0, r in 0u32..30) {
        let a = psi(n, fout, r);
        let b = psi(n, fout, r + 1);
        prop_assert!(b >= a - 1e-9);
        prop_assert!(b <= n + 1e-9);
    }

    /// The miss probability shrinks (weakly) with TTL and fan-out.
    #[test]
    fn pe_monotone(n in 10.0f64..300.0, fout in 2.0f64..6.0, ttl in 1u32..25) {
        let base = imperfect_dissemination_probability(n, fout, ttl);
        prop_assert!(imperfect_dissemination_probability(n, fout, ttl + 1) <= base + 1e-15);
        prop_assert!(imperfect_dissemination_probability(n, fout + 1.0, ttl) <= base + 1e-15);
    }

    /// `ttl_for` returns the minimal TTL meeting the target.
    #[test]
    fn ttl_for_is_minimal(n in 10usize..400, fout in 2usize..6) {
        let target = 1e-6;
        let ttl = ttl_for(n, fout, target);
        prop_assert!(imperfect_dissemination_probability(n as f64, fout as f64, ttl) <= target);
        if ttl > 1 {
            prop_assert!(imperfect_dissemination_probability(n as f64, fout as f64, ttl - 1) > target);
        }
    }

    /// The Lambert W identity holds across the domain.
    #[test]
    fn lambert_identity(x in -0.3678f64..1e4) {
        let w = lambert_w0(x);
        prop_assert!((w * w.exp() - x).abs() <= 1e-6 * (1.0 + x.abs()));
    }

    /// The carrying capacity is a fixed point of the epidemic map.
    #[test]
    fn carrying_capacity_fixed_point(n in 10.0f64..1000.0, fout in 1.5f64..8.0) {
        let gamma = carrying_capacity(n, fout);
        let c = gamma / n;
        prop_assert!((c - (1.0 - (-fout * c).exp())).abs() < 1e-8);
    }

    /// CDF quantiles are monotone and bracketed by the extreme samples.
    #[test]
    fn cdf_quantiles_monotone(mut samples in proptest::collection::vec(0u64..10_000_000, 1..200),
                              qa in 0.0f64..1.0, qb in 0.0f64..1.0) {
        let cdf = Cdf::new(samples.drain(..).map(Duration::from_nanos).collect());
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
        prop_assert!(cdf.quantile(0.0) <= cdf.quantile(1.0));
    }

    /// Jain's index lives in [1/n, 1] and is scale invariant.
    #[test]
    fn jain_bounds(values in proptest::collection::vec(0.001f64..1e6, 1..64), scale in 0.001f64..1000.0) {
        let idx = jain_index(&values);
        prop_assert!(idx >= 1.0 / values.len() as f64 - 1e-9);
        prop_assert!(idx <= 1.0 + 1e-9);
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        prop_assert!((jain_index(&scaled) - idx).abs() < 1e-6);
    }

    /// The block cutter never loses or duplicates transactions, never
    /// exceeds the message cap, and preserves submission order.
    #[test]
    fn cutter_conserves_transactions(paddings in proptest::collection::vec(0u32..4000, 1..120),
                                     max_count in 1usize..20) {
        let mut cutter = BlockCutter::new(BatchConfig {
            max_message_count: max_count,
            preferred_max_bytes: 8_000,
            batch_timeout: Duration::from_secs(2),
        });
        let mut out: Vec<u64> = Vec::new();
        for (i, padding) in paddings.iter().enumerate() {
            let tx = Transaction::new(TxId(i as u64), "cc", ClientId(0), RwSet::default())
                .with_padding(*padding);
            let (batches, _) = cutter.ordered(tx);
            for batch in batches {
                prop_assert!(batch.len() <= max_count);
                out.extend(batch.iter().map(|t| t.id.0));
            }
        }
        out.extend(cutter.cut().iter().map(|t| t.id.0));
        let expected: Vec<u64> = (0..paddings.len() as u64).collect();
        prop_assert_eq!(out, expected);
    }

    /// Ledger commits preserve hash-chain integrity for arbitrary splits of
    /// transactions into blocks.
    #[test]
    fn ledger_chain_integrity(splits in proptest::collection::vec(1usize..5, 1..12)) {
        let msp = Arc::new(Msp::single_org(3));
        let mut ledger = Ledger::new(msp.clone(), EndorsementPolicy::AnyMember);
        let mut id = 0u64;
        for (height, split) in splits.iter().enumerate() {
            let txs: Vec<Transaction> = (0..*split)
                .map(|_| {
                    id += 1;
                    let rwset = RwSet::builder().write_u64(format!("k{id}"), id).build();
                    let mut tx = Transaction::new(TxId(id), "cc", ClientId(0), rwset);
                    tx.endorse(&msp, PeerId(1));
                    tx
                })
                .collect();
            let block = Block::new(height as u64 + 1, ledger.latest_hash(), txs).into();
            let summary = ledger.commit(block).unwrap();
            prop_assert_eq!(summary.validation.invalid_count(), 0);
        }
        prop_assert_eq!(fair_gossip::types::block::verify_chain(ledger.blocks()), Ok(()));
        prop_assert_eq!(ledger.stats().valid_txs, id);
    }
}
