//! Multi-organization deployments (Fig. 1 of the paper): push and pull are
//! confined to each organization, the ordering service feeds one leader per
//! organization, and StateInfo/recovery cross organization boundaries.

use fair_gossip::experiments::net::{FabricNet, NetParams};
use fair_gossip::gossip::config::GossipConfig;
use fair_gossip::orderer::cutter::BatchConfig;
use fair_gossip::orderer::service::OrdererConfig;
use fair_gossip::sim::{Duration, NetworkConfig, NodeId, Simulation, Time};
use fair_gossip::types::ids::PeerId;
use fair_gossip::workload::schedule::{payload_schedule, PayloadWorkload};

fn multi_org_sim(peers: usize, orgs: usize, txs: usize, seed: u64) -> Simulation<FabricNet> {
    let mut params = NetParams::new(
        peers,
        GossipConfig::enhanced_f4(),
        OrdererConfig::kafka(BatchConfig::paper_dissemination()),
    );
    params.orgs = orgs;
    let workload = PayloadWorkload {
        total_txs: txs,
        ..PayloadWorkload::default()
    };
    let schedule = payload_schedule(&workload);
    let network = NetworkConfig::lan(FabricNet::node_count(&params));
    let net = FabricNet::new(params, schedule);
    let mut sim = Simulation::new(net, network, seed);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim
}

#[test]
fn three_orgs_have_one_static_leader_each() {
    let sim = multi_org_sim(60, 3, 50, 1);
    let leaders = sim.protocol().current_leaders();
    assert_eq!(leaders, vec![PeerId(0), PeerId(20), PeerId(40)]);
    for (i, leader) in leaders.iter().enumerate() {
        assert_eq!(sim.protocol().org_of(*leader), i);
    }
}

#[test]
fn push_membership_is_org_confined_but_channel_view_is_global() {
    let sim = multi_org_sim(60, 3, 50, 1);
    let net = sim.protocol();
    let peer = net.gossip(25); // org 1 owns peers 20..40
    assert!(peer
        .membership()
        .peers()
        .iter()
        .all(|p| (20..40).contains(&p.index()) && p.index() != 25));
    assert_eq!(peer.membership().len(), 19);
    assert_eq!(peer.channel().len(), 59);
}

#[test]
fn every_peer_of_every_org_receives_every_block() {
    let mut sim = multi_org_sim(60, 3, 1_000, 3);
    sim.run_until(Time::from_secs(120));
    let net = sim.protocol();
    assert_eq!(net.blocks_cut(), 20);
    assert_eq!(
        net.latency().completeness(),
        1.0,
        "all three organizations must converge"
    );
    // Latency fairness across organizations: mean reception latency per
    // org should be in the same ballpark (no starved organization).
    let mut org_means = Vec::new();
    for org in 0..3 {
        let cdfs = net.latency().all_peer_cdfs();
        let mean: f64 = (org * 20..(org + 1) * 20)
            .map(|i| cdfs[i].mean().as_secs_f64())
            .sum::<f64>()
            / 20.0;
        org_means.push(mean);
    }
    let min = org_means.iter().copied().fold(f64::INFINITY, f64::min);
    let max = org_means.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max / min < 3.0,
        "organizations should see comparable latencies: {org_means:?}"
    );
}

#[test]
fn org_without_a_live_leader_catches_up_via_cross_org_recovery() {
    // Static election: when org 2's leader (peer 40) dies, no one inside
    // the org replaces it and the orderer cannot feed the org. Its peers
    // must still converge through the channel-wide StateInfo + recovery
    // path (§III: recovery is not limited to the organization).
    let mut sim = multi_org_sim(30, 3, 1_500, 7);
    sim.run_until(Time::from_secs(5));
    sim.with_ctx(|_, ctx| {
        ctx.set_node_status_after(Duration::ZERO, NodeId(20), false);
    });
    sim.run_until(Time::from_secs(180));
    let net = sim.protocol();
    let reference = net.gossip(5).height(); // org 0 is fed normally
    assert!(reference > 25, "the fed organizations made progress");
    for i in 21..30 {
        let h = net.gossip(i).height();
        assert!(
            reference.saturating_sub(h) <= 2,
            "org-2 peer {i} must catch up via recovery: {h} vs {reference}"
        );
    }
}

#[test]
fn single_org_deployment_is_the_default_and_unchanged() {
    let sim = multi_org_sim(20, 1, 50, 1);
    let net = sim.protocol();
    assert_eq!(net.current_leaders(), vec![PeerId(0)]);
    assert_eq!(net.gossip(5).membership().len(), 19);
    assert_eq!(net.gossip(5).channel().len(), 19);
}
