//! The real-threads runtime under both protocols: same state machine, OS
//! threads and wall-clock timers instead of the simulator.

use std::time::Duration as StdDuration;

use fair_gossip::gossip::config::GossipConfig;
use fair_gossip::gossip::runtime::ThreadedNet;
use fair_gossip::sim::Duration;
use fair_gossip::types::block::{Block, BlockRef};

fn chain(len: u64, padding: u32) -> Vec<BlockRef> {
    let mut prev = Block::genesis().hash();
    (1..=len)
        .map(|n| {
            let b = Block::new(n, prev, vec![]).with_padding(padding);
            prev = b.hash();
            BlockRef::new(b)
        })
        .collect()
}

#[test]
fn enhanced_gossip_on_threads_delivers_a_chain() {
    let net = ThreadedNet::spawn(16, GossipConfig::enhanced_f4(), 31);
    for block in chain(8, 10_000) {
        net.inject_block(block);
        std::thread::sleep(StdDuration::from_millis(10));
    }
    std::thread::sleep(StdDuration::from_millis(400));
    let outcomes = net.shutdown();
    assert_eq!(outcomes.len(), 16);
    for o in &outcomes {
        assert_eq!(
            o.delivered,
            (1..=8).collect::<Vec<_>>(),
            "peer {}",
            o.peer.id()
        );
    }
    // Digest-based dissemination: the content travels ~once per peer.
    let blocks_sent: u64 = outcomes.iter().map(|o| o.peer.stats().blocks_sent).sum();
    assert!(
        blocks_sent <= 8 * 16 * 3,
        "content transmissions should stay near n per block, got {blocks_sent}"
    );
}

#[test]
fn original_gossip_on_threads_completes_through_pull() {
    let mut cfg = GossipConfig::original_fabric();
    // Compress the pull cycle so the test ends quickly.
    let pull = cfg.pull.as_mut().unwrap();
    pull.tpull = Duration::from_millis(150);
    pull.digest_wait = Duration::from_millis(40);
    let net = ThreadedNet::spawn(12, cfg, 77);
    for block in chain(5, 1_000) {
        net.inject_block(block);
    }
    std::thread::sleep(StdDuration::from_millis(1_200));
    let outcomes = net.shutdown();
    for o in &outcomes {
        assert_eq!(
            o.delivered,
            (1..=5).collect::<Vec<_>>(),
            "peer {}",
            o.peer.id()
        );
    }
}

#[test]
fn thread_outcomes_expose_protocol_stats() {
    let net = ThreadedNet::spawn(8, GossipConfig::enhanced_f4(), 5);
    net.inject_block(chain(1, 50_000).pop().unwrap());
    std::thread::sleep(StdDuration::from_millis(300));
    let outcomes = net.shutdown();
    let received: usize = outcomes
        .iter()
        .map(|o| o.peer.stats().first_seen.len())
        .sum();
    assert_eq!(received, 8, "every peer records its first reception");
    let leader = &outcomes[0];
    assert!(leader.peer.is_leader());
    assert!(
        leader.peer.stats().blocks_sent >= 1,
        "the leader seeds the block"
    );
}
