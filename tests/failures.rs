//! Failure injection: packet loss, crashed followers, crashed leaders with
//! dynamic election, and network partitions. The gossip layer must keep
//! every surviving peer converging.

use fair_gossip::experiments::dissemination::{run_dissemination, DisseminationConfig};
use fair_gossip::experiments::net::{FabricNet, NetParams};
use fair_gossip::gossip::config::GossipConfig;
use fair_gossip::orderer::cutter::BatchConfig;
use fair_gossip::orderer::service::OrdererConfig;
use fair_gossip::sim::{Duration, NetworkConfig, NodeId, Simulation, Time};
use fair_gossip::workload::schedule::{payload_schedule, PayloadWorkload};

/// Builds a running simulation with `peers` peers and `txs` transactions.
fn simulation(
    peers: usize,
    txs: usize,
    gossip: GossipConfig,
    loss: f64,
    seed: u64,
) -> Simulation<FabricNet> {
    let params = NetParams::new(
        peers,
        gossip,
        OrdererConfig::kafka(BatchConfig::paper_dissemination()),
    );
    let workload = PayloadWorkload {
        total_txs: txs,
        ..PayloadWorkload::default()
    };
    let schedule = payload_schedule(&workload);
    let mut network = NetworkConfig::lan(FabricNet::node_count(&params));
    network.loss = loss;
    let net = FabricNet::new(params, schedule);
    let mut sim = Simulation::new(net, network, seed);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim
}

#[test]
fn enhanced_gossip_survives_two_percent_packet_loss() {
    let mut cfg = DisseminationConfig::fig07_09_enhanced_f4().scaled(800);
    cfg.peers = 50;
    cfg.network = NetworkConfig::lan(52);
    cfg.network.loss = 0.02;
    let res = run_dissemination(&cfg);
    assert_eq!(
        res.completeness, 1.0,
        "fetch retries + recovery must repair losses"
    );
}

#[test]
fn original_gossip_survives_packet_loss_via_pull() {
    let mut cfg = DisseminationConfig::fig04_06_original().scaled(800);
    cfg.peers = 50;
    cfg.network = NetworkConfig::lan(52);
    cfg.network.loss = 0.02;
    let res = run_dissemination(&cfg);
    assert_eq!(res.completeness, 1.0);
}

#[test]
fn crashed_follower_catches_up_through_recovery() {
    let mut sim = simulation(30, 2_000, GossipConfig::enhanced_f4(), 0.0, 5);
    sim.run_until(Time::from_secs(10));
    sim.with_ctx(|_, ctx| {
        ctx.set_node_status_after(Duration::ZERO, NodeId(9), false);
        // Reboot after 25 s — long enough to miss many blocks.
        ctx.set_node_status_after(Duration::from_secs(25), NodeId(9), true);
    });
    // Run past the workload plus several recovery rounds.
    sim.run_until(Time::from_secs(140));
    let net = sim.protocol();
    let healthy = net.gossip(5).height();
    let rebooted = net.gossip(9).height();
    assert!(healthy > 30, "the network must have made progress");
    assert!(
        healthy.saturating_sub(rebooted) <= 1,
        "recovery must close the gap: healthy {healthy}, rebooted {rebooted}"
    );
}

#[test]
fn leader_crash_with_dynamic_election_keeps_blocks_flowing() {
    let mut gossip = GossipConfig::enhanced_f4();
    gossip.election.dynamic = true;
    gossip.election.heartbeat_interval = Duration::from_secs(1);
    gossip.election.leader_timeout = Duration::from_secs(3);
    gossip.membership.alive_interval = Duration::from_secs(1);
    gossip.membership.alive_timeout = Duration::from_secs(4);

    let mut sim = simulation(30, 2_000, gossip, 0.0, 13);
    sim.run_until(Time::from_secs(15));
    let first_leader = sim.protocol().current_leader().expect("a leader stood up");
    let height_before = sim.protocol().gossip(20).height();

    sim.with_ctx(|_, ctx| {
        ctx.set_node_status_after(Duration::ZERO, NodeId(first_leader.0), false);
    });
    sim.run_until(Time::from_secs(60));

    let net = sim.protocol();
    let second_leader = net.current_leader().expect("a replacement leader stood up");
    assert_ne!(second_leader, first_leader, "a new peer must take over");
    let height_after = net.gossip(20).height();
    assert!(
        height_after > height_before + 10,
        "blocks must keep flowing after failover ({height_before} -> {height_after})"
    );
}

#[test]
fn partition_heals_and_recovery_reconciles() {
    let mut sim = simulation(20, 1_500, GossipConfig::enhanced_f4(), 0.0, 21);
    sim.run_until(Time::from_secs(8));

    // Cut peers 15..20 off from everyone (orderer node 20 and client 21
    // stay connected to the majority side).
    sim.with_ctx(|_, ctx| {
        let minority: Vec<NodeId> = (15..20).map(NodeId).collect();
        let majority: Vec<NodeId> = (0..15).chain(20..22).map(NodeId).collect();
        ctx.net_mut().partition(&[majority, minority]);
    });
    sim.run_until(Time::from_secs(30));
    let minority_height = sim.protocol().gossip(17).height();
    let majority_height = sim.protocol().gossip(3).height();
    assert!(
        majority_height > minority_height,
        "the cut-off peers must fall behind ({majority_height} vs {minority_height})"
    );

    sim.with_ctx(|_, ctx| ctx.net_mut().heal());
    sim.run_until(Time::from_secs(120));
    let net = sim.protocol();
    let reference = net.gossip(3).height();
    for i in 15..20 {
        assert!(
            reference.saturating_sub(net.gossip(i).height()) <= 1,
            "peer {i} must reconcile after the partition heals"
        );
    }
}
