//! End-to-end integration tests spanning every crate: the paper's headline
//! claims at reduced scale, ledger convergence, and determinism.

use fair_gossip::experiments::conflicts::{run_conflicts, ConflictConfig};
use fair_gossip::experiments::dissemination::{run_dissemination, DisseminationConfig};
use fair_gossip::experiments::net::{FabricNet, NetParams};
use fair_gossip::gossip::config::GossipConfig;
use fair_gossip::orderer::cutter::BatchConfig;
use fair_gossip::orderer::service::OrdererConfig;
use fair_gossip::sim::{Duration, NetworkConfig, Simulation, Time};
use fair_gossip::types::block::verify_chain;
use fair_gossip::workload::schedule::{payload_schedule, PayloadWorkload};

fn dissemination(
    preset: DisseminationConfig,
    peers: usize,
    txs: usize,
) -> fair_gossip::experiments::DisseminationResult {
    let mut cfg = preset.scaled(txs);
    cfg.peers = peers;
    cfg.network = NetworkConfig::lan(peers + 2);
    run_dissemination(&cfg)
}

#[test]
fn headline_claim_tail_latency_improves_by_an_order_of_magnitude() {
    let orig = dissemination(DisseminationConfig::fig04_06_original(), 60, 1500);
    let enh = dissemination(DisseminationConfig::fig07_09_enhanced_f4(), 60, 1500);
    assert_eq!(orig.completeness, 1.0);
    assert_eq!(enh.completeness, 1.0);
    let orig_tail = orig.pooled_cdf().quantile(0.999).as_secs_f64();
    let enh_tail = enh.pooled_cdf().quantile(0.999).as_secs_f64();
    assert!(
        orig_tail / enh_tail > 8.0,
        "paper claims >10x at n=100; measured {:.1}x at n=60 ({orig_tail:.3}s vs {enh_tail:.3}s)",
        orig_tail / enh_tail
    );
}

#[test]
fn headline_claim_bandwidth_drops_by_about_forty_percent() {
    let orig = dissemination(DisseminationConfig::fig04_06_original(), 60, 1500);
    let enh = dissemination(DisseminationConfig::fig07_09_enhanced_f4(), 60, 1500);
    let orig_avg = orig
        .bandwidth
        .regular
        .average(Some(orig.bandwidth.active_buckets));
    let enh_avg = enh
        .bandwidth
        .regular
        .average(Some(enh.bandwidth.active_buckets));
    let saving = 100.0 * (1.0 - enh_avg / orig_avg);
    assert!(
        (25.0..=60.0).contains(&saving),
        "paper reports >40% with background included; measured {saving:.0}% ({orig_avg:.3} -> {enh_avg:.3} MB/s)"
    );
}

#[test]
fn both_enhanced_configurations_deliver_everything_sub_second() {
    for preset in [
        DisseminationConfig::fig07_09_enhanced_f4(),
        DisseminationConfig::fig12_14_enhanced_f2(),
    ] {
        let res = dissemination(preset, 80, 1000);
        assert_eq!(res.completeness, 1.0);
        let max = res.pooled_cdf().max();
        assert!(
            max < Duration::from_secs(1),
            "enhanced worst case must stay sub-second, got {max}"
        );
    }
}

#[test]
fn conflicts_reduce_with_enhanced_gossip_on_average() {
    let mut orig_total = 0u64;
    let mut enh_total = 0u64;
    for seed in 0..4 {
        for (gossip, total) in [
            (GossipConfig::original_fabric(), &mut orig_total),
            (GossipConfig::enhanced_f4(), &mut enh_total),
        ] {
            let mut cfg = ConflictConfig::paper(gossip, Duration::from_secs(1)).scaled(40, 15);
            cfg.peers = 40;
            cfg.network = NetworkConfig::lan(42);
            cfg.seed = 100 + seed;
            *total += run_conflicts(&cfg).conflicts;
        }
    }
    assert!(
        enh_total < orig_total,
        "enhanced gossip must invalidate fewer transactions: {enh_total} vs {orig_total}"
    );
}

#[test]
fn every_ledger_converges_to_the_same_chain() {
    // Full ledgers on all peers: after dissemination, every copy must hold
    // the identical, hash-valid chain with identical validation stats.
    let peers = 25;
    let mut params = NetParams::new(
        peers,
        GossipConfig::enhanced_f4(),
        OrdererConfig::kafka(BatchConfig::paper_dissemination()),
    );
    params.full_ledgers = true;
    let workload = PayloadWorkload {
        total_txs: 500,
        ..PayloadWorkload::default()
    };
    let schedule = payload_schedule(&workload);
    let network = NetworkConfig::lan(FabricNet::node_count(&params));
    let net = FabricNet::new(params, schedule);
    let mut sim = Simulation::new(net, network, 11);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim.run_until(Time::from_secs(120));

    let net = sim.protocol();
    assert_eq!(net.commit_errors(), 0);
    let reference = net.ledger(0).unwrap();
    assert_eq!(
        reference.height(),
        net.blocks_cut() + 1,
        "genesis + every cut block"
    );
    assert_eq!(verify_chain(reference.blocks()), Ok(()));
    for i in 1..peers {
        let ledger = net.ledger(i).unwrap();
        assert_eq!(ledger.height(), reference.height(), "peer {i} height");
        assert_eq!(
            ledger.latest_hash(),
            reference.latest_hash(),
            "peer {i} tip"
        );
        assert_eq!(
            ledger.stats(),
            reference.stats(),
            "peer {i} validation stats"
        );
    }
}

#[test]
fn dissemination_is_deterministic_across_identical_runs() {
    let a = dissemination(DisseminationConfig::fig04_06_original(), 40, 800);
    let b = dissemination(DisseminationConfig::fig04_06_original(), 40, 800);
    assert_eq!(a.events, b.events);
    assert_eq!(a.blocks, b.blocks);
    assert_eq!(a.peer_traffic_mb, b.peer_traffic_mb);
    assert_eq!(a.pooled_cdf().samples(), b.pooled_cdf().samples());
}

#[test]
fn seeds_actually_change_the_execution() {
    let mut cfg = DisseminationConfig::fig07_09_enhanced_f4().scaled(500);
    cfg.peers = 40;
    cfg.network = NetworkConfig::lan(42);
    let a = run_dissemination(&cfg);
    cfg.seed += 1;
    let b = run_dissemination(&cfg);
    assert_ne!(
        a.pooled_cdf().samples(),
        b.pooled_cdf().samples(),
        "different seeds must explore different randomness"
    );
}

#[test]
fn enhanced_curves_are_near_linear_on_the_logit_plot() {
    // The paper: "the curves in Figures 7 and 8 are almost linear, which we
    // expect from probability plots with a logarithmic scale based on a
    // logistic distribution", while the original's fat pull tail breaks the
    // line. Quantified by the logistic-fit R² of the pooled latency CDF.
    use fair_gossip::metrics::cdf::logistic_fit_r2;
    let orig = dissemination(DisseminationConfig::fig04_06_original(), 60, 1500);
    let enh = dissemination(DisseminationConfig::fig07_09_enhanced_f4(), 60, 1500);
    let orig_fit = logistic_fit_r2(&orig.pooled_cdf());
    let enh_fit = logistic_fit_r2(&enh.pooled_cdf());
    assert!(
        enh_fit > orig_fit,
        "enhanced must look more logistic: R² {enh_fit:.4} vs original {orig_fit:.4}"
    );
    assert!(
        enh_fit > 0.8,
        "enhanced must be close to a straight line: R² {enh_fit:.4}"
    );
}
