//! Free-riding peers (the paper's discussion section): peers that accept
//! blocks but never forward. The enhanced protocol's p_e margin and the
//! recovery component must absorb a sizable fraction of them.

use fair_gossip::experiments::net::{FabricNet, NetParams};
use fair_gossip::gossip::config::GossipConfig;
use fair_gossip::gossip::messages::GossipMsg;
use fair_gossip::gossip::peer::GossipPeer;
use fair_gossip::gossip::testing::MockEffects;
use fair_gossip::orderer::cutter::BatchConfig;
use fair_gossip::orderer::service::OrdererConfig;
use fair_gossip::sim::{NetworkConfig, Simulation, Time};
use fair_gossip::types::block::Block;
use fair_gossip::types::block::BlockRef;
use fair_gossip::types::ids::PeerId;
use fair_gossip::workload::schedule::{payload_schedule, PayloadWorkload};

#[test]
fn free_rider_receives_but_never_forwards() {
    let roster: Vec<PeerId> = (0..10).map(PeerId).collect();
    let mut peer = GossipPeer::new(PeerId(5), roster, GossipConfig::enhanced_f4());
    peer.set_forwarding(false);
    assert!(!peer.forwarding());
    let mut fx = MockEffects::new(1);

    let block = BlockRef::new(Block::new(
        1,
        fair_gossip::types::crypto::Hash256::ZERO,
        vec![],
    ));
    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush { block, counter: 2 },
    );
    assert!(peer.store().has(1), "a free-rider still wants the chain");
    assert_eq!(fx.delivered_numbers(), vec![1]);
    assert!(fx.take_sent().is_empty(), "but it forwards nothing");

    // Digest for unknown content: it fetches (self-interest) without
    // re-announcing.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::PushDigest {
            block_num: 2,
            counter: 3,
        },
    );
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 1);
    assert!(matches!(
        sent[0].1,
        GossipMsg::PushRequest { block_num: 2, .. }
    ));

    // It still serves explicit requests — a silent dropper, not a liar.
    peer.on_message(
        &mut fx,
        PeerId(3),
        GossipMsg::PushRequest {
            block_num: 1,
            counter: 2,
        },
    );
    assert_eq!(fx.take_sent().len(), 1);
}

fn run_with_free_riders(fraction: f64, seed: u64) -> (f64, u64) {
    let peers = 60;
    let params = NetParams::new(
        peers,
        GossipConfig::enhanced_f4(),
        OrdererConfig::kafka(BatchConfig::paper_dissemination()),
    );
    let workload = PayloadWorkload {
        total_txs: 1_000,
        ..PayloadWorkload::default()
    };
    let schedule = payload_schedule(&workload);
    let network = NetworkConfig::lan(FabricNet::node_count(&params));
    let mut net = FabricNet::new(params, schedule);
    // Mark the tail of the roster as free riders (never the leader: a
    // free-riding contact peer would nullify the experiment trivially).
    let riders = ((peers as f64) * fraction) as usize;
    for i in (peers - riders)..peers {
        net.set_forwarding(i, false);
    }
    let mut sim = Simulation::new(net, network, seed);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim.run_until(Time::from_secs(150));
    let net = sim.protocol();
    (net.latency().completeness(), net.blocks_cut())
}

#[test]
fn enhanced_gossip_absorbs_twenty_percent_free_riders() {
    let (completeness, blocks) = run_with_free_riders(0.2, 5);
    assert_eq!(blocks, 20);
    assert_eq!(
        completeness, 1.0,
        "the p_e margin plus fetch/recovery must still inform everyone"
    );
}

#[test]
fn even_forty_percent_free_riders_eventually_converge_via_recovery() {
    let (completeness, _) = run_with_free_riders(0.4, 9);
    assert_eq!(
        completeness, 1.0,
        "recovery is the backstop once push coverage degrades"
    );
}
