//! # gossip-metrics — measurement toolkit for the reproduction
//!
//! Everything needed to turn raw simulation events into the paper's tables
//! and figures:
//!
//! * [`latency`] — the per-(block, peer) latency matrix with peer-level and
//!   block-level CDF views and fastest/median/slowest selection;
//! * [`cdf`] — empirical CDFs, quantiles, and the logit-scaled probability
//!   plots (with the figures' exact y ticks);
//! * [`bandwidth`] — MB/s-per-10 s utilization series with background
//!   traffic and leader-vs-regular comparison;
//! * [`fairness`] — Jain's index and dispersion summaries;
//! * [`table`] — plain-text table rendering for bench output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandwidth;
pub mod cdf;
pub mod fairness;
pub mod latency;
pub mod table;

pub use bandwidth::{BandwidthComparison, BandwidthSeries};
pub use cdf::{logistic_fit_r2, logit, Cdf, ProbabilityPlot, BLOCK_LEVEL_TICKS, PEER_LEVEL_TICKS};
pub use fairness::{jain_index, ChannelFairness, FairnessReport, Summary};
pub use latency::{Extremes, LatencyRecorder};
pub use table::render_table;
