//! Fairness statistics.
//!
//! "Fair" in the paper means two things: peers receive blocks at similar
//! times (no starving tail), and no peer — the leader in particular —
//! carries a disproportionate share of the traffic. Jain's fairness index
//! and simple dispersion summaries quantify both.

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 for perfectly equal
/// allocations, `1/n` for a single peer doing all the work.
///
/// Returns 1.0 for an empty or all-zero allocation (nothing is unfair
/// about nobody doing anything).
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary; `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Coefficient of variation (`σ/μ`); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_allocation_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_single_worker_is_one_over_n() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[2.0, 4.0, 6.0]).unwrap();
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std_dev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((s.cv() - s.std_dev / 4.0).abs() < 1e-12);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cv_of_zero_mean_is_zero() {
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }
}
