//! Fairness statistics.
//!
//! "Fair" in the paper means two things: peers receive blocks at similar
//! times (no starving tail), and no peer — the leader in particular —
//! carries a disproportionate share of the traffic. Jain's fairness index
//! and simple dispersion summaries quantify both.

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 for perfectly equal
/// allocations, `1/n` for a single peer doing all the work.
///
/// Returns 1.0 for an empty or all-zero allocation (nothing is unfair
/// about nobody doing anything).
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary; `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Coefficient of variation (`σ/μ`); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Fairness of one channel's traffic allocation across its member peers.
#[derive(Debug, Clone)]
pub struct ChannelFairness {
    /// Channel label (e.g. `"ch0"`).
    pub label: String,
    /// Jain's index over the channel's per-peer byte shares.
    pub jain: f64,
    /// Dispersion of the same shares (`None` for an empty channel).
    pub summary: Option<Summary>,
}

/// The dissemination fairness report: per-channel Jain indices plus the
/// peer-global view obtained by summing each peer's share across channels.
///
/// Judging fairness on peer-global bytes alone is misleading in a
/// multi-channel deployment: a peer can carry a perfectly average total
/// while dominating one channel and free-riding on another. The report
/// therefore consumes the **per-channel breakdown** — one byte share per
/// member peer per channel — and derives the global index from it, instead
/// of taking pre-summed peer-global bytes as input.
#[derive(Debug, Clone)]
pub struct FairnessReport {
    /// One entry per channel, in input order.
    pub channels: Vec<ChannelFairness>,
    /// Jain's index over per-peer totals (each peer's shares summed across
    /// the channels it is a member of).
    pub overall_jain: f64,
}

impl FairnessReport {
    /// Builds the report from `(label, per-member byte shares)` rows, one
    /// row per channel. Peers are identified by `(peer_index, share)` pairs
    /// so overlapping memberships aggregate correctly.
    pub fn from_per_channel(rows: &[(String, Vec<(usize, f64)>)]) -> FairnessReport {
        let channels: Vec<ChannelFairness> = rows
            .iter()
            .map(|(label, shares)| {
                let values: Vec<f64> = shares.iter().map(|(_, v)| *v).collect();
                ChannelFairness {
                    label: label.clone(),
                    jain: jain_index(&values),
                    summary: Summary::of(&values),
                }
            })
            .collect();
        let mut totals: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (_, shares) in rows {
            for (peer, v) in shares {
                *totals.entry(*peer).or_insert(0.0) += v;
            }
        }
        let total_values: Vec<f64> = totals.values().copied().collect();
        FairnessReport {
            channels,
            overall_jain: jain_index(&total_values),
        }
    }

    /// The lowest per-channel Jain index (1.0 for an empty report): the
    /// starving channel no global average can hide.
    pub fn worst_channel_jain(&self) -> f64 {
        self.channels.iter().map(|c| c.jain).fold(1.0f64, f64::min)
    }

    /// Plain-text rendering for bench and experiment output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.channels {
            match &c.summary {
                Some(s) => out.push_str(&format!(
                    "{:<8} jain {:.4} | mean {:>12.1} B | cv {:.3} | max/min {:.2}\n",
                    c.label,
                    c.jain,
                    s.mean,
                    s.cv(),
                    if s.min > 0.0 {
                        s.max / s.min
                    } else {
                        f64::INFINITY
                    },
                )),
                None => out.push_str(&format!("{:<8} (no members)\n", c.label)),
            }
        }
        out.push_str(&format!(
            "overall  jain {:.4} (per-peer totals across channels)\n",
            self.overall_jain
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_exposes_per_channel_unfairness_hidden_by_totals() {
        // Two channels, two peers. Peer 0 does all the work on ch0, peer 1
        // all of it on ch1: peer-global totals are perfectly equal, but
        // each channel is maximally unfair for n = 2.
        let rows = vec![
            ("ch0".to_owned(), vec![(0, 10.0), (1, 0.0)]),
            ("ch1".to_owned(), vec![(0, 0.0), (1, 10.0)]),
        ];
        let report = FairnessReport::from_per_channel(&rows);
        assert!((report.overall_jain - 1.0).abs() < 1e-12);
        assert!((report.worst_channel_jain() - 0.5).abs() < 1e-12);
        assert_eq!(report.channels.len(), 2);
        let text = report.render();
        assert!(text.contains("ch0"));
        assert!(text.contains("overall"));
    }

    #[test]
    fn report_aggregates_overlapping_memberships() {
        let rows = vec![
            ("ch0".to_owned(), vec![(0, 4.0), (1, 4.0)]),
            ("ch1".to_owned(), vec![(1, 4.0), (2, 8.0)]),
        ];
        let report = FairnessReport::from_per_channel(&rows);
        // Totals: peer0 = 4, peer1 = 8, peer2 = 8.
        let expected = jain_index(&[4.0, 8.0, 8.0]);
        assert!((report.overall_jain - expected).abs() < 1e-12);
        assert!((report.channels[0].jain - 1.0).abs() < 1e-12);
        assert!(report.channels[1].jain < 1.0);
    }

    #[test]
    fn empty_report_is_vacuously_fair() {
        let report = FairnessReport::from_per_channel(&[]);
        assert_eq!(report.worst_channel_jain(), 1.0);
        assert_eq!(report.overall_jain, 1.0);
    }

    #[test]
    fn jain_equal_allocation_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_single_worker_is_one_over_n() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[2.0, 4.0, 6.0]).unwrap();
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std_dev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((s.cv() - s.std_dev / 4.0).abs() < 1e-12);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cv_of_zero_mean_is_zero() {
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }
}
