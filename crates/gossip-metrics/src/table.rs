//! Plain-text table rendering for the benches' paper-style output.

/// Renders a monospace table with a header row and a separator, columns
/// padded to the widest cell.
///
/// ```
/// use gossip_metrics::table::render_table;
/// let text = render_table(
///     &["Block period", "Original", "Enhanced", "Difference"],
///     &[vec!["2 s".into(), "803".into(), "664".into(), "-17%".into()]],
/// );
/// assert!(text.contains("Block period"));
/// assert!(text.contains("-17%"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match the header");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
    for row in rows {
        out.push_str(&render_row(
            row.iter().map(String::as_str).collect(),
            &widths,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align_to_widest_cell() {
        let text = render_table(
            &["a", "long-header"],
            &[vec!["wide-cell-content".into(), "x".into()]],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(
            widths.iter().all(|w| *w == widths[0]),
            "rows must align: {widths:?}"
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn empty_rows_render_header_only() {
        let text = render_table(&["x"], &[]);
        assert_eq!(text.lines().count(), 2);
    }
}
