//! Bandwidth-over-time series in the shape of the paper's Figs. 6/9/10/11/14.
//!
//! The figures plot per-peer network utilization (sent + received bytes)
//! aggregated over 10-second intervals, in MB/s, for the leader peer and a
//! regular peer, with dotted average lines. The simulation's byte
//! accounting provides the raw series; this module adds the constant
//! *background traffic* the paper observes (≈0.4 MB/s of non-dissemination
//! system chatter on an idle network) and computes the summary numbers.

use serde::{Deserialize, Serialize};

/// One peer's utilization series plus its average.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthSeries {
    /// Series label (e.g. `"leader peer"`).
    pub label: String,
    /// MB/s per bucket.
    pub mbps: Vec<f64>,
    /// Width of each bucket in seconds.
    pub bucket_secs: f64,
}

impl BandwidthSeries {
    /// Wraps a raw MB/s series.
    pub fn new(label: impl Into<String>, mbps: Vec<f64>, bucket_secs: f64) -> Self {
        assert!(bucket_secs > 0.0, "bucket width must be positive");
        BandwidthSeries {
            label: label.into(),
            mbps,
            bucket_secs,
        }
    }

    /// Adds a constant background rate to every bucket (system chatter not
    /// modeled by the protocol: container runtime, monitoring, Kafka
    /// polling — the paper's idle-network floor).
    pub fn with_background(mut self, background_mbps: f64) -> Self {
        assert!(
            background_mbps >= 0.0,
            "background rate must be non-negative"
        );
        for v in &mut self.mbps {
            *v += background_mbps;
        }
        self
    }

    /// Average over the series (the figures' dotted line), restricted to
    /// the first `active_buckets` entries when given — the paper averages
    /// over the active phase, not the idle tail.
    pub fn average(&self, active_buckets: Option<usize>) -> f64 {
        let slice = match active_buckets {
            Some(k) => &self.mbps[..k.min(self.mbps.len())],
            None => &self.mbps[..],
        };
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    /// Peak bucket value.
    pub fn peak(&self) -> f64 {
        self.mbps.iter().copied().fold(0.0, f64::max)
    }

    /// Total megabytes moved over the series.
    pub fn total_mb(&self) -> f64 {
        self.mbps.iter().sum::<f64>() * self.bucket_secs
    }

    /// Renders `time  MB/s` rows (the figure's data).
    pub fn render(&self) -> String {
        let mut out = format!("# {}\n", self.label);
        for (i, v) in self.mbps.iter().enumerate() {
            out.push_str(&format!(
                "{:>8.0}  {:>8.3}\n",
                i as f64 * self.bucket_secs,
                v
            ));
        }
        out
    }
}

/// The leader-vs-regular comparison a bandwidth figure shows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthComparison {
    /// The leader peer's series.
    pub leader: BandwidthSeries,
    /// A representative regular peer's series.
    pub regular: BandwidthSeries,
    /// Buckets covered by the active (transaction-generating) phase.
    pub active_buckets: usize,
}

impl BandwidthComparison {
    /// Leader-to-regular average ratio over the active phase — the fairness
    /// headline of Figs. 9 vs 10.
    pub fn leader_ratio(&self) -> f64 {
        let r = self.regular.average(Some(self.active_buckets));
        if r == 0.0 {
            return f64::INFINITY;
        }
        self.leader.average(Some(self.active_buckets)) / r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> BandwidthSeries {
        BandwidthSeries::new("test", values.to_vec(), 10.0)
    }

    #[test]
    fn average_and_peak() {
        let s = series(&[1.0, 2.0, 3.0, 0.0]);
        assert!((s.average(None) - 1.5).abs() < 1e-12);
        assert!((s.average(Some(3)) - 2.0).abs() < 1e-12);
        assert_eq!(s.peak(), 3.0);
        assert_eq!(series(&[]).average(None), 0.0);
    }

    #[test]
    fn background_lifts_every_bucket() {
        let s = series(&[0.0, 1.0]).with_background(0.4);
        assert_eq!(s.mbps, vec![0.4, 1.4]);
    }

    #[test]
    fn total_mb_integrates_over_time() {
        let s = series(&[2.0, 2.0]);
        assert!((s.total_mb() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn leader_ratio_compares_active_phase() {
        let cmp = BandwidthComparison {
            leader: series(&[4.0, 4.0, 0.0]),
            regular: series(&[1.0, 1.0, 0.0]),
            active_buckets: 2,
        };
        assert!((cmp.leader_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_rows() {
        let text = series(&[1.25]).render();
        assert!(text.contains("test"));
        assert!(text.contains("1.250"));
    }
}
