//! Empirical distributions and the paper's probability plots.
//!
//! Figures 4/5/7/8/12/13 are probability plots with a logit-scaled y axis:
//! straight lines correspond to logistic distributions, which is how push
//! epidemics grow. [`Cdf`] holds sorted samples; [`ProbabilityPlot`]
//! extracts the latency at each of the paper's y ticks so a bench can print
//! exactly the series the figures draw.

use desim::Duration;
use serde::{Deserialize, Serialize};

/// The y ticks of the paper's peer-level plots (Figs. 4, 7, 12).
pub const PEER_LEVEL_TICKS: &[f64] = &[
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 0.999,
    0.9995, 0.9999,
];

/// The y ticks of the paper's block-level plots (Figs. 5, 8, 13).
pub const BLOCK_LEVEL_TICKS: &[f64] = &[
    0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.995,
];

/// An empirical cumulative distribution over durations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<Duration>,
}

impl Cdf {
    /// Builds a CDF from samples (any order).
    pub fn new(mut samples: Vec<Duration>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The samples in ascending order.
    pub fn samples(&self) -> &[Duration] {
        &self.sorted
    }

    /// The `q`-quantile (nearest-rank), `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!(!self.sorted.is_empty(), "quantile of an empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Fraction of samples `≤ t`.
    pub fn fraction_below(&self, t: Duration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|s| *s <= t);
        idx as f64 / self.sorted.len() as f64
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> Duration {
        if self.sorted.is_empty() {
            return Duration::ZERO;
        }
        let total: u128 = self.sorted.iter().map(|d| u128::from(d.as_nanos())).sum();
        Duration::from_nanos((total / self.sorted.len() as u128) as u64)
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        self.sorted.last().copied().unwrap_or(Duration::ZERO)
    }
}

/// The logit transform `ln(p / (1 − p))` used by the figures' y axis.
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
pub fn logit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "logit needs p in (0, 1), got {p}");
    (p / (1.0 - p)).ln()
}

/// Goodness of a logistic fit: the R² of regressing `logit(p)` on the
/// latency at quantile `p` over the interior quantiles `0.05..=0.95`.
///
/// The paper plots its latency figures on a logit scale precisely because
/// push epidemics grow logistically — their curves are near-straight lines.
/// A distribution with a phase break (the original protocol's push→pull
/// transition) fits markedly worse than a pure push distribution, so this
/// statistic quantifies the "near-linear on the probability plot" claim.
/// Returns 1.0 for degenerate (constant) samples.
pub fn logistic_fit_r2(cdf: &Cdf) -> f64 {
    assert!(!cdf.is_empty(), "logistic fit of an empty CDF");
    let qs: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let points: Vec<(f64, f64)> = qs
        .iter()
        .map(|&q| (cdf.quantile(q).as_secs_f64(), logit(q)))
        .collect();
    let n = points.len() as f64;
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points
        .iter()
        .map(|(x, _)| (x - mean_x) * (x - mean_x))
        .sum();
    let sxy: f64 = points
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let syy: f64 = points
        .iter()
        .map(|(_, y)| (y - mean_y) * (y - mean_y))
        .sum();
    // Guard against an (effectively) constant x with a relative epsilon:
    // plain `== 0.0` misses the rounding dust of the mean subtraction.
    if sxx <= 1e-24 * (1.0 + mean_x * mean_x) || syy == 0.0 {
        return 1.0; // a vertical/constant line fits trivially
    }
    let slope = sxy / sxx;
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| {
            let pred = mean_y + slope * (x - mean_x);
            (y - pred) * (y - pred)
        })
        .sum();
    1.0 - ss_res / syy
}

/// One series of a probability plot: the latency reaching each tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityPlot {
    /// Series label (e.g. `"median peer"`).
    pub label: String,
    /// `(tick, latency)` points; ticks beyond the sample resolution are
    /// clamped to the extreme samples, as an empirical plot would show.
    pub points: Vec<(f64, Duration)>,
}

impl ProbabilityPlot {
    /// Extracts the plot for `cdf` at the given y `ticks`.
    pub fn from_cdf(label: impl Into<String>, cdf: &Cdf, ticks: &[f64]) -> Self {
        let points = ticks.iter().map(|&q| (q, cdf.quantile(q))).collect();
        ProbabilityPlot {
            label: label.into(),
            points,
        }
    }

    /// Renders the series as aligned text rows (`tick  latency`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.label));
        for (q, d) in &self.points {
            out.push_str(&format!("{:>8.4}  {:>12}\n", q, d.to_string()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn cdf_1_to_100() -> Cdf {
        Cdf::new((1..=100).rev().map(ms).collect())
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = cdf_1_to_100();
        assert_eq!(c.quantile(0.0), ms(1));
        assert_eq!(c.quantile(0.01), ms(1));
        assert_eq!(c.quantile(0.5), ms(50));
        assert_eq!(c.quantile(0.99), ms(99));
        assert_eq!(c.quantile(1.0), ms(100));
    }

    #[test]
    fn fraction_below_is_inverse_of_quantile() {
        let c = cdf_1_to_100();
        assert_eq!(c.fraction_below(ms(50)), 0.5);
        assert_eq!(c.fraction_below(ms(0)), 0.0);
        assert_eq!(c.fraction_below(ms(100)), 1.0);
        assert_eq!(c.fraction_below(ms(500)), 1.0);
    }

    #[test]
    fn mean_and_max() {
        let c = Cdf::new(vec![ms(10), ms(20), ms(30)]);
        assert_eq!(c.mean(), ms(20));
        assert_eq!(c.max(), ms(30));
        assert_eq!(Cdf::default().mean(), Duration::ZERO);
        assert_eq!(Cdf::default().max(), Duration::ZERO);
    }

    #[test]
    fn logit_is_antisymmetric() {
        assert_eq!(logit(0.5), 0.0);
        assert!((logit(0.9) + logit(0.1)).abs() < 1e-12);
        assert!(logit(0.9999) > logit(0.99));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        Cdf::default().quantile(0.5);
    }

    #[test]
    fn probability_plot_uses_paper_ticks() {
        let c = cdf_1_to_100();
        let plot = ProbabilityPlot::from_cdf("median peer", &c, BLOCK_LEVEL_TICKS);
        assert_eq!(plot.points.len(), BLOCK_LEVEL_TICKS.len());
        assert_eq!(plot.points[0].0, 0.005);
        // Monotone latencies along the ticks.
        assert!(plot.points.windows(2).all(|w| w[0].1 <= w[1].1));
        let text = plot.render();
        assert!(text.contains("median peer"));
        assert!(text.contains("0.5000"));
    }

    #[test]
    fn logistic_fit_prefers_logistic_samples() {
        // A logistic distribution: latency(p) = mu + s*logit(p).
        let logistic: Vec<Duration> = (1..=999)
            .map(|i| {
                let p = i as f64 / 1000.0;
                Duration::from_secs_f64(0.5 + 0.05 * logit(p))
            })
            .collect();
        let good = logistic_fit_r2(&Cdf::new(logistic));
        assert!(good > 0.99, "a logistic sample must fit, R² = {good:.4}");

        // A two-phase distribution: 90% fast push, 10% slow pull plateau.
        let two_phase: Vec<Duration> = (1..=999)
            .map(|i| {
                if i <= 900 {
                    Duration::from_millis(50 + i / 10)
                } else {
                    Duration::from_millis(2_000 + (i - 900) * 40)
                }
            })
            .collect();
        let bad = logistic_fit_r2(&Cdf::new(two_phase));
        assert!(
            bad < good,
            "a phase break must fit worse: {bad:.4} vs {good:.4}"
        );
    }

    #[test]
    fn logistic_fit_degenerate_is_one() {
        let c = Cdf::new(vec![ms(5); 100]);
        assert_eq!(logistic_fit_r2(&c), 1.0);
    }

    #[test]
    fn tick_tables_match_the_figures() {
        assert_eq!(PEER_LEVEL_TICKS.len(), 17);
        assert_eq!(BLOCK_LEVEL_TICKS.len(), 11);
        assert!(PEER_LEVEL_TICKS.windows(2).all(|w| w[0] < w[1]));
        assert!(BLOCK_LEVEL_TICKS.windows(2).all(|w| w[0] < w[1]));
    }
}
