//! Per-(block, peer) dissemination latency recording.
//!
//! The paper measures, for every block, the time each peer takes to receive
//! it *counted from the start of its dissemination* — the moment the leader
//! (contact peer) gets it from the ordering service. Two views of the same
//! matrix produce the figures:
//!
//! * **peer level** (Figs. 4/7/12): one CDF per peer across blocks;
//! * **block level** (Figs. 5/8/13): one CDF per block across peers.

use std::collections::BTreeMap;

use desim::{Duration, Time};

use crate::cdf::Cdf;

/// The latency matrix of one dissemination experiment.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    peers: usize,
    /// Per block: dissemination start and per-peer reception latency.
    blocks: BTreeMap<u64, BlockRecord>,
}

#[derive(Debug, Clone)]
struct BlockRecord {
    start: Time,
    latencies: Vec<Option<Duration>>,
}

impl LatencyRecorder {
    /// A recorder for `peers` peers.
    pub fn new(peers: usize) -> Self {
        LatencyRecorder {
            peers,
            blocks: BTreeMap::new(),
        }
    }

    /// Marks the start of `block`'s dissemination (leader reception).
    /// Re-marking an already started block is ignored.
    pub fn start_block(&mut self, block: u64, at: Time) {
        self.blocks.entry(block).or_insert_with(|| BlockRecord {
            start: at,
            latencies: vec![None; self.peers],
        });
    }

    /// Records `peer`'s first reception of `block` at `at`. Receptions for
    /// unstarted blocks or duplicate receptions are ignored.
    pub fn record(&mut self, block: u64, peer: usize, at: Time) {
        let Some(rec) = self.blocks.get_mut(&block) else {
            return;
        };
        let slot = &mut rec.latencies[peer];
        if slot.is_none() {
            *slot = Some(at.since(rec.start));
        }
    }

    /// Number of peer slots in the matrix (as sized at construction).
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// Number of blocks started.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Fraction of (block, peer) cells filled — 1.0 means every peer
    /// received every block.
    pub fn completeness(&self) -> f64 {
        let total = self.blocks.len() * self.peers;
        if total == 0 {
            return 1.0;
        }
        let filled: usize = self
            .blocks
            .values()
            .map(|r| r.latencies.iter().filter(|l| l.is_some()).count())
            .sum();
        filled as f64 / total as f64
    }

    /// All latencies of one peer across blocks (missing cells skipped).
    pub fn peer_latencies(&self, peer: usize) -> Vec<Duration> {
        self.blocks
            .values()
            .filter_map(|r| r.latencies[peer])
            .collect()
    }

    /// All latencies of one block across peers (missing cells skipped).
    pub fn block_latencies(&self, block: u64) -> Vec<Duration> {
        match self.blocks.get(&block) {
            Some(r) => r.latencies.iter().flatten().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Per-peer CDFs, one per peer, in peer order.
    pub fn all_peer_cdfs(&self) -> Vec<Cdf> {
        (0..self.peers)
            .map(|p| Cdf::new(self.peer_latencies(p)))
            .collect()
    }

    /// Per-block CDFs keyed by block number.
    pub fn all_block_cdfs(&self) -> BTreeMap<u64, Cdf> {
        self.blocks
            .keys()
            .map(|&b| (b, Cdf::new(self.block_latencies(b))))
            .collect()
    }

    /// The fastest, median and slowest *peers* by mean latency, as the
    /// paper's peer-level figures select their three series.
    /// `None` if no data was recorded.
    pub fn peer_extremes(&self) -> Option<Extremes> {
        Self::extremes(
            self.all_peer_cdfs()
                .into_iter()
                .enumerate()
                .map(|(i, c)| (i as u64, c)),
        )
    }

    /// The fastest, median and slowest *blocks* by mean latency
    /// (block-level figures). `None` if no data was recorded.
    pub fn block_extremes(&self) -> Option<Extremes> {
        Self::extremes(self.all_block_cdfs().into_iter())
    }

    fn extremes(cdfs: impl Iterator<Item = (u64, Cdf)>) -> Option<Extremes> {
        let mut ranked: Vec<(u64, Cdf)> = cdfs.filter(|(_, c)| !c.is_empty()).collect();
        if ranked.is_empty() {
            return None;
        }
        ranked.sort_by_key(|(_, c)| c.mean());
        let median_idx = ranked.len() / 2;
        let slowest = ranked.len() - 1;
        Some(Extremes {
            fastest: ranked[0].clone(),
            median: ranked[median_idx].clone(),
            slowest: ranked[slowest].clone(),
        })
    }
}

/// The three series the paper's latency figures draw.
#[derive(Debug, Clone)]
pub struct Extremes {
    /// Lowest mean latency: `(id, cdf)`.
    pub fastest: (u64, Cdf),
    /// Median mean latency.
    pub median: (u64, Cdf),
    /// Highest mean latency.
    pub slowest: (u64, Cdf),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn records_latency_relative_to_block_start() {
        let mut rec = LatencyRecorder::new(3);
        rec.start_block(1, t(100));
        rec.record(1, 0, t(100)); // the leader itself: zero latency
        rec.record(1, 1, t(150));
        rec.record(1, 2, t(400));
        let lats = rec.block_latencies(1);
        assert_eq!(
            lats,
            vec![
                Duration::ZERO,
                Duration::from_millis(50),
                Duration::from_millis(300),
            ]
        );
        assert_eq!(rec.completeness(), 1.0);
    }

    #[test]
    fn duplicate_and_unstarted_records_are_ignored() {
        let mut rec = LatencyRecorder::new(2);
        rec.record(9, 0, t(5)); // block 9 never started
        assert_eq!(rec.block_count(), 0);
        rec.start_block(1, t(0));
        rec.record(1, 0, t(10));
        rec.record(1, 0, t(99)); // duplicate: first reception stands
        assert_eq!(rec.block_latencies(1), vec![Duration::from_millis(10)]);
    }

    #[test]
    fn completeness_counts_missing_cells() {
        let mut rec = LatencyRecorder::new(2);
        rec.start_block(1, t(0));
        rec.start_block(2, t(10));
        rec.record(1, 0, t(1));
        rec.record(1, 1, t(2));
        rec.record(2, 0, t(11));
        assert!((rec.completeness() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn peer_and_block_views_are_transposes() {
        let mut rec = LatencyRecorder::new(2);
        rec.start_block(1, t(0));
        rec.start_block(2, t(100));
        rec.record(1, 0, t(10));
        rec.record(1, 1, t(20));
        rec.record(2, 0, t(130));
        rec.record(2, 1, t(140));
        assert_eq!(
            rec.peer_latencies(0),
            vec![Duration::from_millis(10), Duration::from_millis(30)]
        );
        assert_eq!(
            rec.block_latencies(2),
            vec![Duration::from_millis(30), Duration::from_millis(40)]
        );
    }

    #[test]
    fn extremes_rank_by_mean() {
        let mut rec = LatencyRecorder::new(3);
        for b in 1..=5u64 {
            rec.start_block(b, t(b * 1000));
            rec.record(b, 0, t(b * 1000 + 10)); // fast peer
            rec.record(b, 1, t(b * 1000 + 50)); // middle peer
            rec.record(b, 2, t(b * 1000 + 500)); // slow peer
        }
        let ex = rec.peer_extremes().unwrap();
        assert_eq!(ex.fastest.0, 0);
        assert_eq!(ex.median.0, 1);
        assert_eq!(ex.slowest.0, 2);
        assert_eq!(ex.slowest.1.mean(), Duration::from_millis(500));
    }

    #[test]
    fn extremes_of_empty_recorder_is_none() {
        let rec = LatencyRecorder::new(3);
        assert!(rec.peer_extremes().is_none());
        assert!(rec.block_extremes().is_none());
    }
}
