//! # fabric-orderer — ordering service substrate
//!
//! Fabric separates ordering from validation: orderers batch endorsed
//! proposals into hash-chained blocks using consensus, then deliver each new
//! block to one *leader peer* per organization, which starts the gossip
//! broadcast this project studies.
//!
//! This crate provides the block cutter with Fabric v1.x semantics
//! ([`cutter::BlockCutter`]) and a sans-io ordering-service state machine
//! ([`service::OrderingService`]) whose consensus pipeline is modeled by a
//! sampled latency distribution — the substitution for the paper's
//! Kafka/ZooKeeper deployment, as recorded in `DESIGN.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cutter;
pub mod service;

pub use cutter::{BatchConfig, BlockCutter};
pub use service::{OrdererConfig, OrderingService, SubmitOutcome};
