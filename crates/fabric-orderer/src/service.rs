//! The ordering service: consensus pipeline model and block assembly.
//!
//! The paper's testbed ran a crash-fault-tolerant ordering service of four
//! Kafka brokers and three ZooKeeper nodes. Its internals never vary in the
//! evaluation — what matters to the gossip study is (a) Fabric's block
//! cutting behaviour and (b) the end-to-end delay a proposal experiences
//! between submission and the cut block leaving the orderer. This module
//! implements (a) exactly (see [`crate::cutter`]) and models (b) with a
//! sampled [`LatencyModel`] (`consensus_delay`), the calibration knob
//! documented in `DESIGN.md` and `EXPERIMENTS.md`.
//!
//! The service is a sans-io state machine: it never sleeps or sends — the
//! embedding (simulation or threads) arms batch timers when told to and
//! delivers cut blocks after the sampled consensus delay.
//!
//! Like a real Fabric ordering service, one instance orders **many
//! channels**: each registered channel owns an independent block cutter,
//! block numbering and prev-hash chain, multiplexed behind the shared
//! consenter model. Single-channel embeddings use the channel-less methods
//! ([`OrderingService::submit`] et al.), which operate on
//! [`ChannelId::DEFAULT`]; multi-channel embeddings register channels with
//! [`OrderingService::add_channel`] and route with the `*_on` variants.
//! Batch epochs are per-channel, so an embedding arming timers must carry
//! the channel alongside the epoch.

use desim::{Duration, LatencyModel};
use serde::{Deserialize, Serialize};

use fabric_types::block::Block;
use fabric_types::crypto::Hash256;
use fabric_types::ids::ChannelId;
use fabric_types::transaction::Transaction;

use crate::cutter::{BatchConfig, BlockCutter};

/// Ordering-service parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrdererConfig {
    /// Block cutting parameters.
    pub batch: BatchConfig,
    /// End-to-end consensus pipeline delay per block: Kafka produce,
    /// replication, consume and block signing. Sampled once per cut block.
    pub consensus_delay: LatencyModel,
}

impl OrdererConfig {
    /// A Kafka-flavoured pipeline: mean delay a few hundred milliseconds,
    /// with jitter, roughly matching published Fabric v1.x ordering
    /// latencies under moderate load.
    pub fn kafka(batch: BatchConfig) -> Self {
        OrdererConfig {
            batch,
            consensus_delay: LatencyModel::Lan {
                base: Duration::from_millis(120),
                jitter: Duration::from_millis(80),
                spike_prob: 0.01,
                spike_mult: 5,
            },
        }
    }

    /// An idealized instant pipeline, for protocol-logic tests.
    pub fn instant(batch: BatchConfig) -> Self {
        OrdererConfig {
            batch,
            consensus_delay: LatencyModel::ZERO,
        }
    }
}

/// What a submission produced.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// Blocks cut by this submission, in order (zero, one or two).
    pub blocks: Vec<Block>,
    /// When `Some(epoch)`, a fresh batch started pending and the embedding
    /// must arm the batch timer for that epoch.
    pub arm_timer: Option<u64>,
}

/// The ordering service state machine.
///
/// ```
/// use fabric_orderer::{BatchConfig, OrdererConfig, OrderingService};
/// use fabric_types::block::Block;
/// use fabric_types::ids::{ClientId, TxId};
/// use fabric_types::rwset::RwSet;
/// use fabric_types::transaction::Transaction;
///
/// let genesis = Block::genesis();
/// let mut orderer = OrderingService::new(
///     OrdererConfig::instant(BatchConfig::paper_dissemination()),
///     genesis.hash(),
///     1,
/// );
/// let mut outcome = None;
/// for i in 0..50 {
///     let tx = Transaction::new(TxId(i), "cc", ClientId(0), RwSet::default());
///     outcome = Some(orderer.submit(tx));
/// }
/// let blocks = outcome.unwrap().blocks;
/// assert_eq!(blocks.len(), 1);
/// assert!(blocks[0].follows(&genesis));
/// ```
#[derive(Debug)]
pub struct OrderingService {
    config: OrdererConfig,
    /// One independent chain per served channel, sorted by [`ChannelId`].
    chains: Vec<(ChannelId, ChannelChain)>,
}

/// The per-channel half of the ordering service: Fabric runs one block
/// cutter and one chain (independent numbering and prev-hash linkage) per
/// channel, multiplexed behind a single consenter set.
#[derive(Debug)]
struct ChannelChain {
    cutter: BlockCutter,
    next_number: u64,
    prev_hash: Hash256,
    /// Bumped every time the pending batch empties; stale batch timers
    /// compare epochs instead of being cancelled.
    batch_epoch: u64,
    blocks_cut: u64,
}

impl ChannelChain {
    fn new(batch: BatchConfig, prev_hash: Hash256, next_number: u64) -> Self {
        ChannelChain {
            cutter: BlockCutter::new(batch),
            next_number,
            prev_hash,
            batch_epoch: 0,
            blocks_cut: 0,
        }
    }

    fn submit(&mut self, tx: Transaction) -> SubmitOutcome {
        let (batches, started_fresh) = self.cutter.ordered(tx);
        let blocks: Vec<Block> = batches.into_iter().map(|b| self.assemble(b)).collect();
        let arm_timer = started_fresh.then_some(self.batch_epoch);
        SubmitOutcome { blocks, arm_timer }
    }

    fn on_batch_timeout(&mut self, epoch: u64) -> Option<Block> {
        if epoch != self.batch_epoch {
            return None;
        }
        let batch = self.cutter.cut();
        if batch.is_empty() {
            return None;
        }
        Some(self.assemble(batch))
    }

    fn assemble(&mut self, txs: Vec<Transaction>) -> Block {
        let block = Block::new(self.next_number, self.prev_hash, txs);
        self.prev_hash = block.hash();
        self.next_number += 1;
        self.batch_epoch += 1;
        self.blocks_cut += 1;
        block
    }
}

impl OrderingService {
    /// Creates the service ordering the single [`ChannelId::DEFAULT`]
    /// channel. `prev_hash` is the hash of the last block already on that
    /// chain (usually genesis), `next_number` the height the first cut
    /// block will carry. Register further channels with
    /// [`OrderingService::add_channel`].
    pub fn new(config: OrdererConfig, prev_hash: Hash256, next_number: u64) -> Self {
        let chain = ChannelChain::new(config.batch.clone(), prev_hash, next_number);
        OrderingService {
            config,
            chains: vec![(ChannelId::DEFAULT, chain)],
        }
    }

    /// Registers `channel` with its own block cutter and chain state
    /// (independent numbering and prev-hash linkage). Every channel shares
    /// the service-wide batching parameters and consensus-delay model.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is already served.
    pub fn add_channel(&mut self, channel: ChannelId, prev_hash: Hash256, next_number: u64) {
        assert!(
            !self.chains.iter().any(|(ch, _)| *ch == channel),
            "channel {channel} already served"
        );
        let chain = ChannelChain::new(self.config.batch.clone(), prev_hash, next_number);
        let at = self.chains.partition_point(|(ch, _)| *ch < channel);
        self.chains.insert(at, (channel, chain));
    }

    /// The channels this service orders, in id order.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        self.chains.iter().map(|(ch, _)| *ch).collect()
    }

    /// The service configuration.
    pub fn config(&self) -> &OrdererConfig {
        &self.config
    }

    /// The batch timeout the embedding should use when arming timers (one
    /// service-wide value; epochs are per-channel).
    pub fn batch_timeout(&self) -> Duration {
        self.config.batch.batch_timeout
    }

    fn chain(&self, channel: ChannelId) -> &ChannelChain {
        self.chains
            .iter()
            .find(|(ch, _)| *ch == channel)
            .map(|(_, c)| c)
            .unwrap_or_else(|| panic!("channel {channel} is not served by this orderer"))
    }

    fn chain_mut(&mut self, channel: ChannelId) -> &mut ChannelChain {
        self.chains
            .iter_mut()
            .find(|(ch, _)| *ch == channel)
            .map(|(_, c)| c)
            .unwrap_or_else(|| panic!("channel {channel} is not served by this orderer"))
    }

    /// Current batch epoch of the default channel (see
    /// [`SubmitOutcome::arm_timer`]).
    pub fn batch_epoch(&self) -> u64 {
        self.batch_epoch_on(ChannelId::DEFAULT)
    }

    /// Current batch epoch of `channel`.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is not served.
    pub fn batch_epoch_on(&self, channel: ChannelId) -> u64 {
        self.chain(channel).batch_epoch
    }

    /// Number of blocks cut so far, summed over every channel.
    pub fn blocks_cut(&self) -> u64 {
        self.chains.iter().map(|(_, c)| c.blocks_cut).sum()
    }

    /// Number of blocks cut on `channel`.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is not served.
    pub fn blocks_cut_on(&self, channel: ChannelId) -> u64 {
        self.chain(channel).blocks_cut
    }

    /// The number of the last block cut on `channel` (0 when the chain
    /// still sits at genesis) — the head a late joiner must catch up to.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is not served.
    pub fn chain_head_on(&self, channel: ChannelId) -> u64 {
        self.chain(channel).next_number - 1
    }

    /// Transactions waiting in the default channel's pending batch.
    pub fn pending_count(&self) -> usize {
        self.pending_count_on(ChannelId::DEFAULT)
    }

    /// Transactions waiting in `channel`'s pending batch.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is not served.
    pub fn pending_count_on(&self, channel: ChannelId) -> usize {
        self.chain(channel).cutter.pending_count()
    }

    /// Accepts a transaction proposal for the default channel in arrival
    /// order. Fabric orderers do not validate proposals — neither does
    /// this one.
    pub fn submit(&mut self, tx: Transaction) -> SubmitOutcome {
        self.submit_on(ChannelId::DEFAULT, tx)
    }

    /// Accepts a transaction proposal for `channel` in arrival order.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is not served — submission routing is the
    /// embedding's contract, so a stray channel is a bug, not a condition.
    pub fn submit_on(&mut self, channel: ChannelId, tx: Transaction) -> SubmitOutcome {
        self.chain_mut(channel).submit(tx)
    }

    /// Batch timer expiry for `epoch` on the default channel. Returns the
    /// cut block, or `None` when the timer was stale (the batch it guarded
    /// was already cut) or nothing was pending.
    pub fn on_batch_timeout(&mut self, epoch: u64) -> Option<Block> {
        self.on_batch_timeout_on(ChannelId::DEFAULT, epoch)
    }

    /// Batch timer expiry for `epoch` on `channel`.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is not served.
    pub fn on_batch_timeout_on(&mut self, channel: ChannelId, epoch: u64) -> Option<Block> {
        self.chain_mut(channel).on_batch_timeout(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::block::verify_chain;
    use fabric_types::block::BlockRef;
    use fabric_types::ids::{ClientId, TxId};
    use fabric_types::rwset::RwSet;

    fn tx(id: u64) -> Transaction {
        Transaction::new(TxId(id), "cc", ClientId(0), RwSet::default())
    }

    fn service(max_count: usize) -> OrderingService {
        let batch = BatchConfig {
            max_message_count: max_count,
            preferred_max_bytes: 1 << 20,
            batch_timeout: Duration::from_secs(2),
        };
        OrderingService::new(OrdererConfig::instant(batch), Block::genesis().hash(), 1)
    }

    #[test]
    fn blocks_chain_in_order() {
        let mut orderer = service(2);
        let mut blocks = vec![BlockRef::new(Block::genesis())];
        for i in 0..10 {
            for b in orderer.submit(tx(i)).blocks {
                blocks.push(BlockRef::new(b));
            }
        }
        assert_eq!(blocks.len(), 6); // genesis + 5 blocks of 2
        assert_eq!(verify_chain(&blocks), Ok(()));
        assert_eq!(orderer.blocks_cut(), 5);
    }

    #[test]
    fn first_tx_requests_timer_with_epoch() {
        let mut orderer = service(10);
        let outcome = orderer.submit(tx(1));
        assert_eq!(outcome.arm_timer, Some(0));
        let outcome = orderer.submit(tx(2));
        assert_eq!(outcome.arm_timer, None);
    }

    #[test]
    fn timeout_cuts_pending_batch() {
        let mut orderer = service(10);
        let epoch = orderer.submit(tx(1)).arm_timer.unwrap();
        orderer.submit(tx(2));
        let block = orderer.on_batch_timeout(epoch).unwrap();
        assert_eq!(block.txs.len(), 2);
        assert_eq!(block.number(), 1);
        assert_eq!(orderer.pending_count(), 0);
    }

    #[test]
    fn stale_timeout_is_ignored() {
        let mut orderer = service(2);
        let epoch = orderer.submit(tx(1)).arm_timer.unwrap();
        // Fills the batch: cut happens by count, epoch advances.
        let cut = orderer.submit(tx(2));
        assert_eq!(cut.blocks.len(), 1);
        // New batch starts pending; the old timer must not cut it.
        orderer.submit(tx(3));
        assert_eq!(orderer.on_batch_timeout(epoch), None);
        assert_eq!(orderer.pending_count(), 1);
    }

    #[test]
    fn empty_timeout_returns_none() {
        let mut orderer = service(10);
        assert_eq!(orderer.on_batch_timeout(0), None);
    }

    #[test]
    fn channels_cut_and_number_independently() {
        let mut orderer = service(2);
        orderer.add_channel(ChannelId(1), Block::genesis().hash(), 1);
        assert_eq!(orderer.channel_ids(), vec![ChannelId(0), ChannelId(1)]);

        // Interleaved submissions: each channel batches on its own.
        orderer.submit_on(ChannelId(0), tx(1));
        orderer.submit_on(ChannelId(1), tx(2));
        let b0 = orderer.submit_on(ChannelId(0), tx(3)).blocks.pop().unwrap();
        let b1 = orderer.submit_on(ChannelId(1), tx(4)).blocks.pop().unwrap();
        assert_eq!(b0.number(), 1, "channel 0 numbers from 1");
        assert_eq!(b1.number(), 1, "channel 1 numbers from 1 independently");
        assert!(b0.follows(&Block::genesis()));
        assert!(b1.follows(&Block::genesis()));
        assert_eq!(orderer.blocks_cut_on(ChannelId(0)), 1);
        assert_eq!(orderer.blocks_cut_on(ChannelId(1)), 1);
        assert_eq!(orderer.blocks_cut(), 2, "totals sum over channels");
        assert_eq!(orderer.chain_head_on(ChannelId(0)), 1);

        // Chains stay linked per channel across further cuts.
        orderer.submit_on(ChannelId(1), tx(5));
        let b2 = orderer.submit_on(ChannelId(1), tx(6)).blocks.pop().unwrap();
        assert_eq!(b2.number(), 2);
        assert_eq!(b2.header.prev_hash, b1.hash());
    }

    #[test]
    fn batch_epochs_and_timeouts_are_per_channel() {
        let mut orderer = service(10);
        orderer.add_channel(ChannelId(1), Block::genesis().hash(), 1);
        let e0 = orderer.submit_on(ChannelId(0), tx(1)).arm_timer.unwrap();
        let e1 = orderer.submit_on(ChannelId(1), tx(2)).arm_timer.unwrap();
        assert_eq!((e0, e1), (0, 0), "both channels start a fresh batch");
        // Channel 0's timeout must not cut channel 1's pending batch.
        let cut = orderer.on_batch_timeout_on(ChannelId(0), e0).unwrap();
        assert_eq!(cut.txs.len(), 1);
        assert_eq!(orderer.pending_count_on(ChannelId(1)), 1);
        assert_eq!(orderer.batch_epoch_on(ChannelId(0)), 1);
        assert_eq!(orderer.batch_epoch_on(ChannelId(1)), 0);
        let cut = orderer.on_batch_timeout_on(ChannelId(1), e1).unwrap();
        assert_eq!(cut.number(), 1);
    }

    #[test]
    #[should_panic(expected = "already served")]
    fn registering_a_channel_twice_is_rejected() {
        let mut orderer = service(2);
        orderer.add_channel(ChannelId::DEFAULT, Block::genesis().hash(), 1);
    }

    #[test]
    #[should_panic(expected = "not served")]
    fn submitting_to_an_unregistered_channel_is_a_bug() {
        let mut orderer = service(2);
        orderer.submit_on(ChannelId(9), tx(1));
    }

    #[test]
    fn numbering_continues_across_timeout_and_count_cuts() {
        let mut orderer = service(2);
        orderer.submit(tx(1));
        let b1 = orderer.on_batch_timeout(orderer.batch_epoch()).unwrap();
        assert_eq!(b1.number(), 1);
        orderer.submit(tx(2));
        let b2 = orderer.submit(tx(3)).blocks.pop().unwrap();
        assert_eq!(b2.number(), 2);
        assert!(b2.header.prev_hash == b1.hash());
    }
}
