//! The ordering service: consensus pipeline model and block assembly.
//!
//! The paper's testbed ran a crash-fault-tolerant ordering service of four
//! Kafka brokers and three ZooKeeper nodes. Its internals never vary in the
//! evaluation — what matters to the gossip study is (a) Fabric's block
//! cutting behaviour and (b) the end-to-end delay a proposal experiences
//! between submission and the cut block leaving the orderer. This module
//! implements (a) exactly (see [`crate::cutter`]) and models (b) with a
//! sampled [`LatencyModel`] (`consensus_delay`), the calibration knob
//! documented in `DESIGN.md` and `EXPERIMENTS.md`.
//!
//! The service is a sans-io state machine: it never sleeps or sends — the
//! embedding (simulation or threads) arms batch timers when told to and
//! delivers cut blocks after the sampled consensus delay.

use desim::{Duration, LatencyModel};
use serde::{Deserialize, Serialize};

use fabric_types::block::Block;
use fabric_types::crypto::Hash256;
use fabric_types::transaction::Transaction;

use crate::cutter::{BatchConfig, BlockCutter};

/// Ordering-service parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrdererConfig {
    /// Block cutting parameters.
    pub batch: BatchConfig,
    /// End-to-end consensus pipeline delay per block: Kafka produce,
    /// replication, consume and block signing. Sampled once per cut block.
    pub consensus_delay: LatencyModel,
}

impl OrdererConfig {
    /// A Kafka-flavoured pipeline: mean delay a few hundred milliseconds,
    /// with jitter, roughly matching published Fabric v1.x ordering
    /// latencies under moderate load.
    pub fn kafka(batch: BatchConfig) -> Self {
        OrdererConfig {
            batch,
            consensus_delay: LatencyModel::Lan {
                base: Duration::from_millis(120),
                jitter: Duration::from_millis(80),
                spike_prob: 0.01,
                spike_mult: 5,
            },
        }
    }

    /// An idealized instant pipeline, for protocol-logic tests.
    pub fn instant(batch: BatchConfig) -> Self {
        OrdererConfig {
            batch,
            consensus_delay: LatencyModel::ZERO,
        }
    }
}

/// What a submission produced.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// Blocks cut by this submission, in order (zero, one or two).
    pub blocks: Vec<Block>,
    /// When `Some(epoch)`, a fresh batch started pending and the embedding
    /// must arm the batch timer for that epoch.
    pub arm_timer: Option<u64>,
}

/// The ordering service state machine.
///
/// ```
/// use fabric_orderer::{BatchConfig, OrdererConfig, OrderingService};
/// use fabric_types::block::Block;
/// use fabric_types::ids::{ClientId, TxId};
/// use fabric_types::rwset::RwSet;
/// use fabric_types::transaction::Transaction;
///
/// let genesis = Block::genesis();
/// let mut orderer = OrderingService::new(
///     OrdererConfig::instant(BatchConfig::paper_dissemination()),
///     genesis.hash(),
///     1,
/// );
/// let mut outcome = None;
/// for i in 0..50 {
///     let tx = Transaction::new(TxId(i), "cc", ClientId(0), RwSet::default());
///     outcome = Some(orderer.submit(tx));
/// }
/// let blocks = outcome.unwrap().blocks;
/// assert_eq!(blocks.len(), 1);
/// assert!(blocks[0].follows(&genesis));
/// ```
#[derive(Debug)]
pub struct OrderingService {
    config: OrdererConfig,
    cutter: BlockCutter,
    next_number: u64,
    prev_hash: Hash256,
    /// Bumped every time the pending batch empties; stale batch timers
    /// compare epochs instead of being cancelled.
    batch_epoch: u64,
    blocks_cut: u64,
}

impl OrderingService {
    /// Creates the service. `prev_hash` is the hash of the last block
    /// already on the chain (usually genesis), `next_number` the height the
    /// first cut block will carry.
    pub fn new(config: OrdererConfig, prev_hash: Hash256, next_number: u64) -> Self {
        let cutter = BlockCutter::new(config.batch.clone());
        OrderingService {
            config,
            cutter,
            next_number,
            prev_hash,
            batch_epoch: 0,
            blocks_cut: 0,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &OrdererConfig {
        &self.config
    }

    /// The batch timeout the embedding should use when arming timers.
    pub fn batch_timeout(&self) -> Duration {
        self.config.batch.batch_timeout
    }

    /// Current batch epoch (see [`SubmitOutcome::arm_timer`]).
    pub fn batch_epoch(&self) -> u64 {
        self.batch_epoch
    }

    /// Number of blocks cut so far.
    pub fn blocks_cut(&self) -> u64 {
        self.blocks_cut
    }

    /// Transactions waiting in the pending batch.
    pub fn pending_count(&self) -> usize {
        self.cutter.pending_count()
    }

    /// Accepts a transaction proposal in arrival order. Fabric orderers do
    /// not validate proposals — neither does this one.
    pub fn submit(&mut self, tx: Transaction) -> SubmitOutcome {
        let (batches, started_fresh) = self.cutter.ordered(tx);
        let blocks: Vec<Block> = batches.into_iter().map(|b| self.assemble(b)).collect();
        let arm_timer = started_fresh.then_some(self.batch_epoch);
        SubmitOutcome { blocks, arm_timer }
    }

    /// Batch timer expiry for `epoch`. Returns the cut block, or `None`
    /// when the timer was stale (the batch it guarded was already cut) or
    /// nothing was pending.
    pub fn on_batch_timeout(&mut self, epoch: u64) -> Option<Block> {
        if epoch != self.batch_epoch {
            return None;
        }
        let batch = self.cutter.cut();
        if batch.is_empty() {
            return None;
        }
        Some(self.assemble(batch))
    }

    fn assemble(&mut self, txs: Vec<Transaction>) -> Block {
        let block = Block::new(self.next_number, self.prev_hash, txs);
        self.prev_hash = block.hash();
        self.next_number += 1;
        self.batch_epoch += 1;
        self.blocks_cut += 1;
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::block::verify_chain;
    use fabric_types::block::BlockRef;
    use fabric_types::ids::{ClientId, TxId};
    use fabric_types::rwset::RwSet;

    fn tx(id: u64) -> Transaction {
        Transaction::new(TxId(id), "cc", ClientId(0), RwSet::default())
    }

    fn service(max_count: usize) -> OrderingService {
        let batch = BatchConfig {
            max_message_count: max_count,
            preferred_max_bytes: 1 << 20,
            batch_timeout: Duration::from_secs(2),
        };
        OrderingService::new(OrdererConfig::instant(batch), Block::genesis().hash(), 1)
    }

    #[test]
    fn blocks_chain_in_order() {
        let mut orderer = service(2);
        let mut blocks = vec![BlockRef::new(Block::genesis())];
        for i in 0..10 {
            for b in orderer.submit(tx(i)).blocks {
                blocks.push(BlockRef::new(b));
            }
        }
        assert_eq!(blocks.len(), 6); // genesis + 5 blocks of 2
        assert_eq!(verify_chain(&blocks), Ok(()));
        assert_eq!(orderer.blocks_cut(), 5);
    }

    #[test]
    fn first_tx_requests_timer_with_epoch() {
        let mut orderer = service(10);
        let outcome = orderer.submit(tx(1));
        assert_eq!(outcome.arm_timer, Some(0));
        let outcome = orderer.submit(tx(2));
        assert_eq!(outcome.arm_timer, None);
    }

    #[test]
    fn timeout_cuts_pending_batch() {
        let mut orderer = service(10);
        let epoch = orderer.submit(tx(1)).arm_timer.unwrap();
        orderer.submit(tx(2));
        let block = orderer.on_batch_timeout(epoch).unwrap();
        assert_eq!(block.txs.len(), 2);
        assert_eq!(block.number(), 1);
        assert_eq!(orderer.pending_count(), 0);
    }

    #[test]
    fn stale_timeout_is_ignored() {
        let mut orderer = service(2);
        let epoch = orderer.submit(tx(1)).arm_timer.unwrap();
        // Fills the batch: cut happens by count, epoch advances.
        let cut = orderer.submit(tx(2));
        assert_eq!(cut.blocks.len(), 1);
        // New batch starts pending; the old timer must not cut it.
        orderer.submit(tx(3));
        assert_eq!(orderer.on_batch_timeout(epoch), None);
        assert_eq!(orderer.pending_count(), 1);
    }

    #[test]
    fn empty_timeout_returns_none() {
        let mut orderer = service(10);
        assert_eq!(orderer.on_batch_timeout(0), None);
    }

    #[test]
    fn numbering_continues_across_timeout_and_count_cuts() {
        let mut orderer = service(2);
        orderer.submit(tx(1));
        let b1 = orderer.on_batch_timeout(orderer.batch_epoch()).unwrap();
        assert_eq!(b1.number(), 1);
        orderer.submit(tx(2));
        let b2 = orderer.submit(tx(3)).blocks.pop().unwrap();
        assert_eq!(b2.number(), 2);
        assert!(b2.header.prev_hash == b1.hash());
    }
}
