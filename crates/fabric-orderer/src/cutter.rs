//! Fabric's block cutter: batches proposals by count, size and timeout.
//!
//! Semantics follow `orderer/common/blockcutter` of Fabric v1.x:
//!
//! * a proposal larger than `preferred_max_bytes` first flushes the pending
//!   batch, then forms a batch of its own;
//! * a proposal that would push the pending batch past
//!   `preferred_max_bytes` flushes the pending batch and starts a new one;
//! * reaching `max_message_count` flushes immediately;
//! * otherwise a timer cuts whatever is pending after `batch_timeout`.

use desim::Duration;
use serde::{Deserialize, Serialize};

use fabric_types::transaction::Transaction;

/// Batching parameters (Fabric's `BatchSize` / `BatchTimeout`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum number of transactions per block.
    pub max_message_count: usize,
    /// Soft byte ceiling for a block's transaction payload.
    pub preferred_max_bytes: usize,
    /// Time after which a non-empty pending batch is cut regardless of size.
    pub batch_timeout: Duration,
}

impl BatchConfig {
    /// The configuration used by the paper's dissemination experiments:
    /// 50 transactions per block, 2 s timeout. `preferred_max_bytes`
    /// mirrors Fabric v1.2's default of 512 KB.
    pub fn paper_dissemination() -> Self {
        BatchConfig {
            max_message_count: 50,
            preferred_max_bytes: 512 * 1024,
            batch_timeout: Duration::from_secs(2),
        }
    }

    /// The Table II configuration: 50-message cap (never reached at
    /// 5 tx/s) with a variable block period.
    pub fn paper_conflicts(period: Duration) -> Self {
        BatchConfig {
            max_message_count: 50,
            preferred_max_bytes: 512 * 1024,
            batch_timeout: period,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_message_count == 0 {
            return Err("max_message_count must be positive".into());
        }
        if self.preferred_max_bytes == 0 {
            return Err("preferred_max_bytes must be positive".into());
        }
        if self.batch_timeout.is_zero() {
            return Err("batch_timeout must be positive".into());
        }
        Ok(())
    }
}

/// Stateful batcher of ordered transactions.
#[derive(Debug, Clone)]
pub struct BlockCutter {
    config: BatchConfig,
    pending: Vec<Transaction>,
    pending_bytes: usize,
}

impl BlockCutter {
    /// Creates a cutter with the given batching parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: BatchConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid batch config: {e}");
        }
        BlockCutter {
            config,
            pending: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// The batching parameters.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Number of transactions waiting for a cut.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Accepts the next ordered transaction. Returns the batches cut *now*
    /// (zero, one or two) and whether a fresh batch just started pending —
    /// the signal to arm the batch timer.
    pub fn ordered(&mut self, tx: Transaction) -> (Vec<Vec<Transaction>>, bool) {
        let mut batches = Vec::new();
        let size = tx.wire_size();

        if size > self.config.preferred_max_bytes {
            // Oversized message: flush what is pending, then isolate it.
            if !self.pending.is_empty() {
                batches.push(self.take_pending());
            }
            batches.push(vec![tx]);
            return (batches, false);
        }

        if !self.pending.is_empty() && self.pending_bytes + size > self.config.preferred_max_bytes {
            batches.push(self.take_pending());
        }

        let started_fresh = self.pending.is_empty();
        self.pending.push(tx);
        self.pending_bytes += size;

        if self.pending.len() >= self.config.max_message_count {
            batches.push(self.take_pending());
            return (batches, false);
        }
        (batches, started_fresh)
    }

    /// Cuts the pending batch (timer expiry). Empty when nothing pends.
    pub fn cut(&mut self) -> Vec<Transaction> {
        self.take_pending()
    }

    fn take_pending(&mut self) -> Vec<Transaction> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::ids::{ClientId, TxId};
    use fabric_types::rwset::RwSet;

    fn config(count: usize, bytes: usize) -> BatchConfig {
        BatchConfig {
            max_message_count: count,
            preferred_max_bytes: bytes,
            batch_timeout: Duration::from_secs(2),
        }
    }

    fn tx(id: u64, padding: u32) -> Transaction {
        Transaction::new(TxId(id), "cc", ClientId(0), RwSet::default()).with_padding(padding)
    }

    #[test]
    fn cut_by_message_count() {
        let mut cutter = BlockCutter::new(config(3, 1 << 20));
        let (b, timer1) = cutter.ordered(tx(1, 0));
        assert!(b.is_empty());
        assert!(timer1, "first tx of a batch arms the timer");
        let (b, timer2) = cutter.ordered(tx(2, 0));
        assert!(b.is_empty());
        assert!(!timer2);
        let (b, _) = cutter.ordered(tx(3, 0));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].len(), 3);
        assert_eq!(cutter.pending_count(), 0);
    }

    #[test]
    fn cut_by_preferred_bytes() {
        // Each padded tx is ~1100 bytes; ceiling 2000 forces a cut on the 2nd.
        let mut cutter = BlockCutter::new(config(100, 2000));
        cutter.ordered(tx(1, 1000));
        let (b, fresh) = cutter.ordered(tx(2, 1000));
        assert_eq!(b.len(), 1, "pending batch flushed before the new tx");
        assert_eq!(b[0].len(), 1);
        assert_eq!(cutter.pending_count(), 1);
        assert!(fresh, "the new tx starts a fresh pending batch");
    }

    #[test]
    fn oversized_tx_gets_own_batch() {
        let mut cutter = BlockCutter::new(config(100, 2000));
        cutter.ordered(tx(1, 100));
        let (b, fresh) = cutter.ordered(tx(2, 50_000));
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].len(), 1, "pending flushed first");
        assert_eq!(b[1].len(), 1, "oversized isolated");
        assert!(!fresh);
        assert_eq!(cutter.pending_count(), 0);
    }

    #[test]
    fn timeout_cut_returns_pending() {
        let mut cutter = BlockCutter::new(config(100, 1 << 20));
        assert!(cutter.cut().is_empty());
        cutter.ordered(tx(1, 0));
        cutter.ordered(tx(2, 0));
        let batch = cutter.cut();
        assert_eq!(batch.len(), 2);
        assert!(cutter.cut().is_empty());
    }

    #[test]
    fn paper_configs_are_valid() {
        assert!(BatchConfig::paper_dissemination().validate().is_ok());
        assert!(BatchConfig::paper_conflicts(Duration::from_millis(750))
            .validate()
            .is_ok());
        assert_eq!(BatchConfig::paper_dissemination().max_message_count, 50);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(config(0, 1).validate().is_err());
        assert!(config(1, 0).validate().is_err());
        let mut c = config(1, 1);
        c.batch_timeout = Duration::ZERO;
        assert!(c.validate().is_err());
    }
}
