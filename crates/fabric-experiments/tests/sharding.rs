//! Shard-count invariance of the cross-core channel runner.
//!
//! The sharding contract (`shard.rs` module docs): the merged
//! `(time, group, seq, event)` stream and every per-channel metric are pure
//! functions of the configuration and seed, **independent of how many
//! worker shards execute the groups**. The proptest below pins that over
//! random multichannel topologies — random overlap structure, so group
//! counts range from one component to one per channel — in both RNG modes.
//!
//! The golden pin at the bottom freezes the `large_smoke` preset (the
//! smoke-scale slice of the `large` bench preset) to exact event and block
//! counts, the same way `determinism.rs` pins the discovery trace: any
//! engine or runner change that perturbs the sharded schedule fails loudly
//! here instead of sliding into `BENCH_dissemination.json`.

use desim::{Duration, RngMode};
use fabric_experiments::shard::{run_sharded, ShardChannel, ShardedConfig, ShardedResult};
use fabric_types::ids::PeerId;
use proptest::prelude::*;

/// Global peer-id space for the random topologies.
const PEERS: usize = 30;

/// A random topology: channels as membership windows `[base, base+width)`
/// over the peer space, plus a shard count and an RNG-mode switch.
/// Windows overlap (or don't) arbitrarily, so `plan_groups` sees
/// everything from a single component to fully disjoint channels.
fn topologies() -> impl Strategy<Value = (Vec<(u32, u32)>, usize, bool)> {
    (
        proptest::collection::vec((0u32..24, 4u32..9), 1..5),
        2usize..5,
        proptest::any::<bool>(),
    )
}

fn config_of(windows: &[(u32, u32)], shards: usize, streams: bool) -> ShardedConfig {
    let channels = windows
        .iter()
        .map(|&(base, width)| {
            let hi = (base + width).min(PEERS as u32);
            ShardChannel {
                members: (base..hi).map(PeerId).collect(),
                txs: 12,
                rate_per_sec: 50.0 / 1.5,
                tx_padding: 3_100,
            }
        })
        .collect();
    let mut cfg = ShardedConfig::clustered(1, PEERS, 12);
    cfg.channels = channels;
    cfg.rng_mode = if streams {
        RngMode::Streams
    } else {
        RngMode::Unified
    };
    cfg.shards = shards;
    cfg.record_trace = true;
    cfg.idle_tail = Duration::from_secs(1);
    cfg.seed = 0xC0FFEE;
    cfg
}

/// Per-channel observables: (channel, group, blocks, completeness bits,
/// p50 ns, p999 ns).
type ChannelPrint = (usize, usize, u64, u64, u64, u64);

/// Everything observable about a run, flattened for exact comparison.
fn fingerprint(res: &ShardedResult) -> (u64, u64, u64, Vec<ChannelPrint>) {
    let channels = res
        .channels
        .iter()
        .map(|c| {
            (
                c.channel,
                c.group,
                c.blocks,
                c.completeness.to_bits(),
                c.p50.as_nanos(),
                c.p999.as_nanos(),
            )
        })
        .collect();
    (res.events, res.blocks, res.completeness.to_bits(), channels)
}

proptest! {
    /// `shards = 1` and `shards = N` produce the identical merged event
    /// stream and identical per-channel metrics on arbitrary topologies.
    #[test]
    fn shard_count_is_unobservable((windows, shards, streams) in topologies()) {
        let mut serial = config_of(&windows, 1, streams);
        serial.shards = 1;
        let sharded = config_of(&windows, shards, streams);

        let a = run_sharded(&serial);
        let b = run_sharded(&sharded);

        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        prop_assert_eq!(ta.len(), tb.len(), "merged stream lengths diverged");
        prop_assert_eq!(ta, tb);
        prop_assert!(b.events > 0, "runs must not be vacuous");
    }
}

/// The merged stream is strictly ordered by its `(time, group, seq)` key —
/// the k-way merge produces a total order with no duplicate keys.
#[test]
fn merged_stream_is_strictly_ordered() {
    let mut cfg = ShardedConfig::clustered(3, 9, 30);
    cfg.record_trace = true;
    cfg.shards = 2;
    let trace = run_sharded(&cfg).trace.unwrap();
    assert!(trace.len() > 100, "trace must not be vacuous");
    for pair in trace.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(
            (a.at, a.group, a.seq) < (b.at, b.group, b.seq),
            "merge key not strictly increasing: {a:?} then {b:?}"
        );
    }
}

/// Golden pin for the `large_smoke` preset: exact event and block counts
/// and full completeness, frozen against engine drift (compare
/// `discovery_golden_trace_pins_events_and_byte_totals`).
#[test]
fn large_smoke_preset_golden_pin() {
    let res = run_sharded(&ShardedConfig::large_smoke());
    assert_eq!(res.events, 25_238, "sharded event count shifted");
    assert_eq!(res.blocks, 24, "block count shifted");
    assert_eq!(res.groups, 6, "component structure shifted");
    assert_eq!(res.channels.len(), 12);
    assert!(
        (res.completeness - 1.0).abs() < f64::EPSILON,
        "large_smoke must stay fully complete, got {}",
        res.completeness
    );
    for c in &res.channels {
        assert_eq!(c.blocks, 2, "channel {} block count shifted", c.channel);
        assert!(c.p50 > Duration::ZERO && c.p999 >= c.p50);
    }
}
