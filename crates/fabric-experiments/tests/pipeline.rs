//! Direct tests of the simulated Fabric pipeline (`FabricNet`): the
//! propose→endorse→submit→order→deliver flow, observed step by step.

use desim::{Duration, NetworkConfig, Simulation, Time};
use fabric_experiments::net::{FabricNet, NetParams};
use fabric_gossip::config::GossipConfig;
use fabric_orderer::cutter::BatchConfig;
use fabric_orderer::service::OrdererConfig;
use fabric_workload::schedule::{increment_schedule, IncrementWorkload};

fn params(peers: usize, max_count: usize, timeout: Duration) -> NetParams {
    let batch = BatchConfig {
        max_message_count: max_count,
        preferred_max_bytes: 1 << 20,
        batch_timeout: timeout,
    };
    NetParams::new(
        peers,
        GossipConfig::enhanced_f4(),
        OrdererConfig::instant(batch),
    )
}

fn increment_sim(
    peers: usize,
    keys: usize,
    rounds: usize,
    max_count: usize,
    timeout: Duration,
) -> Simulation<FabricNet> {
    let workload = IncrementWorkload {
        keys,
        rounds,
        rate_per_sec: 10.0,
    };
    let schedule = increment_schedule(&workload, 42);
    let p = params(peers, max_count, timeout);
    let network = NetworkConfig::lan(FabricNet::node_count(&p));
    let net = FabricNet::new(p, schedule);
    let mut sim = Simulation::new(net, network, 9);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim
}

#[test]
fn client_issues_the_whole_schedule() {
    let mut sim = increment_sim(10, 5, 4, 10, Duration::from_millis(500));
    sim.run_until(Time::from_secs(30));
    let net = sim.protocol();
    assert_eq!(net.issued(), 20);
    assert_eq!(net.endorse_failures(), 0);
}

#[test]
fn blocks_cut_by_count_and_timeout_carry_all_transactions() {
    let mut sim = increment_sim(10, 6, 5, 4, Duration::from_secs(5));
    sim.run_until(Time::from_secs(60));
    let net = sim.protocol();
    // 30 transactions in blocks of ≤4: at least 8 blocks.
    assert!(net.blocks_cut() >= 8, "got {}", net.blocks_cut());
    let endorser = net.ledger(1).expect("endorser ledger");
    let stats = endorser.stats();
    assert_eq!(stats.valid_txs + stats.mvcc_conflicts, 30);
    assert_eq!(stats.endorsement_failures, 0);
}

#[test]
fn endorser_ledger_matches_gossip_delivery() {
    let mut sim = increment_sim(8, 4, 6, 10, Duration::from_millis(400));
    sim.run_until(Time::from_secs(40));
    let net = sim.protocol();
    let endorser = net.ledger(1).unwrap();
    // Ledger height = genesis + all cut blocks once validation drained.
    assert_eq!(endorser.height(), net.blocks_cut() + 1);
    // And the gossip store of a bystander peer agrees.
    assert_eq!(net.gossip(5).height(), net.blocks_cut() + 1);
}

#[test]
fn validation_delay_defers_commit_but_not_reception() {
    // One block of 5 transactions at 50 ms each: the endorser receives the
    // block promptly but commits only ~250 ms later.
    let workload = IncrementWorkload {
        keys: 5,
        rounds: 1,
        rate_per_sec: 100.0,
    };
    let schedule = increment_schedule(&workload, 1);
    let mut p = params(6, 5, Duration::from_secs(5));
    p.validation_per_tx = Duration::from_millis(50);
    let network = NetworkConfig::ideal(FabricNet::node_count(&p));
    let net = FabricNet::new(p, schedule);
    let mut sim = Simulation::new(net, network, 3);
    sim.with_ctx(|net, ctx| net.start(ctx));

    // After the block reaches peers but before validation finishes, the
    // store has it and the ledger does not.
    sim.run_until(Time::from_millis(150));
    let net = sim.protocol();
    assert_eq!(net.blocks_cut(), 1);
    assert_eq!(net.gossip(1).height(), 2, "content received");
    assert_eq!(
        net.ledger(1).unwrap().height(),
        1,
        "commit still validating"
    );

    sim.run_until(Time::from_secs(2));
    assert_eq!(
        sim.protocol().ledger(1).unwrap().height(),
        2,
        "commit landed"
    );
}

#[test]
fn per_kind_accounting_covers_the_whole_pipeline() {
    let mut sim = increment_sim(10, 5, 4, 10, Duration::from_millis(500));
    sim.run_until(Time::from_secs(30));
    let m = sim.metrics();
    for kind in ["propose", "endorsed", "submit", "orderer-deliver", "block"] {
        assert!(
            m.kind(kind).map(|k| k.count).unwrap_or(0) > 0,
            "expected traffic of kind {kind}"
        );
    }
    assert_eq!(m.kind("propose").unwrap().count, 20);
    assert_eq!(m.kind("endorsed").unwrap().count, 20);
    assert_eq!(m.kind("submit").unwrap().count, 20);
}
