//! End-to-end determinism of the zero-copy dissemination pipeline.
//!
//! The `BlockRef` payload refactor (one shared allocation per block, cached
//! wire size) and the parallel experiment runner must not move a single
//! byte of any metric: same seed ⇒ identical latency CDFs, bandwidth
//! series, per-kind byte counts and per-peer duplicate accounting, whether
//! cells run serially or fanned out across cores.
//!
//! The discovery **golden trace** at the bottom goes further: a fixed-seed
//! two-channel protocol-discovery churn run is pinned to exact event
//! counts and discovery-byte totals, so any future engine change that
//! perturbs discovery traffic — an extra heartbeat, a differently-sized
//! digest, a reordered RNG draw — fails loudly instead of sliding into
//! the baseline.

use desim::{Duration, NetworkConfig, Simulation};
use fabric_experiments::dissemination::{run_dissemination, DisseminationConfig};
use fabric_experiments::net::{FabricNet, NetParams};
use fabric_gossip::config::GossipConfig;
use fabric_orderer::cutter::BatchConfig;
use fabric_orderer::service::OrdererConfig;
use fabric_types::block::BlockRef;
use fabric_types::ids::PeerId;
use fabric_workload::schedule::{payload_schedule, PayloadWorkload};

fn quick(gossip: GossipConfig, seed: u64) -> DisseminationConfig {
    let mut cfg = DisseminationConfig::fig07_09_enhanced_f4().scaled(400);
    cfg.gossip = gossip;
    cfg.peers = 25;
    cfg.network = NetworkConfig::lan(27);
    cfg.seed = seed;
    cfg
}

/// Every metric of a dissemination run, flattened for exact comparison:
/// (events, latency samples, leader MB/s, regular MB/s, per-kind stats).
type Fingerprint = (u64, Vec<u64>, Vec<f64>, Vec<f64>, Vec<(String, u64, u64)>);

fn fingerprint(cfg: &DisseminationConfig) -> Fingerprint {
    let res = run_dissemination(cfg);
    let latency_ns: Vec<u64> = res
        .latency
        .all_peer_cdfs()
        .iter()
        .flat_map(|cdf| cdf.samples().iter().map(|d| d.as_nanos()))
        .collect();
    let kinds: Vec<(String, u64, u64)> = res
        .kinds
        .iter()
        .map(|(k, s)| (k.clone(), s.count, s.bytes))
        .collect();
    (
        res.events,
        latency_ns,
        res.bandwidth.leader.mbps.clone(),
        res.bandwidth.regular.mbps.clone(),
        kinds,
    )
}

#[test]
fn same_seed_runs_have_byte_identical_metrics() {
    for gossip in [GossipConfig::enhanced_f4(), GossipConfig::original_fabric()] {
        let cfg = quick(gossip, 11);
        let a = fingerprint(&cfg);
        let b = fingerprint(&cfg);
        assert_eq!(a.0, b.0, "event counts diverged");
        assert_eq!(a.1, b.1, "latency CDF samples diverged");
        assert_eq!(a.2, b.2, "leader bandwidth series diverged");
        assert_eq!(a.3, b.3, "regular bandwidth series diverged");
        assert_eq!(a.4, b.4, "per-kind byte counts diverged");
        assert!(
            !a.1.is_empty() && !a.4.is_empty(),
            "fingerprint must not be vacuous"
        );
    }
}

#[test]
fn parallel_batch_is_byte_identical_to_serial_cells() {
    let cells = vec![
        quick(GossipConfig::enhanced_f4(), 1),
        quick(GossipConfig::enhanced_f4(), 2),
        quick(GossipConfig::original_fabric(), 3),
        quick(GossipConfig::enhanced_f2(), 4),
    ];
    // Force the scoped-thread path (run_batch would fall back to the
    // serial loop on a single-core machine, leaving the concurrency
    // machinery unexercised).
    let parallel = desim::run_batch_with_workers(cells.clone(), 4, |cfg| run_dissemination(&cfg));
    for (cfg, par) in cells.iter().zip(&parallel) {
        let serial = run_dissemination(cfg);
        assert_eq!(serial.events, par.events, "seed {}", cfg.seed);
        assert_eq!(serial.blocks, par.blocks);
        assert_eq!(serial.bandwidth.leader.mbps, par.bandwidth.leader.mbps);
        assert_eq!(serial.bandwidth.regular.mbps, par.bandwidth.regular.mbps);
        assert_eq!(serial.kinds, par.kinds);
        let serial_lat: Vec<Vec<desim::Duration>> = serial
            .latency
            .all_peer_cdfs()
            .iter()
            .map(|c| c.samples().to_vec())
            .collect();
        let par_lat: Vec<Vec<desim::Duration>> = par
            .latency
            .all_peer_cdfs()
            .iter()
            .map(|c| c.samples().to_vec())
            .collect();
        assert_eq!(
            serial_lat, par_lat,
            "latency matrix diverged for seed {}",
            cfg.seed
        );
    }
}

/// Drives a FabricNet simulation directly so the per-peer gossip stats —
/// which `DisseminationResult` does not expose — can be inspected.
fn drive(gossip: GossipConfig, seed: u64, peers: usize, txs: usize) -> FabricNet {
    let workload = PayloadWorkload::shortened(txs);
    let schedule = payload_schedule(&workload);
    let last_issue = schedule.last().map(|s| s.at).unwrap_or(desim::Time::ZERO);
    let mut params = NetParams::new(
        peers,
        gossip,
        OrdererConfig::kafka(BatchConfig::paper_dissemination()),
    );
    params.validation_per_tx = Duration::from_micros(300);
    params.endorsers = vec![PeerId(1)];
    let mut network = NetworkConfig::lan(FabricNet::node_count(&params));
    network.nodes = FabricNet::node_count(&params);
    let net = FabricNet::new(params, schedule);
    let mut sim = Simulation::new(net, network, seed);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim.run_until(last_issue + Duration::from_secs(40));
    sim.into_protocol()
}

#[test]
fn duplicate_block_accounting_is_unchanged_across_runs() {
    // Original Fabric gossip re-pushes aggressively (fout = 3 infect-and-die
    // plus a pull engine), so duplicate receptions are guaranteed — the
    // counters must be exercised AND reproducible.
    let a = drive(GossipConfig::original_fabric(), 5, 20, 300);
    let b = drive(GossipConfig::original_fabric(), 5, 20, 300);
    let dup_a: Vec<u64> = (0..20)
        .map(|i| a.gossip(i).stats().duplicate_blocks)
        .collect();
    let dup_b: Vec<u64> = (0..20)
        .map(|i| b.gossip(i).stats().duplicate_blocks)
        .collect();
    assert_eq!(
        dup_a, dup_b,
        "duplicate_blocks accounting must be deterministic"
    );
    assert!(
        dup_a.iter().sum::<u64>() > 0,
        "original gossip at this scale must produce duplicate receptions"
    );
    // The remaining per-peer counters must agree too.
    for i in 0..20 {
        let (sa, sb) = (a.gossip(i).stats(), b.gossip(i).stats());
        assert_eq!(sa.blocks_sent, sb.blocks_sent);
        assert_eq!(sa.digests_received, sb.digests_received);
        assert_eq!(sa.first_seen, sb.first_seen);
    }
}

/// The discovery golden trace: exact numbers from the fixed-seed
/// two-channel protocol-discovery churn run (16 peers, side channel of 8,
/// one runtime joiner, the side leader leaving, seed 42).
///
/// If this test fails after an intentional protocol change, re-derive the
/// constants from the new run and update them **in the same commit** as
/// the change — the point is that discovery traffic never shifts
/// silently.
#[test]
fn discovery_golden_trace_pins_events_and_byte_totals() {
    use fabric_experiments::churn::{run_churn, ChurnConfig};
    use fabric_types::ids::ChannelId;

    let mut cfg = ChurnConfig::standard(16, 8, 20).with_protocol_discovery();
    cfg.network = NetworkConfig::lan(18);
    cfg.seed = 42;
    let res = run_churn(&cfg);

    assert_eq!(res.events, 137_405, "simulation event count shifted");

    let discovery_bytes = |ch: ChannelId| -> (u64, u64, u64) {
        let mut alive = 0;
        let mut req = 0;
        let mut resp = 0;
        for i in 0..16 {
            if let Some(s) = res.net.gossip(i).stats_on(ch) {
                alive += s.bytes_of_kind("alive-msg");
                req += s.bytes_of_kind("membership-request");
                resp += s.bytes_of_kind("membership-response");
            }
        }
        (alive, req, resp)
    };
    // Main channel: all 16 peers heartbeat and anti-entropy for the whole
    // run; request and response totals match exactly (every request is
    // answered, and both carry the same full-view payload on a channel
    // with no churn).
    assert_eq!(
        discovery_bytes(ChannelId(0)),
        (7_443_440, 2_283_576, 2_283_576)
    );
    // Side channel: fewer members, and tombstone probes to the departed
    // leader go unanswered — responses total less than requests.
    assert_eq!(
        discovery_bytes(ChannelId(1)),
        (3_656_648, 1_118_976, 651_912)
    );

    // The trace stays meaningful: both chains advanced and the leader
    // leave handed off exactly once.
    assert_eq!(res.channels[0].blocks, 21);
    assert_eq!(res.channels[1].blocks, 21);
    assert_eq!(res.channels[0].handoffs, 0);
    assert_eq!(res.channels[1].handoffs, 1);
}

/// The snapshot subsystem ships default-off, and off means *byte*-off:
/// every preset's gossip config leaves it disabled, and a disabled run's
/// StateInfo carries no checkpoint — zero extra wire bytes — so the
/// golden trace above (and every other pinned trace) is provably
/// untouched by the snapshot code paths.
#[test]
fn snapshots_default_off_cannot_perturb_the_golden_traces() {
    use desim::Message as _;
    use fabric_experiments::churn::ChurnConfig;
    use fabric_gossip::messages::GossipMsg;
    use fabric_types::snapshot::Checkpoint;

    for cfg in [
        GossipConfig::enhanced_f4(),
        GossipConfig::enhanced_f2(),
        GossipConfig::original_fabric(),
    ] {
        assert!(!cfg.snapshot.enabled, "snapshot bootstrap must ship off");
        assert!(!cfg.snapshot.chunked, "chunked transfer must ship off");
        assert!(!cfg.snapshot.delta, "delta snapshots must ship off");
    }
    // Master-switch semantics, observed on a full run: with
    // `snapshot.enabled` false, flipping every chunking/delta knob moves
    // nothing — not one event, latency sample, or per-kind byte count.
    let stock = quick(GossipConfig::enhanced_f4(), 11);
    let mut knobs_twiddled = stock.clone();
    knobs_twiddled.gossip.snapshot.chunked = true;
    knobs_twiddled.gossip.snapshot.chunk_size = 512;
    knobs_twiddled.gossip.snapshot.delta = true;
    knobs_twiddled.gossip.snapshot.full_every = 7;
    assert!(!knobs_twiddled.gossip.snapshot.enabled);
    assert_eq!(
        fingerprint(&stock),
        fingerprint(&knobs_twiddled),
        "disabled snapshots must make chunk/delta knobs inert"
    );
    let golden = ChurnConfig::standard(16, 8, 20).with_protocol_discovery();
    assert!(
        !golden.gossip.snapshot.enabled,
        "the golden-trace churn preset must run with snapshots off"
    );
    // With snapshots off the recovery engine never advertises a
    // checkpoint, and an absent checkpoint costs nothing on the wire —
    // the default-off StateInfo format is byte-identical to the
    // pre-snapshot one.
    let bare = GossipMsg::StateInfo {
        height: 9,
        checkpoint: None,
    };
    let advertising = GossipMsg::StateInfo {
        height: 9,
        checkpoint: Some(Checkpoint {
            height: 8,
            state_hash: fabric_types::crypto::Hash256::ZERO,
        }),
    };
    assert_eq!(bare.wire_size() + Checkpoint::WIRE, advertising.wire_size());
}

#[test]
fn every_peer_shares_one_block_allocation() {
    // The zero-copy claim, observed directly: after a run, the same block
    // held by different peers' stores is the same `Arc` allocation — the
    // payload existed once per run, not once per hop or per peer.
    let net = drive(GossipConfig::enhanced_f4(), 7, 15, 200);
    let reference_height = net.gossip(0).height();
    assert!(
        reference_height > 1,
        "the run must have disseminated blocks"
    );
    for num in 1..reference_height {
        let first = net
            .gossip(0)
            .store()
            .get(num)
            .expect("peer 0 holds the chain");
        for peer in 1..15 {
            let other = net
                .gossip(peer)
                .store()
                .get(num)
                .unwrap_or_else(|| panic!("peer {peer} is missing block {num}"));
            assert!(
                BlockRef::ptr_eq(first, other),
                "peer {peer} holds a copied payload for block {num}"
            );
        }
    }
}
