//! Multi-channel dissemination scenarios: C channels × N peers with
//! overlapping memberships and skewed per-channel block rates.
//!
//! Fabric scopes gossip per channel, and channel count is a first-order
//! throughput and fairness lever (Wang & Chu's bottleneck analysis). This
//! module exercises exactly that axis: every peer joins the channels whose
//! membership window covers it, each channel elects its own leader and
//! runs its own push/pull/recovery instance, and the per-channel
//! [`LatencyRecorder`]s plus the per-channel byte breakdown in
//! [`fabric_gossip::PeerStats`] feed latency CDFs and Jain's fairness
//! **per channel** — the view peer-global totals cannot provide.
//!
//! Unlike [`crate::net::FabricNet`] (which drives the full
//! execute-order-validate pipeline on one channel), the orderer here is
//! abstracted to per-channel injection timers with configurable periods:
//! the paper's dissemination clock starts at leader reception anyway, and
//! skewed injection is the point of the scenario.

use desim::{Ctx, Duration, NetworkConfig, NodeId, Simulation, Time};
use fabric_gossip::config::GossipConfig;
use fabric_gossip::effects::Effects;
use fabric_gossip::messages::{ChannelMsg, GossipMsg, GossipTimer};
use fabric_gossip::peer::GossipPeer;
use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::ids::{ChannelId, PeerId};
use gossip_metrics::fairness::FairnessReport;
use gossip_metrics::latency::LatencyRecorder;

/// One channel of a multi-channel scenario.
#[derive(Debug, Clone)]
pub struct ChannelPlan {
    /// The peers joined to this channel (its single organization).
    pub members: Vec<PeerId>,
    /// Period between block injections at this channel's leader.
    pub block_interval: Duration,
    /// Blocks the channel's ordering service will inject.
    pub blocks: u64,
    /// Payload padding per block, in bytes.
    pub payload: u32,
}

/// Everything a multi-channel run needs.
#[derive(Debug, Clone)]
pub struct MultiChannelConfig {
    /// Total peers in the deployment (channels cover subsets of them).
    pub peers: usize,
    /// One plan per channel; channel `c` gets id `ChannelId(c)`.
    pub plans: Vec<ChannelPlan>,
    /// Gossip configuration shared by every channel instance.
    pub gossip: GossipConfig,
    /// Physical network model.
    pub network: NetworkConfig,
    /// Extra idle time after the last injection window.
    pub idle_tail: Duration,
    /// Simulation seed.
    pub seed: u64,
}

impl MultiChannelConfig {
    /// The standard skewed preset: `channels` overlapping membership
    /// windows over `peers` peers, with channel `c` publishing at
    /// `base_interval · (c + 1)` — channel 0 is the busiest — and block
    /// counts scaled so every channel stays active for a similar span.
    ///
    /// Windows are sized at roughly `2·peers/(channels+1)` with ~50 %
    /// overlap between neighbours, so interior peers serve two channels:
    /// the overlapping-org-membership shape of real consortium networks.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is 0 or `peers < 2 · channels`.
    pub fn skewed(channels: usize, peers: usize, base_blocks: u64) -> Self {
        assert!(channels >= 1, "need at least one channel");
        assert!(peers >= 2 * channels, "need >= 2 peers per channel");
        let window = (2 * peers).div_ceil(channels + 1).max(2);
        let stride = if channels == 1 {
            0
        } else {
            (peers - window) / (channels - 1)
        };
        let base_interval = Duration::from_millis(500);
        let plans: Vec<ChannelPlan> = (0..channels)
            .map(|c| {
                let lo = c * stride;
                let hi = (lo + window).min(peers);
                ChannelPlan {
                    members: (lo as u32..hi as u32).map(PeerId).collect(),
                    block_interval: base_interval * (c as u64 + 1),
                    blocks: (base_blocks / (c as u64 + 1)).max(1),
                    payload: 32_768,
                }
            })
            .collect();
        MultiChannelConfig {
            peers,
            plans,
            gossip: GossipConfig::enhanced_f4(),
            network: NetworkConfig::lan(peers),
            idle_tail: Duration::from_secs(10),
            seed: 1,
        }
    }
}

/// Timers of the multi-channel deployment.
#[derive(Debug)]
pub enum McTimer {
    /// A gossip timer of one peer's channel instance.
    Peer {
        /// The channel instance the timer belongs to.
        channel: ChannelId,
        /// The gossip timer payload.
        timer: GossipTimer,
    },
    /// The channel's ordering service injects its next block at the
    /// leader.
    Inject {
        /// The channel being injected.
        channel: ChannelId,
    },
}

/// Per-channel chain bookkeeping for the abstract orderer.
#[derive(Debug)]
struct ChainState {
    next_num: u64,
    prev_hash: Hash256,
}

/// The multi-channel deployment as a [`desim::Protocol`]: node `i` is peer
/// `i`; there are no extra nodes (injection rides on leader timers).
#[derive(Debug)]
pub struct MultiChannelNet {
    cfg: MultiChannelConfig,
    peers: Vec<GossipPeer>,
    /// Channel → leader peer (lowest member id).
    leaders: Vec<PeerId>,
    /// Channel → peer index → dense member slot (None for non-members).
    slots: Vec<Vec<Option<usize>>>,
    chains: Vec<ChainState>,
    /// One latency matrix per channel, sized to the channel's membership.
    pub latency: Vec<LatencyRecorder>,
}

impl MultiChannelNet {
    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics on an empty plan list, an invalid gossip configuration, or a
    /// member id outside `0..peers`.
    pub fn new(cfg: MultiChannelConfig) -> Self {
        assert!(!cfg.plans.is_empty(), "need at least one channel plan");
        let mut leaders = Vec::with_capacity(cfg.plans.len());
        let mut slots = Vec::with_capacity(cfg.plans.len());
        let mut latency = Vec::with_capacity(cfg.plans.len());
        let mut chains = Vec::with_capacity(cfg.plans.len());
        for (c, plan) in cfg.plans.iter().enumerate() {
            let channel = ChannelId(c as u16);
            assert!(!plan.members.is_empty(), "channel {channel} has no members");
            assert!(
                plan.members.iter().all(|p| p.index() < cfg.peers),
                "channel {channel} member outside the deployment"
            );
            let mut slot_map = vec![None; cfg.peers];
            for (slot, member) in plan.members.iter().enumerate() {
                slot_map[member.index()] = Some(slot);
            }
            leaders.push(*plan.members.iter().min().expect("non-empty members"));
            slots.push(slot_map);
            latency.push(LatencyRecorder::new(plan.members.len()));
            chains.push(ChainState {
                next_num: 1,
                prev_hash: Block::genesis().hash(),
            });
        }
        let peers: Vec<GossipPeer> = (0..cfg.peers as u32)
            .map(|i| {
                let id = PeerId(i);
                cfg.plans
                    .iter()
                    .enumerate()
                    .filter(|(_, plan)| plan.members.contains(&id))
                    .fold(
                        GossipPeer::with_channels(id, cfg.gossip.clone()),
                        |peer, (c, plan)| {
                            peer.join_channel(ChannelId(c as u16), plan.members.clone())
                        },
                    )
            })
            .collect();
        MultiChannelNet {
            cfg,
            peers,
            leaders,
            slots,
            chains,
            latency,
        }
    }

    /// The run's configuration.
    pub fn config(&self) -> &MultiChannelConfig {
        &self.cfg
    }

    /// The gossip state of peer `i`.
    pub fn gossip(&self, i: usize) -> &GossipPeer {
        &self.peers[i]
    }

    /// The leader of channel `c`.
    pub fn leader_of(&self, c: usize) -> PeerId {
        self.leaders[c]
    }

    /// Starts the run: initializes every peer's timers (all channels) and
    /// arms each channel's first injection, staggered by its own interval.
    pub fn start(&mut self, ctx: &mut Ctx<'_, ChannelMsg, McTimer>) {
        for i in 0..self.peers.len() {
            let node = NodeId(i as u32);
            let mut fx = McFx {
                ctx,
                me: node,
                slots: &self.slots,
                latency: &mut self.latency,
            };
            self.peers[i].init(&mut fx);
        }
        for (c, plan) in self.cfg.plans.iter().enumerate() {
            let channel = ChannelId(c as u16);
            ctx.set_timer(
                NodeId(self.leaders[c].0),
                plan.block_interval,
                McTimer::Inject { channel },
            );
        }
    }

    /// The virtual instant by which every channel has injected its last
    /// block (the drain window starts here).
    pub fn injection_end(&self) -> Time {
        let mut end = Time::ZERO;
        for plan in &self.cfg.plans {
            end = end.max(Time::ZERO + plan.block_interval * (plan.blocks + 1));
        }
        end
    }

    fn inject(&mut self, ctx: &mut Ctx<'_, ChannelMsg, McTimer>, channel: ChannelId) {
        let c = channel.index();
        let plan = &self.cfg.plans[c];
        let chain = &mut self.chains[c];
        if chain.next_num > plan.blocks {
            return;
        }
        let num = chain.next_num;
        chain.next_num += 1;
        let block = Block::new(num, chain.prev_hash, vec![]).with_padding(plan.payload);
        chain.prev_hash = block.hash();
        let block = BlockRef::new(block);
        self.latency[c].start_block(num, ctx.now());
        let leader = self.leaders[c];
        let node = NodeId(leader.0);
        {
            let mut fx = McFx {
                ctx,
                me: node,
                slots: &self.slots,
                latency: &mut self.latency,
            };
            self.peers[leader.index()].on_block_from_orderer_on(&mut fx, channel, block);
        }
        if chain.next_num <= plan.blocks {
            ctx.set_timer(node, plan.block_interval, McTimer::Inject { channel });
        }
    }
}

impl desim::Protocol for MultiChannelNet {
    type Msg = ChannelMsg;
    type Timer = McTimer;

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, ChannelMsg, McTimer>,
        to: NodeId,
        from: NodeId,
        msg: ChannelMsg,
    ) {
        let mut fx = McFx {
            ctx,
            me: to,
            slots: &self.slots,
            latency: &mut self.latency,
        };
        self.peers[to.index()].on_channel_message(&mut fx, msg.channel, PeerId(from.0), msg.msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ChannelMsg, McTimer>, node: NodeId, timer: McTimer) {
        match timer {
            McTimer::Peer { channel, timer } => {
                let mut fx = McFx {
                    ctx,
                    me: node,
                    slots: &self.slots,
                    latency: &mut self.latency,
                };
                self.peers[node.index()].on_channel_timer(&mut fx, channel, timer);
            }
            McTimer::Inject { channel } => self.inject(ctx, channel),
        }
    }
}

/// The [`Effects`] adapter: one peer's view of the multi-channel sim.
struct McFx<'a, 'c> {
    ctx: &'a mut Ctx<'c, ChannelMsg, McTimer>,
    me: NodeId,
    slots: &'a [Vec<Option<usize>>],
    latency: &'a mut [LatencyRecorder],
}

impl Effects for McFx<'_, '_> {
    fn now(&self) -> Time {
        self.ctx.now()
    }

    fn send(&mut self, channel: ChannelId, to: PeerId, msg: GossipMsg) {
        self.ctx
            .send(self.me, NodeId(to.0), ChannelMsg { channel, msg });
    }

    fn schedule(&mut self, after: Duration, channel: ChannelId, timer: GossipTimer) {
        self.ctx
            .set_timer(self.me, after, McTimer::Peer { channel, timer });
    }

    fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }

    fn block_received(&mut self, channel: ChannelId, block_num: u64) {
        let c = channel.index();
        if let Some(slot) = self.slots[c][self.me.index()] {
            self.latency[c].record(block_num, slot, self.ctx.now());
        }
    }

    fn deliver(&mut self, _channel: ChannelId, _block: BlockRef) {
        // The scenario measures dissemination; ledger commit costs are
        // FabricNet's concern.
    }
}

/// One channel's measured outcome.
#[derive(Debug, Clone)]
pub struct ChannelOutcome {
    /// The channel.
    pub channel: ChannelId,
    /// Member count.
    pub members: usize,
    /// Blocks injected.
    pub blocks: u64,
    /// Fraction of (block, member) deliveries that happened.
    pub completeness: f64,
    /// Median dissemination latency over all (block, member) cells.
    pub p50: Duration,
    /// 99.9th percentile of the same pool.
    pub p999: Duration,
    /// Worst cell.
    pub max: Duration,
}

/// What a multi-channel run produces.
#[derive(Debug)]
pub struct MultiChannelResult {
    /// Per-channel outcomes, channel order.
    pub channels: Vec<ChannelOutcome>,
    /// Per-channel and overall Jain fairness over per-member gossip bytes.
    pub fairness: FairnessReport,
    /// Simulation events processed.
    pub events: u64,
    /// Final virtual time.
    pub sim_end: Time,
    /// The final protocol state, for custom inspection.
    pub net: MultiChannelNet,
}

/// Runs one multi-channel experiment to completion.
pub fn run_multichannel(cfg: &MultiChannelConfig) -> MultiChannelResult {
    let mut network = cfg.network.clone();
    network.nodes = cfg.peers;
    let mut net = MultiChannelNet::new(cfg.clone());
    let injection_end = net.injection_end();
    let mut sim = Simulation::new(net, network, cfg.seed);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim.run_until(injection_end + Duration::from_secs(40));
    sim.run_for(cfg.idle_tail);
    let events = sim.events_processed();
    let sim_end = sim.now();
    net = sim.into_protocol();

    let mut outcomes = Vec::with_capacity(cfg.plans.len());
    let mut fairness_rows: Vec<(String, Vec<(usize, f64)>)> = Vec::with_capacity(cfg.plans.len());
    for (c, plan) in cfg.plans.iter().enumerate() {
        let channel = ChannelId(c as u16);
        let rec = &net.latency[c];
        let mut pool = Vec::new();
        for slot in 0..plan.members.len() {
            pool.extend(rec.peer_latencies(slot));
        }
        let cdf = gossip_metrics::cdf::Cdf::new(pool);
        let (p50, p999, max) = if cdf.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            (cdf.quantile(0.5), cdf.quantile(0.999), cdf.max())
        };
        outcomes.push(ChannelOutcome {
            channel,
            members: plan.members.len(),
            blocks: plan.blocks,
            completeness: rec.completeness(),
            p50,
            p999,
            max,
        });
        let shares: Vec<(usize, f64)> = plan
            .members
            .iter()
            .map(|m| {
                let bytes = net
                    .gossip(m.index())
                    .stats_on(channel)
                    .map_or(0, |s| s.bytes_sent());
                (m.index(), bytes as f64)
            })
            .collect();
        fairness_rows.push((channel.to_string(), shares));
    }
    let fairness = FairnessReport::from_per_channel(&fairness_rows);
    MultiChannelResult {
        channels: outcomes,
        fairness,
        events,
        sim_end,
        net,
    }
}

/// Plain-text rendering of a multi-channel run, preset-report style.
pub fn render_multichannel(title: &str, result: &MultiChannelResult) -> String {
    let mut out = format!("== {title} ==\n");
    for c in &result.channels {
        out.push_str(&format!(
            "{} {:>3} members | {:>4} blocks | completeness {:.4} | p50 {} | p99.9 {} | max {}\n",
            c.channel, c.members, c.blocks, c.completeness, c.p50, c.p999, c.max,
        ));
    }
    out.push_str(&result.fairness.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(channels: usize, peers: usize, blocks: u64, seed: u64) -> MultiChannelResult {
        let mut cfg = MultiChannelConfig::skewed(channels, peers, blocks);
        cfg.seed = seed;
        run_multichannel(&cfg)
    }

    #[test]
    fn every_channel_reaches_all_its_members() {
        let res = quick(3, 30, 12, 7);
        assert_eq!(res.channels.len(), 3);
        for c in &res.channels {
            assert_eq!(
                c.completeness, 1.0,
                "channel {} must inform every member",
                c.channel
            );
            assert!(c.blocks >= 1);
        }
        // Skew: channel 0 publishes the most blocks.
        assert!(res.channels[0].blocks > res.channels[2].blocks);
    }

    #[test]
    fn memberships_overlap_and_leaders_differ() {
        let cfg = MultiChannelConfig::skewed(3, 30, 6);
        let net = MultiChannelNet::new(cfg.clone());
        // Consecutive channels share members (the overlap is the point).
        let m0: std::collections::BTreeSet<_> = cfg.plans[0].members.iter().collect();
        let m1: std::collections::BTreeSet<_> = cfg.plans[1].members.iter().collect();
        assert!(
            m0.intersection(&m1).next().is_some(),
            "windows must overlap"
        );
        assert_ne!(net.leader_of(0), net.leader_of(1));
        // An interior peer joined to two channels reports both.
        let shared = **m0.intersection(&m1).next().unwrap();
        assert!(net.gossip(shared.index()).channel_ids().len() >= 2);
    }

    #[test]
    fn blocks_never_leak_across_channels() {
        let res = quick(3, 30, 8, 3);
        let cfg = res.net.config().clone();
        for (c, plan) in cfg.plans.iter().enumerate() {
            let channel = ChannelId(c as u16);
            for p in 0..cfg.peers {
                let member = plan.members.contains(&PeerId(p as u32));
                let held = res.net.gossip(p).store_on(channel).map_or(0, |s| s.len());
                if member {
                    assert_eq!(held as u64, plan.blocks, "member {p} of {channel}");
                } else {
                    assert!(
                        res.net.gossip(p).store_on(channel).is_none(),
                        "non-member {p} must hold nothing of {channel}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_channel_stats_sum_to_peer_totals() {
        let res = quick(2, 20, 6, 11);
        for p in 0..20 {
            let peer = res.net.gossip(p);
            let total = peer.total_stats();
            let mut summed = 0u64;
            let mut blocks_sent = 0u64;
            for ch in peer.channel_ids() {
                let s = peer.stats_on(ch).unwrap();
                summed += s.bytes_sent();
                blocks_sent += s.blocks_sent;
            }
            assert_eq!(total.bytes_sent(), summed);
            assert_eq!(total.blocks_sent, blocks_sent);
        }
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let a = quick(2, 16, 5, 42);
        let b = quick(2, 16, 5, 42);
        assert_eq!(a.events, b.events);
        for (x, y) in a.channels.iter().zip(&b.channels) {
            assert_eq!(x.p50, y.p50);
            assert_eq!(x.p999, y.p999);
        }
        assert_eq!(a.fairness.overall_jain, b.fairness.overall_jain);
    }

    #[test]
    fn render_contains_per_channel_rows_and_fairness() {
        let res = quick(2, 16, 4, 1);
        let text = render_multichannel("multichannel", &res);
        assert!(text.contains("ch0"));
        assert!(text.contains("ch1"));
        assert!(text.contains("jain"));
        assert!(text.contains("overall"));
    }
}
