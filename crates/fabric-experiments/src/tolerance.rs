//! Quantitative Byzantine tolerance bounds: for each attacker family,
//! grow the attacker count `f` inside a deployment of `N` peers until an
//! asserted guarantee first falls, and record the measured `f*(N)`
//! frontier plus the degradation curve below it.
//!
//! Where [`crate::adversarial`] answers *"does the guarantee survive one
//! attacker?"*, this module answers *"how many colluding attackers does
//! it survive, and what does each additional one cost?"*. Four families
//! cover the three attack classes the suite distinguishes:
//!
//! | family              | class         | guarantee swept to violation        |
//! |---------------------|---------------|-------------------------------------|
//! | obituary-coalition  | coalition     | refutation heals views within bound |
//! | adaptive-leader-hunt| adaptive      | exactly one leader after the hunt   |
//! | withholder          | dissemination | gap-free catch-up within bound      |
//! | equivocator         | dissemination | completeness 1.0, payloads intact   |
//!
//! Everything is deterministic (the harness determinism contract), so the
//! frontier is a *measurement*, not a flaky sample: CI pins the measured
//! `f*` per family and fails when a change shrinks it.

use desim::Duration;
use fabric_gossip::config::GossipConfig;
use fabric_gossip::scenario::{
    Adaptively, CoalitionForger, DiscoveryHarness, Equivocator, LeaderHunter, Predicate,
    RefutationSuppressor, SideChannel, Withholder,
};
use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::ids::{ChannelId, PeerId};

use crate::adversarial::AdversarialConfig;

/// Configuration of one tolerance sweep.
#[derive(Debug, Clone)]
pub struct ToleranceConfig {
    /// Wire-format label carried into the report (`"full"` / `"delta"`).
    pub mode: &'static str,
    /// The gossip configuration every peer runs (discovery protocol on).
    pub gossip: GossipConfig,
    /// Deployment sizes `N` to sweep (sitting members per channel).
    pub deployments: Vec<u32>,
    /// Upper bound on the attacker count `f` (further capped per
    /// deployment at `N - 3` so a victim and an honest rump remain).
    pub max_f: u32,
}

impl ToleranceConfig {
    /// The standard sweep: the adversarial suite's timers, two deployment
    /// sizes, attacker counts grown until the per-deployment cap
    /// (`N - 3`) so the frontier can actually be found, not just probed.
    pub fn standard() -> Self {
        ToleranceConfig {
            mode: "full",
            gossip: AdversarialConfig::standard().gossip,
            deployments: vec![6, 9],
            max_f: 6,
        }
    }
}

/// One point of a degradation curve: what `f` attackers did.
#[derive(Debug, Clone)]
pub struct TolerancePoint {
    /// The attacker count.
    pub f: u32,
    /// Whether the family's guarantee held at this `f`.
    pub held: bool,
    /// Diagnostic detail (what was observed or how it failed).
    pub detail: String,
    /// The family's degradation metric at this `f`.
    pub metric: f64,
}

/// The measured frontier of one attacker family at one deployment size.
#[derive(Debug, Clone)]
pub struct FamilyFrontier {
    /// Family name (`"obituary-coalition"`, ...).
    pub family: &'static str,
    /// Attack class (`"coalition"` / `"adaptive"` / `"dissemination"`).
    pub kind: &'static str,
    /// Sitting members per channel in this sweep.
    pub deployment: u32,
    /// The guarantee swept to violation.
    pub guarantee: &'static str,
    /// Name of the degradation metric.
    pub metric_name: &'static str,
    /// Unit of the degradation metric.
    pub metric_unit: &'static str,
    /// The degradation curve, one point per `f` in ascending order.
    pub points: Vec<TolerancePoint>,
}

impl FamilyFrontier {
    /// The measured tolerance bound: the largest `f` such that the
    /// guarantee held at every attacker count up to and including it
    /// (0 when even a single attacker breaks it).
    pub fn f_star(&self) -> u32 {
        let mut star = 0;
        for p in &self.points {
            if !p.held {
                break;
            }
            star = p.f;
        }
        star
    }

    /// The smallest swept `f` at which the guarantee fell, if any.
    pub fn first_violation(&self) -> Option<u32> {
        self.points.iter().find(|p| !p.held).map(|p| p.f)
    }
}

/// The machine-readable result of one tolerance sweep.
#[derive(Debug, Clone)]
pub struct ToleranceReport {
    /// Wire-format label of the sweep.
    pub mode: &'static str,
    /// The harness attack-RNG seed (with the per-peer engine seeds of the
    /// determinism contract, the file reproduces the sweep alone).
    pub seed: u64,
    /// One frontier per (family, deployment), families in catalog order.
    pub frontiers: Vec<FamilyFrontier>,
}

impl ToleranceReport {
    /// The measured `f*` for one family at one deployment size.
    pub fn f_star_of(&self, family: &str, deployment: u32) -> Option<u32> {
        self.frontiers
            .iter()
            .find(|fr| fr.family == family && fr.deployment == deployment)
            .map(FamilyFrontier::f_star)
    }

    /// Whether every swept point up to each family's pinned floor held —
    /// the CI gate: `floors` pins `(family, deployment, expected f*)`.
    pub fn meets_floors(&self, floors: &[(&str, u32, u32)]) -> bool {
        floors
            .iter()
            .all(|(family, n, floor)| self.f_star_of(family, *n) >= Some(*floor))
    }

    /// Renders the report as JSON (hand-built, same style as the other
    /// artifacts — the offline workspace has no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"wire_format\": \"{}\",\n", self.mode));
        json.push_str(&format!("  \"seed\": {},\n", self.seed));
        json.push_str("  \"frontiers\": [\n");
        for (i, fr) in self.frontiers.iter().enumerate() {
            let points = fr
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"f\": {}, \"held\": {}, \"metric\": {:.3}, \"detail\": \"{}\"}}",
                        p.f,
                        p.held,
                        p.metric,
                        escape(&p.detail)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let violation = match fr.first_violation() {
                Some(f) => f.to_string(),
                None => "null".into(),
            };
            json.push_str(&format!(
                "    {{\"family\": \"{}\", \"kind\": \"{}\", \"deployment\": {}, \
                 \"guarantee\": \"{}\", \"f_star\": {}, \"first_violation\": {}, \
                 \"metric_name\": \"{}\", \"metric_unit\": \"{}\", \"points\": [{}]}}{}\n",
                fr.family,
                fr.kind,
                fr.deployment,
                fr.guarantee,
                fr.f_star(),
                violation,
                fr.metric_name,
                fr.metric_unit,
                points,
                if i + 1 < self.frontiers.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }
}

/// Minimal JSON string escaping for diagnostic details.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Runs the whole family catalog at every configured deployment size.
pub fn run_tolerance(cfg: &ToleranceConfig) -> ToleranceReport {
    let mut frontiers = Vec::new();
    for &n in &cfg.deployments {
        frontiers.push(obituary_coalition(cfg, n));
        frontiers.push(adaptive_leader_hunt(cfg, n));
        frontiers.push(withholder(cfg, n));
        frontiers.push(equivocator(cfg, n));
    }
    ToleranceReport {
        mode: cfg.mode,
        seed: DiscoveryHarness::ATTACK_SEED,
        frontiers,
    }
}

/// Paper-style text rendering of one sweep.
pub fn render_tolerance(report: &ToleranceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("Tolerance sweep — {} anti-entropy\n", report.mode));
    for fr in &report.frontiers {
        out.push_str(&format!(
            "  {} ({}) at N={}: f* = {}{}\n",
            fr.family,
            fr.kind,
            fr.deployment,
            fr.f_star(),
            match fr.first_violation() {
                Some(f) => format!(" (first violation at f={f})"),
                None => " (no violation in the swept range)".into(),
            }
        ));
        for p in &fr.points {
            out.push_str(&format!(
                "    f={}: [{}] {} = {:.2} {} — {}\n",
                p.f,
                if p.held { "ok" } else { "FAIL" },
                fr.metric_name,
                p.metric,
                fr.metric_unit,
                p.detail
            ));
        }
    }
    out
}

/// Attacker counts swept at deployment `n`: at least a victim and two
/// honest members must remain outside the coalition.
fn f_range(cfg: &ToleranceConfig, n: u32) -> impl Iterator<Item = u32> {
    1..=cfg.max_f.min(n.saturating_sub(3))
}

/// The `f` highest peer ids of an `n`-member channel — the compromised
/// set (the harness protects no id, so the top ids are as good as any and
/// keep the victim/injector ids stable across `f`).
fn top_ids(n: u32, f: u32) -> Vec<PeerId> {
    (n - f..n).map(PeerId).collect()
}

/// Family 1 (coalition) — one [`CoalitionForger`] plus `f - 1`
/// [`RefutationSuppressor`]s sharing a [`SideChannel`], all against one
/// victim. Guarantee: the victim's incarnation bump still heals every
/// view within the bound. Metric: total disrupted seconds across the
/// campaign.
fn obituary_coalition(cfg: &ToleranceConfig, n: u32) -> FamilyFrontier {
    let victim = PeerId(1);
    let points = f_range(cfg, n)
        .map(|f| {
            let members: Vec<PeerId> = (0..n).map(PeerId).collect();
            let mut net = DiscoveryHarness::new(n as usize, vec![members], &cfg.gossip);
            net.run_for(Duration::from_secs(3));
            let inc_before = incarnation_of(&net, victim);
            let side = SideChannel::new();
            let ids = top_ids(n, f);
            net.set_byzantine(
                ids[0],
                Box::new(CoalitionForger::new(victim, 2, side.clone())),
            );
            for id in &ids[1..] {
                net.set_byzantine(
                    *id,
                    Box::new(RefutationSuppressor::new(victim, side.clone())),
                );
            }
            let mut disrupted_ticks = 0u64;
            for _ in 0..60u64 {
                net.run_for(Duration::from_millis(500));
                if !net.views_converged(0) {
                    disrupted_ticks += 1;
                }
            }
            let healed = net.converge_within(0, 40).is_some();
            let inc_after = incarnation_of(&net, victim);
            let bumped = inc_after > inc_before;
            let settled = net
                .check(&Predicate::NoResurrectionBelowObituary { channel: 0 })
                .is_ok();
            TolerancePoint {
                f,
                held: healed && bumped && settled,
                detail: format!(
                    "healed: {healed}, incarnation {inc_before} -> {inc_after}, \
                     no-resurrection: {settled}"
                ),
                metric: disrupted_ticks as f64 * 0.5,
            }
        })
        .collect();
    FamilyFrontier {
        family: "obituary-coalition",
        kind: "coalition",
        deployment: n,
        guarantee: "refutation-heals-views-within-bound",
        metric_name: "disruption",
        metric_unit: "secs",
        points,
    }
}

/// Family 2 (adaptive) — `f` independent [`LeaderHunter`]s, each
/// wiretapping leadership heartbeats (dynamic election) and re-targeting
/// whatever new state it observes. Guarantee: after the campaign the
/// views agree and exactly one leader claims the channel. Metric:
/// seconds until leadership recovered after the campaign horizon.
fn adaptive_leader_hunt(cfg: &ToleranceConfig, n: u32) -> FamilyFrontier {
    const RECOVERY_LIMIT: u64 = 40;
    let mut gossip = cfg.gossip.clone();
    gossip.election.dynamic = true;
    gossip.election.heartbeat_interval = Duration::from_secs(1);
    gossip.election.leader_timeout = Duration::from_secs(4);
    let points = f_range(cfg, n)
        .map(|f| {
            let members: Vec<PeerId> = (0..n).map(PeerId).collect();
            let mut net = DiscoveryHarness::new(n as usize, vec![members], &gossip);
            net.run_for(Duration::from_secs(5));
            for id in top_ids(n, f) {
                net.set_byzantine(id, Box::new(Adaptively(LeaderHunter::new(2))));
            }
            net.run_for(Duration::from_secs(40));
            let mut recovered = None;
            for elapsed in 0..=RECOVERY_LIMIT {
                if net.views_converged(0) && net.leaders(0).len() == 1 {
                    recovered = Some(elapsed);
                    break;
                }
                if elapsed < RECOVERY_LIMIT {
                    net.run_for(Duration::from_secs(1));
                }
            }
            let leaders = net.leaders(0);
            TolerancePoint {
                f,
                held: recovered.is_some(),
                detail: format!("leaders after the hunt: {leaders:?}"),
                metric: recovered.unwrap_or(RECOVERY_LIMIT) as f64,
            }
        })
        .collect();
    FamilyFrontier {
        family: "adaptive-leader-hunt",
        kind: "adaptive",
        deployment: n,
        guarantee: "exactly-one-leader-after-the-hunt",
        metric_name: "leadership_recovery",
        metric_unit: "secs",
        points,
    }
}

/// The dissemination families' shared scaffold: stream `height` blocks
/// into an `n`-member channel with `f` attackers attached, add a late
/// joiner, and measure the seconds until the *whole channel* (joiner
/// included) is gap-free — completeness 1.0, the paper's dissemination
/// guarantee.
fn catchup_run(
    gossip: &GossipConfig,
    n: u32,
    height: u64,
    attach: impl Fn(&mut DiscoveryHarness, PeerId),
    f: u32,
) -> (DiscoveryHarness, Option<u64>) {
    const LIMIT: u64 = 45;
    let members: Vec<PeerId> = (0..n).map(PeerId).collect();
    let joiner = PeerId(n);
    let mut net = DiscoveryHarness::new(n as usize + 1, vec![members], gossip);
    for id in top_ids(n, f) {
        attach(&mut net, id);
    }
    let mut prev = Hash256::ZERO;
    for num in 1..=height {
        let block = BlockRef::new(Block::new(num, prev, vec![]).with_padding(200));
        prev = block.hash();
        net.inject(0, block);
        net.run_for(Duration::from_millis(200));
    }
    net.run_for(Duration::from_secs(10));
    net.join(0, joiner);
    let mut caught = None;
    for elapsed in 0..=LIMIT {
        if net.gossip(joiner.index()).height_on(ChannelId(0)) > height
            && net.check(&Predicate::GapFreeCatchup { channel: 0 }).is_ok()
        {
            caught = Some(elapsed);
            break;
        }
        if elapsed < LIMIT {
            net.run_for(Duration::from_secs(1));
        }
    }
    (net, caught)
}

/// The dissemination families run with every payload path armed: push,
/// pull *and* recovery, with the catch-up timers tightened.
fn dissemination_gossip(cfg: &ToleranceConfig) -> GossipConfig {
    let mut gossip = cfg.gossip.clone();
    gossip.recovery.interval = Duration::from_secs(2);
    gossip.recovery.state_info_interval = Duration::from_secs(1);
    gossip.pull = GossipConfig::original_fabric().pull;
    gossip
}

/// Family 3 (dissemination) — `f` [`Withholder`]s that advertise blocks
/// but never serve a payload. Guarantee: a late joiner still reaches
/// completeness 1.0 (gap-free) within the bound, through honest
/// redundancy. Metric: seconds to completeness.
fn withholder(cfg: &ToleranceConfig, n: u32) -> FamilyFrontier {
    const HEIGHT: u64 = 6;
    let gossip = dissemination_gossip(cfg);
    let points = f_range(cfg, n)
        .map(|f| {
            let (_net, caught) = catchup_run(
                &gossip,
                n,
                HEIGHT,
                |net, id| net.set_byzantine(id, Box::new(Withholder::new(Vec::new()))),
                f,
            );
            TolerancePoint {
                f,
                held: caught.is_some(),
                detail: match caught {
                    Some(s) => format!("channel gap-free {s}s after the join"),
                    None => "a member was still starved at the bound".into(),
                },
                metric: caught.unwrap_or(45) as f64,
            }
        })
        .collect();
    FamilyFrontier {
        family: "withholder",
        kind: "dissemination",
        deployment: n,
        guarantee: "gap-free-catchup-within-bound",
        metric_name: "time_to_completeness",
        metric_unit: "secs",
        points,
    }
}

/// Family 4 (dissemination) — `f` [`Equivocator`]s serving conflicting
/// payloads (doctored transactions under the genuine header) to even-id
/// peers. Guarantee: every doctored payload is hash-rejected, every held
/// or delivered block is intact, and completeness still reaches 1.0.
/// Metric: rejected payload count (the attack surface that bounced).
fn equivocator(cfg: &ToleranceConfig, n: u32) -> FamilyFrontier {
    const HEIGHT: u64 = 6;
    let gossip = dissemination_gossip(cfg);
    let points = f_range(cfg, n)
        .map(|f| {
            let (net, caught) = catchup_run(
                &gossip,
                n,
                HEIGHT,
                |net, id| net.set_byzantine(id, Box::new(Equivocator)),
                f,
            );
            let mut rejected = 0u64;
            let mut all_intact = true;
            for i in 0..(n as usize + 1) {
                if let Some(stats) = net.gossip(i).stats_on(ChannelId(0)) {
                    rejected += stats.invalid_payloads + stats.equivocations_rejected;
                }
                for num in 1..=HEIGHT {
                    if let Some(block) = net.gossip(i).store().get(num) {
                        all_intact &= block.data_intact();
                    }
                }
                all_intact &= net.effects(i).delivered.iter().all(|b| b.data_intact());
            }
            TolerancePoint {
                f,
                held: caught.is_some() && all_intact && rejected > 0,
                detail: format!(
                    "complete: {}, intact: {all_intact}, rejected payloads: {rejected}",
                    caught.is_some()
                ),
                metric: rejected as f64,
            }
        })
        .collect();
    FamilyFrontier {
        family: "equivocator",
        kind: "dissemination",
        deployment: n,
        guarantee: "payloads-hash-rejected-completeness-holds",
        metric_name: "rejected_payloads",
        metric_unit: "count",
        points,
    }
}

/// The victim's incarnation as peer 0 sees it (0 when unknown).
fn incarnation_of(net: &DiscoveryHarness, peer: PeerId) -> u64 {
    net.gossip(0)
        .discovery_on(ChannelId(0))
        .and_then(|e| e.claim_of(peer))
        .map(|c| c.incarnation)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately small sweep so the unit test stays fast; the bench
    /// bin runs [`ToleranceConfig::standard`].
    fn small() -> ToleranceConfig {
        ToleranceConfig {
            deployments: vec![6],
            max_f: 2,
            ..ToleranceConfig::standard()
        }
    }

    #[test]
    fn the_small_sweep_measures_every_family_and_renders_json() {
        let report = run_tolerance(&small());
        assert_eq!(report.frontiers.len(), 4, "four families at one N");
        for fr in &report.frontiers {
            assert_eq!(fr.deployment, 6);
            assert_eq!(fr.points.len(), 2, "f swept 1..=2");
            assert!(
                fr.points.iter().all(|p| p.metric.is_finite()),
                "{}: curve must be JSON-safe",
                fr.family
            );
        }
        let kinds: Vec<&str> = report.frontiers.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&"coalition"));
        assert!(kinds.contains(&"adaptive"));
        assert!(kinds.contains(&"dissemination"));
        let json = report.to_json();
        assert!(json.contains("\"f_star\":"));
        assert!(json.contains("\"first_violation\":"));
        assert!(
            !json.contains(": inf") && !json.contains(": NaN"),
            "non-finite values poison the artifact"
        );
    }

    #[test]
    fn the_small_sweep_survives_two_attackers_in_every_family() {
        let report = run_tolerance(&small());
        for fr in &report.frontiers {
            assert_eq!(
                fr.f_star(),
                2,
                "{} at N=6 must tolerate the swept range: {}",
                fr.family,
                render_tolerance(&report)
            );
        }
        assert!(report.meets_floors(&[
            ("obituary-coalition", 6, 2),
            ("adaptive-leader-hunt", 6, 2),
            ("withholder", 6, 2),
            ("equivocator", 6, 2),
        ]));
        assert!(!report.meets_floors(&[("obituary-coalition", 6, 3)]));
        assert!(!report.meets_floors(&[("no-such-family", 6, 1)]));
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run_tolerance(&small());
        let b = run_tolerance(&small());
        assert_eq!(a.to_json(), b.to_json(), "same config, same frontier");
    }
}
