//! Churn at scale under the gossiped discovery protocol: waves of joiners
//! and leavers plus a flash crowd, with convergence measured end to end.
//!
//! The PR 3 `churn` scenario drives one joiner and one leaving leader
//! through the full pipeline with membership propagated by a synchronous
//! oracle. This scenario removes the oracle entirely
//! ([`DiscoveryMode::Protocol`]): C side channels churn in **waves** — at
//! every wave instant, W fresh peers join each side channel (announcing
//! themselves through their own heartbeats) while the W most senior
//! sitting members, the current leader included, leave (silently: the
//! sitting members must detect each departure by alive-timeout expiry) —
//! and one side channel additionally absorbs a **flash crowd** of F
//! simultaneous joiners. The stable default channel carries the main
//! payload workload throughout, so discovery traffic competes with block
//! dissemination for the same links — the bandwidth contention Wang &
//! Chu's bottleneck analysis of Fabric flags as first-order.
//!
//! Reported per run:
//!
//! * **join convergence** — join → every sitting member's view includes
//!   the joiner (plus the ledger catch-up latency, as in `churn`);
//! * **stale-view duration** — leave → the last member reaps the leaver;
//! * **leader-gap windows** — leader leave → successor claim (by
//!   discovery seniority, not callback);
//! * **fairness** — per-channel Jain over member bytes *including*
//!   discovery overhead, with the discovery byte share broken out.

use desim::{Duration, NetworkConfig, Simulation, Time};
use fabric_gossip::config::GossipConfig;
use fabric_orderer::cutter::BatchConfig;
use fabric_orderer::service::OrdererConfig;
use fabric_types::ids::{ChannelId, PeerId};
use fabric_types::transaction::EndorsementPolicy;
use fabric_workload::schedule::{
    merge_schedules, payload_schedule, retarget_schedule, PayloadWorkload,
};
use gossip_metrics::fairness::FairnessReport;

use crate::net::{
    Catchup, ChannelSpec, ChurnAction, ChurnEvent, DiscoveryMode, FabricNet, NetParams,
    ViewConvergence,
};

/// The per-kind metric tags that count as discovery overhead.
pub const DISCOVERY_KINDS: [&str; 5] = [
    "alive-msg",
    "membership-request",
    "membership-response",
    "membership-digest",
    "membership-delta",
];

/// Everything a churn-waves run needs.
#[derive(Debug, Clone)]
pub struct ChurnWavesConfig {
    /// Number of churned side channels (`ChannelId(1)..=ChannelId(C)`);
    /// the stable default channel spans the whole deployment.
    pub side_channels: usize,
    /// Initial members per side channel (contiguous id blocks).
    pub side_members: usize,
    /// Join/leave wave pairs per side channel.
    pub waves: usize,
    /// Joiners *and* leavers per wave per channel.
    pub wave_size: usize,
    /// Time between waves (must exceed the discovery convergence time or
    /// the waves pile up).
    pub wave_interval: Duration,
    /// When the first wave hits.
    pub first_wave_at: Time,
    /// Flash-crowd size: this many peers join side channel 1 at once.
    pub flash_crowd: usize,
    /// When the flash crowd hits.
    pub flash_at: Time,
    /// Gossip configuration (must run protocol discovery; see
    /// [`ChurnWavesConfig::standard`] for the tuned preset).
    pub gossip: GossipConfig,
    /// Ordering service configuration, shared by every channel's chain.
    pub orderer: OrdererConfig,
    /// The stable main channel's workload.
    pub main_workload: PayloadWorkload,
    /// Each side channel's workload.
    pub side_workload: PayloadWorkload,
    /// Physical network model.
    pub network: NetworkConfig,
    /// Drain window after the last scheduled transaction.
    pub drain: Duration,
    /// Simulation seed.
    pub seed: u64,
}

impl ChurnWavesConfig {
    /// The standard waves shape over `side_channels` × `side_members`
    /// with `blocks` blocks per channel: two waves of two, a flash crowd
    /// of three on channel 1, discovery tuned for convergence within a
    /// wave interval (500 ms heartbeats, 700 ms anti-entropy, 3 s alive
    /// timeout) and recovery tightened as in the `churn` preset so
    /// catch-up completes at bench scale.
    ///
    /// # Panics
    ///
    /// Panics when the wave plan would exhaust a side channel (see
    /// [`ChurnWavesConfig::validate`]).
    pub fn standard(side_channels: usize, side_members: usize, blocks: u64) -> Self {
        let mut gossip = GossipConfig::enhanced_f4().with_discovery_protocol();
        gossip.discovery.heartbeat_interval = Duration::from_millis(500);
        gossip.discovery.anti_entropy_interval = Duration::from_millis(700);
        gossip.membership.alive_timeout = Duration::from_secs(3);
        gossip.recovery.interval = Duration::from_secs(2);
        gossip.recovery.batch_max = 64;
        let txs = (blocks * 50) as usize;
        let span = txs as f64 / PayloadWorkload::default().rate_per_sec;
        let waves = 2;
        let cfg = ChurnWavesConfig {
            side_channels,
            side_members,
            waves,
            wave_size: 2,
            wave_interval: Duration::from_secs_f64((span / (waves as f64 + 2.0)).max(8.0)),
            first_wave_at: Time::ZERO + Duration::from_secs_f64(span / 4.0),
            flash_crowd: 3,
            flash_at: Time::ZERO + Duration::from_secs_f64(span * 0.75),
            gossip,
            orderer: OrdererConfig::kafka(BatchConfig::paper_dissemination()),
            main_workload: PayloadWorkload::shortened(txs),
            side_workload: PayloadWorkload::shortened(txs),
            network: NetworkConfig::lan(0), // resized to the deployment below
            drain: Duration::from_secs(45),
            seed: 1,
        };
        cfg.validate();
        cfg
    }

    /// The standard shape with the byte-lean discovery wire format: delta
    /// anti-entropy (digest requests, missing-claims-only responses, full
    /// exchange every 8th round as fallback) and adaptive heartbeat
    /// cadence. Same churn plan, same workloads — only the discovery byte
    /// economy changes, so runs compare one-to-one against
    /// [`ChurnWavesConfig::standard`].
    pub fn standard_delta(side_channels: usize, side_members: usize, blocks: u64) -> Self {
        let mut cfg = Self::standard(side_channels, side_members, blocks);
        cfg.gossip.discovery.delta = true;
        cfg.gossip.discovery.adaptive_heartbeat = true;
        cfg
    }

    /// Total peers the plan needs: the side-channel blocks, one reserved
    /// joiner per (wave, channel, slot), and the flash crowd.
    pub fn peers(&self) -> usize {
        self.side_channels * self.side_members
            + self.waves * self.side_channels * self.wave_size
            + self.flash_crowd
    }

    /// Initial members of side channel `c` (1-based): the contiguous
    /// block `[(c-1)·N, c·N)`.
    fn initial_members(&self, c: usize) -> Vec<PeerId> {
        let start = (c - 1) * self.side_members;
        (start..start + self.side_members)
            .map(|i| PeerId(i as u32))
            .collect()
    }

    /// The reserved joiner for wave `w`, channel `c` (1-based), slot `j`.
    fn wave_joiner(&self, w: usize, c: usize, j: usize) -> PeerId {
        let base = self.side_channels * self.side_members;
        let idx = (w * self.side_channels + (c - 1)) * self.wave_size + j;
        PeerId((base + idx) as u32)
    }

    /// The flash-crowd joiners (the tail of the peer range).
    fn flash_joiners(&self) -> Vec<PeerId> {
        let base = self.peers() - self.flash_crowd;
        (base..self.peers()).map(|i| PeerId(i as u32)).collect()
    }

    /// Checks the wave plan is feasible.
    ///
    /// # Panics
    ///
    /// Panics when a side channel would lose its endorser or all members,
    /// or when no side channel exists.
    pub fn validate(&self) {
        assert!(self.side_channels >= 1, "need at least one side channel");
        assert!(
            self.waves * self.wave_size < self.side_members,
            "waves would drain a side channel below its endorser"
        );
        assert!(
            self.side_members >= 2,
            "side channels need a leader and an endorser"
        );
    }

    /// The churn schedule the plan expands to: per wave and channel,
    /// `wave_size` joins (reserved peers) and `wave_size` leaves (the
    /// most senior sitting initial members — the current leader first;
    /// the endorser, pinned at the block's top id, never leaves), plus
    /// the flash crowd on channel 1.
    pub fn churn_events(&self) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        for w in 0..self.waves {
            let at = self.first_wave_at + self.wave_interval * w as u64;
            for c in 1..=self.side_channels {
                let channel = ChannelId(c as u16);
                let initial = self.initial_members(c);
                for j in 0..self.wave_size {
                    events.push(ChurnEvent {
                        at,
                        peer: self.wave_joiner(w, c, j),
                        channel,
                        action: ChurnAction::Join,
                    });
                    // Leavers walk the initial block from the senior end:
                    // wave w removes members w·W .. (w+1)·W, so every
                    // wave beheads the sitting leader.
                    events.push(ChurnEvent {
                        at,
                        peer: initial[w * self.wave_size + j],
                        channel,
                        action: ChurnAction::Leave,
                    });
                }
            }
        }
        for peer in self.flash_joiners() {
            events.push(ChurnEvent {
                at: self.flash_at,
                peer,
                channel: ChannelId(1),
                action: ChurnAction::Join,
            });
        }
        events
    }
}

/// One channel's outcome.
#[derive(Debug, Clone)]
pub struct WaveChannelReport {
    /// The channel.
    pub channel: ChannelId,
    /// Members at end of run.
    pub members: usize,
    /// Blocks cut on the channel.
    pub blocks: u64,
    /// Leadership acquisitions (every wave beheads the leader, so the
    /// side channels collect one per wave).
    pub handoffs: u64,
    /// Closed leader-gap windows, in event order.
    pub leader_gaps: Vec<Duration>,
    /// Peers claiming leadership at end of run.
    pub leaders: Vec<PeerId>,
    /// Total gossip bytes sent by the channel's members on this channel.
    pub gossip_bytes: u64,
    /// Bytes of that total spent on discovery (heartbeats + anti-entropy).
    pub discovery_bytes: u64,
    /// Share of the channel's gossip bytes spent on discovery
    /// (heartbeats + anti-entropy), in `[0, 1]`.
    pub discovery_share: f64,
}

/// What a churn-waves run produces.
#[derive(Debug)]
pub struct ChurnWavesResult {
    /// Per-channel outcomes, channel order (default channel first).
    pub channels: Vec<WaveChannelReport>,
    /// Discovery-convergence records of every join and leave, event
    /// order per channel.
    pub convergence: Vec<ViewConvergence>,
    /// Ledger catch-up records, one per join.
    pub catchups: Vec<Catchup>,
    /// Per-channel and overall Jain fairness over per-member gossip
    /// bytes, discovery overhead included.
    pub fairness: FairnessReport,
    /// Simulation events processed.
    pub events: u64,
    /// Final virtual time.
    pub sim_end: Time,
    /// The final protocol state, for custom inspection.
    pub net: FabricNet,
}

impl ChurnWavesResult {
    /// Join-convergence latencies (event order); `None` = unconverged.
    pub fn join_convergence(&self) -> Vec<Option<Duration>> {
        self.convergence
            .iter()
            .filter(|r| r.join)
            .map(|r| r.latency())
            .collect()
    }

    /// Stale-view durations of the leaves (event order).
    pub fn stale_views(&self) -> Vec<Option<Duration>> {
        self.convergence
            .iter()
            .filter(|r| !r.join)
            .map(|r| r.latency())
            .collect()
    }

    /// Discovery byte share across every channel of the run: total
    /// discovery bytes over total gossip bytes — the headline number the
    /// delta wire format shrinks.
    pub fn overall_discovery_share(&self) -> f64 {
        let total: u64 = self.channels.iter().map(|c| c.gossip_bytes).sum();
        let disc: u64 = self.channels.iter().map(|c| c.discovery_bytes).sum();
        if total == 0 {
            0.0
        } else {
            disc as f64 / total as f64
        }
    }
}

/// Runs one churn-waves experiment to completion.
///
/// # Panics
///
/// Panics on an invalid configuration (see [`ChurnWavesConfig::validate`]).
pub fn run_churn_waves(cfg: &ChurnWavesConfig) -> ChurnWavesResult {
    cfg.validate();
    assert!(
        cfg.gossip.discovery.protocol,
        "churn_waves runs the discovery protocol; use ChurnWavesConfig::standard"
    );
    let peers = cfg.peers();

    let main_sched = payload_schedule(&cfg.main_workload);
    let mut schedules = vec![main_sched];
    for c in 1..=cfg.side_channels {
        schedules.push(retarget_schedule(
            payload_schedule(&cfg.side_workload),
            ChannelId(c as u16),
        ));
    }
    let schedule = merge_schedules(schedules);
    let last_issue = schedule.last().map(|s| s.at).unwrap_or(Time::ZERO);

    let mut params = NetParams::new(peers, cfg.gossip.clone(), cfg.orderer.clone());
    params.validation_per_tx = Duration::from_micros(300);
    params.discovery = DiscoveryMode::Protocol;
    params.extra_channels = (1..=cfg.side_channels)
        .map(|c| {
            let members = cfg.initial_members(c);
            // The endorser sits at the top of the block: the wave plan
            // removes members from the senior (low-id) end, so the
            // endorser never leaves and blocks keep flowing.
            let endorser = *members.last().expect("side channels are non-empty");
            ChannelSpec {
                channel: ChannelId(c as u16),
                members,
                orgs: 1,
                endorsers: vec![endorser],
                policy: EndorsementPolicy::AnyMember,
            }
        })
        .collect();
    params.churn = cfg.churn_events();

    let mut network = cfg.network.clone();
    network.nodes = FabricNet::node_count(&params);
    let net = FabricNet::new(params, schedule);
    let mut sim = Simulation::new(net, network, cfg.seed);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim.run_until(last_issue + cfg.drain);
    let events = sim.events_processed();
    let sim_end = sim.now();
    let net = sim.into_protocol();

    let mut channels = Vec::with_capacity(1 + cfg.side_channels);
    let mut convergence = Vec::new();
    let mut fairness_rows: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
    for c in 0..=cfg.side_channels {
        let channel = ChannelId(c as u16);
        let members = net.members_on(channel).to_vec();
        let mut total_bytes = 0u64;
        let mut discovery_bytes = 0u64;
        let shares: Vec<(usize, f64)> = members
            .iter()
            .map(|m| {
                let bytes = net.gossip(m.index()).stats_on(channel).map_or(0, |s| {
                    total_bytes += s.bytes_sent();
                    discovery_bytes += DISCOVERY_KINDS
                        .iter()
                        .map(|k| s.bytes_of_kind(k))
                        .sum::<u64>();
                    s.bytes_sent()
                });
                (m.index(), bytes as f64)
            })
            .collect();
        channels.push(WaveChannelReport {
            channel,
            members: members.len(),
            blocks: net.blocks_cut_on(channel),
            handoffs: net.handoffs_on(channel),
            leader_gaps: net.leader_gaps_on(channel).to_vec(),
            leaders: net.current_leaders_on(channel),
            gossip_bytes: total_bytes,
            discovery_bytes,
            discovery_share: if total_bytes == 0 {
                0.0
            } else {
                discovery_bytes as f64 / total_bytes as f64
            },
        });
        convergence.extend(net.convergence_on(channel).iter().cloned());
        fairness_rows.push((channel.to_string(), shares));
    }
    let fairness = FairnessReport::from_per_channel(&fairness_rows);
    ChurnWavesResult {
        channels,
        convergence,
        catchups: net.catchups().to_vec(),
        fairness,
        events,
        sim_end,
        net,
    }
}

/// Plain-text rendering of a churn-waves run, preset-report style.
pub fn render_churn_waves(title: &str, result: &ChurnWavesResult) -> String {
    let mut out = format!("== {title} ==\n");
    for c in &result.channels {
        let gaps: Vec<String> = c.leader_gaps.iter().map(|g| g.to_string()).collect();
        out.push_str(&format!(
            "{} {:>3} members | {:>4} blocks | handoffs {} | leaders {:?} | \
             discovery share {:.3} | gaps [{}]\n",
            c.channel,
            c.members,
            c.blocks,
            c.handoffs,
            c.leaders,
            c.discovery_share,
            gaps.join(", "),
        ));
    }
    for r in &result.convergence {
        let kind = if r.join { "join" } else { "leave" };
        match r.latency() {
            Some(lat) => out.push_str(&format!(
                "{kind} {} on {} at {} | converged in {lat} ({} observers)\n",
                r.peer,
                r.channel,
                r.at,
                r.expected.len(),
            )),
            None => out.push_str(&format!(
                "{kind} {} on {} at {} | NOT CONVERGED ({:.2} of {} observers)\n",
                r.peer,
                r.channel,
                r.at,
                r.fraction_at(result.sim_end),
                r.expected.len(),
            )),
        }
    }
    for cu in &result.catchups {
        match cu.latency() {
            Some(lat) => {
                let via = if cu.snapshot_height > 0 {
                    format!(
                        "snapshot@{} + {} replayed",
                        cu.snapshot_height, cu.blocks_replayed
                    )
                } else {
                    format!("{} replayed", cu.blocks_replayed)
                };
                out.push_str(&format!(
                    "{} caught up on {} (head {}) in {lat} | {} catch-up bytes | {via}\n",
                    cu.peer, cu.channel, cu.target, cu.bytes,
                ));
            }
            None => out.push_str(&format!(
                "{} on {} (head {}) | {} catch-up bytes so far | STILL CATCHING UP\n",
                cu.peer, cu.channel, cu.target, cu.bytes,
            )),
        }
    }
    out.push_str(&result.fairness.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> ChurnWavesResult {
        let mut cfg = ChurnWavesConfig::standard(2, 8, 20);
        cfg.seed = seed;
        run_churn_waves(&cfg)
    }

    #[test]
    fn plan_reserves_distinct_joiners_and_never_drains_a_channel() {
        let cfg = ChurnWavesConfig::standard(2, 8, 20);
        assert_eq!(cfg.peers(), 2 * 8 + 2 * 2 * 2 + 3);
        let events = cfg.churn_events();
        let mut joiners: Vec<PeerId> = events
            .iter()
            .filter(|e| e.action == ChurnAction::Join)
            .map(|e| e.peer)
            .collect();
        let unique = {
            let mut u = joiners.clone();
            u.sort_unstable();
            u.dedup();
            u.len()
        };
        assert_eq!(unique, joiners.len(), "every joiner is a fresh peer");
        joiners.sort_unstable();
        // Joins and leaves balance per wave; the flash crowd is extra.
        let leaves = events
            .iter()
            .filter(|e| e.action == ChurnAction::Leave)
            .count();
        assert_eq!(joiners.len(), leaves + cfg.flash_crowd);
    }

    #[test]
    fn every_join_and_leave_converges_with_finite_latency() {
        let res = quick(2);
        assert!(!res.convergence.is_empty());
        for r in &res.convergence {
            assert!(
                r.latency().is_some(),
                "unconverged {} of {} on {} (saw {:.2})",
                if r.join { "join" } else { "leave" },
                r.peer,
                r.channel,
                r.fraction_at(res.sim_end)
            );
        }
        // Joins converge within a couple of heartbeat/anti-entropy rounds;
        // leaves take at least the alive timeout (silence detection).
        let timeout = Duration::from_secs(3);
        for lat in res.stale_views().into_iter().flatten() {
            assert!(
                lat >= timeout,
                "a leave cannot be detected before the alive timeout: {lat}"
            );
        }
    }

    #[test]
    fn every_wave_beheads_the_leader_and_a_successor_stands_up() {
        let res = quick(3);
        for c in &res.channels[1..] {
            assert_eq!(c.handoffs, 2, "one hand-off per wave on {}", c.channel);
            assert_eq!(c.leader_gaps.len(), 2);
            for gap in &c.leader_gaps {
                assert!(
                    *gap >= Duration::from_secs(3),
                    "a silent leader cannot be succeeded before the alive timeout: {gap}"
                );
                assert!(
                    *gap < Duration::from_secs(10),
                    "leader gap must close promptly after expiry: {gap}"
                );
            }
            assert_eq!(c.leaders.len(), 1, "exactly one leader on {}", c.channel);
        }
        // The stable main channel never elects.
        assert_eq!(res.channels[0].handoffs, 0);
        assert!(res.channels[0].leader_gaps.is_empty());
    }

    #[test]
    fn flash_crowd_catches_up_and_discovery_bytes_are_counted() {
        let res = quick(5);
        let flash: Vec<&Catchup> = res
            .catchups
            .iter()
            .filter(|c| c.channel == ChannelId(1))
            .collect();
        assert!(flash.len() >= 3, "flash crowd recorded");
        for cu in &res.catchups {
            assert!(
                cu.latency().is_some(),
                "catch-up incomplete for {} on {}",
                cu.peer,
                cu.channel
            );
        }
        // Discovery overhead is visible in the byte economy but does not
        // drown dissemination.
        for c in &res.channels {
            assert!(
                c.discovery_share > 0.0,
                "no discovery bytes on {}",
                c.channel
            );
            assert!(
                c.discovery_share < 0.9,
                "discovery swamped {}: {}",
                c.channel,
                c.discovery_share
            );
        }
        assert_eq!(res.fairness.channels.len(), res.channels.len());
        assert!(res.fairness.overall_jain > 0.2);
    }

    #[test]
    fn delta_discovery_converges_like_full_and_spends_strictly_fewer_bytes() {
        let full_cfg = ChurnWavesConfig::standard(2, 8, 20);
        let full = run_churn_waves(&full_cfg);
        let mut delta_cfg = ChurnWavesConfig::standard_delta(2, 8, 20);
        delta_cfg.seed = full_cfg.seed;
        let delta = run_churn_waves(&delta_cfg);

        // Same churn plan, same convergence guarantees: every join and
        // leave still converges under the lean wire format.
        assert_eq!(delta.convergence.len(), full.convergence.len());
        for r in &delta.convergence {
            assert!(
                r.latency().is_some(),
                "delta mode failed to converge {} of {} on {}",
                if r.join { "join" } else { "leave" },
                r.peer,
                r.channel
            );
        }
        for cu in &delta.catchups {
            assert!(cu.latency().is_some(), "delta-mode catch-up incomplete");
        }
        for c in &delta.channels[1..] {
            assert_eq!(c.handoffs, 2, "one hand-off per wave on {}", c.channel);
            assert_eq!(c.leaders.len(), 1);
        }

        // The headline: strictly fewer discovery bytes, channel by channel
        // and overall — digests halve the request, deltas shrink the
        // response to the missing claims, adaptive cadence thins quiet
        // heartbeats.
        for (d, f) in delta.channels.iter().zip(&full.channels) {
            assert!(
                d.discovery_bytes < f.discovery_bytes,
                "{}: delta {} >= full {}",
                d.channel,
                d.discovery_bytes,
                f.discovery_bytes
            );
        }
        assert!(
            delta.overall_discovery_share() < full.overall_discovery_share(),
            "delta share {:.4} not below full share {:.4}",
            delta.overall_discovery_share(),
            full.overall_discovery_share()
        );
    }

    #[test]
    fn waves_are_deterministic_in_the_seed() {
        let a = quick(7);
        let b = quick(7);
        assert_eq!(a.events, b.events);
        assert_eq!(a.join_convergence(), b.join_convergence());
        assert_eq!(a.stale_views(), b.stale_views());
        assert_eq!(a.fairness.overall_jain, b.fairness.overall_jain);
    }

    #[test]
    fn render_reports_convergence_gaps_and_fairness() {
        let res = quick(1);
        let text = render_churn_waves("waves", &res);
        assert!(text.contains("discovery share"));
        assert!(text.contains("converged in"));
        assert!(text.contains("caught up"));
        assert!(text.contains("catch-up bytes"));
        assert!(text.contains("jain"));
    }
}
