//! The dissemination experiment (§V-A/B/C): 1 000 blocks of ≈160 KB
//! through a 100-peer organization, measuring per-peer and per-block
//! latency plus bandwidth — Figures 4 through 14.

use desim::{Duration, KindStats, NetworkConfig, Simulation};
use fabric_gossip::config::GossipConfig;
use fabric_orderer::cutter::BatchConfig;
use fabric_orderer::service::OrdererConfig;
use fabric_types::ids::PeerId;
use fabric_workload::schedule::{payload_schedule, PayloadWorkload};
use gossip_metrics::bandwidth::{BandwidthComparison, BandwidthSeries};
use gossip_metrics::latency::{Extremes, LatencyRecorder};

use crate::net::{FabricNet, NetParams};

/// Everything a dissemination run needs.
#[derive(Debug, Clone)]
pub struct DisseminationConfig {
    /// Organization size (paper: 100).
    pub peers: usize,
    /// The gossip protocol under test.
    pub gossip: GossipConfig,
    /// Transaction workload (paper: 50 000 tx ⇒ 1 000 blocks).
    pub workload: PayloadWorkload,
    /// Physical network model.
    pub network: NetworkConfig,
    /// Ordering service (batching + consensus latency).
    pub orderer: OrdererConfig,
    /// Extra idle time simulated after the last block, showing the
    /// background-traffic floor (Fig. 6 runs 500 s of idle tail).
    pub idle_tail: Duration,
    /// Constant background traffic added to the bandwidth series (the
    /// paper's ≈0.4 MB/s of non-dissemination system chatter).
    pub background_mbps: f64,
    /// Number of organizations (contiguous peer split; 1 = the paper's
    /// evaluation deployment).
    pub orgs: usize,
    /// Peers (taken from the high end of the roster) that free-ride:
    /// receive and serve but never forward.
    pub free_riders: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl DisseminationConfig {
    fn base(gossip: GossipConfig) -> Self {
        DisseminationConfig {
            peers: 100,
            gossip,
            workload: PayloadWorkload::default(),
            network: NetworkConfig::lan(102),
            orderer: OrdererConfig::kafka(BatchConfig::paper_dissemination()),
            idle_tail: Duration::from_secs(500),
            background_mbps: 0.4,
            orgs: 1,
            free_riders: 0,
            seed: 1,
        }
    }

    /// Figures 4, 5 and 6: the original Fabric gossip baseline.
    pub fn fig04_06_original() -> Self {
        Self::base(GossipConfig::original_fabric())
    }

    /// Figures 7, 8 and 9: enhanced gossip, `fout = 4`, `TTL = 9`.
    pub fn fig07_09_enhanced_f4() -> Self {
        Self::base(GossipConfig::enhanced_f4())
    }

    /// Figure 10: enhanced gossip with `f_leader_out = fout = 4` (the
    /// leader-overload ablation).
    pub fn fig10_heavy_leader() -> Self {
        Self::base(GossipConfig::enhanced_heavy_leader())
    }

    /// Figure 11: enhanced gossip without digests. The paper aborts this
    /// configuration after ≈160 s; 100 blocks cover the same span.
    pub fn fig11_no_digests() -> Self {
        let mut cfg = Self::base(GossipConfig::enhanced_no_digests());
        cfg.workload = PayloadWorkload::shortened(5_000); // 100 blocks
        cfg.idle_tail = Duration::from_secs(20);
        cfg
    }

    /// Figures 12, 13 and 14: enhanced gossip, `fout = 2`, `TTL = 19`.
    pub fn fig12_14_enhanced_f2() -> Self {
        Self::base(GossipConfig::enhanced_f2())
    }

    /// Scales the run down to `total_txs` transactions (tests, examples,
    /// quick benches). 50 transactions = one block.
    pub fn scaled(mut self, total_txs: usize) -> Self {
        self.workload.total_txs = total_txs;
        self.idle_tail = Duration::from_secs(20);
        self
    }
}

/// What a dissemination run produces.
#[derive(Debug)]
pub struct DisseminationResult {
    /// Blocks cut and disseminated.
    pub blocks: u64,
    /// Fraction of (block, peer) deliveries that happened (1.0 = every
    /// peer received every block).
    pub completeness: f64,
    /// Fastest/median/slowest peer CDFs (Figs. 4/7/12).
    pub peer_extremes: Option<Extremes>,
    /// Fastest/median/slowest block CDFs (Figs. 5/8/13).
    pub block_extremes: Option<Extremes>,
    /// Leader vs regular peer bandwidth (Figs. 6/9/10/11/14), background
    /// included.
    pub bandwidth: BandwidthComparison,
    /// Dissemination bytes sent by all peers (no background), in MB.
    pub peer_traffic_mb: f64,
    /// Bytes sent by the leader peer alone (no background), in MB.
    pub leader_sent_mb: f64,
    /// Bytes sent by the sampled regular peer (no background), in MB.
    pub regular_sent_mb: f64,
    /// Per-message-kind statistics.
    pub kinds: Vec<(String, KindStats)>,
    /// Simulation events processed (performance accounting).
    pub events: u64,
    /// The raw latency matrix for custom analysis.
    pub latency: LatencyRecorder,
}

impl DisseminationResult {
    /// Pooled latency CDF over every (block, peer) delivery.
    pub fn pooled_cdf(&self) -> gossip_metrics::cdf::Cdf {
        let peers = self.latency.all_peer_cdfs();
        let mut all = Vec::new();
        for c in peers {
            all.extend_from_slice(c.samples());
        }
        gossip_metrics::cdf::Cdf::new(all)
    }
}

/// Runs one dissemination experiment to completion.
pub fn run_dissemination(cfg: &DisseminationConfig) -> DisseminationResult {
    let schedule = payload_schedule(&cfg.workload);
    let last_issue = schedule.last().map(|s| s.at).unwrap_or(desim::Time::ZERO);

    let mut params = NetParams::new(cfg.peers, cfg.gossip.clone(), cfg.orderer.clone());
    // Dissemination blocks carry 50 padded transactions; validation at the
    // paper's conflict-experiment cost would saturate peers, and the paper
    // does not report it as a factor here — keep it light but nonzero.
    params.validation_per_tx = Duration::from_micros(300);
    params.endorsers = vec![PeerId(1)];
    params.full_ledgers = false;
    params.orgs = cfg.orgs;

    let mut network = cfg.network.clone();
    network.nodes = FabricNet::node_count(&params);

    let mut net = FabricNet::new(params, schedule);
    assert!(
        cfg.free_riders < cfg.peers,
        "at least one peer must forward"
    );
    for i in (cfg.peers - cfg.free_riders)..cfg.peers {
        net.set_forwarding(i, false);
    }
    let mut sim = Simulation::new(net, network, cfg.seed);
    sim.with_ctx(|net, ctx| net.start(ctx));

    // Ordering lag + dissemination tail: generous 40 s drain window, then
    // the idle tail the bandwidth figures show.
    let drain = Duration::from_secs(40);
    sim.run_until(last_issue + drain);
    sim.run_for(cfg.idle_tail);
    let end = sim.now();
    // The active phase (over which the figures' dotted averages run) ends
    // shortly after the last transaction; the drain and idle tail only
    // carry background chatter.
    let active_end = last_issue + Duration::from_secs(5);

    let bucket_secs = sim.metrics().bucket_width().as_secs_f64();
    let leader_node = desim::NodeId(0);
    // "A regular peer chosen at random": any non-leader, non-endorser peer.
    let regular_node = desim::NodeId(cfg.peers as u32 - 1);
    let leader = BandwidthSeries::new(
        "leader peer",
        sim.metrics().utilization_mbps(leader_node, end),
        bucket_secs,
    )
    .with_background(cfg.background_mbps);
    let regular = BandwidthSeries::new(
        "regular peer",
        sim.metrics().utilization_mbps(regular_node, end),
        bucket_secs,
    )
    .with_background(cfg.background_mbps);
    let active_buckets = (active_end.as_secs_f64() / bucket_secs).ceil() as usize;

    let peer_traffic_mb = (0..cfg.peers)
        .map(|i| sim.metrics().total_sent(desim::NodeId(i as u32)))
        .sum::<u64>() as f64
        / 1e6;
    let leader_sent_mb = sim.metrics().total_sent(leader_node) as f64 / 1e6;
    let regular_sent_mb = sim.metrics().total_sent(regular_node) as f64 / 1e6;
    let kinds: Vec<(String, KindStats)> = sim
        .metrics()
        .kinds()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
    let events = sim.events_processed();

    let net = sim.into_protocol();
    let latency = net.latency().clone();
    DisseminationResult {
        blocks: net.blocks_cut(),
        completeness: latency.completeness(),
        peer_extremes: latency.peer_extremes(),
        block_extremes: latency.block_extremes(),
        bandwidth: BandwidthComparison {
            leader,
            regular,
            active_buckets,
        },
        peer_traffic_mb,
        leader_sent_mb,
        regular_sent_mb,
        kinds,
        events,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: DisseminationConfig, txs: usize) -> DisseminationResult {
        let mut cfg = cfg.scaled(txs);
        cfg.peers = 40;
        cfg.network = NetworkConfig::lan(42);
        run_dissemination(&cfg)
    }

    #[test]
    fn enhanced_run_delivers_every_block_fast() {
        let res = quick(DisseminationConfig::fig07_09_enhanced_f4(), 500);
        assert_eq!(res.blocks, 10);
        assert_eq!(res.completeness, 1.0, "every peer must receive every block");
        assert_eq!(res.latency.block_count(), 10);
        let slowest = res.block_extremes.as_ref().unwrap().slowest.1.max();
        assert!(
            slowest < Duration::from_millis(800),
            "enhanced tail should be sub-second, got {slowest}"
        );
    }

    #[test]
    fn original_run_completes_but_with_a_heavy_tail() {
        let res = quick(DisseminationConfig::fig04_06_original(), 500);
        assert_eq!(
            res.completeness, 1.0,
            "pull must eventually deliver everything"
        );
        let slowest = res.block_extremes.as_ref().unwrap().slowest.1.max();
        assert!(
            slowest > Duration::from_millis(900),
            "original tail should span into the pull phase, got {slowest}"
        );
    }

    #[test]
    fn enhanced_beats_original_on_tail_latency_and_bandwidth() {
        let orig = quick(DisseminationConfig::fig04_06_original(), 1000);
        let enh = quick(DisseminationConfig::fig07_09_enhanced_f4(), 1000);
        let orig_tail = orig.pooled_cdf().quantile(0.999);
        let enh_tail = enh.pooled_cdf().quantile(0.999);
        assert!(
            enh_tail * 5 < orig_tail,
            "p99.9: enhanced {enh_tail} vs original {orig_tail}"
        );
        assert!(
            enh.peer_traffic_mb < orig.peer_traffic_mb * 0.75,
            "traffic: enhanced {:.1} MB vs original {:.1} MB",
            enh.peer_traffic_mb,
            orig.peer_traffic_mb
        );
    }

    #[test]
    fn heavy_leader_ablation_shows_the_imbalance() {
        let fair = quick(DisseminationConfig::fig07_09_enhanced_f4(), 600);
        let heavy = quick(DisseminationConfig::fig10_heavy_leader(), 600);
        // With f_leader_out = 1 the leader injects each block once; with
        // f_leader_out = fout = 4 it injects four copies on top of its
        // regular forwarding share.
        assert!(
            heavy.leader_sent_mb > fair.leader_sent_mb * 1.7,
            "f_leader_out = fout must overload the leader's egress: fair {:.1} MB vs heavy {:.1} MB",
            fair.leader_sent_mb,
            heavy.leader_sent_mb
        );
        // And the leader-vs-regular utilization gap widens as in Fig. 10.
        assert!(
            heavy.bandwidth.leader_ratio() > fair.bandwidth.leader_ratio(),
            "utilization ratio: fair {:.2} vs heavy {:.2}",
            fair.bandwidth.leader_ratio(),
            heavy.bandwidth.leader_ratio()
        );
    }

    #[test]
    fn no_digest_ablation_blows_up_traffic() {
        let with = quick(DisseminationConfig::fig07_09_enhanced_f4(), 600);
        let without = quick(DisseminationConfig::fig11_no_digests(), 600);
        assert!(
            without.peer_traffic_mb > with.peer_traffic_mb * 3.0,
            "no digests: {:.1} MB vs with digests: {:.1} MB",
            without.peer_traffic_mb,
            with.peer_traffic_mb
        );
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let a = quick(DisseminationConfig::fig07_09_enhanced_f4(), 300);
        let b = quick(DisseminationConfig::fig07_09_enhanced_f4(), 300);
        assert_eq!(a.events, b.events);
        assert_eq!(a.peer_traffic_mb, b.peer_traffic_mb);
        let qa = a.pooled_cdf().quantile(0.5);
        let qb = b.pooled_cdf().quantile(0.5);
        assert_eq!(qa, qb);
    }
}
