//! Cross-core channel sharding: one logical multichannel deployment,
//! partitioned over worker shards within a single run.
//!
//! Fabric scopes every protocol interaction — gossip, ordering, endorsement
//! — per channel. Channels interact only where they share peers (a shared
//! peer's serial validation pipeline, its per-peer stats, its discovery
//! view), so the channel-overlap graph is the exact coupling structure of a
//! deployment: two channels with no member in common cannot influence each
//! other's events in any way. [`plan_groups`] computes the connected
//! components of that graph, and [`run_sharded`] simulates each component
//! as its own [`FabricNet`] (own client, own ordering service, own virtual
//! clock and timing wheel) on the persistent worker pool
//! ([`desim::run_batch_with_workers`]), then merges the per-group event
//! streams deterministically by `(time, group, seq)`.
//!
//! # Determinism
//!
//! The merged stream is a pure function of the configuration and seed,
//! **independent of the shard count**: each group's RNG seed mixes only the
//! run seed and the group's index (never a worker id), each group's
//! simulation is bit-for-bit replayable on its own, and the merge key
//! `(time, group, seq)` is unique per event. `shards = 1` and `shards = N`
//! therefore produce identical results — the property the sharding
//! proptest pins.
//!
//! Components that share peers stay on one shard by construction; the
//! narrow seams the ISSUE calls out (shared per-peer stats, discovery,
//! ledger heads) never cross a shard boundary, which is what makes the
//! merge auditable: it is a k-way merge of already-closed event streams,
//! not a synchronization protocol.

use desim::{
    run_batch_with_workers, Duration, NetworkConfig, RngMode, Simulation, Time, TraceEvent,
};
use fabric_gossip::config::GossipConfig;
use fabric_orderer::cutter::BatchConfig;
use fabric_orderer::service::OrdererConfig;
use fabric_types::ids::{ChannelId, PeerId};
use fabric_types::transaction::EndorsementPolicy;
use fabric_workload::schedule::{
    merge_schedules, payload_schedule, retarget_schedule, PayloadWorkload,
};
use gossip_metrics::cdf::Cdf;

use crate::net::{ChannelSpec, FabricNet, NetParams};

/// One channel of a sharded deployment: its global membership and its
/// workload.
#[derive(Debug, Clone)]
pub struct ShardChannel {
    /// Members in ascending **global** peer-id order.
    pub members: Vec<PeerId>,
    /// Transactions the client issues on this channel (50 per block).
    pub txs: usize,
    /// Issue rate, transactions per second.
    pub rate_per_sec: f64,
    /// Wire padding per transaction.
    pub tx_padding: u32,
}

/// Everything a sharded multichannel run needs.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Total peers in the logical deployment (global ids `0..peers`).
    pub peers: usize,
    /// The channels; channel `c` keeps global index `c` in the results.
    pub channels: Vec<ShardChannel>,
    /// Gossip configuration shared by every channel instance.
    pub gossip: GossipConfig,
    /// Ordering service configuration, shared by every group's orderer.
    pub orderer: OrdererConfig,
    /// Physical network template; `nodes` is overridden per group.
    pub network: NetworkConfig,
    /// Engine RNG mode. New-scale presets run [`RngMode::Streams`] to get
    /// batched latency/ingress/loss sampling; [`RngMode::Unified`] keeps
    /// the historical draw ordering.
    pub rng_mode: RngMode,
    /// Worker shards (1 = serial reference run; results are identical).
    pub shards: usize,
    /// Record the merged `(time, group, seq, event)` stream. Costs a
    /// string per event — leave off for throughput measurements.
    pub record_trace: bool,
    /// Extra idle time simulated after each group's drain window.
    pub idle_tail: Duration,
    /// Run seed; group `g` derives its own seed from `(seed, g)` only.
    pub seed: u64,
}

impl ShardedConfig {
    /// A deployment of `groups` disjoint clusters, each `cluster_peers`
    /// wide with two overlapping channels (the consortium shape: an
    /// interior band of peers serves both), issuing `txs` transactions per
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_peers < 8` (the overlap windows need room).
    pub fn clustered(groups: usize, cluster_peers: usize, txs: usize) -> Self {
        assert!(cluster_peers >= 8, "clusters need at least 8 peers");
        let window = cluster_peers * 2 / 3;
        let mut channels = Vec::with_capacity(groups * 2);
        for g in 0..groups {
            let base = (g * cluster_peers) as u32;
            let lo_a = base;
            let hi_a = base + window as u32;
            let lo_b = base + (cluster_peers - window) as u32;
            let hi_b = base + cluster_peers as u32;
            for (lo, hi) in [(lo_a, hi_a), (lo_b, hi_b)] {
                channels.push(ShardChannel {
                    members: (lo..hi).map(PeerId).collect(),
                    txs,
                    rate_per_sec: 50.0 / 1.5,
                    tx_padding: 3_100,
                });
            }
        }
        let peers = groups * cluster_peers;
        ShardedConfig {
            peers,
            channels,
            gossip: GossipConfig::enhanced_f4(),
            orderer: OrdererConfig::kafka(BatchConfig::paper_dissemination()),
            network: NetworkConfig::lan(0),
            rng_mode: RngMode::Streams,
            shards: std::thread::available_parallelism()
                .map(|cores| cores.get())
                .unwrap_or(1),
            record_trace: false,
            idle_tail: Duration::from_secs(5),
            seed: 1,
        }
    }

    /// The `large` preset: thousands of peers across hundreds of channels
    /// — the production-scale class the serial engine cannot reach in a
    /// bench-job budget.
    pub fn large() -> Self {
        Self::clustered(126, 16, 600)
    }

    /// `large` scaled to a quick-bench budget (same shape, shorter
    /// workload).
    pub fn large_quick() -> Self {
        Self::clustered(126, 16, 150)
    }

    /// A smoke-sized `large` slice for tests and golden pins.
    pub fn large_smoke() -> Self {
        Self::clustered(6, 16, 100)
    }
}

/// One connected component of the channel-overlap graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardGroup {
    /// Global channel indices in this component, ascending.
    pub channels: Vec<usize>,
    /// Union of the channels' members, ascending global ids.
    pub members: Vec<PeerId>,
}

/// Partitions channels into connected components of the overlap graph:
/// channels sharing any member land in the same group (transitively).
/// Groups come back ordered by their smallest channel index.
pub fn plan_groups(memberships: &[Vec<PeerId>]) -> Vec<ShardGroup> {
    let mut parent: Vec<usize> = (0..memberships.len()).collect();
    fn find(parent: &mut [usize], mut c: usize) -> usize {
        while parent[c] != c {
            parent[c] = parent[parent[c]];
            c = parent[c];
        }
        c
    }
    let mut first_channel_of_peer: std::collections::HashMap<PeerId, usize> =
        std::collections::HashMap::new();
    for (c, members) in memberships.iter().enumerate() {
        for &peer in members {
            match first_channel_of_peer.entry(peer) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(c);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let a = find(&mut parent, *slot.get());
                    let b = find(&mut parent, c);
                    // Root at the smaller index so group order is stable.
                    let (lo, hi) = (a.min(b), a.max(b));
                    parent[hi] = lo;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, ShardGroup> =
        std::collections::BTreeMap::new();
    for c in 0..memberships.len() {
        let root = find(&mut parent, c);
        let group = groups.entry(root).or_insert_with(|| ShardGroup {
            channels: Vec::new(),
            members: Vec::new(),
        });
        group.channels.push(c);
    }
    for group in groups.values_mut() {
        let mut members: Vec<PeerId> = group
            .channels
            .iter()
            .flat_map(|&c| memberships[c].iter().copied())
            .collect();
        members.sort_unstable();
        members.dedup();
        group.members = members;
    }
    groups.into_values().collect()
}

/// One channel's measured outcome, in global channel order.
#[derive(Debug, Clone)]
pub struct ShardChannelOutcome {
    /// Global channel index (position in [`ShardedConfig::channels`]).
    pub channel: usize,
    /// The group (shard unit) that simulated it.
    pub group: usize,
    /// Member count.
    pub members: usize,
    /// Blocks cut on this channel's chain.
    pub blocks: u64,
    /// Fraction of (block, member) deliveries that happened.
    pub completeness: f64,
    /// Median dissemination latency over all (block, member) cells.
    pub p50: Duration,
    /// 99.9th percentile of the same pool.
    pub p999: Duration,
}

/// One event of the merged cross-shard stream. Ordered by
/// `(time, group, seq)` — unique per event, independent of shard count.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MergedEvent {
    /// Virtual instant within the event's group.
    pub at: Time,
    /// The group whose simulation processed it.
    pub group: usize,
    /// The group-local total-order sequence number.
    pub seq: u64,
    /// Rendered event (delivery, timer or status change).
    pub what: String,
}

/// What a sharded run produces.
#[derive(Debug)]
pub struct ShardedResult {
    /// Per-channel outcomes, global channel order.
    pub channels: Vec<ShardChannelOutcome>,
    /// Connected components simulated (the parallelism grain).
    pub groups: usize,
    /// Delivery-weighted overall completeness.
    pub completeness: f64,
    /// Blocks cut across all channels.
    pub blocks: u64,
    /// Simulation events processed across all groups.
    pub events: u64,
    /// Latest virtual end time over the groups.
    pub sim_end: Time,
    /// The merged event stream, when [`ShardedConfig::record_trace`] was
    /// set.
    pub trace: Option<Vec<MergedEvent>>,
}

struct GroupOutcome {
    channels: Vec<ShardChannelOutcome>,
    blocks: u64,
    events: u64,
    end: Time,
    trace: Vec<TraceEvent>,
}

/// Runs one sharded multichannel experiment to completion.
///
/// # Panics
///
/// Panics on an empty channel list, unsorted or out-of-range memberships,
/// or an empty workload.
pub fn run_sharded(cfg: &ShardedConfig) -> ShardedResult {
    assert!(!cfg.channels.is_empty(), "need at least one channel");
    for (c, chan) in cfg.channels.iter().enumerate() {
        assert!(!chan.members.is_empty(), "channel {c} has no members");
        assert!(
            chan.members.windows(2).all(|w| w[0] < w[1]),
            "channel {c} members must be ascending"
        );
        assert!(
            chan.members.iter().all(|p| p.index() < cfg.peers),
            "channel {c} member outside the deployment"
        );
        assert!(chan.txs >= 1, "channel {c} has an empty workload");
    }
    let memberships: Vec<Vec<PeerId>> = cfg.channels.iter().map(|c| c.members.clone()).collect();
    let groups = plan_groups(&memberships);

    let outcomes: Vec<GroupOutcome> =
        run_batch_with_workers((0..groups.len()).collect(), cfg.shards.max(1), |g| {
            run_group(cfg, &groups[g], g)
        });

    let mut channels: Vec<ShardChannelOutcome> =
        outcomes.iter().flat_map(|o| o.channels.clone()).collect();
    channels.sort_by_key(|c| c.channel);
    let mut expected = 0.0f64;
    let mut seen = 0.0f64;
    for c in &channels {
        let cells = (c.blocks * c.members as u64) as f64;
        expected += cells;
        seen += cells * c.completeness;
    }
    let trace = if cfg.record_trace {
        let mut merged: Vec<MergedEvent> = outcomes
            .iter()
            .enumerate()
            .flat_map(|(g, o)| {
                o.trace.iter().map(move |e| MergedEvent {
                    at: e.at,
                    group: g,
                    seq: e.seq,
                    what: e.what.clone(),
                })
            })
            .collect();
        merged.sort();
        Some(merged)
    } else {
        None
    };
    ShardedResult {
        groups: groups.len(),
        completeness: if expected > 0.0 { seen / expected } else { 1.0 },
        blocks: outcomes.iter().map(|o| o.blocks).sum(),
        events: outcomes.iter().map(|o| o.events).sum(),
        sim_end: outcomes.iter().map(|o| o.end).max().unwrap_or(Time::ZERO),
        channels,
        trace,
    }
}

/// Simulates one connected component as its own [`FabricNet`] deployment
/// with densely remapped local peer ids (ascending order preserved, so
/// leader election picks the same relative peer as it would globally).
fn run_group(cfg: &ShardedConfig, group: &ShardGroup, group_index: usize) -> GroupOutcome {
    let local_of = |peer: PeerId| -> PeerId {
        let slot = group
            .members
            .binary_search(&peer)
            .expect("group members cover its channels");
        PeerId(slot as u32)
    };
    let local_members: Vec<Vec<PeerId>> = group
        .channels
        .iter()
        .map(|&c| {
            cfg.channels[c]
                .members
                .iter()
                .map(|&p| local_of(p))
                .collect()
        })
        .collect();

    let mut params = NetParams::new(group.members.len(), cfg.gossip.clone(), cfg.orderer.clone());
    // Dissemination-style commit cost, as in `run_dissemination`.
    params.validation_per_tx = Duration::from_micros(300);
    params.full_ledgers = false;
    params.orgs = 1;
    params.default_members = Some(local_members[0].clone());
    params.endorsers = vec![local_members[0][0]];
    params.policy = EndorsementPolicy::AnyMember;
    params.extra_channels = local_members[1..]
        .iter()
        .enumerate()
        .map(|(i, members)| ChannelSpec {
            channel: ChannelId((i + 1) as u16),
            members: members.clone(),
            orgs: 1,
            endorsers: vec![members[0]],
            policy: EndorsementPolicy::AnyMember,
        })
        .collect();

    let schedule = merge_schedules(
        group
            .channels
            .iter()
            .enumerate()
            .map(|(local, &c)| {
                let chan = &cfg.channels[c];
                let workload = PayloadWorkload {
                    total_txs: chan.txs,
                    rate_per_sec: chan.rate_per_sec,
                    tx_padding: chan.tx_padding,
                };
                retarget_schedule(payload_schedule(&workload), ChannelId(local as u16))
            })
            .collect(),
    );
    let last_issue = schedule.last().map(|s| s.at).unwrap_or(Time::ZERO);

    let mut network = cfg.network.clone();
    network.nodes = FabricNet::node_count(&params);
    let net = FabricNet::new(params, schedule);
    // Group seeds mix the run seed with the group index only — never a
    // worker or shard id — so results cannot depend on the shard count.
    let seed = cfg
        .seed
        .wrapping_add((group_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut sim = Simulation::with_rng_mode(net, network, seed, cfg.rng_mode);
    if cfg.record_trace {
        sim.set_trace(true);
    }
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim.run_until(last_issue + Duration::from_secs(40));
    sim.run_for(cfg.idle_tail);

    let events = sim.events_processed();
    let end = sim.now();
    let trace = sim.take_trace();
    let net = sim.into_protocol();
    let channels = group
        .channels
        .iter()
        .enumerate()
        .map(|(local, &c)| {
            let channel = ChannelId(local as u16);
            let rec = net.latency_on(channel).expect("group channel exists");
            let members = local_members[local].len();
            let mut pool = Vec::new();
            for slot in 0..members {
                pool.extend(rec.peer_latencies(slot));
            }
            let cdf = Cdf::new(pool);
            let (p50, p999) = if cdf.is_empty() {
                (Duration::ZERO, Duration::ZERO)
            } else {
                (cdf.quantile(0.5), cdf.quantile(0.999))
            };
            ShardChannelOutcome {
                channel: c,
                group: group_index,
                members,
                blocks: net.blocks_cut_on(channel),
                completeness: rec.completeness(),
                p50,
                p999,
            }
        })
        .collect();
    GroupOutcome {
        channels,
        blocks: net.blocks_cut(),
        events,
        end,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(ids: &[u32]) -> Vec<PeerId> {
        ids.iter().copied().map(PeerId).collect()
    }

    #[test]
    fn disjoint_channels_form_their_own_groups() {
        let groups = plan_groups(&[peers(&[0, 1]), peers(&[2, 3]), peers(&[4, 5])]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].channels, vec![0]);
        assert_eq!(groups[1].members, peers(&[2, 3]));
    }

    #[test]
    fn overlap_is_transitive() {
        // 0 ~ 1 (share peer 2), 1 ~ 2 (share peer 4) ⇒ one component,
        // channel 3 stays alone.
        let groups = plan_groups(&[
            peers(&[0, 1, 2]),
            peers(&[2, 3, 4]),
            peers(&[4, 5]),
            peers(&[9]),
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].channels, vec![0, 1, 2]);
        assert_eq!(groups[0].members, peers(&[0, 1, 2, 3, 4, 5]));
        assert_eq!(groups[1].channels, vec![3]);
    }

    #[test]
    fn sharded_smoke_run_is_complete_and_deterministic() {
        let mut cfg = ShardedConfig::clustered(3, 9, 60);
        cfg.shards = 2;
        let a = run_sharded(&cfg);
        let b = run_sharded(&cfg);
        assert_eq!(a.groups, 3);
        assert_eq!(a.channels.len(), 6);
        assert_eq!(a.completeness, 1.0, "every member must get every block");
        assert!(a.blocks > 0);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_end, b.sim_end);
    }

    #[test]
    fn shard_count_does_not_change_the_merged_stream() {
        let mut cfg = ShardedConfig::clustered(3, 9, 40);
        cfg.record_trace = true;
        cfg.shards = 1;
        let serial = run_sharded(&cfg);
        cfg.shards = 4;
        let sharded = run_sharded(&cfg);
        assert_eq!(serial.events, sharded.events);
        assert_eq!(serial.trace, sharded.trace);
        let trace = serial.trace.unwrap();
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0] < w[1]), "strict merge order");
    }
}
