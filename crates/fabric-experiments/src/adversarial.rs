//! The adversarial experiment family: Byzantine fault injection over the
//! discovery protocol, reported as *surviving guarantees* and *measured
//! degradation*.
//!
//! Beyond the paper (which assumes crash faults only): each of the five
//! attackers from [`fabric_gossip::scenario`] runs against a small
//! deployment twice — a benign baseline and an attacked run — and the
//! outcome records, per attacker, which guarantees held (asserted
//! booleans with a diagnostic detail) and what the attack cost
//! (baseline-vs-attacked metrics). The result is the machine-readable
//! [`AdversarialReport`]; CI persists its JSON next to
//! `BENCH_dissemination.json` and fails when any guarantee falls.
//!
//! | attacker             | survives (asserted)                      | degrades (measured)      |
//! |----------------------|------------------------------------------|--------------------------|
//! | stale replay         | no resurrection below obituary           | alive-msg bytes          |
//! | obituary forgery     | refutation via incarnation bump          | disruption window (s)    |
//! | selective forwarding | joiner still converges                   | join convergence (s)     |
//! | flood amplification  | view agreement + exactly one leader      | discovery bytes          |
//! | eclipse              | honest views clean; one honest seed wins | time-to-escape (s)       |
//!
//! Everything is deterministic: the harness owns every RNG stream (see
//! the [`fabric_gossip::scenario`] determinism contract), so the same
//! [`AdversarialConfig`] always yields a byte-identical report.

use desim::Duration;
use fabric_gossip::config::GossipConfig;
use fabric_gossip::scenario::{
    DiscoveryHarness, Eclipser, Flooder, ObituaryForger, Predicate, ScenarioOp, SelectiveForwarder,
    StaleReplayer,
};
use fabric_types::ids::{ChannelId, PeerId};

/// Configuration of one adversarial sweep.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Wire-format label carried into the report (`"full"` / `"delta"`).
    pub mode: &'static str,
    /// The gossip configuration every peer runs (discovery protocol on).
    pub gossip: GossipConfig,
}

impl AdversarialConfig {
    /// The standard sweep: full anti-entropy exchanges, discovery timers
    /// tightened so convergence happens in seconds of scripted time
    /// (the same shape the discovery suite uses).
    pub fn standard() -> Self {
        let mut gossip = GossipConfig::enhanced_f4().with_discovery_protocol();
        gossip.discovery.heartbeat_interval = Duration::from_secs(1);
        gossip.discovery.anti_entropy_interval = Duration::from_secs(1);
        gossip.membership.alive_timeout = Duration::from_secs(5);
        AdversarialConfig {
            mode: "full",
            gossip,
        }
    }

    /// The standard sweep over the byte-lean wire format: delta
    /// anti-entropy plus adaptive heartbeat cadence. The guarantees must
    /// be wire-format independent.
    pub fn standard_delta() -> Self {
        let mut cfg = Self::standard();
        cfg.mode = "delta";
        cfg.gossip.discovery.delta = true;
        cfg.gossip.discovery.adaptive_heartbeat = true;
        cfg
    }
}

/// One asserted guarantee: did it survive the attack?
#[derive(Debug, Clone)]
pub struct Guarantee {
    /// Short stable name (`"no-resurrection"`, ...).
    pub name: &'static str,
    /// Whether the guarantee held in the attacked run.
    pub held: bool,
    /// Diagnostic detail (the failure message, or what was observed).
    pub detail: String,
}

/// One measured degradation: the benign baseline vs the attacked run.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Short stable name (`"alive_msg_bytes"`, ...).
    pub name: &'static str,
    /// The benign run's value.
    pub baseline: f64,
    /// The attacked run's value.
    pub attacked: f64,
    /// Unit label (`"bytes"`, `"secs"`).
    pub unit: &'static str,
}

impl Metric {
    /// Attacked over baseline — how many times worse the attack made it.
    /// Always finite, so it can live inside the JSON artifact (JSON has
    /// no `inf`/`NaN`): a zero-cost baseline (e.g. a disruption window
    /// that simply does not exist in the benign run) reports the attacked
    /// value itself as the factor, clamped to at least 1.0, and 1.0 when
    /// the attack added nothing either.
    pub fn inflation(&self) -> f64 {
        if self.baseline > 0.0 {
            self.attacked / self.baseline
        } else if self.attacked == 0.0 {
            1.0
        } else {
            self.attacked.max(1.0)
        }
    }
}

/// Everything one attacker's scenario produced.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The attacker's stable name (matches [`fabric_gossip::scenario`]).
    pub attacker: &'static str,
    /// Which peer ran which Byzantine behavior in the attacked run — the
    /// part of the setup the attacker name alone doesn't pin down.
    pub roster: Vec<(PeerId, &'static str)>,
    /// The asserted guarantees.
    pub guarantees: Vec<Guarantee>,
    /// The measured degradations.
    pub metrics: Vec<Metric>,
}

impl AttackOutcome {
    /// Whether every guarantee survived this attacker.
    pub fn all_held(&self) -> bool {
        self.guarantees.iter().all(|g| g.held)
    }
}

/// The machine-readable result of one adversarial sweep.
#[derive(Debug, Clone)]
pub struct AdversarialReport {
    /// Wire-format label of the sweep (`"full"` / `"delta"`).
    pub mode: &'static str,
    /// The harness attack-RNG seed the sweep ran under. Together with the
    /// wire format and each outcome's roster, the artifact pins down the
    /// whole setup: re-running the sweep from the file alone reproduces
    /// it byte-identically (per-peer engine seeds are `9000 + index` by
    /// the harness determinism contract).
    pub seed: u64,
    /// One outcome per attacker, in catalog order.
    pub outcomes: Vec<AttackOutcome>,
}

impl AdversarialReport {
    /// Whether every guarantee of every attacker survived.
    pub fn all_held(&self) -> bool {
        self.outcomes.iter().all(AttackOutcome::all_held)
    }

    /// Renders the report as JSON, one attacker per line (the same
    /// hand-built style as `BENCH_dissemination.json` — no JSON
    /// dependency exists in this offline workspace).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"wire_format\": \"{}\",\n", self.mode));
        json.push_str(&format!("  \"seed\": {},\n", self.seed));
        json.push_str(&format!("  \"all_held\": {},\n", self.all_held()));
        json.push_str("  \"attacks\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let roster = o
                .roster
                .iter()
                .map(|(p, behavior)| format!("{{\"peer\": {}, \"behavior\": \"{behavior}\"}}", p.0))
                .collect::<Vec<_>>()
                .join(", ");
            let guarantees = o
                .guarantees
                .iter()
                .map(|g| {
                    format!(
                        "{{\"name\": \"{}\", \"held\": {}, \"detail\": \"{}\"}}",
                        g.name,
                        g.held,
                        escape(&g.detail)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let metrics = o
                .metrics
                .iter()
                .map(|m| {
                    format!(
                        "{{\"name\": \"{}\", \"baseline\": {:.3}, \"attacked\": {:.3}, \"inflation\": {:.3}, \"unit\": \"{}\"}}",
                        m.name, m.baseline, m.attacked, m.inflation(), m.unit
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            json.push_str(&format!(
                "    {{\"attacker\": \"{}\", \"all_held\": {}, \"roster\": [{}], \"guarantees\": [{}], \"metrics\": [{}]}}{}\n",
                o.attacker,
                o.all_held(),
                roster,
                guarantees,
                metrics,
                if i + 1 < self.outcomes.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }
}

/// Minimal JSON string escaping for diagnostic details.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Runs the whole attacker catalog under `cfg` and collects the report.
pub fn run_adversarial(cfg: &AdversarialConfig) -> AdversarialReport {
    AdversarialReport {
        mode: cfg.mode,
        seed: DiscoveryHarness::ATTACK_SEED,
        outcomes: vec![
            stale_replay(cfg),
            obituary_forgery(cfg),
            selective_forwarding(cfg),
            flood_amplification(cfg),
            eclipse(cfg),
        ],
    }
}

/// Paper-style text rendering of one sweep.
pub fn render_adversarial(report: &AdversarialReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Adversarial sweep — {} anti-entropy ({})\n",
        report.mode,
        if report.all_held() {
            "all guarantees held"
        } else {
            "GUARANTEES VIOLATED"
        }
    ));
    for o in &report.outcomes {
        out.push_str(&format!("  {}\n", o.attacker));
        for g in &o.guarantees {
            out.push_str(&format!(
                "    [{}] {}: {}\n",
                if g.held { "ok" } else { "FAIL" },
                g.name,
                g.detail
            ));
        }
        for m in &o.metrics {
            let ratio = match m.inflation() {
                r if r.is_finite() => format!(" ({r:.2}x)"),
                _ => String::new(),
            };
            out.push_str(&format!(
                "    {} {}: baseline {:.1} -> attacked {:.1}{ratio}\n",
                m.name, m.unit, m.baseline, m.attacked
            ));
        }
    }
    out
}

/// The three core invariants every attacked network must settle to.
fn core_asserts(channel: usize) -> [ScenarioOp; 3] {
    [
        ScenarioOp::Assert(Predicate::ViewAgreement { channel }),
        ScenarioOp::Assert(Predicate::ExactlyOneLeader { channel }),
        ScenarioOp::Assert(Predicate::NoResurrectionBelowObituary { channel }),
    ]
}

/// Attacker 1 — stale-incarnation replay. A member leaves and is reaped
/// while the attacker replays its first-life claims; the reaped peer must
/// stay dead, and the spam shows up as alive-msg bytes.
fn stale_replay(cfg: &AdversarialConfig) -> AttackOutcome {
    let run = |attach: bool| -> (Result<(), String>, u64) {
        let members: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(6, vec![members], &cfg.gossip);
        if attach {
            net.set_byzantine(PeerId(4), Box::new(StaleReplayer::new(2)));
        }
        let mut script = vec![
            ScenarioOp::Wait { secs: 3 },
            ScenarioOp::Leave {
                channel: 0,
                peer: PeerId(3),
            },
            ScenarioOp::Wait { secs: 20 },
        ];
        script.extend(core_asserts(0));
        let res = net.run_script(&script).map_err(|e| e.to_string());
        (res, net.wire_bytes_of_kind("alive-msg"))
    };
    let (_, baseline_bytes) = run(false);
    let (attacked, attacked_bytes) = run(true);
    AttackOutcome {
        attacker: "stale-replay",
        roster: vec![(PeerId(4), "stale-replay")],
        guarantees: vec![Guarantee {
            name: "no-resurrection-below-obituary",
            held: attacked.is_ok(),
            detail: attacked
                .err()
                .unwrap_or_else(|| "replayed claims stayed inert; views settled".into()),
        }],
        metrics: vec![Metric {
            name: "alive_msg_bytes",
            baseline: baseline_bytes as f64,
            attacked: attacked_bytes as f64,
            unit: "bytes",
        }],
    }
}

/// Attacker 2 — obituary forgery. The forged deaths must disrupt views
/// only for a bounded window until the victim's incarnation bump refutes
/// them; the window is the measured cost.
fn obituary_forgery(cfg: &AdversarialConfig) -> AttackOutcome {
    let victim = PeerId(2);
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(6, vec![members], &cfg.gossip);
    net.run_for(Duration::from_secs(3));
    let inc_before = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .and_then(|e| e.claim_of(victim))
        .map(|c| c.incarnation)
        .unwrap_or(0);

    net.set_byzantine(PeerId(4), Box::new(ObituaryForger::new(victim, 2)));
    let mut disrupted_at = None;
    let mut healed_at = None;
    for tick in 0..60u64 {
        net.run_for(Duration::from_millis(500));
        let converged = net.views_converged(0);
        if !converged && disrupted_at.is_none() {
            disrupted_at = Some(tick);
        }
        if converged && disrupted_at.is_some() {
            healed_at = Some(tick);
            break;
        }
    }
    let disruption_secs = match (disrupted_at, healed_at) {
        (Some(d), Some(h)) => (h - d) as f64 * 0.5,
        _ => 30.0, // never healed (or never landed): report the horizon
    };
    let inc_after = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .and_then(|e| e.claim_of(victim))
        .map(|c| c.incarnation)
        .unwrap_or(0);
    let refuted = healed_at.is_some() && inc_after > inc_before;
    let settled = net.check(&Predicate::NoResurrectionBelowObituary { channel: 0 });
    AttackOutcome {
        attacker: "obituary-forgery",
        roster: vec![(PeerId(4), "obituary-forger")],
        guarantees: vec![
            Guarantee {
                name: "refutation-via-incarnation-bump",
                held: refuted,
                detail: format!(
                    "victim incarnation {inc_before} -> {inc_after}, views healed: {}",
                    healed_at.is_some()
                ),
            },
            Guarantee {
                name: "no-resurrection-below-obituary",
                held: settled.is_ok(),
                detail: settled
                    .err()
                    .unwrap_or_else(|| "the bump is a new life, not a resurrection".into()),
            },
        ],
        metrics: vec![Metric {
            name: "disruption_window",
            baseline: 0.0,
            attacked: disruption_secs,
            unit: "secs",
        }],
    }
}

/// Attacker 3 — selective forwarding. The attacker drops anti-entropy
/// toward two targets; a runtime joiner must still converge through the
/// redundant honest paths, measurably slower.
fn selective_forwarding(cfg: &AdversarialConfig) -> AttackOutcome {
    const LIMIT: u64 = 30;
    let join_secs = |attach: bool| -> Option<u64> {
        let members: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(8, vec![members], &cfg.gossip);
        if attach {
            net.set_byzantine(
                PeerId(4),
                Box::new(SelectiveForwarder::new(vec![PeerId(0), PeerId(1)])),
            );
        }
        net.run_for(Duration::from_secs(3));
        net.join(0, PeerId(6));
        let secs = net.converge_within(0, LIMIT)?;
        (net.leaders(0).len() == 1).then_some(secs)
    };
    let baseline = join_secs(false);
    let attacked = join_secs(true);
    AttackOutcome {
        attacker: "selective-forwarding",
        roster: vec![(PeerId(4), "selective-forwarder")],
        guarantees: vec![Guarantee {
            name: "joiner-converges-on-redundancy",
            held: attacked.is_some(),
            detail: match attacked {
                Some(s) => format!("joiner converged in {s}s despite dropped anti-entropy"),
                None => format!("joiner failed to converge within {LIMIT}s"),
            },
        }],
        metrics: vec![Metric {
            name: "join_convergence",
            baseline: baseline.unwrap_or(LIMIT) as f64,
            attacked: attacked.unwrap_or(LIMIT) as f64,
            unit: "secs",
        }],
    }
}

/// Attacker 4 — flood amplification. The spam is protocol-valid and
/// idempotent, so views and leadership must hold; the inflation of the
/// discovery byte bill is the measured damage.
fn flood_amplification(cfg: &AdversarialConfig) -> AttackOutcome {
    let run = |attach: bool| -> (Result<(), String>, u64) {
        let members: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(6, vec![members], &cfg.gossip);
        if attach {
            net.set_byzantine(PeerId(4), Box::new(Flooder::new(6)));
        }
        let mut script = vec![ScenarioOp::Wait { secs: 30 }];
        script.extend(core_asserts(0));
        let res = net.run_script(&script).map_err(|e| e.to_string());
        (res, net.discovery_wire_bytes())
    };
    let (_, baseline_bytes) = run(false);
    let (attacked, attacked_bytes) = run(true);
    AttackOutcome {
        attacker: "flood-amplification",
        roster: vec![(PeerId(4), "flooder")],
        guarantees: vec![Guarantee {
            name: "views-and-leadership-hold",
            held: attacked.is_ok(),
            detail: attacked
                .err()
                .unwrap_or_else(|| "flooded views still agree with one leader".into()),
        }],
        metrics: vec![Metric {
            name: "discovery_bytes",
            baseline: baseline_bytes as f64,
            attacked: attacked_bytes as f64,
            unit: "bytes",
        }],
    }
}

/// Attacker 5 — eclipse on a runtime joiner. A victim bootstrapping
/// through the attacker alone is starved indefinitely without leaking
/// into honest views; one honest bootstrap seed breaks the eclipse in
/// measured time.
fn eclipse(cfg: &AdversarialConfig) -> AttackOutcome {
    const LIMIT: u64 = 60;
    let members: Vec<PeerId> = (0..5).map(PeerId).collect();
    let attacker = PeerId(3);
    let victim = PeerId(5);
    let honest: Vec<PeerId> = members.iter().copied().filter(|p| *p != attacker).collect();

    // Full eclipse: the attacker is the only seed; the honest world must
    // stay clean (the victim never leaks into it).
    let mut net = DiscoveryHarness::new(6, vec![members.clone()], &cfg.gossip);
    net.run_for(Duration::from_secs(3));
    net.set_byzantine(attacker, Box::new(Eclipser::new(victim)));
    net.join_via(0, victim, &[attacker]);
    net.run_for(Duration::from_secs(20));
    let eclipsed_view = net.view_of(victim, 0);
    let honest_clean = net.views_agree_among(0, &honest, &members);

    // One honest seed: measured time until any honest peer enters the
    // victim's view. The benign baseline joins through the same two
    // seeds with no attacker attached.
    let escape = |attach: bool| -> Option<u64> {
        let mut net = DiscoveryHarness::new(6, vec![members.clone()], &cfg.gossip);
        net.run_for(Duration::from_secs(3));
        if attach {
            net.set_byzantine(attacker, Box::new(Eclipser::new(victim)));
        }
        net.join_via(0, victim, &[attacker, PeerId(0)]);
        for elapsed in 0..=LIMIT {
            let view = net.view_of(victim, 0);
            if honest.iter().any(|h| view.contains(h)) {
                return Some(elapsed);
            }
            if elapsed < LIMIT {
                net.run_for(Duration::from_secs(1));
            }
        }
        None
    };
    let baseline = escape(false);
    let attacked = escape(true);
    AttackOutcome {
        attacker: "eclipse",
        roster: vec![(attacker, "eclipser")],
        guarantees: vec![
            Guarantee {
                name: "honest-views-stay-clean",
                held: honest_clean && eclipsed_view == vec![attacker],
                detail: format!(
                    "fully eclipsed victim sees {eclipsed_view:?}; honest views clean: \
                     {honest_clean}"
                ),
            },
            Guarantee {
                name: "one-honest-seed-defeats-it",
                held: attacked.is_some(),
                detail: match attacked {
                    Some(s) => format!("escaped through the honest seed in {s}s"),
                    None => format!("still eclipsed after {LIMIT}s despite an honest seed"),
                },
            },
        ],
        metrics: vec![Metric {
            name: "time_to_escape",
            baseline: baseline.unwrap_or(LIMIT) as f64,
            attacked: attacked.unwrap_or(LIMIT) as f64,
            unit: "secs",
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_sweep_holds_every_guarantee_and_measures_every_attack() {
        let report = run_adversarial(&AdversarialConfig::standard());
        assert_eq!(report.mode, "full");
        assert_eq!(report.outcomes.len(), 5, "the whole attacker catalog");
        for o in &report.outcomes {
            assert!(
                !o.guarantees.is_empty() && !o.metrics.is_empty(),
                "{}: every attacker asserts a guarantee and measures a cost",
                o.attacker
            );
        }
        assert!(report.all_held(), "{}", render_adversarial(&report));
    }

    #[test]
    fn the_delta_sweep_inherits_the_guarantees() {
        let report = run_adversarial(&AdversarialConfig::standard_delta());
        assert_eq!(report.mode, "delta");
        assert!(report.all_held(), "{}", render_adversarial(&report));
    }

    #[test]
    fn the_attacks_cost_something_measurable() {
        let report = run_adversarial(&AdversarialConfig::standard());
        let of = |name: &str| {
            report
                .outcomes
                .iter()
                .find(|o| o.attacker == name)
                .unwrap_or_else(|| panic!("missing outcome {name}"))
        };
        let replay = &of("stale-replay").metrics[0];
        assert!(
            replay.attacked > replay.baseline,
            "replay spam must inflate alive-msg bytes: {replay:?}"
        );
        let flood = &of("flood-amplification").metrics[0];
        assert!(
            flood.inflation() > 1.5,
            "a 6x flooder must inflate discovery bytes: {flood:?}"
        );
        let forgery = &of("obituary-forgery").metrics[0];
        assert!(
            forgery.attacked > 0.0,
            "the forged obituary must disrupt views for a nonzero window: {forgery:?}"
        );
        let selective = &of("selective-forwarding").metrics[0];
        assert!(
            selective.attacked >= selective.baseline,
            "dropping anti-entropy cannot speed convergence up: {selective:?}"
        );
    }

    #[test]
    fn reports_are_deterministic_and_render_as_json() {
        let a = run_adversarial(&AdversarialConfig::standard());
        let b = run_adversarial(&AdversarialConfig::standard());
        assert_eq!(a.to_json(), b.to_json(), "same config, same report");
        let json = a.to_json();
        assert!(json.contains("\"wire_format\": \"full\""));
        assert!(json.contains(&format!("\"seed\": {}", DiscoveryHarness::ATTACK_SEED)));
        assert!(json.contains("\"all_held\": true"));
        for name in [
            "stale-replay",
            "obituary-forgery",
            "selective-forwarding",
            "flood-amplification",
            "eclipse",
        ] {
            assert!(json.contains(name), "JSON must list {name}");
        }
        // The roster makes the artifact self-describing: who ran what.
        assert!(
            json.contains("{\"peer\": 4, \"behavior\": \"obituary-forger\"}"),
            "rosters must name the compromised peers"
        );
    }

    #[test]
    fn inflation_is_finite_even_on_a_zero_baseline_and_never_poisons_the_json() {
        let zero_zero = Metric {
            name: "m",
            baseline: 0.0,
            attacked: 0.0,
            unit: "secs",
        };
        assert_eq!(zero_zero.inflation(), 1.0);
        let zero_some = Metric {
            name: "m",
            baseline: 0.0,
            attacked: 8.5,
            unit: "secs",
        };
        assert!(zero_some.inflation().is_finite());
        assert_eq!(zero_some.inflation(), 8.5);
        let zero_tiny = Metric {
            name: "m",
            baseline: 0.0,
            attacked: 0.25,
            unit: "secs",
        };
        assert_eq!(zero_tiny.inflation(), 1.0, "clamped to at least 1.0");
        // The forgery metric has a genuinely zero baseline (no disruption
        // window exists in a benign run): the rendered artifact must stay
        // valid JSON — no inf, no NaN.
        let report = run_adversarial(&AdversarialConfig::standard());
        let json = report.to_json();
        assert!(
            !json.contains(": inf") && !json.contains(": -inf") && !json.contains(": NaN"),
            "non-finite values poison the JSON artifact"
        );
        assert!(json.contains("\"inflation\":"));
    }
}
