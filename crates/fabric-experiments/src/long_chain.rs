//! Joiner catch-up cost as a function of chain height: genesis replay vs
//! snapshot bootstrap.
//!
//! The dissemination experiments measure steady state; this sweep measures
//! the **cost of entering late**. For each chain height in the sweep, the
//! same deployment runs twice — snapshots off (the joiner replays the
//! whole chain through recovery) and snapshots on (the joiner installs
//! the freshest checkpoint snapshot and replays only the tail) — and the
//! per-join [`Catchup`] record reports the transfer bytes, the
//! time-to-serving and the blocks actually replayed.
//!
//! The paper's enhancement makes steady-state dissemination fair and
//! cheap; this sweep shows the complementary claim for bootstrap: genesis
//! replay grows O(chain) in bytes and time, snapshot bootstrap O(tail) —
//! the gap widens as the chain grows, which is exactly what the
//! `long_chain` bench preset pins.

use desim::{Duration, NetworkConfig};

use crate::churn::{run_churn, ChurnConfig};
use crate::net::Catchup;

/// The sweep: chain heights, deployment shape, checkpoint cadence.
#[derive(Debug, Clone)]
pub struct LongChainConfig {
    /// Blocks the side channel cuts per sweep point (the joiner enters at
    /// two thirds of the run, so the head it chases grows with this).
    pub heights: Vec<u64>,
    /// Total peers of each deployment.
    pub peers: usize,
    /// Initial members of the churned side channel.
    pub side_members: usize,
    /// Checkpoint cadence of the snapshot-on runs.
    pub checkpoint_interval: u64,
    /// Chunk size of the chunked+delta runs: no snapshot-transfer wire
    /// message may exceed this many bytes.
    pub chunk_size: usize,
    /// Full-export cadence of the chunked+delta runs: one full snapshot
    /// every this many checkpoints, deltas in between.
    pub delta_full_every: u64,
    /// Simulation seed (shared by every run of the sweep).
    pub seed: u64,
}

impl LongChainConfig {
    /// The standard sweep: 20 → 40 → 80 blocks over a 12-peer deployment,
    /// checkpoints every 8 blocks.
    pub fn standard() -> Self {
        LongChainConfig {
            heights: vec![20, 40, 80],
            peers: 12,
            side_members: 6,
            checkpoint_interval: 8,
            chunk_size: 512,
            delta_full_every: 2,
            seed: 1,
        }
    }

    /// A two-point sweep for tests and quick bench runs.
    pub fn quick() -> Self {
        LongChainConfig {
            heights: vec![16, 32],
            ..Self::standard()
        }
    }
}

/// One sweep point: the same join measured under both bootstrap modes.
#[derive(Debug, Clone)]
pub struct LongChainRow {
    /// Blocks scheduled on the side channel at this sweep point.
    pub blocks: u64,
    /// The head the genesis-replay joiner chased (its catch-up target).
    pub genesis_target: u64,
    /// Catch-up transfer bytes of the genesis-replay joiner.
    pub genesis_bytes: u64,
    /// Join → serving the head, genesis replay.
    pub genesis_time_to_serving: Duration,
    /// Blocks the genesis-replay joiner received and replayed.
    pub genesis_blocks_replayed: u64,
    /// The head the snapshot-bootstrapped joiner chased.
    pub snapshot_target: u64,
    /// Catch-up transfer bytes of the snapshot-bootstrapped joiner
    /// (snapshot response + tail recovery).
    pub snapshot_bytes: u64,
    /// Join → serving the head, snapshot bootstrap.
    pub snapshot_time_to_serving: Duration,
    /// Blocks the snapshot-bootstrapped joiner replayed (the tail).
    pub snapshot_blocks_replayed: u64,
    /// Height the installed snapshot absorbed (0 = none was installed).
    pub snapshot_height: u64,
    /// Largest single snapshot-transfer wire message of the whole-snapshot
    /// run — grows with state size, the spike chunking removes.
    pub snapshot_max_msg_bytes: u64,
    /// Largest single snapshot-transfer wire message of the chunked+delta
    /// run — bounded by the configured chunk size.
    pub chunked_max_msg_bytes: u64,
    /// Snapshot chunks the chunked-run joiner accepted.
    pub chunked_chunks: u64,
    /// Transfers the chunked-run joiner re-requested after a timeout or
    /// server loss (0 on a lossless sweep).
    pub chunked_resumes: u64,
    /// Largest full snapshot export a sitting endorser retained during the
    /// whole-snapshot run — grows linearly with state size.
    pub full_bytes_per_checkpoint: u64,
    /// Largest delta snapshot a sitting endorser retained during the
    /// chunked+delta run — flat in steady state.
    pub delta_bytes_per_checkpoint: u64,
}

/// What a sweep produces.
#[derive(Debug, Clone)]
pub struct LongChainResult {
    /// One row per sweep height, in sweep order.
    pub rows: Vec<LongChainRow>,
    /// The checkpoint cadence the snapshot runs used.
    pub checkpoint_interval: u64,
    /// Simulation events across every run of the sweep (both modes) —
    /// the bench throughput denominator.
    pub events: u64,
    /// Blocks cut across every run of the sweep (both modes).
    pub blocks: u64,
}

impl LongChainResult {
    /// Bytes growth factor across the sweep (last / first), per mode.
    /// The acceptance claim is `snapshot < genesis`: snapshot catch-up
    /// grows strictly slower than genesis replay as the chain grows.
    pub fn bytes_growth(&self) -> (f64, f64) {
        let first = self.rows.first().expect("sweep is non-empty");
        let last = self.rows.last().expect("sweep is non-empty");
        (
            last.genesis_bytes as f64 / first.genesis_bytes.max(1) as f64,
            last.snapshot_bytes as f64 / first.snapshot_bytes.max(1) as f64,
        )
    }

    /// Largest single snapshot-transfer wire message across the sweep's
    /// chunked runs (the bench column pinned against the chunk size).
    pub fn max_msg_bytes(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.chunked_max_msg_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Per-checkpoint delta retention at the tallest sweep point — flat
    /// while `full_bytes_per_checkpoint` keeps growing with state size.
    pub fn delta_bytes(&self) -> u64 {
        self.rows.last().map_or(0, |r| r.delta_bytes_per_checkpoint)
    }

    /// Chunked-transfer resumes across the sweep (0 on a lossless LAN —
    /// loss-driven resumes are pinned by the unit and scenario suites).
    pub fn resumes(&self) -> u64 {
        self.rows.iter().map(|r| r.chunked_resumes).sum()
    }

    /// Time-to-serving growth factor across the sweep (last / first).
    pub fn time_growth(&self) -> (f64, f64) {
        let first = self.rows.first().expect("sweep is non-empty");
        let last = self.rows.last().expect("sweep is non-empty");
        (
            last.genesis_time_to_serving.as_secs_f64()
                / first.genesis_time_to_serving.as_secs_f64().max(1e-9),
            last.snapshot_time_to_serving.as_secs_f64()
                / first.snapshot_time_to_serving.as_secs_f64().max(1e-9),
        )
    }
}

fn completed_catchup(catchups: &[Catchup], blocks: u64, mode: &str) -> Catchup {
    let cu = catchups
        .first()
        .unwrap_or_else(|| panic!("{mode} run at {blocks} blocks recorded no join"));
    assert!(
        cu.completed_at.is_some(),
        "{mode} catch-up at {blocks} blocks did not complete within the run"
    );
    cu.clone()
}

/// The largest retained full export and delta snapshot of a sitting
/// endorser's side-channel ledger after a run.
fn retention_peaks(run: &crate::churn::ChurnResult) -> (u64, u64) {
    let log = run
        .net
        .ledger_on(1, ChurnConfig::side_channel())
        .expect("sitting members keep side-channel ledgers under full_ledgers")
        .retention_log();
    let full = log.iter().map(|r| r.full_bytes).max().unwrap_or(0);
    let delta = log.iter().map(|r| r.delta_bytes).max().unwrap_or(0);
    (full, delta)
}

/// Runs the sweep: each height three times (snapshots off, whole-snapshot
/// bootstrap, chunked transfer + delta retention), same seed and workload,
/// one late joiner chasing the side channel's head.
///
/// # Panics
///
/// Panics when a catch-up fails to complete within its run — the sweep's
/// numbers would be meaningless.
pub fn run_long_chain(cfg: &LongChainConfig) -> LongChainResult {
    let mut rows = Vec::with_capacity(cfg.heights.len());
    let mut events = 0u64;
    let mut total_blocks = 0u64;
    for &blocks in &cfg.heights {
        let mut base = ChurnConfig::standard(cfg.peers, cfg.side_members, blocks);
        base.network = NetworkConfig::lan(cfg.peers + 2);
        base.seed = cfg.seed;
        base.leader_leave_at = None;
        base.full_ledgers = true;
        // Join late so the chain the joiner faces scales with the
        // sweep: two thirds of the issue span (standard joins at one
        // third).
        let third = base.join_at.since(desim::Time::ZERO);
        base.join_at = desim::Time::ZERO + third * 2;
        // Catch-up must finish even at the tallest sweep point.
        base.drain = Duration::from_secs(60);

        let genesis = run_churn(&base);
        let g = completed_catchup(&genesis.catchups, blocks, "genesis");

        let snap_run = run_churn(&base.clone().with_snapshots(cfg.checkpoint_interval));
        let s = completed_catchup(&snap_run.catchups, blocks, "snapshot");
        let (full_bytes, _) = retention_peaks(&snap_run);

        let chunked_run = run_churn(
            &base
                .clone()
                .with_chunked_snapshots(cfg.checkpoint_interval, cfg.chunk_size)
                .with_delta_snapshots(cfg.delta_full_every),
        );
        let c = completed_catchup(&chunked_run.catchups, blocks, "chunked");
        let (_, delta_bytes) = retention_peaks(&chunked_run);

        for run in [&genesis, &snap_run, &chunked_run] {
            events += run.events;
            total_blocks += run.channels.iter().map(|c| c.blocks).sum::<u64>();
        }
        rows.push(LongChainRow {
            blocks,
            genesis_target: g.target,
            genesis_bytes: g.bytes,
            genesis_time_to_serving: g.time_to_serving().expect("checked above"),
            genesis_blocks_replayed: g.blocks_replayed,
            snapshot_target: s.target,
            snapshot_bytes: s.bytes,
            snapshot_time_to_serving: s.time_to_serving().expect("checked above"),
            snapshot_blocks_replayed: s.blocks_replayed,
            snapshot_height: s.snapshot_height,
            snapshot_max_msg_bytes: s.max_msg_bytes,
            chunked_max_msg_bytes: c.max_msg_bytes,
            chunked_chunks: c.chunks,
            chunked_resumes: c.resumes,
            full_bytes_per_checkpoint: full_bytes,
            delta_bytes_per_checkpoint: delta_bytes,
        });
    }
    LongChainResult {
        rows,
        checkpoint_interval: cfg.checkpoint_interval,
        events,
        blocks: total_blocks,
    }
}

/// Plain-text rendering of a sweep, preset-report style.
pub fn render_long_chain(title: &str, result: &LongChainResult) -> String {
    let mut out = format!(
        "== {title} (checkpoints every {} blocks) ==\n",
        result.checkpoint_interval
    );
    for r in &result.rows {
        out.push_str(&format!(
            "{:>4} blocks | genesis: head {:>4}, {:>8} B, {} to serving, {:>4} replayed | \
             snapshot: head {:>4}, {:>8} B, {} to serving, {:>4} replayed (floor {})\n",
            r.blocks,
            r.genesis_target,
            r.genesis_bytes,
            r.genesis_time_to_serving,
            r.genesis_blocks_replayed,
            r.snapshot_target,
            r.snapshot_bytes,
            r.snapshot_time_to_serving,
            r.snapshot_blocks_replayed,
            r.snapshot_height,
        ));
        out.push_str(&format!(
            "            | chunked: max msg {:>6} B (whole {:>6} B), {:>3} chunks, \
             {} resumes | retained/ckpt: full {:>6} B vs delta {:>5} B\n",
            r.chunked_max_msg_bytes,
            r.snapshot_max_msg_bytes,
            r.chunked_chunks,
            r.chunked_resumes,
            r.full_bytes_per_checkpoint,
            r.delta_bytes_per_checkpoint,
        ));
    }
    let (gb, sb) = result.bytes_growth();
    let (gt, st) = result.time_growth();
    out.push_str(&format!(
        "growth last/first | bytes: genesis {gb:.2}x vs snapshot {sb:.2}x | \
         time-to-serving: genesis {gt:.2}x vs snapshot {st:.2}x\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::ids::ChannelId;

    fn sweep() -> LongChainResult {
        run_long_chain(&LongChainConfig::quick())
    }

    #[test]
    fn snapshot_bootstrap_beats_genesis_replay_at_every_height() {
        let res = sweep();
        assert_eq!(res.rows.len(), 2);
        for r in &res.rows {
            assert!(r.genesis_target > 0, "the joiner must have a head to chase");
            assert!(
                r.snapshot_height >= res.checkpoint_interval,
                "{} blocks: no snapshot was installed (floor {})",
                r.blocks,
                r.snapshot_height
            );
            assert!(
                r.snapshot_blocks_replayed < r.genesis_blocks_replayed,
                "{} blocks: tail replay {} not below full replay {}",
                r.blocks,
                r.snapshot_blocks_replayed,
                r.genesis_blocks_replayed
            );
            assert!(
                r.snapshot_bytes < r.genesis_bytes,
                "{} blocks: snapshot bytes {} not below genesis bytes {}",
                r.blocks,
                r.snapshot_bytes,
                r.genesis_bytes
            );
        }
    }

    #[test]
    fn snapshot_cost_grows_strictly_slower_with_chain_height() {
        let res = sweep();
        let (genesis_bytes, snapshot_bytes) = res.bytes_growth();
        assert!(
            snapshot_bytes < genesis_bytes,
            "snapshot byte growth {snapshot_bytes:.2}x must trail genesis {genesis_bytes:.2}x"
        );
        // Genesis replay cost meaningfully tracks the chain; the snapshot
        // path is dominated by the (bounded) tail.
        assert!(
            genesis_bytes > 1.2,
            "the sweep must actually grow the genesis cost, got {genesis_bytes:.2}x"
        );
    }

    #[test]
    fn render_tabulates_both_modes_and_growth() {
        let res = sweep();
        let text = render_long_chain("long_chain", &res);
        eprintln!("{text}");
        assert!(text.contains("genesis:"));
        assert!(text.contains("snapshot:"));
        assert!(text.contains("chunked:"));
        assert!(text.contains("retained/ckpt"));
        assert!(text.contains("growth last/first"));
        assert!(text.contains("to serving"));
    }

    #[test]
    fn chunking_bounds_the_wire_while_the_whole_snapshot_grows_unbounded() {
        let cfg = LongChainConfig::quick();
        let res = run_long_chain(&cfg);
        for r in &res.rows {
            assert!(
                r.chunked_max_msg_bytes as usize <= cfg.chunk_size,
                "{} blocks: chunked message {} exceeds the {} budget",
                r.blocks,
                r.chunked_max_msg_bytes,
                cfg.chunk_size
            );
            assert!(r.chunked_chunks > 1, "the transfer must actually chunk");
        }
        let last = res.rows.last().unwrap();
        assert!(
            last.snapshot_max_msg_bytes as usize > cfg.chunk_size,
            "the whole-snapshot spike must outgrow the chunk budget, got {}",
            last.snapshot_max_msg_bytes
        );
        assert!(res.max_msg_bytes() as usize <= cfg.chunk_size);
        assert_eq!(res.resumes(), 0, "a lossless LAN sweep needs no resumes");
    }

    #[test]
    fn delta_retention_stays_flat_while_full_exports_grow_linearly() {
        let res = sweep();
        let first = res.rows.first().unwrap();
        let last = res.rows.last().unwrap();
        // Full exports track state size — the doubled chain costs
        // meaningfully more per checkpoint.
        assert!(
            last.full_bytes_per_checkpoint > first.full_bytes_per_checkpoint,
            "full retention must grow with the chain: {} vs {}",
            first.full_bytes_per_checkpoint,
            last.full_bytes_per_checkpoint
        );
        // Deltas carry only the writes since the previous checkpoint, so
        // per-checkpoint retention is independent of the chain height
        // (give a small allowance for longer key names at taller heights).
        assert!(
            (last.delta_bytes_per_checkpoint as f64)
                < first.delta_bytes_per_checkpoint as f64 * 1.25,
            "delta retention must stay flat across the sweep: {} vs {}",
            first.delta_bytes_per_checkpoint,
            last.delta_bytes_per_checkpoint
        );
        for r in &res.rows {
            assert!(
                r.delta_bytes_per_checkpoint > 0,
                "{} blocks: delta boundaries must have fired",
                r.blocks
            );
            assert!(
                r.delta_bytes_per_checkpoint < r.full_bytes_per_checkpoint,
                "{} blocks: a delta must undercut the full export",
                r.blocks
            );
        }
        assert_eq!(res.delta_bytes(), last.delta_bytes_per_checkpoint);
    }

    #[test]
    fn joiner_state_is_byte_identical_across_bootstrap_modes() {
        // The determinism contract end to end, within one run: the side
        // endorser replays every block from genesis while the joiner
        // bootstraps from a snapshot — their checkpoint streams must agree
        // on every common height, and at equal final height their state
        // hashes are byte-identical.
        let mut base = ChurnConfig::standard(10, 5, 24);
        base.network = NetworkConfig::lan(12);
        base.leader_leave_at = None;
        base.drain = Duration::from_secs(60);
        // Join at two thirds of the run so the chain is deep enough for a
        // checkpoint to exist and the joiner's lag to clear min_lag.
        let third = base.join_at.since(desim::Time::ZERO);
        base.join_at = desim::Time::ZERO + third * 2;
        let snap = run_churn(&base.clone().with_snapshots(8));
        let side = ChannelId(1);
        let joiner = snap.catchups[0].peer.index();

        let genesis_ledger = snap.net.ledger_on(1, side).expect("endorser ledger");
        let joiner_ledger = snap.net.ledger_on(joiner, side).expect("joiner ledger");
        assert_eq!(genesis_ledger.base_height(), 0, "the endorser replays all");
        assert!(
            joiner_ledger.base_height() > 1,
            "the joiner must have bootstrapped from a snapshot"
        );
        assert!(
            !joiner_ledger.checkpoints().is_empty(),
            "the joiner keeps checkpointing past the installed snapshot"
        );
        for cp in joiner_ledger.checkpoints() {
            assert!(
                genesis_ledger.checkpoints().contains(cp),
                "checkpoint at height {} diverged between replay and bootstrap",
                cp.height
            );
        }
        assert_eq!(
            genesis_ledger.height(),
            joiner_ledger.height(),
            "both must converge to the full chain within the drain window"
        );
        assert_eq!(
            genesis_ledger.state().state_hash(),
            joiner_ledger.state().state_hash(),
            "equal heights must hash to byte-identical states"
        );
    }
}
