//! Runtime channel-membership churn over the full transaction pipeline.
//!
//! The paper evaluates gossip on live Fabric channels where peers join,
//! catch up from the channel via pull/state transfer, and leave. This
//! scenario drives exactly that against the channel-routed
//! [`FabricNet`] pipeline: two channels carry independent payload
//! workloads end to end (client → endorser → orderer → leader → gossip),
//! and the *side channel* churns mid-run —
//!
//! * **late joiners** enter at [`ChurnConfig::join_at`] and bootstrap to
//!   the channel head through the existing StateInfo + recovery
//!   machinery (catch-up latency is measured per joiner);
//! * the side channel's **leader leaves** at
//!   [`ChurnConfig::leader_leave_at`], forcing a leader hand-off (counted
//!   through the `leadership_changed` effect) while the ordering service
//!   retries delivery until the new leader stands up.
//!
//! The stable main channel doubles as the control group: its latency and
//! fairness must stay unremarkable while the side channel churns.

use desim::{Duration, NetworkConfig, Simulation, Time};
use fabric_gossip::config::GossipConfig;
use fabric_orderer::cutter::BatchConfig;
use fabric_orderer::service::OrdererConfig;
use fabric_types::ids::{ChannelId, PeerId};
use fabric_types::transaction::EndorsementPolicy;
use fabric_workload::schedule::{
    merge_schedules, payload_schedule, retarget_schedule, PayloadWorkload,
};
use gossip_metrics::cdf::Cdf;
use gossip_metrics::fairness::FairnessReport;

use crate::net::{
    Catchup, ChannelSpec, ChurnAction, ChurnEvent, DiscoveryMode, FabricNet, NetParams,
};

/// Everything a churn run needs.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total peers. Every peer is a member of the main channel
    /// ([`ChannelId::DEFAULT`]); peers `0..side_members` start on the side
    /// channel (`ChannelId(1)`), and the `joiners` highest-numbered side
    /// candidates — peers `side_members..side_members + joiners` — enter
    /// it at runtime.
    pub peers: usize,
    /// Initial membership of the side channel (≥ 2: its static leader is
    /// peer 0 and its endorser peer 1).
    pub side_members: usize,
    /// Number of late joiners.
    pub joiners: usize,
    /// When the late joiners enter the side channel.
    pub join_at: Time,
    /// When the side channel's leader (peer 0) leaves it, forcing a
    /// hand-off; `None` keeps the leader seated.
    pub leader_leave_at: Option<Time>,
    /// Gossip configuration shared by every peer (the preset tightens
    /// recovery so catch-up is observable at bench scale).
    pub gossip: GossipConfig,
    /// Ordering service configuration, shared by both channels' chains.
    pub orderer: OrdererConfig,
    /// The main channel's workload.
    pub main_workload: PayloadWorkload,
    /// The side channel's workload.
    pub side_workload: PayloadWorkload,
    /// Physical network model.
    pub network: NetworkConfig,
    /// Drain window after the last scheduled transaction.
    pub drain: Duration,
    /// Simulation seed.
    pub seed: u64,
    /// How join/leave propagates: the synchronous oracle (the PR 3
    /// baseline) or the gossiped discovery protocol.
    pub discovery: DiscoveryMode,
    /// Joiners enter knowing only the channel's lowest-id sitting member
    /// (anchor-peer entry) instead of the full roster. Requires
    /// [`DiscoveryMode::Protocol`].
    pub anchor_join: bool,
    /// Maintain a ledger on every member of every channel, so checkpoint
    /// snapshots can be built and installed anywhere (off by default —
    /// the historical shape keeps ledgers on endorsers only).
    pub full_ledgers: bool,
}

impl ChurnConfig {
    /// The standard churn shape: `peers` peers, a side channel of
    /// `side_members` + 1 late joiner, `blocks` blocks per channel at the
    /// paper's 160 KB block size, join at one third of the run and the
    /// side leader leaving at two thirds. Recovery is tightened (2 s
    /// rounds, 64-block batches) so a joiner's catch-up completes within
    /// the run rather than across many 10 s default rounds.
    ///
    /// # Panics
    ///
    /// Panics when `side_members < 2` or `peers <= side_members` (the
    /// joiner must come from outside the side channel).
    pub fn standard(peers: usize, side_members: usize, blocks: u64) -> Self {
        assert!(side_members >= 2, "side channel needs a leader + endorser");
        assert!(peers > side_members, "no peer left to join late");
        let mut gossip = GossipConfig::enhanced_f4();
        gossip.recovery.interval = Duration::from_secs(2);
        gossip.recovery.batch_max = 64;
        let txs = (blocks * 50) as usize;
        let span = txs as f64 / PayloadWorkload::default().rate_per_sec;
        ChurnConfig {
            peers,
            side_members,
            joiners: 1,
            join_at: Time::ZERO + Duration::from_secs_f64(span / 3.0),
            leader_leave_at: Some(Time::ZERO + Duration::from_secs_f64(2.0 * span / 3.0)),
            gossip,
            orderer: OrdererConfig::kafka(BatchConfig::paper_dissemination()),
            main_workload: PayloadWorkload::shortened(txs),
            side_workload: PayloadWorkload::shortened(txs),
            network: NetworkConfig::lan(peers + 2),
            drain: Duration::from_secs(40),
            seed: 1,
            discovery: DiscoveryMode::Oracle,
            anchor_join: false,
            full_ledgers: false,
        }
    }

    /// Switches the run to the gossiped discovery protocol, with timers
    /// tightened toward the oracle limit: 100 ms heartbeats, 200 ms
    /// anti-entropy, a 1 s alive timeout. As the heartbeat period tends
    /// to zero (and with loss disabled — [`NetworkConfig::lan`] is
    /// lossless), discovery convergence becomes negligible next to the
    /// 2 s recovery rounds, so catch-up latency and hand-off counts must
    /// land within tolerance of the oracle run — the oracle-equivalence
    /// property the test suite pins.
    pub fn with_protocol_discovery(mut self) -> Self {
        self.discovery = DiscoveryMode::Protocol;
        self.gossip.discovery.protocol = true;
        self.gossip.discovery.heartbeat_interval = Duration::from_millis(100);
        self.gossip.discovery.anti_entropy_interval = Duration::from_millis(200);
        self.gossip.membership.alive_timeout = Duration::from_secs(1);
        self
    }

    /// Turns on checkpoint snapshots at the given cadence and gives every
    /// member a ledger, so a late joiner bootstraps from the freshest
    /// snapshot and replays only the tail (O(tail) instead of O(chain)).
    pub fn with_snapshots(mut self, interval: u64) -> Self {
        self.gossip = self.gossip.with_snapshots(interval);
        self.full_ledgers = true;
        self
    }

    /// Like [`ChurnConfig::with_snapshots`], but the snapshot streams as
    /// chunk messages of at most `chunk_size` wire bytes each instead of
    /// one monolithic response, and partial transfers resume from the
    /// first missing chunk.
    pub fn with_chunked_snapshots(mut self, interval: u64, chunk_size: usize) -> Self {
        self.gossip = self.gossip.with_chunked_snapshots(interval, chunk_size);
        self.full_ledgers = true;
        self
    }

    /// On top of a snapshot cadence: emit delta snapshots between full
    /// boundaries, cutting a full export only every `full_every`-th
    /// checkpoint, so per-checkpoint retained bytes stop growing with
    /// state size.
    pub fn with_delta_snapshots(mut self, full_every: u64) -> Self {
        self.gossip.snapshot.delta = true;
        self.gossip.snapshot.full_every = full_every;
        self
    }

    /// Hands joiners a single anchor peer instead of the full roster
    /// (requires [`ChurnConfig::with_protocol_discovery`] first).
    pub fn with_anchor_join(mut self) -> Self {
        self.anchor_join = true;
        self
    }

    /// The side channel's id.
    pub fn side_channel() -> ChannelId {
        ChannelId(1)
    }
}

/// One channel's measured outcome.
#[derive(Debug, Clone)]
pub struct ChurnChannelReport {
    /// The channel.
    pub channel: ChannelId,
    /// Members at end of run.
    pub members: usize,
    /// Blocks cut on the channel.
    pub blocks: u64,
    /// Fraction of (block, slot) deliveries over **initial** members —
    /// late joiners legitimately miss pre-join starts, so they are
    /// excluded from the denominator.
    pub completeness: f64,
    /// Median dissemination latency over all recorded cells.
    pub p50: Duration,
    /// 99.9th percentile of the same pool.
    pub p999: Duration,
    /// Leadership acquisitions observed (hand-offs; static initial
    /// leaders are seeded, not counted).
    pub handoffs: u64,
    /// Peers claiming leadership at end of run.
    pub leaders: Vec<PeerId>,
}

/// What a churn run produces.
#[derive(Debug)]
pub struct ChurnResult {
    /// Per-channel outcomes, channel order.
    pub channels: Vec<ChurnChannelReport>,
    /// One record per runtime join: target head and catch-up latency.
    pub catchups: Vec<Catchup>,
    /// Per-channel and overall Jain fairness over per-member gossip bytes
    /// (members at end of run).
    pub fairness: FairnessReport,
    /// Simulation events processed.
    pub events: u64,
    /// Final virtual time.
    pub sim_end: Time,
    /// The final protocol state, for custom inspection.
    pub net: FabricNet,
}

/// Runs one churn experiment to completion.
///
/// # Panics
///
/// Panics on an invalid configuration (see [`ChurnConfig::standard`]).
pub fn run_churn(cfg: &ChurnConfig) -> ChurnResult {
    let side = ChurnConfig::side_channel();
    let main_sched = payload_schedule(&cfg.main_workload);
    let side_sched = retarget_schedule(payload_schedule(&cfg.side_workload), side);
    let schedule = merge_schedules(vec![main_sched, side_sched]);
    let last_issue = schedule.last().map(|s| s.at).unwrap_or(Time::ZERO);

    let mut params = NetParams::new(cfg.peers, cfg.gossip.clone(), cfg.orderer.clone());
    params.validation_per_tx = Duration::from_micros(300);
    params.discovery = cfg.discovery;
    params.anchor_join = cfg.anchor_join;
    params.full_ledgers = cfg.full_ledgers;
    params.extra_channels = vec![ChannelSpec {
        channel: side,
        members: (0..cfg.side_members as u32).map(PeerId).collect(),
        orgs: 1,
        endorsers: vec![PeerId(1)],
        policy: EndorsementPolicy::AnyMember,
    }];
    for j in 0..cfg.joiners {
        params.churn.push(ChurnEvent {
            at: cfg.join_at,
            peer: PeerId((cfg.side_members + j) as u32),
            channel: side,
            action: ChurnAction::Join,
        });
    }
    if let Some(at) = cfg.leader_leave_at {
        params.churn.push(ChurnEvent {
            at,
            peer: PeerId(0),
            channel: side,
            action: ChurnAction::Leave,
        });
    }
    assert!(
        cfg.side_members + cfg.joiners <= cfg.peers,
        "joiners must be existing deployment peers"
    );

    let mut network = cfg.network.clone();
    network.nodes = FabricNet::node_count(&params);
    let net = FabricNet::new(params, schedule);
    let mut sim = Simulation::new(net, network, cfg.seed);
    sim.with_ctx(|net, ctx| net.start(ctx));
    sim.run_until(last_issue + cfg.drain);
    let events = sim.events_processed();
    let sim_end = sim.now();
    let net = sim.into_protocol();

    let initial_members = [cfg.peers, cfg.side_members];
    let mut channels = Vec::with_capacity(2);
    let mut fairness_rows: Vec<(String, Vec<(usize, f64)>)> = Vec::with_capacity(2);
    for (c, initial) in initial_members.into_iter().enumerate() {
        let channel = ChannelId(c as u16);
        let rec = net.latency_on(channel).expect("channel exists");
        let blocks = rec.block_count();
        let mut pool = Vec::new();
        let mut filled = 0usize;
        for slot in 0..initial {
            let lat = rec.peer_latencies(slot);
            filled += lat.len();
            pool.extend(lat);
        }
        // Joiner slots contribute latencies but not completeness cells.
        // The recorder is sized over initial members + scheduled joiners —
        // NOT the end-of-run member count, which a leaver shrinks back.
        for slot in initial..rec.peers() {
            pool.extend(rec.peer_latencies(slot));
        }
        let cdf = Cdf::new(pool);
        let (p50, p999) = if cdf.is_empty() {
            (Duration::ZERO, Duration::ZERO)
        } else {
            (cdf.quantile(0.5), cdf.quantile(0.999))
        };
        channels.push(ChurnChannelReport {
            channel,
            members: net.members_on(channel).len(),
            blocks: net.blocks_cut_on(channel),
            completeness: if blocks * initial == 0 {
                1.0
            } else {
                filled as f64 / (blocks * initial) as f64
            },
            p50,
            p999,
            handoffs: net.handoffs_on(channel),
            leaders: net.current_leaders_on(channel),
        });
        let shares: Vec<(usize, f64)> = net
            .members_on(channel)
            .iter()
            .map(|m| {
                let bytes = net
                    .gossip(m.index())
                    .stats_on(channel)
                    .map_or(0, |s| s.bytes_sent());
                (m.index(), bytes as f64)
            })
            .collect();
        fairness_rows.push((channel.to_string(), shares));
    }
    let fairness = FairnessReport::from_per_channel(&fairness_rows);
    ChurnResult {
        channels,
        catchups: net.catchups().to_vec(),
        fairness,
        events,
        sim_end,
        net,
    }
}

/// Plain-text rendering of a churn run, preset-report style.
pub fn render_churn(title: &str, result: &ChurnResult) -> String {
    let mut out = format!("== {title} ==\n");
    for c in &result.channels {
        out.push_str(&format!(
            "{} {:>3} members | {:>4} blocks | completeness {:.4} | p50 {} | p99.9 {} | \
             handoffs {} | leaders {:?}\n",
            c.channel, c.members, c.blocks, c.completeness, c.p50, c.p999, c.handoffs, c.leaders,
        ));
    }
    for cu in &result.catchups {
        match cu.latency() {
            Some(lat) => {
                let via = if cu.snapshot_height > 0 {
                    format!(
                        "snapshot@{} + {} replayed",
                        cu.snapshot_height, cu.blocks_replayed
                    )
                } else {
                    format!("{} replayed", cu.blocks_replayed)
                };
                out.push_str(&format!(
                    "{} joined {} at {} | head {} | caught up in {lat} | {} catch-up bytes | {via}\n",
                    cu.peer, cu.channel, cu.joined_at, cu.target, cu.bytes,
                ));
            }
            None => out.push_str(&format!(
                "{} joined {} at {} | head {} | {} catch-up bytes so far | STILL CATCHING UP\n",
                cu.peer, cu.channel, cu.joined_at, cu.target, cu.bytes,
            )),
        }
    }
    out.push_str(&result.fairness.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> ChurnResult {
        let mut cfg = ChurnConfig::standard(24, 10, 20);
        cfg.network = NetworkConfig::lan(26);
        cfg.seed = seed;
        run_churn(&cfg)
    }

    #[test]
    fn joiner_reaches_the_join_time_head_and_beyond() {
        let res = quick(3);
        assert_eq!(res.catchups.len(), 1);
        let cu = &res.catchups[0];
        assert_eq!(cu.peer, PeerId(10));
        assert_eq!(cu.channel, ChannelId(1));
        assert!(cu.target > 0, "the side channel must have a head to chase");
        let lat = cu.latency().expect("catch-up must complete within the run");
        assert!(lat > Duration::ZERO);
        // The joiner keeps converging after catch-up: by end of run it
        // holds (nearly) the full side chain, gap-free.
        let height = res.net.gossip(10).height_on(ChannelId(1));
        assert!(
            height > cu.target,
            "contiguous height {height} must pass the join-time head {}",
            cu.target
        );
        // The joiner owns a latency slot past the initial members, and its
        // post-join receptions are recorded there (the report's latency
        // pool draws on it even after the leaver shrinks the member list).
        let rec = res.net.latency_on(ChannelId(1)).unwrap();
        assert_eq!(rec.peers(), 11, "10 initial members + 1 joiner slot");
        assert!(
            !rec.peer_latencies(10).is_empty(),
            "the joiner's dissemination latencies must be recorded"
        );
    }

    #[test]
    fn leader_leave_forces_exactly_one_handoff() {
        let res = quick(5);
        let side = &res.channels[1];
        assert_eq!(side.handoffs, 1, "one hand-off after the leader left");
        assert_eq!(
            side.leaders,
            vec![PeerId(1)],
            "the next-lowest member stands up"
        );
        // Peer 0 still leads the stable main channel.
        let main = &res.channels[0];
        assert_eq!(main.handoffs, 0);
        assert_eq!(main.leaders, vec![PeerId(0)]);
        assert!(
            !res.net.gossip(0).has_channel(ChannelId(1)),
            "the leaver dropped its side-channel instance"
        );
        // Dissemination survived the hand-off: blocks cut after the leave
        // still reached the members (completeness counts initial members,
        // including the leaver's pre-leave cells, so allow the cells the
        // leaver missed after departing).
        assert!(side.blocks > 10);
        assert!(side.completeness > 0.8, "got {}", side.completeness);
    }

    #[test]
    fn main_channel_is_undisturbed_by_side_churn() {
        let res = quick(7);
        let main = &res.channels[0];
        assert_eq!(
            main.completeness, 1.0,
            "the stable channel must deliver everything to everyone"
        );
        assert!(main.blocks >= 19);
        assert!(res.fairness.channels.len() == 2);
        assert!(
            res.fairness.channels[0].jain > 0.5,
            "main-channel load should stay broadly balanced: {}",
            res.fairness.channels[0].jain
        );
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let a = quick(11);
        let b = quick(11);
        assert_eq!(a.events, b.events);
        assert_eq!(a.catchups[0].completed_at, b.catchups[0].completed_at);
        assert_eq!(a.fairness.overall_jain, b.fairness.overall_jain);
        for (x, y) in a.channels.iter().zip(&b.channels) {
            assert_eq!(x.p50, y.p50);
            assert_eq!(x.p999, y.p999);
        }
    }

    /// The oracle-equivalence property: with the heartbeat period driven
    /// toward zero and loss disabled, the discovery-driven churn run must
    /// reproduce the oracle run's catch-up latency and hand-off counts
    /// within tolerance — the protocol changes *how* membership news
    /// travels, not what the pipeline does with it.
    #[test]
    fn protocol_discovery_matches_the_oracle_run_within_tolerance() {
        let mut oracle_cfg = ChurnConfig::standard(24, 10, 20);
        oracle_cfg.network = NetworkConfig::lan(26);
        oracle_cfg.seed = 3;
        let protocol_cfg = oracle_cfg.clone().with_protocol_discovery();
        let oracle = run_churn(&oracle_cfg);
        let protocol = run_churn(&protocol_cfg);

        // Hand-offs and final leaders agree exactly.
        for (o, p) in oracle.channels.iter().zip(&protocol.channels) {
            assert_eq!(
                o.handoffs, p.handoffs,
                "hand-offs diverged on {}",
                o.channel
            );
            assert_eq!(o.leaders, p.leaders, "leaders diverged on {}", o.channel);
            assert_eq!(o.members, p.members);
        }

        // Catch-up latency within tolerance: discovery adds at most the
        // announcement round trip, which the tightened timers keep far
        // below the 2 s recovery cadence that dominates catch-up.
        assert_eq!(oracle.catchups.len(), protocol.catchups.len());
        for (o, p) in oracle.catchups.iter().zip(&protocol.catchups) {
            let o_lat = o
                .latency()
                .expect("oracle catch-up completes")
                .as_secs_f64();
            let p_lat = p
                .latency()
                .expect("protocol catch-up completes")
                .as_secs_f64();
            let ratio = p_lat / o_lat.max(1e-9);
            assert!(
                (0.4..=2.5).contains(&ratio),
                "catch-up latency diverged: oracle {o_lat:.3}s vs protocol {p_lat:.3}s"
            );
        }

        // The protocol run actually exercised discovery: every join and
        // leave converged, and a finite leader-gap window was measured.
        let side = ChurnConfig::side_channel();
        let records = protocol.net.convergence_on(side);
        assert_eq!(records.len(), 2, "one join + one leave record");
        for r in records {
            assert!(
                r.latency().is_some(),
                "convergence incomplete for peer {} (join: {})",
                r.peer,
                r.join
            );
        }
        assert_eq!(protocol.net.leader_gaps_on(side).len(), 1);
        assert!(oracle.net.convergence_on(side).is_empty());
    }

    #[test]
    fn render_reports_catchup_handoffs_and_fairness() {
        let res = quick(1);
        let text = render_churn("churn", &res);
        assert!(text.contains("ch0"));
        assert!(text.contains("ch1"));
        assert!(text.contains("caught up in"));
        assert!(text.contains("catch-up bytes"));
        assert!(text.contains("replayed"));
        assert!(text.contains("handoffs"));
        assert!(text.contains("jain"));
    }

    #[test]
    fn catchup_records_transfer_bytes_and_replayed_blocks() {
        let res = quick(3);
        let cu = &res.catchups[0];
        assert!(
            cu.bytes > 0,
            "a genesis-replay catch-up must receive recovery bytes"
        );
        assert_eq!(cu.snapshot_height, 0, "snapshots are off by default");
        assert!(
            cu.blocks_replayed >= cu.target,
            "genesis replay pulls the whole chain: {} replayed, head {}",
            cu.blocks_replayed,
            cu.target
        );
        assert_eq!(cu.time_to_serving(), cu.latency());
    }

    /// The snapshot-on churn smoke: same deployment, checkpoints every 8
    /// blocks — the joiner bootstraps from a snapshot and replays only the
    /// tail, with fewer catch-up bytes than the genesis-replay run.
    #[test]
    fn snapshot_bootstrap_replays_only_the_tail() {
        let mut base = ChurnConfig::standard(16, 8, 30);
        base.network = NetworkConfig::lan(18);
        base.seed = 9;
        let genesis = run_churn(&base);
        let snap = run_churn(&base.clone().with_snapshots(8));

        let g = &genesis.catchups[0];
        let s = &snap.catchups[0];
        assert_eq!(g.target, s.target, "both runs chase the same head");
        g.latency().expect("genesis catch-up completes");
        s.latency().expect("snapshot catch-up completes");
        assert!(
            s.snapshot_height >= 8,
            "the joiner must have installed a checkpoint snapshot, got floor {}",
            s.snapshot_height
        );
        assert!(
            s.blocks_replayed < g.blocks_replayed,
            "snapshot run must replay only the tail: {} vs {}",
            s.blocks_replayed,
            g.blocks_replayed
        );
        assert!(
            s.bytes < g.bytes,
            "snapshot catch-up must move fewer bytes: {} vs {}",
            s.bytes,
            g.bytes
        );
        assert_eq!(snap.net.commit_errors(), 0);

        // The joiner's ledger was stood up from the snapshot, not genesis.
        let joiner = &snap.catchups[0].peer;
        let ledger = snap
            .net
            .ledger_on(joiner.index(), ChannelId(1))
            .expect("full_ledgers gives the joiner a side-channel ledger");
        assert!(
            ledger.base_height() > 1,
            "the joiner's ledger must be snapshot-based, base {}",
            ledger.base_height()
        );
        assert_eq!(
            ledger.height(),
            snap.net.gossip(joiner.index()).height_on(ChannelId(1)),
            "ledger and gossip store agree on the contiguous height"
        );
    }

    /// Chunked transfer: the same bootstrap, but no single catch-up wire
    /// message may exceed the configured chunk size — the monolithic
    /// snapshot response is replaced by a bounded chunk stream that
    /// reassembles to the identical install.
    #[test]
    fn chunked_bootstrap_bounds_the_largest_catchup_message() {
        let mut base = ChurnConfig::standard(16, 8, 30);
        base.network = NetworkConfig::lan(18);
        base.seed = 9;
        let whole = run_churn(&base.clone().with_snapshots(8));
        let chunk_size = 256;
        let chunked = run_churn(&base.clone().with_chunked_snapshots(8, chunk_size));

        let w = &whole.catchups[0];
        let c = &chunked.catchups[0];
        w.latency().expect("whole-snapshot catch-up completes");
        c.latency().expect("chunked catch-up completes");
        assert!(
            w.max_msg_bytes as usize > chunk_size,
            "the monolithic response must dwarf the chunk budget, got {}",
            w.max_msg_bytes
        );
        assert!(
            c.max_msg_bytes as usize <= chunk_size,
            "no chunked catch-up message may exceed {chunk_size}, got {}",
            c.max_msg_bytes
        );
        assert!(c.chunks > 1, "the snapshot must arrive in several chunks");
        assert_eq!(w.chunks, 0, "whole-snapshot transfer moves no chunks");
        // Same bootstrap outcome either way: snapshot floor and tail.
        assert_eq!(c.snapshot_height, w.snapshot_height);
        assert_eq!(c.blocks_replayed, w.blocks_replayed);
        assert_eq!(chunked.net.commit_errors(), 0);
        // A lossless LAN needs no resumes; the resume machinery is pinned
        // by the unit and scenario suites.
        assert_eq!(c.resumes, 0);
    }

    /// Delta retention: same deployment, but the endorser ledgers emit
    /// delta snapshots between full boundaries — per-checkpoint retained
    /// bytes stay flat while full exports keep growing with state size,
    /// and the joiner's bootstrap outcome is unchanged.
    #[test]
    fn delta_retention_keeps_per_checkpoint_bytes_flat() {
        let mut base = ChurnConfig::standard(16, 8, 30);
        base.network = NetworkConfig::lan(18);
        base.seed = 9;
        let full = run_churn(&base.clone().with_snapshots(8));
        let delta = run_churn(&base.clone().with_snapshots(8).with_delta_snapshots(2));

        // Retention curves from a sitting endorser's side-channel ledger.
        let log = delta
            .net
            .ledger_on(1, ChannelId(1))
            .expect("sitting member keeps a side-channel ledger")
            .retention_log();
        let deltas: Vec<u64> = log
            .iter()
            .filter(|r| r.delta_bytes > 0)
            .map(|r| r.delta_bytes)
            .collect();
        let fulls: Vec<u64> = log
            .iter()
            .filter(|r| r.full_bytes > 0)
            .map(|r| r.full_bytes)
            .collect();
        assert!(!deltas.is_empty(), "delta boundaries must have fired");
        assert!(fulls.len() >= 2, "full boundaries keep firing too");
        assert!(
            fulls.windows(2).all(|w| w[1] > w[0]),
            "full exports grow with state size: {fulls:?}"
        );
        let (lo, hi) = (*deltas.iter().min().unwrap(), *deltas.iter().max().unwrap());
        assert!(
            hi < *fulls.last().unwrap(),
            "a delta must undercut the full export: {hi} vs {}",
            fulls.last().unwrap()
        );
        assert!(
            hi - lo <= lo,
            "per-checkpoint delta bytes stay flat-ish: {deltas:?}"
        );
        // The joiner still bootstraps from a (full) snapshot identically.
        let f = &full.catchups[0];
        let d = &delta.catchups[0];
        d.latency().expect("delta-run catch-up completes");
        assert!(d.snapshot_height >= 8);
        assert_eq!(d.target, f.target);
        assert_eq!(delta.net.commit_errors(), 0);
    }

    /// Anchor-peer entry: the joiner knows a single sitting member and
    /// still catches up — the rest of the roster arrives via discovery
    /// push-pull.
    #[test]
    fn anchored_join_catches_up_from_one_seed() {
        let mut cfg = ChurnConfig::standard(16, 8, 20)
            .with_protocol_discovery()
            .with_anchor_join();
        cfg.network = NetworkConfig::lan(18);
        cfg.seed = 3;
        let res = run_churn(&cfg);
        let cu = &res.catchups[0];
        assert!(cu.target > 0);
        cu.latency().expect("anchored catch-up completes");
        // Discovery converged: every sitting member admitted the joiner.
        let records = res.net.convergence_on(ChannelId(1));
        let join = records.iter().find(|r| r.join).expect("join record");
        assert!(
            join.latency().is_some(),
            "all sitting members must learn of the anchored joiner"
        );
        // And the joiner's own view grew past its single anchor.
        let view = res
            .net
            .gossip(cu.peer.index())
            .membership_on(ChannelId(1))
            .expect("joiner is on the side channel")
            .len();
        assert!(
            view > 2,
            "the joiner must discover members beyond its anchor, saw {view}"
        );
    }
}
