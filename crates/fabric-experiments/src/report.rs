//! Paper-style rendering of experiment results: the series behind each
//! figure and the rows of Table II, as plain text for bench output and
//! EXPERIMENTS.md.

use desim::Duration;
use gossip_metrics::cdf::{ProbabilityPlot, BLOCK_LEVEL_TICKS, PEER_LEVEL_TICKS};
use gossip_metrics::table::render_table;

use crate::conflicts::Table2Row;
use crate::dissemination::DisseminationResult;

/// Renders a peer-level latency figure (Figs. 4/7/12): the three CDF
/// series at the paper's y ticks.
pub fn render_peer_level(title: &str, result: &DisseminationResult) -> String {
    render_extremes(
        title,
        result.peer_extremes.as_ref(),
        PEER_LEVEL_TICKS,
        "peer",
    )
}

/// Renders a block-level latency figure (Figs. 5/8/13).
pub fn render_block_level(title: &str, result: &DisseminationResult) -> String {
    render_extremes(
        title,
        result.block_extremes.as_ref(),
        BLOCK_LEVEL_TICKS,
        "block",
    )
}

fn render_extremes(
    title: &str,
    extremes: Option<&gossip_metrics::latency::Extremes>,
    ticks: &[f64],
    unit: &str,
) -> String {
    let mut out = format!("== {title} ==\n");
    let Some(ex) = extremes else {
        out.push_str("(no data)\n");
        return out;
    };
    for (label, (id, cdf)) in [
        ("fastest", &ex.fastest),
        ("median", &ex.median),
        ("slowest", &ex.slowest),
    ] {
        let plot = ProbabilityPlot::from_cdf(format!("{label} {unit} (#{id})"), cdf, ticks);
        out.push_str(&plot.render());
    }
    out
}

/// Renders a bandwidth figure (Figs. 6/9/10/11/14): averages, peak, ratio
/// and the 10-second series.
pub fn render_bandwidth(title: &str, result: &DisseminationResult) -> String {
    let bw = &result.bandwidth;
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "leader avg {:.3} MB/s | regular avg {:.3} MB/s | leader/regular {:.2} | regular peak {:.2} MB/s\n",
        bw.leader.average(Some(bw.active_buckets)),
        bw.regular.average(Some(bw.active_buckets)),
        bw.leader_ratio(),
        bw.regular.peak(),
    ));
    out.push_str(&bw.leader.render());
    out.push_str(&bw.regular.render());
    out
}

/// One-line dissemination summary used by comparison benches.
pub fn render_summary(title: &str, result: &DisseminationResult) -> String {
    let pooled = result.pooled_cdf();
    let (p50, p999, max) = if pooled.is_empty() {
        (Duration::ZERO, Duration::ZERO, Duration::ZERO)
    } else {
        (pooled.quantile(0.5), pooled.quantile(0.999), pooled.max())
    };
    format!(
        "{title}: {} blocks | completeness {:.4} | p50 {} | p99.9 {} | max {} | peer traffic {:.1} MB\n",
        result.blocks, result.completeness, p50, p999, max, result.peer_traffic_mb,
    )
}

/// Renders Table II with the paper's columns.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2} s", r.period.as_secs_f64()),
                format!("{:.1}", r.tx_per_block),
                format!("{:.2} s", r.validation_time().as_secs_f64()),
                format!("{:.0}", r.original),
                format!("{:.0}", r.enhanced),
                format!("{:+.0}%", r.difference_pct()),
            ]
        })
        .collect();
    render_table(
        &[
            "Block period",
            "Tx/block",
            "Validation",
            "Original",
            "Enhanced",
            "Difference",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissemination::{run_dissemination, DisseminationConfig};

    fn tiny_result() -> DisseminationResult {
        let mut cfg = DisseminationConfig::fig07_09_enhanced_f4().scaled(150);
        cfg.peers = 10;
        cfg.network = desim::NetworkConfig::lan(12);
        run_dissemination(&cfg)
    }

    #[test]
    fn renders_contain_the_expected_sections() {
        let res = tiny_result();
        let peer = render_peer_level("Fig 7", &res);
        assert!(peer.contains("Fig 7"));
        assert!(peer.contains("fastest peer"));
        assert!(peer.contains("slowest peer"));
        let block = render_block_level("Fig 8", &res);
        assert!(block.contains("median block"));
        let bw = render_bandwidth("Fig 9", &res);
        assert!(bw.contains("leader avg"));
        assert!(bw.contains("regular peer"));
        let sum = render_summary("enhanced", &res);
        assert!(sum.contains("completeness"));
    }

    #[test]
    fn table2_render_shows_paper_columns() {
        let rows = vec![Table2Row {
            period: Duration::from_secs(2),
            tx_per_block: 10.0,
            original: 803.0,
            enhanced: 664.0,
        }];
        let text = render_table2(&rows);
        assert!(text.contains("Block period"));
        assert!(text.contains("803"));
        assert!(text.contains("-17%"));
        assert!(text.contains("0.50 s"));
    }
}
