//! The simulated Fabric network: client, ordering service and gossip peers
//! as one [`desim::Protocol`].
//!
//! Node layout for a deployment of `n` peers:
//!
//! * nodes `0 .. n` — the peers (gossip + optional ledgers);
//! * node `n` — the ordering service;
//! * node `n + 1` — the client application.
//!
//! The full execute-order-validate pipeline runs in virtual time and is
//! **channel-routed end to end**: every scheduled invocation names its
//! [`ChannelId`]; the client sends proposals to that channel's endorsers,
//! which simulate the chaincode against their committed per-channel state
//! and sign; the client forwards the endorsed transaction to the orderer,
//! whose per-channel block cutter batches it; consensus is modeled by the
//! configured latency; cut blocks go to the channel's current leader(s),
//! and the channel's gossip instance takes it from there. Every peer pays
//! the configured validation cost per delivered transaction on a single
//! serial pipeline shared by its channels, which queues its message
//! processing exactly like a busy CPU would.
//!
//! Single-channel deployments (the paper's evaluation shape) configure
//! nothing: [`NetParams::new`] derives the [`ChannelId::DEFAULT`] channel
//! from the legacy fields, and every event, byte and RNG draw matches the
//! historical single-channel pipeline exactly. Multi-channel deployments
//! add [`ChannelSpec`]s; runtime membership churn — peers joining a
//! channel mid-run, catching up through StateInfo + recovery, and leaving
//! again with forced leader re-election — is driven by [`ChurnEvent`]s.

use std::collections::VecDeque;
use std::sync::Arc;

use desim::{Ctx, Duration, NodeId, Time};
use fabric_gossip::config::GossipConfig;
use fabric_gossip::effects::Effects;
use fabric_gossip::messages::{ChannelMsg, GossipMsg, GossipTimer};
use fabric_gossip::peer::GossipPeer;
use fabric_ledger::ledger::{Ledger, SnapshotPolicy};
use fabric_orderer::service::{OrdererConfig, OrderingService};
use fabric_types::block::{Block, BlockRef};
use fabric_types::ids::{ChannelId, ClientId, PeerId, TxId};
use fabric_types::msp::Msp;
use fabric_types::transaction::{EndorsementPolicy, Transaction};
use fabric_workload::client::endorse_invocation;
use fabric_workload::schedule::ScheduledInvocation;
use gossip_metrics::latency::LatencyRecorder;

/// Messages on the simulated wire.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// Peer-to-peer gossip: a channel-tagged envelope.
    Gossip(ChannelMsg),
    /// Client → endorsing peer: proposal `schedule[index]`.
    Propose {
        /// Index into the experiment's invocation schedule.
        index: usize,
    },
    /// Endorsing peer → client: the signed transaction for one proposal.
    Endorsed {
        /// Index into the experiment's invocation schedule.
        index: usize,
        /// The endorsed transaction (reads taken at this endorser's state).
        tx: Box<Transaction>,
    },
    /// Client → orderer: submit for ordering on `channel`.
    Submit {
        /// The channel whose chain will batch the transaction.
        channel: ChannelId,
        /// The endorsed transaction.
        tx: Box<Transaction>,
    },
    /// Orderer → leader peer: a freshly cut block of `channel`.
    DeliverBlock {
        /// The channel the block belongs to.
        channel: ChannelId,
        /// The cut block.
        block: BlockRef,
    },
}

impl desim::Message for NetMsg {
    fn wire_size(&self) -> usize {
        // The channel tag of Submit/DeliverBlock rides inside the fixed
        // framing overhead (like the channel MAC inside ChannelMsg's
        // envelope), so wire sizes match the historical single-channel
        // pipeline byte for byte.
        match self {
            NetMsg::Gossip(g) => g.wire_size(),
            NetMsg::Propose { .. } => 320, // chaincode name, args, client cert
            NetMsg::Endorsed { tx, .. } => 48 + tx.wire_size(),
            NetMsg::Submit { tx, .. } => 48 + tx.wire_size(),
            NetMsg::DeliverBlock { block, .. } => 48 + block.wire_size(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            NetMsg::Gossip(g) => g.kind(),
            NetMsg::Propose { .. } => "propose",
            NetMsg::Endorsed { .. } => "endorsed",
            NetMsg::Submit { .. } => "submit",
            NetMsg::DeliverBlock { .. } => "orderer-deliver",
        }
    }

    fn kind_id(&self) -> desim::KindId {
        // Cached interning: the engine records a kind id per send, so the
        // default (registry lookup per call) would put a lock on the hot
        // path.
        struct PipelineKindIds {
            propose: desim::KindId,
            endorsed: desim::KindId,
            submit: desim::KindId,
            deliver: desim::KindId,
        }
        static IDS: std::sync::OnceLock<PipelineKindIds> = std::sync::OnceLock::new();
        let ids = IDS.get_or_init(|| PipelineKindIds {
            propose: desim::KindId::intern("propose"),
            endorsed: desim::KindId::intern("endorsed"),
            submit: desim::KindId::intern("submit"),
            deliver: desim::KindId::intern("orderer-deliver"),
        });
        match self {
            NetMsg::Gossip(g) => g.kind_id(),
            NetMsg::Propose { .. } => ids.propose,
            NetMsg::Endorsed { .. } => ids.endorsed,
            NetMsg::Submit { .. } => ids.submit,
            NetMsg::DeliverBlock { .. } => ids.deliver,
        }
    }
}

/// Timers of the simulated network.
#[derive(Debug)]
pub enum NetTimer {
    /// A gossip timer of one peer's channel instance.
    Peer {
        /// The channel instance the timer belongs to.
        channel: ChannelId,
        /// The gossip timer payload.
        timer: GossipTimer,
    },
    /// The client's next scheduled submission is due.
    ClientIssue,
    /// The orderer's batch timeout for `epoch` on `channel`.
    BatchTimeout {
        /// The channel whose pending batch the timer guards.
        channel: ChannelId,
        /// The per-channel batch epoch (stale epochs are ignored).
        epoch: u64,
    },
    /// Consensus finished for a cut block; deliver it to `channel`'s
    /// leader(s).
    DeliverCut {
        /// The channel the block belongs to.
        channel: ChannelId,
        /// The cut block.
        block: BlockRef,
    },
    /// A peer finished validating the oldest block in its commit queue.
    CommitDone,
    /// The churn event `params.churn[index]` is due.
    Churn {
        /// Index into [`NetParams::churn`].
        index: usize,
    },
}

/// One channel of the deployment: membership, organization split and
/// endorsement configuration.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// The channel id. Specs must cover a dense `0..channels` range
    /// ([`ChannelId::DEFAULT`] is spec 0, derived from the legacy
    /// [`NetParams`] fields).
    pub channel: ChannelId,
    /// The peers joined to this channel at start of run, in ascending id
    /// order (enforced at build: the gossip layer's initial static
    /// election picks the id minimum while departure re-election promotes
    /// by roster seniority — the two coincide only on sorted rosters).
    pub members: Vec<PeerId>,
    /// Number of organizations; members are split contiguously. Push and
    /// pull stay inside each organization; StateInfo and recovery cross
    /// organizations, and the ordering service feeds one leader per
    /// organization — Fig. 1 of the paper.
    pub orgs: usize,
    /// The channel's endorsing peers (must be members with ledgers).
    pub endorsers: Vec<PeerId>,
    /// The channel's endorsement policy.
    pub policy: EndorsementPolicy,
}

/// How runtime membership changes propagate through the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscoveryMode {
    /// The synchronous oracle of the pre-discovery pipeline: a churn event
    /// invokes `on_peer_joined` / `on_peer_left` on every sitting member
    /// instantly. Kept as an escape hatch (and as the baseline the
    /// oracle-equivalence test compares against).
    #[default]
    Oracle,
    /// The gossiped discovery protocol: a joiner announces itself through
    /// its `AliveMsg` heartbeats, a leaver just goes silent, and every
    /// sitting member converges through heartbeats, anti-entropy and
    /// expiry — no oracle callbacks anywhere. Requires
    /// [`fabric_gossip::config::DiscoveryConfig::protocol`] in the gossip
    /// configuration; discovery traffic is counted in
    /// [`fabric_gossip::peer::PeerStats`] (and therefore fairness) like
    /// any other message kind.
    Protocol,
}

/// What a churn event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// The peer joins the channel at runtime and catches up to the head
    /// via the StateInfo + recovery machinery.
    Join,
    /// The peer leaves the channel: it is dropped from every remaining
    /// member's rosters and, if it led, leader re-election is forced.
    Leave,
}

/// One scheduled runtime-membership change.
///
/// Churned channels must be single-organization (`orgs == 1`): runtime
/// membership reshapes the roster, and the contiguous multi-organization
/// split is a static deployment concept.
#[derive(Debug, Clone)]
pub struct ChurnEvent {
    /// When the change happens.
    pub at: Time,
    /// The peer joining or leaving.
    pub peer: PeerId,
    /// The channel affected.
    pub channel: ChannelId,
    /// Join or leave.
    pub action: ChurnAction,
}

/// The catch-up record of one runtime join: a late joiner must converge to
/// the chain head the channel had at join time.
#[derive(Debug, Clone)]
pub struct Catchup {
    /// The joining peer.
    pub peer: PeerId,
    /// The channel joined.
    pub channel: ChannelId,
    /// When the join happened.
    pub joined_at: Time,
    /// The channel's chain head (last cut block number) at join time.
    pub target: u64,
    /// When the joiner's contiguous height first covered `target`
    /// (`None` while still catching up).
    pub completed_at: Option<Time>,
    /// Catch-up transfer bytes received while open: recovery-response and
    /// snapshot-response wire bytes addressed to the joiner on this
    /// channel. Steady-state push/pull traffic is not counted — this is
    /// the cost of the bootstrap itself.
    pub bytes: u64,
    /// Blocks the joiner individually received and replayed to reach the
    /// head (filled at completion). Equals the full chain under genesis
    /// replay; only the tail above the snapshot floor with snapshots on.
    pub blocks_replayed: u64,
    /// Highest block number absorbed through an installed snapshot
    /// (0 = genesis replay; filled at completion).
    pub snapshot_height: u64,
    /// Largest single snapshot-transfer wire message addressed to the
    /// joiner while open — under chunked transfer this stays within the
    /// configured chunk size instead of spiking to the whole serialized
    /// snapshot (block-recovery batches are not chunked and not counted).
    pub max_msg_bytes: u64,
    /// Snapshot chunks the joiner accepted (filled at completion;
    /// 0 under whole-snapshot transfer).
    pub chunks: u64,
    /// Snapshot transfers re-requested after a timeout or server
    /// departure (filled at completion).
    pub resumes: u64,
}

impl Catchup {
    /// Catch-up latency (join → head reached), when complete.
    pub fn latency(&self) -> Option<Duration> {
        self.completed_at.map(|t| t.since(self.joined_at))
    }

    /// Time from join until the peer serves the join-time head — the
    /// report-facing name for [`Catchup::latency`].
    pub fn time_to_serving(&self) -> Option<Duration> {
        self.latency()
    }
}

/// Discovery-convergence record of one protocol-mode churn event: how the
/// news of a join (or leave) spread through the sitting members' views.
///
/// For a **join**, an observation is the instant a member's discovery
/// engine admitted the joiner (the `discovery_event(..., joined = true)`
/// hook). For a **leave**, it is the instant a member reaped the leaver
/// (`joined = false`) — so the full-convergence latency of a leave *is*
/// the stale-view duration: how long some member still believed the
/// departed peer alive.
#[derive(Debug, Clone)]
pub struct ViewConvergence {
    /// The peer that joined or left.
    pub peer: PeerId,
    /// The channel affected.
    pub channel: ChannelId,
    /// When the churn event happened.
    pub at: Time,
    /// `true` for a join, `false` for a leave.
    pub join: bool,
    /// Sitting members that must observe the change. Pruned when an
    /// expected observer itself leaves before observing.
    pub expected: Vec<PeerId>,
    /// First observation instant per member.
    pub observed: Vec<(PeerId, Time)>,
}

impl ViewConvergence {
    /// Whether every expected member has observed the change.
    pub fn complete(&self) -> bool {
        self.expected
            .iter()
            .all(|m| self.observed.iter().any(|(p, _)| p == m))
    }

    /// Event → last expected observation (full convergence; the
    /// stale-view duration for a leave). `None` while incomplete.
    pub fn latency(&self) -> Option<Duration> {
        if !self.complete() {
            return None;
        }
        self.observed
            .iter()
            .filter(|(p, _)| self.expected.contains(p))
            .map(|(_, t)| *t)
            .max()
            .map(|t| t.since(self.at))
            .or(Some(Duration::ZERO)) // nobody to convince: instant
    }

    /// Fraction of expected members whose view includes the change at `t`.
    pub fn fraction_at(&self, t: Time) -> f64 {
        if self.expected.is_empty() {
            return 1.0;
        }
        let seen = self
            .expected
            .iter()
            .filter(|m| self.observed.iter().any(|(p, obs)| p == *m && *obs <= t))
            .count();
        seen as f64 / self.expected.len() as f64
    }
}

/// Static parameters of the simulated deployment.
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Total number of peers in the deployment (every channel's members
    /// draw from `0..peers`).
    pub peers: usize,
    /// Number of organizations of the **default channel**; peers are split
    /// contiguously (org `i` owns peers `[i·k, (i+1)·k)`).
    pub orgs: usize,
    /// Gossip configuration shared by every peer.
    pub gossip: GossipConfig,
    /// Ordering service configuration (batching + consensus latency),
    /// shared by every channel's chain.
    pub orderer: OrdererConfig,
    /// Validation CPU cost per transaction at commit (paper §V-D: 50 ms).
    pub validation_per_tx: Duration,
    /// CPU cost of simulating + signing one endorsement.
    pub endorse_cost: Duration,
    /// The **default channel's** endorsing peers. §V-D uses one; with
    /// several, the client compares read sets across endorsements and
    /// discards mismatches — the paper's *proposal-time* conflicts (§II-C).
    pub endorsers: Vec<PeerId>,
    /// Maintain a full ledger on every member of every channel (`true`) or
    /// only on endorsers (`false`, saves memory in dissemination runs).
    pub full_ledgers: bool,
    /// The **default channel's** endorsement policy.
    pub policy: EndorsementPolicy,
    /// The **default channel's** members, in ascending id order. `None`
    /// (the historical shape) joins every peer of the deployment; sharded
    /// runners set an explicit subset so a shard-local default channel can
    /// coexist with other channels over the same peer pool.
    pub default_members: Option<Vec<PeerId>>,
    /// Further channels beyond the default one. Ids must continue the
    /// dense range (`ChannelId(1)`, `ChannelId(2)`, …).
    pub extra_channels: Vec<ChannelSpec>,
    /// Runtime membership changes, any order (each is armed as its own
    /// timer).
    pub churn: Vec<ChurnEvent>,
    /// How churn propagates: the synchronous oracle (default, the PR 3
    /// pipeline) or the gossiped discovery protocol.
    pub discovery: DiscoveryMode,
    /// Runtime joiners enter knowing **one anchor peer** (the channel's
    /// lowest-id sitting member) instead of the full roster, and learn the
    /// rest through discovery push-pull. Requires
    /// [`DiscoveryMode::Protocol`].
    pub anchor_join: bool,
}

impl NetParams {
    /// Sensible defaults for a dissemination experiment over `peers` peers
    /// on the single default channel.
    pub fn new(peers: usize, gossip: GossipConfig, orderer: OrdererConfig) -> Self {
        NetParams {
            peers,
            orgs: 1,
            gossip,
            orderer,
            validation_per_tx: Duration::from_micros(500),
            endorse_cost: Duration::from_millis(2),
            endorsers: vec![PeerId(1)],
            full_ledgers: false,
            policy: EndorsementPolicy::AnyMember,
            default_members: None,
            extra_channels: Vec::new(),
            churn: Vec::new(),
            discovery: DiscoveryMode::Oracle,
            anchor_join: false,
        }
    }

    /// Every channel of the deployment: the default channel derived from
    /// the legacy fields, then the extra specs.
    pub fn channel_specs(&self) -> Vec<ChannelSpec> {
        let mut specs = Vec::with_capacity(1 + self.extra_channels.len());
        specs.push(ChannelSpec {
            channel: ChannelId::DEFAULT,
            members: self
                .default_members
                .clone()
                .unwrap_or_else(|| (0..self.peers as u32).map(PeerId).collect()),
            orgs: self.orgs,
            endorsers: self.endorsers.clone(),
            policy: self.policy.clone(),
        });
        specs.extend(self.extra_channels.iter().cloned());
        specs
    }
}

/// Per-channel runtime state of the deployment.
#[derive(Debug)]
struct ChannelRuntime {
    spec: ChannelSpec,
    /// Current members (spec members ± churn).
    members: Vec<PeerId>,
    /// Peer index → latency-matrix slot. Sized over the peers that are
    /// ever members (initial members plus scheduled joiners).
    slots: Vec<Option<usize>>,
    /// Peer index → organization (fixed at build; joiners are org 0 —
    /// churned channels are single-organization).
    org_of: Vec<Option<usize>>,
    /// Per-(block, member-slot) dissemination latency (t0 = leader
    /// reception).
    latency: LatencyRecorder,
    /// Leadership acquisitions observed on this channel (initial election
    /// plus every hand-off).
    handoffs: u64,
    /// Discovery-convergence records of protocol-mode churn events.
    convergence: Vec<ViewConvergence>,
    /// Instant a leader-leave opened a leadership gap, until the next
    /// acquisition closes it.
    gap_open: Option<Time>,
    /// Closed leadership-gap windows (leader leave → successor claim).
    leader_gaps: Vec<Duration>,
}

struct PeerNode {
    gossip: GossipPeer,
    /// One ledger per channel this peer endorses on (or every joined
    /// channel under `full_ledgers`).
    ledgers: Vec<(ChannelId, Ledger)>,
    /// Blocks fully committed (validated + applied or counted), per
    /// channel.
    committed: std::collections::BTreeMap<ChannelId, u64>,
    /// Commit failures (chain violations) — should stay zero.
    commit_errors: u64,
    /// Blocks delivered in order, awaiting the validation delay (one
    /// serial pipeline across channels).
    pending_commits: VecDeque<(ChannelId, BlockRef)>,
    /// Instant the peer's (serial) validation pipeline frees up.
    validation_free: Time,
}

impl PeerNode {
    fn ledger(&self, channel: ChannelId) -> Option<&Ledger> {
        self.ledgers
            .iter()
            .find(|(ch, _)| *ch == channel)
            .map(|(_, l)| l)
    }

    fn ledger_mut(&mut self, channel: ChannelId) -> Option<&mut Ledger> {
        self.ledgers
            .iter_mut()
            .find(|(ch, _)| *ch == channel)
            .map(|(_, l)| l)
    }
}

/// The whole simulated deployment, implementing [`desim::Protocol`].
#[derive(Debug)]
pub struct FabricNet {
    params: NetParams,
    msp: Arc<Msp>,
    peers: Vec<PeerNode>,
    channels: Vec<ChannelRuntime>,
    orderer: OrderingService,
    schedule: Arc<Vec<ScheduledInvocation>>,
    next_invocation: usize,
    issued: u64,
    endorse_failures: u64,
    /// Endorsed transactions collected per in-flight proposal.
    pending_endorsements: std::collections::BTreeMap<usize, Vec<Transaction>>,
    /// Proposals discarded because endorsers returned mismatched read sets.
    proposal_conflicts: u64,
    /// Catch-up records, one per runtime join, in event order.
    catchups: Vec<Catchup>,
}

impl std::fmt::Debug for PeerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerNode")
            .field("peer", &self.gossip.id())
            .field("committed", &self.committed)
            .finish_non_exhaustive()
    }
}

impl FabricNet {
    /// Builds the deployment. The network config passed to the simulation
    /// must have `params.peers + 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics on invalid gossip configuration, a channel spec whose
    /// members or endorsers fall outside the deployment, non-dense channel
    /// ids, or churn events targeting multi-organization channels.
    pub fn new(params: NetParams, schedule: Vec<ScheduledInvocation>) -> Self {
        let specs = params.channel_specs();
        for (c, spec) in specs.iter().enumerate() {
            assert_eq!(
                spec.channel.index(),
                c,
                "channel ids must be dense: spec {c} names {}",
                spec.channel
            );
            assert!(
                !spec.members.is_empty(),
                "channel {} has no members",
                spec.channel
            );
            assert!(
                spec.members.iter().all(|p| p.index() < params.peers),
                "channel {} member outside the deployment",
                spec.channel
            );
            assert!(
                !spec.endorsers.is_empty(),
                "channel {} needs at least one endorsing peer",
                spec.channel
            );
            assert!(
                spec.endorsers.iter().all(|e| spec.members.contains(e)),
                "channel {} endorsers must be members",
                spec.channel
            );
            assert!(
                spec.orgs >= 1 && spec.orgs <= spec.members.len(),
                "channel {} needs 1..=members organizations",
                spec.channel
            );
            // Static re-election promotes by roster seniority (first
            // sitting entry), while the initial election picks the id
            // minimum — the two agree only on id-ordered rosters, so an
            // unsorted spec could crown two leaders after a departure.
            assert!(
                spec.members.windows(2).all(|w| w[0] < w[1]),
                "channel {} members must be listed in ascending id order",
                spec.channel
            );
        }
        for ev in &params.churn {
            let spec = specs
                .get(ev.channel.index())
                .unwrap_or_else(|| panic!("churn targets unknown channel {}", ev.channel));
            assert!(
                spec.orgs == 1,
                "churned channel {} must be single-organization",
                ev.channel
            );
            assert!(
                ev.peer.index() < params.peers,
                "churn peer {} outside the deployment",
                ev.peer
            );
            // Endorsers are the channel's execution substrate: their
            // ledgers freeze on leave while the client keeps proposing to
            // them, which would quietly corrupt every later read set.
            assert!(
                !(ev.action == ChurnAction::Leave && spec.endorsers.contains(&ev.peer)),
                "churn must not remove endorser {} from channel {}",
                ev.peer,
                ev.channel
            );
        }

        assert_eq!(
            params.discovery == DiscoveryMode::Protocol,
            params.gossip.discovery.protocol,
            "discovery mode and gossip config must agree: DiscoveryMode::Protocol requires \
             gossip.discovery.protocol (and vice versa)"
        );
        assert!(
            !params.anchor_join || params.discovery == DiscoveryMode::Protocol,
            "anchor-peer joins learn the roster through discovery push-pull: \
             anchor_join requires DiscoveryMode::Protocol"
        );

        // MSP identities follow the default channel's organization split,
        // as in the historical single-channel deployment.
        let mut msp = Msp::new();
        let per_org = params.peers.div_ceil(params.orgs);
        for id in (0..params.peers as u32).map(PeerId) {
            msp.enroll(id, fabric_types::ids::OrgId((id.index() / per_org) as u16));
        }
        let msp = Arc::new(msp);

        // Per-channel runtime state. The latency matrix covers everyone
        // who is ever a member: initial members first (so single-channel
        // slots are the identity map), then scheduled joiners.
        let channels: Vec<ChannelRuntime> = specs
            .into_iter()
            .map(|spec| {
                let mut eligible = spec.members.clone();
                for ev in &params.churn {
                    if ev.channel == spec.channel
                        && ev.action == ChurnAction::Join
                        && !eligible.contains(&ev.peer)
                    {
                        eligible.push(ev.peer);
                    }
                }
                let mut slots = vec![None; params.peers];
                for (slot, member) in eligible.iter().enumerate() {
                    slots[member.index()] = Some(slot);
                }
                let mut org_of = vec![None; params.peers];
                let per_org = spec.members.len().div_ceil(spec.orgs);
                for (pos, member) in spec.members.iter().enumerate() {
                    org_of[member.index()] = Some(pos / per_org);
                }
                for joiner in &eligible[spec.members.len()..] {
                    org_of[joiner.index()] = Some(0);
                }
                let latency = LatencyRecorder::new(eligible.len());
                ChannelRuntime {
                    members: spec.members.clone(),
                    slots,
                    org_of,
                    latency,
                    handoffs: 0,
                    convergence: Vec::new(),
                    gap_open: None,
                    leader_gaps: Vec::new(),
                    spec,
                }
            })
            .collect();

        // Gossip peers: one instance per (member, channel), organization
        // rosters confined per channel, channel views widened to the full
        // membership.
        let peers: Vec<PeerNode> = (0..params.peers as u32)
            .map(PeerId)
            .map(|id| {
                let mut gossip = GossipPeer::with_channels(id, params.gossip.clone());
                let mut ledgers = Vec::new();
                for rt in &channels {
                    let spec = &rt.spec;
                    if !spec.members.contains(&id) {
                        continue;
                    }
                    let per_org = spec.members.len().div_ceil(spec.orgs);
                    let pos = spec.members.iter().position(|m| *m == id).expect("member");
                    let org_lo = (pos / per_org) * per_org;
                    let org_hi = (org_lo + per_org).min(spec.members.len());
                    let org_roster: Vec<PeerId> = spec.members[org_lo..org_hi].to_vec();
                    gossip = gossip
                        .join_channel(spec.channel, org_roster)
                        .widen_channel_view(spec.channel, spec.members.clone());
                    if params.full_ledgers || spec.endorsers.contains(&id) {
                        let mut ledger = Ledger::new(msp.clone(), spec.policy.clone());
                        if let Some(policy) = ledger_snapshot_policy(&params.gossip) {
                            ledger = ledger.with_snapshot_policy(policy);
                        }
                        ledgers.push((spec.channel, ledger));
                    }
                }
                PeerNode {
                    gossip,
                    ledgers,
                    committed: std::collections::BTreeMap::new(),
                    commit_errors: 0,
                    pending_commits: VecDeque::new(),
                    validation_free: Time::ZERO,
                }
            })
            .collect();

        let mut orderer = OrderingService::new(params.orderer.clone(), Block::genesis().hash(), 1);
        for rt in &channels[1..] {
            orderer.add_channel(rt.spec.channel, Block::genesis().hash(), 1);
        }
        FabricNet {
            params,
            msp,
            peers,
            channels,
            orderer,
            schedule: Arc::new(schedule),
            next_invocation: 0,
            issued: 0,
            endorse_failures: 0,
            pending_endorsements: std::collections::BTreeMap::new(),
            proposal_conflicts: 0,
            catchups: Vec::new(),
        }
    }

    /// The node id of the ordering service.
    pub fn orderer_node(&self) -> NodeId {
        NodeId(self.params.peers as u32)
    }

    /// The node id of the client.
    pub fn client_node(&self) -> NodeId {
        NodeId(self.params.peers as u32 + 1)
    }

    /// Total nodes the network config must provide.
    pub fn node_count(params: &NetParams) -> usize {
        params.peers + 2
    }

    /// The experiment parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Proposals issued by the client so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Endorsement failures observed (should stay zero).
    pub fn endorse_failures(&self) -> u64 {
        self.endorse_failures
    }

    /// Proposals the client discarded because endorsers disagreed on read
    /// versions (proposal-time conflicts, §II-C).
    pub fn proposal_conflicts(&self) -> u64 {
        self.proposal_conflicts
    }

    /// Blocks cut by the ordering service across every channel.
    pub fn blocks_cut(&self) -> u64 {
        self.orderer.blocks_cut()
    }

    /// Blocks cut on `channel`.
    pub fn blocks_cut_on(&self, channel: ChannelId) -> u64 {
        self.orderer.blocks_cut_on(channel)
    }

    /// The default channel's latency matrix (t0 = leader reception).
    pub fn latency(&self) -> &LatencyRecorder {
        &self.channels[0].latency
    }

    /// The latency matrix of `channel`, if it exists. Slots follow the
    /// channel's initial member order, scheduled joiners appended.
    pub fn latency_on(&self, channel: ChannelId) -> Option<&LatencyRecorder> {
        self.channels.get(channel.index()).map(|rt| &rt.latency)
    }

    /// The current members of `channel` (spec members ± churn).
    pub fn members_on(&self, channel: ChannelId) -> &[PeerId] {
        &self.channels[channel.index()].members
    }

    /// Leadership acquisitions observed on `channel`: the initial election
    /// under dynamic election (static leaders are seeded, not elected)
    /// plus one per hand-off.
    pub fn handoffs_on(&self, channel: ChannelId) -> u64 {
        self.channels[channel.index()].handoffs
    }

    /// Catch-up records of every runtime join so far, in event order.
    pub fn catchups(&self) -> &[Catchup] {
        &self.catchups
    }

    /// The ledger snapshot policy, when the gossip layer has snapshots
    /// on (`None` keeps ledgers checkpoint-free — the byte-identical
    /// historical pipeline). Delta-snapshot gossip configs map onto the
    /// delta retention policy at the same cadence.
    fn checkpoint_policy(&self) -> Option<SnapshotPolicy> {
        ledger_snapshot_policy(&self.params.gossip)
    }

    /// Discovery-convergence records of `channel`'s protocol-mode churn
    /// events, in event order (empty under [`DiscoveryMode::Oracle`]).
    pub fn convergence_on(&self, channel: ChannelId) -> &[ViewConvergence] {
        &self.channels[channel.index()].convergence
    }

    /// Closed leadership-gap windows of `channel` (leader leave →
    /// successor claim), in event order.
    pub fn leader_gaps_on(&self, channel: ChannelId) -> &[Duration] {
        &self.channels[channel.index()].leader_gaps
    }

    /// Whether `channel` currently has an unclosed leadership gap.
    pub fn leader_gap_open_on(&self, channel: ChannelId) -> bool {
        self.channels[channel.index()].gap_open.is_some()
    }

    /// The gossip state of peer `i`.
    pub fn gossip(&self, i: usize) -> &GossipPeer {
        &self.peers[i].gossip
    }

    /// The default-channel ledger of peer `i`, if it maintains one.
    pub fn ledger(&self, i: usize) -> Option<&Ledger> {
        self.peers[i].ledger(ChannelId::DEFAULT)
    }

    /// The ledger peer `i` maintains for `channel`, if any.
    pub fn ledger_on(&self, i: usize, channel: ChannelId) -> Option<&Ledger> {
        self.peers[i].ledger(channel)
    }

    /// Blocks committed (delivered in order) by peer `i`, summed over its
    /// channels.
    pub fn committed(&self, i: usize) -> u64 {
        self.peers[i].committed.values().sum()
    }

    /// Blocks peer `i` committed on `channel`.
    pub fn committed_on(&self, i: usize, channel: ChannelId) -> u64 {
        self.peers[i].committed.get(&channel).copied().unwrap_or(0)
    }

    /// Turns peer `i` into a free-rider (or back): it keeps receiving and
    /// serving requests but stops forwarding (see
    /// [`GossipPeer::set_forwarding`]). Call before `start`.
    pub fn set_forwarding(&mut self, i: usize, forwarding: bool) {
        self.peers[i].gossip.set_forwarding(forwarding);
    }

    /// Commit errors across all peers (chain violations; should be zero).
    pub fn commit_errors(&self) -> u64 {
        self.peers.iter().map(|p| p.commit_errors).sum()
    }

    /// The id of the peer currently acting as leader on the default
    /// channel, if any (first claimant in a multi-organization
    /// deployment).
    pub fn current_leader(&self) -> Option<PeerId> {
        self.current_leaders_on(ChannelId::DEFAULT).first().copied()
    }

    /// Every peer currently claiming leadership on the default channel
    /// (normally one per organization).
    pub fn current_leaders(&self) -> Vec<PeerId> {
        self.current_leaders_on(ChannelId::DEFAULT)
    }

    /// Every peer currently claiming leadership on `channel`.
    pub fn current_leaders_on(&self, channel: ChannelId) -> Vec<PeerId> {
        self.peers
            .iter()
            .filter(|p| p.gossip.is_leader_on(channel))
            .map(|p| p.gossip.id())
            .collect()
    }

    /// The organization (by index) of a peer on the default channel, per
    /// the contiguous split.
    pub fn org_of(&self, peer: PeerId) -> usize {
        self.channels[0].org_of[peer.index()].expect("every peer is on the default channel")
    }

    /// Starts the experiment: initializes every peer's timers, arms the
    /// client's first submission and every churn event. Call once through
    /// `Simulation::with_ctx`.
    pub fn start(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>) {
        let validation = self.params.validation_per_tx;
        let ckpt = self.checkpoint_policy();
        for i in 0..self.peers.len() {
            let node = NodeId(i as u32);
            let PeerNode {
                gossip,
                ledgers,
                pending_commits,
                validation_free,
                ..
            } = &mut self.peers[i];
            let mut fx = SimFx {
                ctx,
                me: node,
                pending_commits,
                validation_free,
                ledgers,
                msp: &self.msp,
                channels: &mut self.channels,
                validation_per_tx: validation,
                snapshot_policy: ckpt,
            };
            gossip.init(&mut fx);
        }
        if let Some(first) = self.schedule.first() {
            let delay = first.at.since(Time::ZERO);
            ctx.set_timer(self.client_node(), delay, NetTimer::ClientIssue);
        }
        for (index, ev) in self.params.churn.iter().enumerate() {
            ctx.set_timer(
                NodeId(ev.peer.0),
                ev.at.since(Time::ZERO),
                NetTimer::Churn { index },
            );
        }
    }

    fn peer_message(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        to: NodeId,
        from: NodeId,
        envelope: ChannelMsg,
    ) {
        let validation = self.params.validation_per_tx;
        let ckpt = self.checkpoint_policy();
        // Catch-up transfer accounting: recovery batches and snapshot
        // responses addressed to a still-catching-up joiner are the bytes
        // its bootstrap costs (steady-state push/pull is not).
        {
            use desim::Message as _;
            let kind = envelope.msg.kind();
            if kind == "block-recovery" || kind == "snapshot" || kind == "snapshot-chunk" {
                let peer = PeerId(to.0);
                if let Some(c) = self.catchups.iter_mut().find(|c| {
                    c.completed_at.is_none() && c.peer == peer && c.channel == envelope.channel
                }) {
                    let wire = envelope.wire_size() as u64;
                    c.bytes += wire;
                    if kind != "block-recovery" {
                        c.max_msg_bytes = c.max_msg_bytes.max(wire);
                    }
                }
            }
        }
        let PeerNode {
            gossip,
            ledgers,
            pending_commits,
            validation_free,
            ..
        } = &mut self.peers[to.index()];
        let mut fx = SimFx {
            ctx,
            me: to,
            pending_commits,
            validation_free,
            ledgers,
            msp: &self.msp,
            channels: &mut self.channels,
            validation_per_tx: validation,
            snapshot_policy: ckpt,
        };
        gossip.on_channel_message(&mut fx, envelope.channel, PeerId(from.0), envelope.msg);
        self.check_catchups(to, ctx.now());
    }

    /// Marks pending catch-ups of this peer complete once its contiguous
    /// height covers the join-time head, recording how the head was
    /// reached: blocks individually replayed vs absorbed through a
    /// snapshot.
    fn check_catchups(&mut self, node: NodeId, now: Time) {
        let peer = PeerId(node.0);
        for c in self
            .catchups
            .iter_mut()
            .filter(|c| c.completed_at.is_none() && c.peer == peer)
        {
            let gossip = &self.peers[node.index()].gossip;
            let height = gossip.height_on(c.channel);
            if height > c.target {
                c.completed_at = Some(now);
                let floor = gossip.store_on(c.channel).map_or(0, |s| s.snapshot_floor());
                c.snapshot_height = floor;
                c.blocks_replayed = (height - 1).saturating_sub(floor);
                if let Some(stats) = gossip.stats_on(c.channel) {
                    c.chunks = stats.snapshot_chunks_received;
                    c.resumes = stats.snapshot_resumes;
                }
            }
        }
    }

    /// Applies churn event `index`: runtime join (with catch-up tracking)
    /// or leave (with roster removal and forced re-election).
    ///
    /// In [`DiscoveryMode::Oracle`] the event is broadcast synchronously
    /// (`on_peer_joined` / `on_peer_left` on every sitting member). In
    /// [`DiscoveryMode::Protocol`] **only the churning peer acts** — a
    /// joiner joins live and lets its discovery engine announce it, a
    /// leaver just drops its instance and goes silent — and a
    /// [`ViewConvergence`] record starts tracking how the news spreads
    /// through the sitting members' views.
    fn apply_churn(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, index: usize) {
        let ev = self.params.churn[index].clone();
        let now = ctx.now();
        let validation = self.params.validation_per_tx;
        let ckpt = self.checkpoint_policy();
        let protocol = self.params.discovery == DiscoveryMode::Protocol;
        let c = ev.channel.index();
        match ev.action {
            ChurnAction::Join => {
                if self.channels[c].members.contains(&ev.peer) {
                    return; // already a member — stale or duplicate event
                }
                // The joiner's organization roster is the membership as it
                // stood before the join (a roster excluding self never
                // self-elects statically — the late-joiner rule of
                // `GossipPeer::new`). Under anchor_join the joiner is
                // handed only the lowest-id sitting member and discovers
                // the rest through push-pull.
                let roster = self.channels[c].members.clone();
                let anchor_join = self.params.anchor_join;
                // Under full_ledgers a runtime joiner materializes its
                // ledger at join (build-time ledgers cover initial members
                // only), so a verified snapshot can seed it.
                if self.params.full_ledgers
                    && self.peers[ev.peer.index()].ledger(ev.channel).is_none()
                {
                    let mut ledger =
                        Ledger::new(self.msp.clone(), self.channels[c].spec.policy.clone());
                    if let Some(policy) = ckpt {
                        ledger = ledger.with_snapshot_policy(policy);
                    }
                    self.peers[ev.peer.index()]
                        .ledgers
                        .push((ev.channel, ledger));
                }
                {
                    let PeerNode {
                        gossip,
                        ledgers,
                        pending_commits,
                        validation_free,
                        ..
                    } = &mut self.peers[ev.peer.index()];
                    let mut fx = SimFx {
                        ctx,
                        me: NodeId(ev.peer.0),
                        pending_commits,
                        validation_free,
                        ledgers,
                        msp: &self.msp,
                        channels: &mut self.channels,
                        validation_per_tx: validation,
                        snapshot_policy: ckpt,
                    };
                    if anchor_join {
                        let anchor = *roster
                            .iter()
                            .min()
                            .expect("an anchored joiner needs a sitting member to seed from");
                        gossip.join_channel_anchored(&mut fx, ev.channel, anchor);
                    } else {
                        gossip.join_channel_live(&mut fx, ev.channel, roster.clone());
                    }
                }
                self.channels[c].members.push(ev.peer);
                if protocol {
                    // Nobody else is told: the join propagates through the
                    // joiner's announcement heartbeats and anti-entropy.
                    self.channels[c].convergence.push(ViewConvergence {
                        peer: ev.peer,
                        channel: ev.channel,
                        at: now,
                        join: true,
                        expected: roster,
                        observed: Vec::new(),
                    });
                } else {
                    // Oracle: every sitting member learns instantly.
                    let members = self.channels[c].members.clone();
                    for m in members {
                        if m == ev.peer {
                            continue;
                        }
                        let PeerNode {
                            gossip,
                            ledgers,
                            pending_commits,
                            validation_free,
                            ..
                        } = &mut self.peers[m.index()];
                        let mut fx = SimFx {
                            ctx,
                            me: NodeId(m.0),
                            pending_commits,
                            validation_free,
                            ledgers,
                            msp: &self.msp,
                            channels: &mut self.channels,
                            validation_per_tx: validation,
                            snapshot_policy: ckpt,
                        };
                        gossip.on_peer_joined(&mut fx, ev.channel, ev.peer);
                    }
                }
                let target = self.orderer.chain_head_on(ev.channel);
                self.catchups.push(Catchup {
                    peer: ev.peer,
                    channel: ev.channel,
                    joined_at: now,
                    target,
                    completed_at: (target == 0).then_some(now),
                    bytes: 0,
                    blocks_replayed: 0,
                    snapshot_height: 0,
                    max_msg_bytes: 0,
                    chunks: 0,
                    resumes: 0,
                });
            }
            ChurnAction::Leave => {
                let Some(pos) = self.channels[c].members.iter().position(|m| *m == ev.peer) else {
                    return; // not a member — stale or duplicate event
                };
                let led = self.peers[ev.peer.index()].gossip.is_leader_on(ev.channel);
                self.channels[c].members.remove(pos);
                self.peers[ev.peer.index()].gossip.leave_channel(ev.channel);
                if led && self.channels[c].gap_open.is_none() {
                    // A leadership gap opens the instant the leader leaves
                    // and closes when any successor claims (instantly
                    // under the oracle, by expiry under the protocol).
                    self.channels[c].gap_open = Some(now);
                }
                if protocol {
                    // The leaver goes silent; the sitting members must
                    // detect the departure by alive-timeout expiry. A
                    // member that leaves before observing is excused.
                    let remaining = self.channels[c].members.clone();
                    for record in &mut self.channels[c].convergence {
                        record.expected.retain(|p| *p != ev.peer);
                    }
                    self.channels[c].convergence.push(ViewConvergence {
                        peer: ev.peer,
                        channel: ev.channel,
                        at: now,
                        join: false,
                        expected: remaining,
                        observed: Vec::new(),
                    });
                } else {
                    let members = self.channels[c].members.clone();
                    for m in members {
                        let PeerNode {
                            gossip,
                            ledgers,
                            pending_commits,
                            validation_free,
                            ..
                        } = &mut self.peers[m.index()];
                        let mut fx = SimFx {
                            ctx,
                            me: NodeId(m.0),
                            pending_commits,
                            validation_free,
                            ledgers,
                            msp: &self.msp,
                            channels: &mut self.channels,
                            validation_per_tx: validation,
                            snapshot_policy: ckpt,
                        };
                        gossip.on_peer_left(&mut fx, ev.channel, ev.peer);
                    }
                }
            }
        }
    }

    fn handle_propose(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, to: NodeId, index: usize) {
        let invocation = self.schedule[index].clone();
        let endorser = PeerId(to.0);
        let channel = invocation.channel;
        debug_assert!(
            self.channels[channel.index()]
                .spec
                .endorsers
                .contains(&endorser),
            "proposals go to the channel's endorsers"
        );
        let state = self.peers[endorser.index()]
            .ledger(channel)
            .expect("every endorser maintains a ledger for its channel")
            .state();
        let tx_id = TxId(index as u64 + 1);
        match endorse_invocation(&invocation, tx_id, ClientId(0), endorser, state, &self.msp) {
            Ok(tx) => {
                ctx.occupy(to, self.params.endorse_cost);
                ctx.send(
                    to,
                    self.client_node(),
                    NetMsg::Endorsed {
                        index,
                        tx: Box::new(tx),
                    },
                );
            }
            Err(_) => {
                self.endorse_failures += 1;
            }
        }
    }

    /// Collects one endorsement; once all of the channel's endorsers
    /// answered, compares the read sets (the client-side detection of
    /// §II-C) and either submits the merged proposal on the channel or
    /// discards it as a proposal-time conflict.
    fn handle_endorsed(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        index: usize,
        tx: Transaction,
    ) {
        let channel = self.schedule[index].channel;
        let wanted = self.channels[channel.index()].spec.endorsers.len();
        let entry = self.pending_endorsements.entry(index).or_default();
        entry.push(tx);
        if entry.len() < wanted {
            return;
        }
        let collected = self
            .pending_endorsements
            .remove(&index)
            .expect("just inserted");
        let first = &collected[0];
        let consistent = collected.iter().all(|t| t.rwset == first.rwset);
        if !consistent {
            // Version numbers differ across endorsements: the client
            // detects the mismatch, wastes the round trip, and must try
            // again later (not modeled — the paper's experiment does not
            // resubmit either).
            self.proposal_conflicts += 1;
            return;
        }
        // Identical read/write sets mean identical digests: merge every
        // endorser's signature into one proposal.
        let mut merged = collected[0].clone();
        for other in &collected[1..] {
            merged
                .endorsements
                .extend(other.endorsements.iter().copied());
        }
        ctx.send(
            self.client_node(),
            self.orderer_node(),
            NetMsg::Submit {
                channel,
                tx: Box::new(merged),
            },
        );
    }

    fn handle_submit(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        channel: ChannelId,
        tx: Transaction,
    ) {
        let outcome = self.orderer.submit_on(channel, tx);
        if let Some(epoch) = outcome.arm_timer {
            let timeout = self.orderer.batch_timeout();
            ctx.set_timer(
                self.orderer_node(),
                timeout,
                NetTimer::BatchTimeout { channel, epoch },
            );
        }
        for block in outcome.blocks {
            self.schedule_consensus(ctx, channel, block);
        }
    }

    fn schedule_consensus(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        channel: ChannelId,
        block: Block,
    ) {
        let delay = self.params.orderer.consensus_delay.sample(ctx.rng());
        ctx.set_timer(
            self.orderer_node(),
            delay,
            NetTimer::DeliverCut {
                channel,
                block: BlockRef::new(block),
            },
        );
    }

    fn deliver_cut(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        channel: ChannelId,
        block: BlockRef,
    ) {
        let rt = &self.channels[channel.index()];
        // One delivery per organization, to that organization's leader(s)
        // among the channel's current members.
        let leaders: Vec<NodeId> = rt
            .members
            .iter()
            .filter(|m| {
                self.peers[m.index()].gossip.is_leader_on(channel) && ctx.net().is_up(NodeId(m.0))
            })
            .map(|m| NodeId(m.0))
            .collect();
        let orgs_covered: std::collections::BTreeSet<usize> = leaders
            .iter()
            .filter_map(|n| rt.org_of[n.index()])
            .collect();
        if orgs_covered.len() < rt.spec.orgs {
            // Some organization has no live leader (election in progress):
            // retry shortly, like a leader re-connecting to the ordering
            // service would. Re-delivery to covered organizations is
            // harmless — peers deduplicate content.
            ctx.set_timer(
                self.orderer_node(),
                Duration::from_millis(500),
                NetTimer::DeliverCut {
                    channel,
                    block: block.clone(),
                },
            );
        }
        for leader in leaders {
            ctx.send(
                self.orderer_node(),
                leader,
                NetMsg::DeliverBlock {
                    channel,
                    block: block.clone(),
                },
            );
        }
    }

    fn issue_due(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>) {
        let now = ctx.now();
        while self.next_invocation < self.schedule.len()
            && self.schedule[self.next_invocation].at <= now
        {
            let index = self.next_invocation;
            let channel = self.schedule[index].channel;
            self.next_invocation += 1;
            self.issued += 1;
            for endorser in &self.channels[channel.index()].spec.endorsers {
                ctx.send(
                    self.client_node(),
                    NodeId(endorser.0),
                    NetMsg::Propose { index },
                );
            }
        }
        if self.next_invocation < self.schedule.len() {
            let next_at = self.schedule[self.next_invocation].at;
            ctx.set_timer(
                self.client_node(),
                next_at.since(now),
                NetTimer::ClientIssue,
            );
        }
    }
}

impl desim::Protocol for FabricNet {
    type Msg = NetMsg;
    type Timer = NetTimer;

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        to: NodeId,
        from: NodeId,
        msg: NetMsg,
    ) {
        match msg {
            NetMsg::Gossip(g) => self.peer_message(ctx, to, from, g),
            NetMsg::DeliverBlock { channel, block } => {
                // Dissemination officially starts when the contact peer
                // receives the block from the ordering service.
                self.channels[channel.index()]
                    .latency
                    .start_block(block.number(), ctx.now());
                let validation = self.params.validation_per_tx;
                let ckpt = self.checkpoint_policy();
                let PeerNode {
                    gossip,
                    ledgers,
                    pending_commits,
                    validation_free,
                    ..
                } = &mut self.peers[to.index()];
                let mut fx = SimFx {
                    ctx,
                    me: to,
                    pending_commits,
                    validation_free,
                    ledgers,
                    msp: &self.msp,
                    channels: &mut self.channels,
                    validation_per_tx: validation,
                    snapshot_policy: ckpt,
                };
                gossip.on_block_from_orderer_on(&mut fx, channel, block);
                self.check_catchups(to, ctx.now());
            }
            NetMsg::Propose { index } => self.handle_propose(ctx, to, index),
            NetMsg::Endorsed { index, tx } => {
                debug_assert_eq!(to, self.client_node());
                self.handle_endorsed(ctx, index, *tx);
            }
            NetMsg::Submit { channel, tx } => {
                debug_assert_eq!(to, self.orderer_node());
                self.handle_submit(ctx, channel, *tx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, node: NodeId, timer: NetTimer) {
        match timer {
            NetTimer::Peer { channel, timer } => {
                let validation = self.params.validation_per_tx;
                let ckpt = self.checkpoint_policy();
                let PeerNode {
                    gossip,
                    ledgers,
                    pending_commits,
                    validation_free,
                    ..
                } = &mut self.peers[node.index()];
                let mut fx = SimFx {
                    ctx,
                    me: node,
                    pending_commits,
                    validation_free,
                    ledgers,
                    msp: &self.msp,
                    channels: &mut self.channels,
                    validation_per_tx: validation,
                    snapshot_policy: ckpt,
                };
                gossip.on_channel_timer(&mut fx, channel, timer);
                self.check_catchups(node, ctx.now());
            }
            NetTimer::ClientIssue => self.issue_due(ctx),
            NetTimer::BatchTimeout { channel, epoch } => {
                if let Some(block) = self.orderer.on_batch_timeout_on(channel, epoch) {
                    self.schedule_consensus(ctx, channel, block);
                }
            }
            NetTimer::DeliverCut { channel, block } => self.deliver_cut(ctx, channel, block),
            NetTimer::CommitDone => {
                let peer = &mut self.peers[node.index()];
                let Some((channel, block)) = peer.pending_commits.pop_front() else {
                    return;
                };
                if let Some(ledger) = peer.ledger_mut(channel) {
                    if block.number() < ledger.height() {
                        // Absorbed by a snapshot installed while the block
                        // sat in the validation queue — its writes are
                        // already part of the adopted state.
                        return;
                    }
                    if ledger.commit(block).is_err() {
                        peer.commit_errors += 1;
                    }
                    // A commit landing on a checkpoint boundary refreshes
                    // the ledger's snapshot; hand it to gossip so this
                    // peer can serve joiners (freshness-gated, so the
                    // off-boundary case is a cheap height compare).
                    if let Some(snapshot) = peer.ledger(channel).and_then(|l| l.snapshot()) {
                        peer.gossip.publish_snapshot_on(channel, snapshot);
                    }
                }
                *peer.committed.entry(channel).or_insert(0) += 1;
            }
            NetTimer::Churn { index } => self.apply_churn(ctx, index),
        }
    }

    fn on_node_status(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, node: NodeId, up: bool) {
        if node.index() >= self.peers.len() {
            return;
        }
        if !up {
            // A crash loses volatile gossip state: leadership, buffers,
            // fetches, and the RAM-only commit queue.
            let peer = &mut self.peers[node.index()];
            peer.gossip.on_crash();
            peer.pending_commits.clear();
            peer.validation_free = Time::ZERO;
            return;
        }
        // A rebooted peer re-arms its periodic timers (its old ones died
        // with it — the engine drops timers of down nodes) and re-validates
        // any stored blocks whose in-flight validation the crash destroyed.
        let validation = self.params.validation_per_tx;
        let ckpt = self.checkpoint_policy();
        let PeerNode {
            gossip,
            ledgers,
            pending_commits,
            validation_free,
            ..
        } = &mut self.peers[node.index()];
        for (channel, ledger) in ledgers.iter() {
            let Some(store) = gossip.store_on(*channel) else {
                continue;
            };
            for n in ledger.height()..store.height() {
                if let Some(block) = store.get(n) {
                    let cost = validation * block.txs.len() as u64;
                    let start = ctx.now().max(*validation_free);
                    let done = start + cost;
                    *validation_free = done;
                    pending_commits.push_back((*channel, block.clone()));
                    ctx.set_timer(node, done.since(ctx.now()), NetTimer::CommitDone);
                }
            }
        }
        let mut fx = SimFx {
            ctx,
            me: node,
            pending_commits,
            validation_free,
            ledgers,
            msp: &self.msp,
            channels: &mut self.channels,
            validation_per_tx: validation,
            snapshot_policy: ckpt,
        };
        gossip.init(&mut fx);
    }
}

/// The [`Effects`] adapter: a gossip peer's view of the simulation.
struct SimFx<'a, 'c> {
    ctx: &'a mut Ctx<'c, NetMsg, NetTimer>,
    me: NodeId,
    pending_commits: &'a mut VecDeque<(ChannelId, BlockRef)>,
    validation_free: &'a mut Time,
    ledgers: &'a mut Vec<(ChannelId, Ledger)>,
    msp: &'a Arc<Msp>,
    channels: &'a mut [ChannelRuntime],
    validation_per_tx: Duration,
    snapshot_policy: Option<SnapshotPolicy>,
}

/// The ledger-side snapshot policy implied by a gossip config: `None`
/// with snapshots off (checkpoint-free ledgers, the byte-identical
/// historical pipeline), the delta retention policy when delta snapshots
/// are on, the full-only policy otherwise.
fn ledger_snapshot_policy(g: &GossipConfig) -> Option<SnapshotPolicy> {
    g.snapshot.enabled.then(|| {
        if g.snapshot.delta {
            SnapshotPolicy::delta(g.snapshot.interval, g.snapshot.full_every)
        } else {
            SnapshotPolicy::full(g.snapshot.interval)
        }
    })
}

impl Effects for SimFx<'_, '_> {
    fn now(&self) -> Time {
        self.ctx.now()
    }

    fn send(&mut self, channel: ChannelId, to: PeerId, msg: GossipMsg) {
        self.ctx.send(
            self.me,
            NodeId(to.0),
            NetMsg::Gossip(ChannelMsg { channel, msg }),
        );
    }

    fn schedule(&mut self, after: Duration, channel: ChannelId, timer: GossipTimer) {
        self.ctx
            .set_timer(self.me, after, NetTimer::Peer { channel, timer });
    }

    fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }

    fn block_received(&mut self, channel: ChannelId, block_num: u64) {
        let rt = &mut self.channels[channel.index()];
        if let Some(slot) = rt.slots[self.me.index()] {
            rt.latency.record(block_num, slot, self.ctx.now());
        }
    }

    fn deliver(&mut self, channel: ChannelId, block: BlockRef) {
        // "New blocks are only used by peers after their validation, which
        // takes a time proportional to the number of transactions" (§V-D):
        // the block's writes become visible — and the endorser starts
        // reading them — only once the serial validation pipeline has
        // chewed through it. Proposals endorsed in the meantime read the
        // pre-commit state, exactly the window that produces conflicts.
        let cost = self.validation_per_tx * block.txs.len() as u64;
        let now = self.ctx.now();
        let start = now.max(*self.validation_free);
        let done = start + cost;
        *self.validation_free = done;
        self.pending_commits.push_back((channel, block));
        self.ctx
            .set_timer(self.me, done.since(now), NetTimer::CommitDone);
    }

    fn leadership_changed(&mut self, channel: ChannelId, is_leader: bool) {
        if is_leader {
            let rt = &mut self.channels[channel.index()];
            rt.handoffs += 1;
            if let Some(opened) = rt.gap_open.take() {
                rt.leader_gaps.push(self.ctx.now().since(opened));
            }
        }
    }

    fn snapshot_installed(
        &mut self,
        channel: ChannelId,
        snapshot: &fabric_types::snapshot::SnapshotRef,
    ) {
        // The gossip layer verified and adopted the snapshot; if this peer
        // maintains a ledger for the channel, stand it up from the same
        // snapshot so tail blocks commit against the adopted state instead
        // of replaying the whole chain.
        let Some(entry) = self.ledgers.iter_mut().find(|(ch, _)| *ch == channel) else {
            return;
        };
        if snapshot.checkpoint.height < entry.1.height() {
            return; // the ledger already replayed past the checkpoint
        }
        let policy = self.channels[channel.index()].spec.policy.clone();
        if let Ok(ledger) = Ledger::from_snapshot_with_policy(
            self.msp.clone(),
            policy,
            snapshot.clone(),
            self.snapshot_policy,
        ) {
            entry.1 = ledger;
        }
    }

    fn discovery_event(&mut self, channel: ChannelId, peer: PeerId, joined: bool) {
        // This member's view just admitted (or reaped) `peer`: complete
        // the oldest matching convergence record that still waits on us.
        let me = PeerId(self.me.0);
        let now = self.ctx.now();
        let rt = &mut self.channels[channel.index()];
        if let Some(record) = rt.convergence.iter_mut().find(|r| {
            r.peer == peer
                && r.join == joined
                && r.expected.contains(&me)
                && !r.observed.iter().any(|(p, _)| *p == me)
        }) {
            record.observed.push((me, now));
        }
    }
}
