//! The simulated Fabric network: client, ordering service and gossip peers
//! as one [`desim::Protocol`].
//!
//! Node layout for an organization of `n` peers:
//!
//! * nodes `0 .. n` — the peers (gossip + optional ledger);
//! * node `n` — the ordering service;
//! * node `n + 1` — the client application.
//!
//! The full execute-order-validate pipeline runs in virtual time: the
//! client sends proposals to the endorsing peer, which simulates the
//! chaincode against its committed state and signs; the client forwards the
//! endorsed transaction to the orderer; the block cutter batches; consensus
//! is modeled by the configured latency; cut blocks go to the current
//! leader peer, and gossip takes it from there. Every peer pays the
//! configured validation cost per delivered transaction, which queues its
//! message processing exactly like a busy CPU would.

use std::collections::VecDeque;
use std::sync::Arc;

use desim::{Ctx, Duration, NodeId, Time};
use fabric_gossip::config::GossipConfig;
use fabric_gossip::effects::Effects;
use fabric_gossip::messages::{ChannelMsg, GossipMsg, GossipTimer};
use fabric_gossip::peer::GossipPeer;
use fabric_ledger::ledger::Ledger;
use fabric_orderer::service::{OrdererConfig, OrderingService};
use fabric_types::block::{Block, BlockRef};
use fabric_types::ids::{ChannelId, ClientId, PeerId, TxId};
use fabric_types::msp::Msp;
use fabric_types::transaction::{EndorsementPolicy, Transaction};
use fabric_workload::client::endorse_invocation;
use fabric_workload::schedule::ScheduledInvocation;
use gossip_metrics::latency::LatencyRecorder;

/// Messages on the simulated wire.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// Peer-to-peer gossip: a channel-tagged envelope.
    Gossip(ChannelMsg),
    /// Client → endorsing peer: proposal `schedule[index]`.
    Propose {
        /// Index into the experiment's invocation schedule.
        index: usize,
    },
    /// Endorsing peer → client: the signed transaction for one proposal.
    Endorsed {
        /// Index into the experiment's invocation schedule.
        index: usize,
        /// The endorsed transaction (reads taken at this endorser's state).
        tx: Box<Transaction>,
    },
    /// Client → orderer: submit for ordering.
    Submit(Box<Transaction>),
    /// Orderer → leader peer: a freshly cut block.
    DeliverBlock(BlockRef),
}

impl desim::Message for NetMsg {
    fn wire_size(&self) -> usize {
        match self {
            NetMsg::Gossip(g) => g.wire_size(),
            NetMsg::Propose { .. } => 320, // chaincode name, args, client cert
            NetMsg::Endorsed { tx, .. } => 48 + tx.wire_size(),
            NetMsg::Submit(tx) => 48 + tx.wire_size(),
            NetMsg::DeliverBlock(b) => 48 + b.wire_size(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            NetMsg::Gossip(g) => g.kind(),
            NetMsg::Propose { .. } => "propose",
            NetMsg::Endorsed { .. } => "endorsed",
            NetMsg::Submit(_) => "submit",
            NetMsg::DeliverBlock(_) => "orderer-deliver",
        }
    }
}

/// Timers of the simulated network.
#[derive(Debug)]
pub enum NetTimer {
    /// A gossip timer of one peer's channel instance.
    Peer {
        /// The channel instance the timer belongs to.
        channel: ChannelId,
        /// The gossip timer payload.
        timer: GossipTimer,
    },
    /// The client's next scheduled submission is due.
    ClientIssue,
    /// The orderer's batch timeout for `epoch`.
    BatchTimeout {
        /// The batch epoch the timer guards (stale epochs are ignored).
        epoch: u64,
    },
    /// Consensus finished for a cut block; deliver it to the leader.
    DeliverCut(BlockRef),
    /// A peer finished validating the oldest block in its commit queue.
    CommitDone,
}

/// Static parameters of the simulated deployment.
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Total number of peers in the channel.
    pub peers: usize,
    /// Number of organizations; peers are split contiguously (org `i`
    /// owns peers `[i·k, (i+1)·k)`). Push and pull stay inside each
    /// organization; StateInfo and recovery cross organizations, and the
    /// ordering service feeds one leader per organization — Fig. 1 of the
    /// paper.
    pub orgs: usize,
    /// Gossip configuration shared by every peer.
    pub gossip: GossipConfig,
    /// Ordering service configuration (batching + consensus latency).
    pub orderer: OrdererConfig,
    /// Validation CPU cost per transaction at commit (paper §V-D: 50 ms).
    pub validation_per_tx: Duration,
    /// CPU cost of simulating + signing one endorsement.
    pub endorse_cost: Duration,
    /// The endorsing peers. §V-D uses one; with several, the client
    /// compares read sets across endorsements and discards mismatches —
    /// the paper's *proposal-time* conflicts (§II-C).
    pub endorsers: Vec<PeerId>,
    /// Maintain a full ledger on every peer (`true`) or only on the
    /// endorser (`false`, saves memory in dissemination runs).
    pub full_ledgers: bool,
    /// The channel endorsement policy.
    pub policy: EndorsementPolicy,
}

impl NetParams {
    /// Sensible defaults for a dissemination experiment over `peers` peers.
    pub fn new(peers: usize, gossip: GossipConfig, orderer: OrdererConfig) -> Self {
        NetParams {
            peers,
            orgs: 1,
            gossip,
            orderer,
            validation_per_tx: Duration::from_micros(500),
            endorse_cost: Duration::from_millis(2),
            endorsers: vec![PeerId(1)],
            full_ledgers: false,
            policy: EndorsementPolicy::AnyMember,
        }
    }
}

struct PeerNode {
    gossip: GossipPeer,
    ledger: Option<Ledger>,
    /// Blocks fully committed (validated + applied or counted).
    committed: u64,
    /// Commit failures (chain violations) — should stay zero.
    commit_errors: u64,
    /// Blocks delivered in order, awaiting the validation delay.
    pending_commits: VecDeque<BlockRef>,
    /// Instant the peer's (serial) validation pipeline frees up.
    validation_free: Time,
}

/// The whole simulated deployment, implementing [`desim::Protocol`].
#[derive(Debug)]
pub struct FabricNet {
    params: NetParams,
    msp: Arc<Msp>,
    peers: Vec<PeerNode>,
    orderer: OrderingService,
    schedule: Arc<Vec<ScheduledInvocation>>,
    next_invocation: usize,
    issued: u64,
    endorse_failures: u64,
    /// Endorsed transactions collected per in-flight proposal.
    pending_endorsements: std::collections::BTreeMap<usize, Vec<Transaction>>,
    /// Proposals discarded because endorsers returned mismatched read sets.
    proposal_conflicts: u64,
    /// Per-(block, peer) dissemination latency (t0 = leader reception).
    pub latency: LatencyRecorder,
}

impl std::fmt::Debug for PeerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerNode")
            .field("peer", &self.gossip.id())
            .field("committed", &self.committed)
            .finish_non_exhaustive()
    }
}

impl FabricNet {
    /// Builds the deployment. The network config passed to the simulation
    /// must have `params.peers + 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics on invalid gossip configuration or an endorser id outside the
    /// roster.
    pub fn new(params: NetParams, schedule: Vec<ScheduledInvocation>) -> Self {
        assert!(!params.endorsers.is_empty(), "at least one endorsing peer");
        assert!(
            params.endorsers.iter().all(|e| e.index() < params.peers),
            "endorsers must be peers"
        );
        assert!(
            params.orgs >= 1 && params.orgs <= params.peers,
            "need 1..=peers organizations"
        );
        let mut msp = Msp::new();
        let channel: Vec<PeerId> = (0..params.peers as u32).map(PeerId).collect();
        let per_org = params.peers.div_ceil(params.orgs);
        for id in &channel {
            msp.enroll(*id, fabric_types::ids::OrgId((id.index() / per_org) as u16));
        }
        let msp = Arc::new(msp);
        let peers: Vec<PeerNode> = channel
            .iter()
            .map(|id| {
                let org_lo = (id.index() / per_org) * per_org;
                let org_hi = (org_lo + per_org).min(params.peers);
                let org_roster: Vec<PeerId> = (org_lo as u32..org_hi as u32).map(PeerId).collect();
                let needs_ledger = params.full_ledgers || params.endorsers.contains(id);
                PeerNode {
                    gossip: GossipPeer::new(*id, org_roster, params.gossip.clone())
                        .with_channel(channel.clone()),
                    ledger: needs_ledger.then(|| Ledger::new(msp.clone(), params.policy.clone())),
                    committed: 0,
                    commit_errors: 0,
                    pending_commits: VecDeque::new(),
                    validation_free: Time::ZERO,
                }
            })
            .collect();
        let orderer = OrderingService::new(params.orderer.clone(), Block::genesis().hash(), 1);
        let latency = LatencyRecorder::new(params.peers);
        FabricNet {
            params,
            msp,
            peers,
            orderer,
            schedule: Arc::new(schedule),
            next_invocation: 0,
            issued: 0,
            endorse_failures: 0,
            pending_endorsements: std::collections::BTreeMap::new(),
            proposal_conflicts: 0,
            latency,
        }
    }

    /// The node id of the ordering service.
    pub fn orderer_node(&self) -> NodeId {
        NodeId(self.params.peers as u32)
    }

    /// The node id of the client.
    pub fn client_node(&self) -> NodeId {
        NodeId(self.params.peers as u32 + 1)
    }

    /// Total nodes the network config must provide.
    pub fn node_count(params: &NetParams) -> usize {
        params.peers + 2
    }

    /// The experiment parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Proposals issued by the client so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Endorsement failures observed (should stay zero).
    pub fn endorse_failures(&self) -> u64 {
        self.endorse_failures
    }

    /// Proposals the client discarded because endorsers disagreed on read
    /// versions (proposal-time conflicts, §II-C).
    pub fn proposal_conflicts(&self) -> u64 {
        self.proposal_conflicts
    }

    /// Blocks cut by the ordering service.
    pub fn blocks_cut(&self) -> u64 {
        self.orderer.blocks_cut()
    }

    /// The gossip state of peer `i`.
    pub fn gossip(&self, i: usize) -> &GossipPeer {
        &self.peers[i].gossip
    }

    /// The ledger of peer `i`, if it maintains one.
    pub fn ledger(&self, i: usize) -> Option<&Ledger> {
        self.peers[i].ledger.as_ref()
    }

    /// Blocks committed (delivered in order) by peer `i`.
    pub fn committed(&self, i: usize) -> u64 {
        self.peers[i].committed
    }

    /// Turns peer `i` into a free-rider (or back): it keeps receiving and
    /// serving requests but stops forwarding (see
    /// [`GossipPeer::set_forwarding`]). Call before `start`.
    pub fn set_forwarding(&mut self, i: usize, forwarding: bool) {
        self.peers[i].gossip.set_forwarding(forwarding);
    }

    /// Commit errors across all peers (chain violations; should be zero).
    pub fn commit_errors(&self) -> u64 {
        self.peers.iter().map(|p| p.commit_errors).sum()
    }

    /// The id of the peer currently acting as leader, if any (first
    /// claimant in a multi-organization deployment).
    pub fn current_leader(&self) -> Option<PeerId> {
        self.peers
            .iter()
            .find(|p| p.gossip.is_leader())
            .map(|p| p.gossip.id())
    }

    /// Every peer currently claiming leadership (normally one per
    /// organization).
    pub fn current_leaders(&self) -> Vec<PeerId> {
        self.peers
            .iter()
            .filter(|p| p.gossip.is_leader())
            .map(|p| p.gossip.id())
            .collect()
    }

    /// The organization (by index) of a peer, per the contiguous split.
    pub fn org_of(&self, peer: PeerId) -> usize {
        let per_org = self.params.peers.div_ceil(self.params.orgs);
        peer.index() / per_org
    }

    /// Starts the experiment: initializes every peer's timers and arms the
    /// client's first submission. Call once through `Simulation::with_ctx`.
    pub fn start(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>) {
        let validation = self.params.validation_per_tx;
        for i in 0..self.peers.len() {
            let node = NodeId(i as u32);
            let PeerNode {
                gossip,
                pending_commits,
                validation_free,
                ..
            } = &mut self.peers[i];
            let mut fx = SimFx {
                ctx,
                me: node,
                pending_commits,
                validation_free,
                latency: &mut self.latency,
                validation_per_tx: validation,
            };
            gossip.init(&mut fx);
        }
        if let Some(first) = self.schedule.first() {
            let delay = first.at.since(Time::ZERO);
            ctx.set_timer(self.client_node(), delay, NetTimer::ClientIssue);
        }
    }

    fn peer_message(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        to: NodeId,
        from: NodeId,
        envelope: ChannelMsg,
    ) {
        let validation = self.params.validation_per_tx;
        let PeerNode {
            gossip,
            pending_commits,
            validation_free,
            ..
        } = &mut self.peers[to.index()];
        let mut fx = SimFx {
            ctx,
            me: to,
            pending_commits,
            validation_free,
            latency: &mut self.latency,
            validation_per_tx: validation,
        };
        gossip.on_channel_message(&mut fx, envelope.channel, PeerId(from.0), envelope.msg);
    }

    fn handle_propose(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, to: NodeId, index: usize) {
        let invocation = self.schedule[index].clone();
        let endorser = PeerId(to.0);
        debug_assert!(
            self.params.endorsers.contains(&endorser),
            "proposals go to endorsers"
        );
        let state = self.peers[endorser.index()]
            .ledger
            .as_ref()
            .expect("every endorser maintains a ledger")
            .state();
        let tx_id = TxId(index as u64 + 1);
        match endorse_invocation(&invocation, tx_id, ClientId(0), endorser, state, &self.msp) {
            Ok(tx) => {
                ctx.occupy(to, self.params.endorse_cost);
                ctx.send(
                    to,
                    self.client_node(),
                    NetMsg::Endorsed {
                        index,
                        tx: Box::new(tx),
                    },
                );
            }
            Err(_) => {
                self.endorse_failures += 1;
            }
        }
    }

    /// Collects one endorsement; once all endorsers answered, compares the
    /// read sets (the client-side detection of §II-C) and either submits
    /// the merged proposal or discards it as a proposal-time conflict.
    fn handle_endorsed(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        index: usize,
        tx: Transaction,
    ) {
        let wanted = self.params.endorsers.len();
        let entry = self.pending_endorsements.entry(index).or_default();
        entry.push(tx);
        if entry.len() < wanted {
            return;
        }
        let collected = self
            .pending_endorsements
            .remove(&index)
            .expect("just inserted");
        let first = &collected[0];
        let consistent = collected.iter().all(|t| t.rwset == first.rwset);
        if !consistent {
            // Version numbers differ across endorsements: the client
            // detects the mismatch, wastes the round trip, and must try
            // again later (not modeled — the paper's experiment does not
            // resubmit either).
            self.proposal_conflicts += 1;
            return;
        }
        // Identical read/write sets mean identical digests: merge every
        // endorser's signature into one proposal.
        let mut merged = collected[0].clone();
        for other in &collected[1..] {
            merged
                .endorsements
                .extend(other.endorsements.iter().copied());
        }
        ctx.send(
            self.client_node(),
            self.orderer_node(),
            NetMsg::Submit(Box::new(merged)),
        );
    }

    fn handle_submit(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, tx: Transaction) {
        let outcome = self.orderer.submit(tx);
        if let Some(epoch) = outcome.arm_timer {
            let timeout = self.orderer.batch_timeout();
            ctx.set_timer(
                self.orderer_node(),
                timeout,
                NetTimer::BatchTimeout { epoch },
            );
        }
        for block in outcome.blocks {
            self.schedule_consensus(ctx, block);
        }
    }

    fn schedule_consensus(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, block: Block) {
        let delay = self.params.orderer.consensus_delay.sample(ctx.rng());
        ctx.set_timer(
            self.orderer_node(),
            delay,
            NetTimer::DeliverCut(BlockRef::new(block)),
        );
    }

    fn deliver_cut(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, block: BlockRef) {
        // One delivery per organization, to that organization's leader(s).
        let leaders: Vec<NodeId> = self
            .peers
            .iter()
            .enumerate()
            .filter(|(i, p)| p.gossip.is_leader() && ctx.net().is_up(NodeId(*i as u32)))
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let orgs_covered: std::collections::BTreeSet<usize> =
            leaders.iter().map(|n| self.org_of(PeerId(n.0))).collect();
        if orgs_covered.len() < self.params.orgs {
            // Some organization has no live leader (election in progress):
            // retry shortly, like a leader re-connecting to the ordering
            // service would. Re-delivery to covered organizations is
            // harmless — peers deduplicate content.
            ctx.set_timer(
                self.orderer_node(),
                Duration::from_millis(500),
                NetTimer::DeliverCut(block.clone()),
            );
        }
        for leader in leaders {
            ctx.send(
                self.orderer_node(),
                leader,
                NetMsg::DeliverBlock(block.clone()),
            );
        }
    }

    fn issue_due(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>) {
        let now = ctx.now();
        let endorser_nodes: Vec<NodeId> =
            self.params.endorsers.iter().map(|e| NodeId(e.0)).collect();
        while self.next_invocation < self.schedule.len()
            && self.schedule[self.next_invocation].at <= now
        {
            let index = self.next_invocation;
            self.next_invocation += 1;
            self.issued += 1;
            for node in &endorser_nodes {
                ctx.send(self.client_node(), *node, NetMsg::Propose { index });
            }
        }
        if self.next_invocation < self.schedule.len() {
            let next_at = self.schedule[self.next_invocation].at;
            ctx.set_timer(
                self.client_node(),
                next_at.since(now),
                NetTimer::ClientIssue,
            );
        }
    }
}

impl desim::Protocol for FabricNet {
    type Msg = NetMsg;
    type Timer = NetTimer;

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NetTimer>,
        to: NodeId,
        from: NodeId,
        msg: NetMsg,
    ) {
        match msg {
            NetMsg::Gossip(g) => self.peer_message(ctx, to, from, g),
            NetMsg::DeliverBlock(block) => {
                // Dissemination officially starts when the contact peer
                // receives the block from the ordering service.
                self.latency.start_block(block.number(), ctx.now());
                let validation = self.params.validation_per_tx;
                let PeerNode {
                    gossip,
                    pending_commits,
                    validation_free,
                    ..
                } = &mut self.peers[to.index()];
                let mut fx = SimFx {
                    ctx,
                    me: to,
                    pending_commits,
                    validation_free,
                    latency: &mut self.latency,
                    validation_per_tx: validation,
                };
                gossip.on_block_from_orderer(&mut fx, block);
            }
            NetMsg::Propose { index } => self.handle_propose(ctx, to, index),
            NetMsg::Endorsed { index, tx } => {
                debug_assert_eq!(to, self.client_node());
                self.handle_endorsed(ctx, index, *tx);
            }
            NetMsg::Submit(tx) => {
                debug_assert_eq!(to, self.orderer_node());
                self.handle_submit(ctx, *tx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, node: NodeId, timer: NetTimer) {
        match timer {
            NetTimer::Peer { channel, timer } => {
                let validation = self.params.validation_per_tx;
                let PeerNode {
                    gossip,
                    pending_commits,
                    validation_free,
                    ..
                } = &mut self.peers[node.index()];
                let mut fx = SimFx {
                    ctx,
                    me: node,
                    pending_commits,
                    validation_free,
                    latency: &mut self.latency,
                    validation_per_tx: validation,
                };
                gossip.on_channel_timer(&mut fx, channel, timer);
            }
            NetTimer::ClientIssue => self.issue_due(ctx),
            NetTimer::BatchTimeout { epoch } => {
                if let Some(block) = self.orderer.on_batch_timeout(epoch) {
                    self.schedule_consensus(ctx, block);
                }
            }
            NetTimer::DeliverCut(block) => self.deliver_cut(ctx, block),
            NetTimer::CommitDone => {
                let peer = &mut self.peers[node.index()];
                let Some(block) = peer.pending_commits.pop_front() else {
                    return;
                };
                if let Some(ledger) = peer.ledger.as_mut() {
                    if ledger.commit(block).is_err() {
                        peer.commit_errors += 1;
                    }
                }
                peer.committed += 1;
            }
        }
    }

    fn on_node_status(&mut self, ctx: &mut Ctx<'_, NetMsg, NetTimer>, node: NodeId, up: bool) {
        if node.index() >= self.peers.len() {
            return;
        }
        if !up {
            // A crash loses volatile gossip state: leadership, buffers,
            // fetches, and the RAM-only commit queue.
            let peer = &mut self.peers[node.index()];
            peer.gossip.on_crash();
            peer.pending_commits.clear();
            peer.validation_free = Time::ZERO;
            return;
        }
        // A rebooted peer re-arms its periodic timers (its old ones died
        // with it — the engine drops timers of down nodes) and re-validates
        // any stored blocks whose in-flight validation the crash destroyed.
        let validation = self.params.validation_per_tx;
        let PeerNode {
            gossip,
            ledger,
            pending_commits,
            validation_free,
            ..
        } = &mut self.peers[node.index()];
        if let Some(ledger) = ledger.as_ref() {
            let store = gossip.store();
            for n in ledger.height()..store.height() {
                if let Some(block) = store.get(n) {
                    let cost = validation * block.txs.len() as u64;
                    let start = ctx.now().max(*validation_free);
                    let done = start + cost;
                    *validation_free = done;
                    pending_commits.push_back(block.clone());
                    ctx.set_timer(node, done.since(ctx.now()), NetTimer::CommitDone);
                }
            }
        }
        let mut fx = SimFx {
            ctx,
            me: node,
            pending_commits,
            validation_free,
            latency: &mut self.latency,
            validation_per_tx: validation,
        };
        gossip.init(&mut fx);
    }
}

/// The [`Effects`] adapter: a gossip peer's view of the simulation.
struct SimFx<'a, 'c> {
    ctx: &'a mut Ctx<'c, NetMsg, NetTimer>,
    me: NodeId,
    pending_commits: &'a mut VecDeque<BlockRef>,
    validation_free: &'a mut Time,
    latency: &'a mut LatencyRecorder,
    validation_per_tx: Duration,
}

impl Effects for SimFx<'_, '_> {
    fn now(&self) -> Time {
        self.ctx.now()
    }

    fn send(&mut self, channel: ChannelId, to: PeerId, msg: GossipMsg) {
        self.ctx.send(
            self.me,
            NodeId(to.0),
            NetMsg::Gossip(ChannelMsg { channel, msg }),
        );
    }

    fn schedule(&mut self, after: Duration, channel: ChannelId, timer: GossipTimer) {
        self.ctx
            .set_timer(self.me, after, NetTimer::Peer { channel, timer });
    }

    fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }

    fn block_received(&mut self, _channel: ChannelId, block_num: u64) {
        // FabricNet drives the full transaction pipeline on one channel;
        // the multi-channel scenarios live in `crate::multichannel`.
        self.latency
            .record(block_num, self.me.index(), self.ctx.now());
    }

    fn deliver(&mut self, _channel: ChannelId, block: BlockRef) {
        // "New blocks are only used by peers after their validation, which
        // takes a time proportional to the number of transactions" (§V-D):
        // the block's writes become visible — and the endorser starts
        // reading them — only once the serial validation pipeline has
        // chewed through it. Proposals endorsed in the meantime read the
        // pre-commit state, exactly the window that produces conflicts.
        let cost = self.validation_per_tx * block.txs.len() as u64;
        let now = self.ctx.now();
        let start = now.max(*self.validation_free);
        let done = start + cost;
        *self.validation_free = done;
        self.pending_commits.push_back(block);
        self.ctx
            .set_timer(self.me, done.since(now), NetTimer::CommitDone);
    }
}
