//! Parallel experiment harness: fan independent `(config, seed)` cells of
//! the figure/table presets across cores.
//!
//! Reproducing the full figure set means dozens of independent
//! simulations — five dissemination presets × seeds, plus a 2 × periods ×
//! runs conflict grid. Each cell is deterministic and self-contained, so
//! they parallelize with **zero effect on results**: every function here
//! returns exactly what the equivalent serial loop would (the determinism
//! tests assert it). Built on [`desim::run_batch`].

use desim::Duration;
use fabric_gossip::config::GossipConfig;

use crate::conflicts::{run_conflicts, ConflictConfig, ConflictResult, Table2Row};
use crate::dissemination::{run_dissemination, DisseminationConfig, DisseminationResult};

/// Runs every dissemination cell in parallel; results come back in input
/// order.
pub fn run_dissemination_batch(cells: Vec<DisseminationConfig>) -> Vec<DisseminationResult> {
    desim::run_batch(cells, |cfg| run_dissemination(&cfg))
}

/// Runs every conflict cell in parallel; results come back in input order.
pub fn run_conflicts_batch(cells: Vec<ConflictConfig>) -> Vec<ConflictResult> {
    desim::run_batch(cells, |cfg| run_conflicts(&cfg))
}

/// Runs `template` once per seed (parallel), returning results in seed
/// order — the multi-seed averaging pattern of the paper's tables.
pub fn run_seed_sweep(template: &DisseminationConfig, seeds: &[u64]) -> Vec<DisseminationResult> {
    let cells = seeds
        .iter()
        .map(|&seed| {
            let mut cfg = template.clone();
            cfg.seed = seed;
            cfg
        })
        .collect();
    run_dissemination_batch(cells)
}

/// The conflict cells behind one Table II regeneration, in deterministic
/// order: for each period, for each run, the original-gossip cell then the
/// enhanced-gossip cell, both at the same seed.
pub(crate) fn table2_cells(
    template: &ConflictConfig,
    periods: &[Duration],
    runs: usize,
) -> Vec<ConflictConfig> {
    let mut cells = Vec::with_capacity(periods.len() * runs * 2);
    for &period in periods {
        for r in 0..runs {
            let seed = template.seed + 1000 * r as u64;
            for gossip in [GossipConfig::original_fabric(), GossipConfig::enhanced_f4()] {
                let mut cell = template.clone();
                cell.period = period;
                cell.gossip = gossip;
                cell.seed = seed;
                cells.push(cell);
            }
        }
    }
    cells
}

/// Folds the cell results of [`table2_cells`] back into per-period rows.
pub(crate) fn table2_rows(
    periods: &[Duration],
    runs: usize,
    results: &[ConflictResult],
) -> Vec<Table2Row> {
    debug_assert_eq!(results.len(), periods.len() * runs * 2);
    results
        .chunks(runs * 2)
        .zip(periods)
        .map(|(chunk, &period)| {
            let mut original = 0.0;
            let mut enhanced = 0.0;
            let mut tx_per_block = 0.0;
            for pair in chunk.chunks(2) {
                original += pair[0].conflicts as f64;
                tx_per_block += pair[0].tx_per_block();
                enhanced += pair[1].conflicts as f64;
            }
            Table2Row {
                period,
                tx_per_block: tx_per_block / runs as f64,
                original: original / runs as f64,
                enhanced: enhanced / runs as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::NetworkConfig;

    fn tiny(seed: u64) -> DisseminationConfig {
        let mut cfg = DisseminationConfig::fig07_09_enhanced_f4().scaled(200);
        cfg.peers = 15;
        cfg.network = NetworkConfig::lan(17);
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn batch_matches_serial_run_for_run() {
        let cells: Vec<DisseminationConfig> = (1..=4).map(tiny).collect();
        let parallel = run_dissemination_batch(cells.clone());
        for (cfg, got) in cells.iter().zip(&parallel) {
            let serial = run_dissemination(cfg);
            assert_eq!(serial.events, got.events, "seed {}", cfg.seed);
            assert_eq!(serial.blocks, got.blocks);
            assert_eq!(serial.peer_traffic_mb, got.peer_traffic_mb);
        }
    }

    #[test]
    fn seed_sweep_orders_by_seed() {
        let template = tiny(0);
        let results = run_seed_sweep(&template, &[3, 1]);
        assert_eq!(results.len(), 2);
        let direct3 = run_dissemination(&tiny(3));
        assert_eq!(results[0].events, direct3.events);
    }
}
