//! The conflict experiment (§V-D, Table II): counting invalidated
//! transactions under different block periods, original vs enhanced gossip.
//!
//! Workload: 100 integer counters, each incremented 100 times, order
//! freshly permuted per round, 5 tx/s, one endorsing peer, validation
//! ≈50 ms per transaction. Two increments endorsed over the same counter
//! version collide: the later one fails MVCC validation at commit. No
//! resubmission, so `issued − Σ counters = conflicts`.
//!
//! **Calibration note (documented in EXPERIMENTS.md):** the absolute
//! conflict counts depend on the end-to-end delay between endorsement and
//! commit-at-the-endorser. The paper's testbed pays client↔peer RTTs,
//! proposal forwarding and a loaded Kafka ordering path that this model
//! collapses into one sampled `pipeline` latency; its default is calibrated
//! once so the *original-gossip* row lands in the paper's range, and then
//! every relative effect (protocol comparison, period sweep) is emergent.

use desim::{Duration, LatencyModel, NetworkConfig, Simulation};
use fabric_gossip::config::GossipConfig;
use fabric_orderer::cutter::BatchConfig;
use fabric_orderer::service::OrdererConfig;
use fabric_types::ids::PeerId;
use fabric_workload::schedule::{increment_schedule, IncrementWorkload};

use crate::net::{FabricNet, NetParams};

/// Parameters of one conflict run.
#[derive(Debug, Clone)]
pub struct ConflictConfig {
    /// Organization size (paper: 100).
    pub peers: usize,
    /// The gossip protocol under test.
    pub gossip: GossipConfig,
    /// Block generation period (Table II sweeps 2 s down to 0.75 s).
    pub period: Duration,
    /// The increment workload (paper: 100 × 100 at 5 tx/s).
    pub workload: IncrementWorkload,
    /// Physical network model.
    pub network: NetworkConfig,
    /// The collapsed client→orderer→consensus pipeline latency.
    pub pipeline: LatencyModel,
    /// Validation CPU cost per transaction (paper: ≈50 ms).
    pub validation_per_tx: Duration,
    /// Number of endorsing peers. The paper's Table II uses one (isolating
    /// validation-time conflicts); with more, the client compares read sets
    /// and the run also counts *proposal-time* conflicts (§II-C).
    pub endorsers: usize,
    /// Simulation seed (also seeds the workload permutations).
    pub seed: u64,
}

impl ConflictConfig {
    /// The paper's setup for one cell of Table II.
    pub fn paper(gossip: GossipConfig, period: Duration) -> Self {
        ConflictConfig {
            peers: 100,
            gossip,
            period,
            workload: IncrementWorkload::default(),
            network: NetworkConfig::lan(102),
            pipeline: Self::paper_pipeline(),
            validation_per_tx: Duration::from_millis(50),
            endorsers: 1,
            seed: 1,
        }
    }

    /// The calibrated end-to-end ordering pipeline (see module docs).
    pub fn paper_pipeline() -> LatencyModel {
        LatencyModel::Lan {
            base: Duration::from_millis(2_200),
            jitter: Duration::from_millis(300),
            spike_prob: 0.0,
            spike_mult: 1,
        }
    }

    /// A scaled-down copy (fewer keys/rounds) for tests and examples.
    pub fn scaled(mut self, keys: usize, rounds: usize) -> Self {
        self.workload = IncrementWorkload {
            keys,
            rounds,
            ..self.workload
        };
        self
    }
}

/// The outcome of one conflict run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictResult {
    /// Transactions issued by the client.
    pub issued: u64,
    /// MVCC (validation-time) conflicts at the endorser's ledger.
    pub conflicts: u64,
    /// Valid transactions committed.
    pub valid: u64,
    /// Final Σ over all counters — must equal `valid`.
    pub counter_sum: u64,
    /// Proposals discarded at the client for mismatched read sets
    /// (proposal-time conflicts; zero with a single endorser).
    pub proposal_conflicts: u64,
    /// Blocks cut by the ordering service.
    pub blocks: u64,
}

impl ConflictResult {
    /// Average transactions per block (Table II's second column).
    pub fn tx_per_block(&self) -> f64 {
        if self.blocks == 0 {
            return 0.0;
        }
        self.issued as f64 / self.blocks as f64
    }
}

/// Runs one conflict experiment to completion and audits the counts.
///
/// # Panics
///
/// Panics if the bookkeeping disagrees (issued ≠ valid + conflicts, or the
/// counter sum drifts from the valid count) — that would be a harness bug,
/// not a measurement.
pub fn run_conflicts(cfg: &ConflictConfig) -> ConflictResult {
    let schedule = increment_schedule(&cfg.workload, cfg.seed);
    let last_issue = schedule.last().map(|s| s.at).unwrap_or(desim::Time::ZERO);

    let batch = BatchConfig::paper_conflicts(cfg.period);
    let orderer = OrdererConfig {
        batch,
        consensus_delay: cfg.pipeline,
    };
    let mut params = NetParams::new(cfg.peers, cfg.gossip.clone(), orderer);
    params.validation_per_tx = cfg.validation_per_tx;
    params.endorsers = (1..=cfg.endorsers as u32).map(PeerId).collect();
    if cfg.endorsers > 1 {
        // Proposal-time experiments demand every endorser's signature, as
        // a real multi-endorser policy would.
        params.policy = fabric_types::transaction::EndorsementPolicy::OutOf {
            required: cfg.endorsers,
            candidates: params.endorsers.clone(),
        };
    }
    params.full_ledgers = false;

    let mut network = cfg.network.clone();
    network.nodes = FabricNet::node_count(&params);

    let net = FabricNet::new(params, schedule);
    let mut sim = Simulation::new(net, network, cfg.seed);
    sim.with_ctx(|net, ctx| net.start(ctx));

    // Pipeline + dissemination + validation drain, with margin.
    sim.run_until(last_issue + Duration::from_secs(60));

    let net = sim.into_protocol();
    let endorser = net.params().endorsers[0].index();
    let ledger = net
        .ledger(endorser)
        .expect("the endorser maintains a ledger");
    let stats = ledger.stats();
    let counter_sum = ledger.state().counter_sum().unwrap_or(0);
    let result = ConflictResult {
        issued: net.issued(),
        conflicts: stats.mvcc_conflicts,
        valid: stats.valid_txs,
        counter_sum,
        proposal_conflicts: net.proposal_conflicts(),
        blocks: net.blocks_cut(),
    };
    assert_eq!(
        result.issued,
        result.valid + result.conflicts + result.proposal_conflicts + stats.endorsement_failures,
        "transaction accounting must balance"
    );
    assert_eq!(
        result.counter_sum, result.valid,
        "every valid increment adds one"
    );
    assert_eq!(net.commit_errors(), 0, "no chain violations expected");
    result
}

/// One row of Table II, averaged over several seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Block generation period.
    pub period: Duration,
    /// Mean transactions per block.
    pub tx_per_block: f64,
    /// Mean conflicts with the original gossip.
    pub original: f64,
    /// Mean conflicts with the enhanced gossip.
    pub enhanced: f64,
}

impl Table2Row {
    /// Relative conflict reduction, as the paper's "Difference" column.
    pub fn difference_pct(&self) -> f64 {
        if self.original == 0.0 {
            return 0.0;
        }
        (self.enhanced - self.original) / self.original * 100.0
    }

    /// Validation time per block (50 ms × tx/block), Table II's third
    /// column.
    pub fn validation_time(&self) -> Duration {
        Duration::from_secs_f64(self.tx_per_block * 0.05)
    }
}

/// Regenerates Table II: for each period, `runs` seeds of both protocols,
/// averaged. `template` carries everything but period/gossip/seed (use
/// [`ConflictConfig::paper`] semantics via `ConflictConfig::scaled` for
/// quicker sweeps).
///
/// The `periods × runs × {original, enhanced}` grid is a set of fully
/// independent simulations, so the cells fan out across cores through
/// [`crate::parallel::run_conflicts_batch`]; seeds per cell are identical
/// to the serial formulation, so the rows are too.
pub fn run_table2(template: &ConflictConfig, periods: &[Duration], runs: usize) -> Vec<Table2Row> {
    assert!(runs > 0, "at least one run per cell");
    let cells = crate::parallel::table2_cells(template, periods, runs);
    let results = crate::parallel::run_conflicts_batch(cells);
    crate::parallel::table2_rows(periods, runs, &results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(gossip: GossipConfig, period_ms: u64, seed: u64) -> ConflictResult {
        let mut cfg =
            ConflictConfig::paper(gossip, Duration::from_millis(period_ms)).scaled(20, 10); // 200 transactions, 40 s of traffic
        cfg.peers = 30;
        cfg.network = NetworkConfig::lan(32);
        cfg.seed = seed;
        run_conflicts(&cfg)
    }

    #[test]
    fn accounting_balances_and_blocks_form() {
        let res = quick(GossipConfig::enhanced_f4(), 1000, 3);
        assert_eq!(res.issued, 200);
        assert_eq!(res.valid + res.conflicts, 200);
        assert!(res.blocks > 20, "40 s of traffic at 1 s periods");
        assert!(res.tx_per_block() > 3.0 && res.tx_per_block() < 7.0);
    }

    #[test]
    fn conflicts_happen_under_the_calibrated_pipeline() {
        // With a multi-second endorse→commit window and adjacent-round
        // permutation gaps, some increments must collide even at this
        // scale (20 keys ⇒ mean gap 4 s ≈ the window).
        let res = quick(GossipConfig::original_fabric(), 1000, 5);
        assert!(
            res.conflicts > 10,
            "expected collisions, got {}",
            res.conflicts
        );
        assert!(res.conflicts < res.issued / 2, "but not a meltdown");
    }

    #[test]
    fn enhanced_does_not_conflict_more_than_original() {
        // Averaged over a few seeds to damp noise at this tiny scale.
        let mut orig = 0u64;
        let mut enh = 0u64;
        for seed in 0..3 {
            orig += quick(GossipConfig::original_fabric(), 1000, seed).conflicts;
            enh += quick(GossipConfig::enhanced_f4(), 1000, seed).conflicts;
        }
        assert!(enh <= orig, "enhanced {enh} vs original {orig}");
    }

    #[test]
    fn table2_rows_have_consistent_columns() {
        let mut template =
            ConflictConfig::paper(GossipConfig::enhanced_f4(), Duration::from_secs(1))
                .scaled(15, 8);
        template.peers = 25;
        template.network = NetworkConfig::lan(27);
        let rows = run_table2(
            &template,
            &[Duration::from_secs(2), Duration::from_secs(1)],
            1,
        );
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.original >= 0.0 && row.enhanced >= 0.0);
            assert!(row.tx_per_block > 0.0);
            assert!(row.validation_time() > Duration::ZERO);
        }
        // Smaller periods mean fewer transactions per block.
        assert!(rows[1].tx_per_block < rows[0].tx_per_block);
    }

    #[test]
    fn single_endorser_never_sees_proposal_conflicts() {
        let res = quick(GossipConfig::enhanced_f4(), 1000, 3);
        assert_eq!(res.proposal_conflicts, 0);
    }

    #[test]
    fn multiple_endorsers_surface_proposal_time_conflicts() {
        // §II-C: endorsers at different ledger heights return different
        // read versions; the client detects the mismatch. A multi-second
        // pipeline guarantees windows in which one endorser has committed
        // a block the other has not.
        let mut cfg =
            ConflictConfig::paper(GossipConfig::original_fabric(), Duration::from_secs(1))
                .scaled(20, 10);
        cfg.peers = 30;
        cfg.network = NetworkConfig::lan(32);
        cfg.endorsers = 3;
        cfg.seed = 6;
        let res = run_conflicts(&cfg);
        assert!(
            res.proposal_conflicts > 0,
            "staggered endorser states must produce proposal conflicts"
        );
        // Accounting still balances (asserted inside run_conflicts), and
        // every submitted transaction carried all three signatures.
        assert_eq!(res.issued, 200);
    }

    #[test]
    fn enhanced_gossip_reduces_proposal_conflicts_too() {
        // Uniform dissemination keeps endorsers in sync — the fairness
        // story of the paper, measured on the second conflict type.
        let mut orig = 0u64;
        let mut enh = 0u64;
        for seed in 0..3 {
            for (gossip, total) in [
                (GossipConfig::original_fabric(), &mut orig),
                (GossipConfig::enhanced_f4(), &mut enh),
            ] {
                let mut cfg = ConflictConfig::paper(gossip, Duration::from_secs(1)).scaled(20, 10);
                cfg.peers = 30;
                cfg.network = NetworkConfig::lan(32);
                cfg.endorsers = 3;
                cfg.seed = 40 + seed;
                *total += run_conflicts(&cfg).proposal_conflicts;
            }
        }
        assert!(
            enh <= orig,
            "enhanced gossip must not increase proposal conflicts: {enh} vs {orig}"
        );
    }

    #[test]
    fn conflict_runs_are_deterministic() {
        let a = quick(GossipConfig::original_fabric(), 750, 9);
        let b = quick(GossipConfig::original_fabric(), 750, 9);
        assert_eq!(a, b);
    }
}
