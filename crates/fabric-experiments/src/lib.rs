//! # fabric-experiments — the paper's evaluation, end to end
//!
//! Wires every substrate into one deterministic simulation
//! ([`net::FabricNet`]): a client issuing the paper's workloads, an
//! ordering service cutting blocks, and an organization of gossip peers
//! validating and committing them. On top, one runner per experiment
//! family:
//!
//! * [`dissemination`] — Figs. 4–14: latency and bandwidth of block
//!   dissemination, original vs enhanced, with the leader-fan-out and
//!   no-digest ablations;
//! * [`conflicts`] — Table II: invalidated transactions under different
//!   block periods;
//! * [`multichannel`] — beyond the paper: C channels × N peers with
//!   overlapping memberships and skewed per-channel block rates, reporting
//!   per-channel latency CDFs and Jain's fairness;
//! * [`churn`] — beyond the paper: runtime channel membership over the
//!   full pipeline — late joiners catching up via StateInfo + recovery
//!   (catch-up latency) and a departing leader forcing a hand-off;
//! * [`churn_waves`] — churn at scale under the gossiped **discovery
//!   protocol** (no membership oracle): waves of joiners/leavers and a
//!   flash crowd, reporting discovery convergence, stale-view windows,
//!   leader gaps and fairness including discovery overhead;
//! * [`long_chain`] — beyond the paper: joiner catch-up cost vs chain
//!   height, genesis replay against checkpoint-snapshot bootstrap
//!   (O(chain) vs O(tail) bytes and time-to-serving);
//! * [`adversarial`] — beyond the paper: Byzantine fault injection over
//!   the discovery protocol (stale replay, obituary forgery, selective
//!   forwarding, flooding, eclipse), reporting surviving guarantees and
//!   measured degradation as a machine-readable report;
//! * [`tolerance`] — beyond the paper: quantitative tolerance bounds —
//!   grow the attacker count `f` per family (coalitions, adaptive
//!   hunters, dissemination-layer withholding/equivocation) in
//!   deployments of `N` until a guarantee first falls, reporting the
//!   measured `f*(N)` frontier and degradation curves;
//! * [`report`] — paper-style text rendering of every figure and table.
//!
//! ```no_run
//! use fabric_experiments::dissemination::{run_dissemination, DisseminationConfig};
//! let result = run_dissemination(&DisseminationConfig::fig07_09_enhanced_f4());
//! assert_eq!(result.completeness, 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversarial;
pub mod churn;
pub mod churn_waves;
pub mod conflicts;
pub mod dissemination;
pub mod long_chain;
pub mod multichannel;
pub mod net;
pub mod parallel;
pub mod report;
pub mod shard;
pub mod tolerance;

pub use adversarial::{
    render_adversarial, run_adversarial, AdversarialConfig, AdversarialReport, AttackOutcome,
    Guarantee, Metric,
};
pub use churn::{run_churn, ChurnConfig, ChurnResult};
pub use churn_waves::{run_churn_waves, ChurnWavesConfig, ChurnWavesResult};
pub use conflicts::{run_conflicts, run_table2, ConflictConfig, ConflictResult, Table2Row};
pub use dissemination::{run_dissemination, DisseminationConfig, DisseminationResult};
pub use long_chain::{
    render_long_chain, run_long_chain, LongChainConfig, LongChainResult, LongChainRow,
};
pub use multichannel::{
    run_multichannel, ChannelPlan, MultiChannelConfig, MultiChannelNet, MultiChannelResult,
};
pub use net::{
    ChannelSpec, ChurnAction, ChurnEvent, DiscoveryMode, FabricNet, NetMsg, NetParams, NetTimer,
    ViewConvergence,
};
pub use parallel::{run_conflicts_batch, run_dissemination_batch, run_seed_sweep};
pub use shard::{
    plan_groups, run_sharded, MergedEvent, ShardChannel, ShardChannelOutcome, ShardGroup,
    ShardedConfig, ShardedResult,
};
pub use tolerance::{
    render_tolerance, run_tolerance, FamilyFrontier, ToleranceConfig, TolerancePoint,
    ToleranceReport,
};
