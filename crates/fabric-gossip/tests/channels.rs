//! Cross-channel isolation, driven through `MockEffects` and a
//! channel-aware lockstep router (no simulator involved).
//!
//! The properties under test are the two halves of the multiplexer
//! contract:
//!
//! 1. **Isolation** — a block disseminated on one channel can never appear
//!    in another channel's store, not even when stray cross-channel
//!    traffic is delivered to a non-member;
//! 2. **Conservation** — the per-channel [`PeerStats`] sum exactly to the
//!    peer-global totals, counters and per-kind bytes alike.

use fabric_gossip::config::GossipConfig;
use fabric_gossip::messages::GossipMsg;
use fabric_gossip::peer::GossipPeer;
use fabric_gossip::testing::MockEffects;
use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::ids::{ChannelId, PeerId};
use proptest::prelude::*;

/// Payload padding for channel `c`: distinct per channel so a leaked block
/// would be recognizable by size alone.
fn payload_of(c: usize) -> u32 {
    1_000 * (c as u32 + 1)
}

fn block_on(c: usize, num: u64) -> BlockRef {
    BlockRef::new(Block::new(num, Hash256::ZERO, vec![]).with_padding(payload_of(c)))
}

/// A multi-channel lockstep network: routes every channel-tagged message
/// with zero latency until quiescence. Timers are not fired — the enhanced
/// `tpush = 0` configuration never needs them to converge.
struct MultiLockstep {
    peers: Vec<GossipPeer>,
    fxs: Vec<MockEffects>,
    memberships: Vec<Vec<PeerId>>,
}

impl MultiLockstep {
    fn new(n: usize, memberships: Vec<Vec<PeerId>>, cfg: &GossipConfig) -> Self {
        let peers: Vec<GossipPeer> = (0..n as u32)
            .map(|i| {
                let mut peer = GossipPeer::with_channels(PeerId(i), cfg.clone());
                for (c, members) in memberships.iter().enumerate() {
                    if members.contains(&PeerId(i)) {
                        peer = peer.join_channel(ChannelId(c as u16), members.clone());
                    }
                }
                peer
            })
            .collect();
        let fxs: Vec<MockEffects> = (0..n as u64).map(|i| MockEffects::new(2_000 + i)).collect();
        MultiLockstep {
            peers,
            fxs,
            memberships,
        }
    }

    fn run_to_quiescence(&mut self) {
        loop {
            let mut queue: Vec<(PeerId, ChannelId, PeerId, GossipMsg)> = Vec::new();
            for (i, fx) in self.fxs.iter_mut().enumerate() {
                for (ch, to, msg) in fx.take_sent_on() {
                    queue.push((PeerId(i as u32), ch, to, msg));
                }
            }
            if queue.is_empty() {
                return;
            }
            for (from, ch, to, msg) in queue {
                let idx = to.index();
                self.peers[idx].on_channel_message(&mut self.fxs[idx], ch, from, msg);
            }
        }
    }

    /// Injects `blocks` chained blocks on channel `c` at its leader.
    fn inject(&mut self, c: usize, blocks: u64) {
        let leader = *self.memberships[c]
            .iter()
            .min()
            .expect("non-empty membership");
        for num in 1..=blocks {
            let b = block_on(c, num);
            self.peers[leader.index()].on_block_from_orderer_on(
                &mut self.fxs[leader.index()],
                ChannelId(c as u16),
                b,
            );
            self.run_to_quiescence();
        }
    }
}

/// Random overlapping memberships: each channel draws a subsequence of at
/// least two peers from the full roster.
fn membership_strategy(n: u32) -> impl Strategy<Value = Vec<Vec<PeerId>>> {
    let roster: Vec<PeerId> = (0..n).map(PeerId).collect();
    proptest::collection::vec(
        proptest::sample::subsequence(roster, 2..(n as usize + 1)),
        1..4,
    )
}

proptest! {
    #[test]
    fn blocks_never_leak_between_channels(
        memberships in membership_strategy(12),
        blocks in 1u64..4,
    ) {
        let n = 12usize;
        let mut net = MultiLockstep::new(n, memberships.clone(), &GossipConfig::enhanced_f4());
        for c in 0..memberships.len() {
            net.inject(c, blocks);
        }
        for (c, members) in memberships.iter().enumerate() {
            let ch = ChannelId(c as u16);
            let expected_size = block_on(c, 1).wire_size();
            for p in 0..n {
                let is_member = members.contains(&PeerId(p as u32));
                match net.peers[p].store_on(ch) {
                    Some(store) => {
                        prop_assert!(is_member, "peer {} holds a store for unjoined {}", p, ch);
                        prop_assert_eq!(store.len() as u64, blocks);
                        for num in 1..=blocks {
                            let held = store.get(num).expect("member holds the chain");
                            // A block of another channel would betray itself
                            // by its per-channel payload size.
                            prop_assert_eq!(held.wire_size(), expected_size);
                        }
                    }
                    None => prop_assert!(!is_member, "member {} of {} lost its store", p, ch),
                }
                prop_assert_eq!(net.peers[p].stats_on(ch).is_some(), is_member);
            }
        }
    }

    #[test]
    fn stray_cross_channel_traffic_is_inert(
        memberships in membership_strategy(10),
    ) {
        let n = 10usize;
        let mut net = MultiLockstep::new(n, memberships.clone(), &GossipConfig::enhanced_f4());
        for (c, members) in memberships.iter().enumerate() {
            let ch = ChannelId(c as u16);
            let Some(outsider) = (0..n).find(|p| !members.contains(&PeerId(*p as u32))) else {
                continue; // channel spans everyone — nothing to test here
            };
            // Deliver a full block AND a digest to a peer that never joined
            // the channel: both must vanish without a trace.
            net.peers[outsider].on_channel_message(
                &mut net.fxs[outsider],
                ch,
                PeerId(members[0].0),
                GossipMsg::BlockPush { block: block_on(c, 1), counter: 0 },
            );
            net.peers[outsider].on_channel_message(
                &mut net.fxs[outsider],
                ch,
                PeerId(members[0].0),
                GossipMsg::PushDigest { block_num: 1, counter: 1 },
            );
            prop_assert!(net.fxs[outsider].take_sent_on().is_empty());
            prop_assert!(net.peers[outsider].store_on(ch).is_none());
            prop_assert!(net.fxs[outsider].delivered.is_empty());
        }
    }

    #[test]
    fn per_channel_stats_sum_to_peer_totals(
        memberships in membership_strategy(12),
        blocks in 1u64..3,
    ) {
        let n = 12usize;
        let mut net = MultiLockstep::new(n, memberships.clone(), &GossipConfig::enhanced_f4());
        for c in 0..memberships.len() {
            net.inject(c, blocks);
        }
        for p in 0..n {
            let peer = &net.peers[p];
            let total = peer.total_stats();
            let mut bytes = 0u64;
            let mut blocks_sent = 0u64;
            let mut digests_sent = 0u64;
            let mut digests_received = 0u64;
            let mut duplicates = 0u64;
            let mut fetches = 0u64;
            for ch in peer.channel_ids() {
                let s = peer.stats_on(ch).expect("joined channel has stats");
                bytes += s.bytes_sent();
                blocks_sent += s.blocks_sent;
                digests_sent += s.digests_sent;
                digests_received += s.digests_received;
                duplicates += s.duplicate_blocks;
                fetches += s.fetch_requests;
            }
            prop_assert_eq!(total.bytes_sent(), bytes);
            prop_assert_eq!(total.blocks_sent, blocks_sent);
            prop_assert_eq!(total.digests_sent, digests_sent);
            prop_assert_eq!(total.digests_received, digests_received);
            prop_assert_eq!(total.duplicate_blocks, duplicates);
            prop_assert_eq!(total.fetch_requests, fetches);
        }
        // The network-wide byte conservation law: every byte some member
        // sent on a channel was sent by a peer joined to that channel.
        let network_bytes: u64 = net.peers.iter().map(|p| p.total_stats().bytes_sent()).sum();
        let per_channel: u64 = (0..memberships.len())
            .map(|c| {
                net.peers
                    .iter()
                    .filter_map(|p| p.stats_on(ChannelId(c as u16)))
                    .map(|s| s.bytes_sent())
                    .sum::<u64>()
            })
            .sum();
        prop_assert_eq!(network_bytes, per_channel);
    }
}

#[test]
fn every_member_of_every_channel_converges() {
    // Deterministic smoke of the harness itself: 3 overlapping channels.
    let memberships: Vec<Vec<PeerId>> = vec![
        (0..6).map(PeerId).collect(),
        (3..9).map(PeerId).collect(),
        (6..12).map(PeerId).collect(),
    ];
    let mut net = MultiLockstep::new(12, memberships.clone(), &GossipConfig::enhanced_f4());
    for c in 0..3 {
        net.inject(c, 3);
    }
    for (c, members) in memberships.iter().enumerate() {
        for m in members {
            assert_eq!(
                net.peers[m.index()].height_on(ChannelId(c as u16)),
                4,
                "peer {m} on ch{c}"
            );
        }
    }
    // Overlap peers carry two channels and report both in their totals.
    let overlap = &net.peers[4];
    assert_eq!(overlap.channel_ids().len(), 2);
    let total = overlap.total_stats();
    assert!(total.bytes_sent() > 0);
}
