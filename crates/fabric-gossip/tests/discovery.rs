//! Convergence properties of the gossiped discovery protocol, driven
//! through [`DiscoveryHarness`] — no oracle anywhere: joins propagate only
//! through the joiner's own announcements, leaves only through
//! alive-timeout expiry and obituary spreading.
//!
//! The properties (satellites of the discovery tentpole):
//!
//! 1. **View agreement** — under arbitrary join/leave interleavings and
//!    message drops, all correct peers' alive views agree within a bounded
//!    number of heartbeat periods once the loss stops;
//! 2. **Leadership** — exactly one leader per channel survives the same
//!    churn;
//! 3. **No resurrection** — a reaped peer never re-enters any view without
//!    a strictly higher incarnation.

use desim::Duration;
use fabric_gossip::config::GossipConfig;
use fabric_gossip::messages::{GossipMsg, PeerAlive};
use fabric_gossip::peer::GossipPeer;
use fabric_gossip::testing::{DiscoveryHarness, MockEffects};
use fabric_types::ids::{ChannelId, PeerId};
use proptest::prelude::*;

/// Discovery timers tightened so convergence happens in seconds of
/// scripted time: 1 s heartbeats/anti-entropy, 5 s alive timeout.
fn discovery_cfg() -> GossipConfig {
    let mut cfg = GossipConfig::enhanced_f4().with_discovery_protocol();
    cfg.discovery.heartbeat_interval = Duration::from_secs(1);
    cfg.discovery.anti_entropy_interval = Duration::from_secs(1);
    cfg.membership.alive_timeout = Duration::from_secs(5);
    cfg
}

/// The settle window every scenario is allowed before convergence is
/// asserted: one alive timeout (a silent leaver must expire) plus ten
/// heartbeat periods (announcements and obituaries must spread).
fn settle(net: &mut DiscoveryHarness) {
    net.run_for(Duration::from_secs(5 + 10));
}

#[test]
fn a_join_propagates_through_gossip_alone() {
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(8, vec![members], &discovery_cfg());
    assert!(net.views_converged(0), "initial rosters already agree");

    net.join(0, PeerId(6));
    // Nobody was told: at join time only peers that already received the
    // announcement heartbeat know. Within a bounded number of heartbeat
    // periods the whole channel must know.
    let mut rounds = 0;
    while !net.views_converged(0) {
        rounds += 1;
        assert!(
            rounds <= 10,
            "join must converge within 10 heartbeat periods; stragglers: {:?}",
            net.divergent_views(0)
        );
        net.run_for(Duration::from_secs(1));
    }
    // The joiner itself sees every sitting member too.
    assert_eq!(net.view_of(PeerId(6), 0).len(), 6);
}

#[test]
fn a_leave_is_detected_by_timeout_and_spreads_as_an_obituary() {
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(6, vec![members], &discovery_cfg());
    net.run_for(Duration::from_secs(3)); // let real claims replace seeds

    net.leave(0, PeerId(3));
    assert!(
        net.view_of(PeerId(0), 0).contains(&PeerId(3)),
        "no oracle: right after the leave the others still see the leaver"
    );
    settle(&mut net);
    assert!(
        net.views_converged(0),
        "leaver must be reaped everywhere: {:?}",
        net.divergent_views(0)
    );
    // The obituary survives: some member recorded the death.
    let obituary = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .unwrap()
        .obituary_of(PeerId(3));
    assert!(
        obituary.is_some(),
        "a reaped peer leaves an obituary behind"
    );
}

#[test]
fn leader_leave_hands_off_to_exactly_one_successor_by_timeout() {
    let members: Vec<PeerId> = (0..5).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(5, vec![members], &discovery_cfg());
    assert_eq!(net.leaders(0), vec![PeerId(0)], "static leader seeded");

    net.leave(0, PeerId(0));
    // A leave is detected by timeout, not callback: immediately after, the
    // channel is still (stalely) led by nobody present.
    assert!(net.leaders(0).is_empty());
    settle(&mut net);
    assert_eq!(
        net.leaders(0),
        vec![PeerId(1)],
        "the most senior sitting member stands up once the leaver expires"
    );
    assert!(net.views_converged(0));
}

#[test]
fn rejoin_after_reap_carries_a_strictly_higher_incarnation() {
    let members: Vec<PeerId> = (0..4).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(4, vec![members], &discovery_cfg());
    net.run_for(Duration::from_secs(3));
    // Capture the first life's incarnation as the sitting members saw it.
    let first_life = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .unwrap()
        .claim_of(PeerId(3))
        .expect("peer 3 heartbeated")
        .incarnation;

    net.leave(0, PeerId(3));
    settle(&mut net);
    assert!(net.views_converged(0), "leaver reaped everywhere");

    net.join(0, PeerId(3));
    settle(&mut net);
    assert!(
        net.views_converged(0),
        "rejoin must converge: {:?}",
        net.divergent_views(0)
    );
    let second_life = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .unwrap()
        .claim_of(PeerId(3))
        .expect("second life visible")
        .incarnation;
    assert!(
        second_life > first_life,
        "no resurrection without a higher incarnation: {first_life} -> {second_life}"
    );
}

#[test]
fn a_partitioned_minority_is_reaped_and_resurrects_on_heal() {
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(6, vec![members.clone()], &discovery_cfg());
    net.run_for(Duration::from_secs(3));

    // Cut peer 5 off. The majority reaps it; it reaps the majority.
    net.partition(&[(0..5).map(PeerId).collect::<Vec<_>>(), vec![PeerId(5)]]);
    net.run_for(Duration::from_secs(12));
    assert!(
        !net.view_of(PeerId(0), 0).contains(&PeerId(5)),
        "majority reaps the cut-off peer"
    );

    // Heal: the refutation machinery (obituary about self → higher
    // incarnation) brings it back without any join event.
    net.heal();
    net.run_for(Duration::from_secs(20));
    assert!(
        net.views_converged(0),
        "views must re-agree after the partition heals: {:?}",
        net.divergent_views(0)
    );
    assert_eq!(net.leaders(0).len(), 1, "and exactly one leader remains");
}

/// [`discovery_cfg`] with the byte-lean wire format: delta anti-entropy
/// plus adaptive heartbeat cadence.
fn delta_cfg() -> GossipConfig {
    let mut cfg = discovery_cfg();
    cfg.discovery.delta = true;
    cfg.discovery.adaptive_heartbeat = true;
    cfg
}

#[test]
fn delta_anti_entropy_converges_like_full_under_loss() {
    // The same scripted churn, one network per wire format, identical
    // loss: both must converge to the identical ground truth.
    for cfg in [discovery_cfg(), delta_cfg()] {
        let members: Vec<PeerId> = (0..5).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(8, vec![members], &cfg);
        net.set_loss(0.2);
        net.join(0, PeerId(5));
        net.run_for(Duration::from_secs(4));
        net.leave(0, PeerId(0));
        net.run_for(Duration::from_secs(4));
        net.join(0, PeerId(6));
        net.heal(); // loss stops; convergence must follow
        net.run_for(Duration::from_secs(30));
        assert!(
            net.views_converged(0),
            "delta={} failed to converge: {:?}",
            cfg.discovery.delta,
            net.divergent_views(0)
        );
        assert_eq!(net.leaders(0).len(), 1);
    }
}

#[test]
fn delta_mode_partition_heals_through_digest_tombstone_probes() {
    // The reconnection path under delta anti-entropy: the tombstone probe
    // is a digest, and the obituary the cut-off peer finds in it drives
    // the refutation exactly as the full-view probe did.
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(6, vec![members], &delta_cfg());
    net.run_for(Duration::from_secs(3));
    net.partition(&[(0..5).map(PeerId).collect::<Vec<_>>(), vec![PeerId(5)]]);
    net.run_for(Duration::from_secs(12));
    assert!(
        !net.view_of(PeerId(0), 0).contains(&PeerId(5)),
        "majority reaps the cut-off peer"
    );
    net.heal();
    net.run_for(Duration::from_secs(30));
    assert!(
        net.views_converged(0),
        "delta-mode views must re-agree after the heal: {:?}",
        net.divergent_views(0)
    );
    assert_eq!(net.leaders(0).len(), 1);
}

#[test]
fn adaptive_cadence_spends_fewer_heartbeat_bytes_on_a_quiet_channel() {
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let quiet_window = Duration::from_secs(60);
    let alive_bytes = |cfg: &GossipConfig| -> u64 {
        let mut net = DiscoveryHarness::new(6, vec![members.clone()], cfg);
        net.run_for(quiet_window);
        (0..6)
            .map(|i| {
                net.gossip(i)
                    .stats_on(ChannelId(0))
                    .map_or(0, |s| s.bytes_of_kind("alive-msg"))
            })
            .sum()
    };
    let fixed = alive_bytes(&discovery_cfg());
    let adaptive = alive_bytes(&delta_cfg());
    assert!(
        adaptive < fixed,
        "a quiet channel must heartbeat less under adaptive cadence: {adaptive} >= {fixed}"
    );
    // The back-off is bounded (cap = alive_timeout / 3 ≈ 1.67 s over a 1 s
    // base): the quiet channel still heartbeats at a meaningful fraction
    // of the fixed cadence, it does not fall silent.
    assert!(
        adaptive * 4 > fixed,
        "adaptive cadence collapsed too far: {adaptive} vs {fixed}"
    );
}

#[test]
fn adaptive_cadence_never_delays_true_death_detection_beyond_the_timeout_bound() {
    let cfg = delta_cfg();
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(6, vec![members], &cfg);
    // A long quiet stretch engages the maximum back-off everywhere.
    net.run_for(Duration::from_secs(60));
    assert!(net.views_converged(0));

    // A true death: the peer goes silent with every cadence backed off.
    net.leave(0, PeerId(3));
    let timeout = cfg.membership.alive_timeout;
    // Nothing may be reaped before the alive timeout has elapsed...
    net.run_for(timeout - Duration::from_secs(1));
    assert!(
        net.view_of(PeerId(0), 0).contains(&PeerId(3)),
        "a leave cannot be detected before the alive timeout"
    );
    // ...and detection lags the timeout by at most one (clamped) backed-off
    // sweep interval — alive_timeout / 3 by construction — plus the round
    // in flight. Well before the settle window the leaver must be gone
    // from the detector's view and, shortly after, from every view.
    let clamp = timeout / 3;
    net.run_for(Duration::from_secs(1) + clamp + cfg.discovery.heartbeat_interval);
    assert!(
        !net.view_of(PeerId(0), 0).contains(&PeerId(3)),
        "backed-off cadence delayed true-death detection past timeout + clamped interval"
    );
    net.run_for(Duration::from_secs(15));
    assert!(
        net.views_converged(0),
        "obituary must still spread everywhere: {:?}",
        net.divergent_views(0)
    );
}

/// One scripted churn step: kind 0 = join, 1 = leave, 2 = just let time
/// pass. The peer operand picks from the whole deployment.
fn apply_op(net: &mut DiscoveryHarness, op: (u8, u32), keep_one: bool) {
    let (kind, peer) = op;
    match kind {
        0 => net.join(0, PeerId(peer)),
        1 => {
            if !(keep_one && net.members(0).len() <= 1) {
                net.leave(0, PeerId(peer));
            }
        }
        _ => net.run_for(Duration::from_secs(1)),
    }
}

proptest! {
    /// Under arbitrary join/leave interleavings with lossy links, once the
    /// loss stops every correct peer's alive view agrees with the ground
    /// truth within a bounded settle window, exactly one leader stands,
    /// and no peer ever runs two lives under one incarnation.
    #[test]
    fn churn_with_drops_converges_to_agreement_and_one_leader(
        ops in proptest::collection::vec((0u8..3, 0u32..8), 1..20),
        loss_milli in 0u32..300,
    ) {
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(8, vec![members], &discovery_cfg());
        net.set_loss(loss_milli as f64 / 1000.0);
        for op in ops {
            apply_op(&mut net, op, true);
            net.run_for(Duration::from_secs(1));
        }
        // Loss stops; the protocol must converge within the settle window
        // (drops during churn may have reaped live peers — the refutation
        // path has to repair exactly that).
        net.heal();
        net.run_for(Duration::from_secs(30));
        prop_assert!(
            net.views_converged(0),
            "views diverged: {:?} vs members {:?}",
            net.divergent_views(0),
            net.members(0)
        );
        if !net.members(0).is_empty() {
            let leaders = net.leaders(0);
            prop_assert!(
                leaders.len() == 1,
                "want exactly one leader, got {:?} among {:?}",
                leaders,
                net.members(0)
            );
        }
    }

    /// No reaped peer resurrects without a higher incarnation: after a
    /// leave is fully absorbed, replay windows of arbitrary length change
    /// nothing — the departed peer stays out of every view until (and
    /// unless) it rejoins, and a rejoin always shows a strictly higher
    /// incarnation than the obituary.
    #[test]
    fn reaped_peers_stay_dead_until_a_strictly_newer_life(
        silent_secs in 1u64..20,
        rejoin_raw in 0u32..2,
    ) {
        let members: Vec<PeerId> = (0..5).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(5, vec![members], &discovery_cfg());
        net.run_for(Duration::from_secs(3));
        net.leave(0, PeerId(4));
        net.run_for(Duration::from_secs(16));
        prop_assert!(net.views_converged(0), "leaver reaped everywhere");
        let obituary = net
            .gossip(0)
            .discovery_on(ChannelId(0))
            .unwrap()
            .obituary_of(PeerId(4))
            .expect("an obituary was recorded");

        // Arbitrary quiet time: stale state must not decay into a
        // resurrection.
        net.run_for(Duration::from_secs(silent_secs));
        for m in net.members(0).to_vec() {
            prop_assert!(
                !net.view_of(m, 0).contains(&PeerId(4)),
                "peer {m} resurrected a reaped peer without a new life"
            );
        }

        if rejoin_raw == 1 {
            net.join(0, PeerId(4));
            net.run_for(Duration::from_secs(15));
            prop_assert!(net.views_converged(0), "{:?}", net.divergent_views(0));
            let new_life = net
                .gossip(0)
                .discovery_on(ChannelId(0))
                .unwrap()
                .claim_of(PeerId(4))
                .expect("new life visible")
                .incarnation;
            prop_assert!(new_life > obituary, "{new_life} must exceed {obituary}");
        }
    }

    /// The delta wire format inherits the full exchange's convergence
    /// guarantee: arbitrary churn with lossy links still settles to view
    /// agreement and one leader once the loss stops.
    #[test]
    fn churn_with_drops_converges_under_delta_anti_entropy(
        ops in proptest::collection::vec((0u8..3, 0u32..8), 1..12),
        loss_milli in 0u32..300,
    ) {
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(8, vec![members], &delta_cfg());
        net.set_loss(loss_milli as f64 / 1000.0);
        for op in ops {
            apply_op(&mut net, op, true);
            net.run_for(Duration::from_secs(1));
        }
        net.heal();
        net.run_for(Duration::from_secs(30));
        prop_assert!(
            net.views_converged(0),
            "delta views diverged: {:?} vs members {:?}",
            net.divergent_views(0),
            net.members(0)
        );
        if !net.members(0).is_empty() {
            let leaders = net.leaders(0);
            prop_assert!(leaders.len() == 1, "want one leader, got {:?}", leaders);
        }
    }

    /// Cross-channel isolation survives discovery churn: claims, joins and
    /// obituaries of one channel never touch another channel's views.
    #[test]
    fn discovery_stays_channel_scoped(
        ops in proptest::collection::vec((0u8..3, 0u32..6), 1..15),
    ) {
        // Channel 0 over peers 0..4, channel 1 over peers 4..8; churn only
        // channel 0.
        let memberships: Vec<Vec<PeerId>> = vec![
            (0..4).map(PeerId).collect(),
            (4..8).map(PeerId).collect(),
        ];
        let baseline: Vec<Vec<PeerId>> = (4..8)
            .map(|m| {
                let mut v: Vec<PeerId> =
                    (4..8).map(PeerId).filter(|p| p.0 != m).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let mut net = DiscoveryHarness::new(8, memberships, &discovery_cfg());
        for op in ops {
            apply_op(&mut net, op, true);
            net.run_for(Duration::from_secs(1));
        }
        net.run_for(Duration::from_secs(15));
        // Channel 1 never churned: every member still sees exactly its
        // original roster, whatever channel 0 went through.
        for (i, m) in (4..8).enumerate() {
            prop_assert_eq!(
                net.view_of(PeerId(m), 1),
                baseline[i].clone(),
                "channel 1 view of peer {} was disturbed by channel 0 churn",
                m
            );
        }
        prop_assert_eq!(net.leaders(1), vec![PeerId(4)]);
    }

    /// Adversarial reordering of the delta wire format: a delayed stale
    /// `MembershipDelta` arriving after a newer full exchange must never
    /// roll a claim backwards — freshness is monotonic per claim, not per
    /// message kind or arrival order.
    #[test]
    fn a_delayed_stale_delta_never_rolls_a_claim_backwards(
        inc in 1u64..1_000,
        seq in 0u64..1_000,
        stale_inc_raw in 0u64..1_000,
        stale_seq_raw in 0u64..1_000,
    ) {
        let roster: Vec<PeerId> = (0..3).map(PeerId).collect();
        let mut peer =
            GossipPeer::with_channels(PeerId(0), delta_cfg()).join_channel(ChannelId(0), roster);
        let mut fx = MockEffects::new(7);
        peer.init(&mut fx);
        fx.take_sent_on();

        // A newer full exchange teaches the fresh claim...
        let subject = PeerId(2);
        let fresh = PeerAlive { peer: subject, incarnation: inc, seq };
        peer.on_channel_message(
            &mut fx,
            ChannelId(0),
            PeerId(1),
            GossipMsg::MembershipResponse { entries: vec![fresh], dead: vec![] },
        );
        prop_assert_eq!(
            peer.discovery_on(ChannelId(0)).unwrap().claim_of(subject),
            Some(&fresh)
        );

        // ...then a delta that was delayed in flight arrives, carrying a
        // claim that is not fresher (any (inc', seq') ≤ (inc, seq)).
        let stale_inc = stale_inc_raw.min(inc);
        let stale_seq = if stale_inc == inc { stale_seq_raw.min(seq) } else { stale_seq_raw };
        let stale = PeerAlive { peer: subject, incarnation: stale_inc, seq: stale_seq };
        prop_assert!(!stale.fresher_than(&fresh), "generator invariant");
        peer.on_channel_message(
            &mut fx,
            ChannelId(0),
            PeerId(1),
            GossipMsg::MembershipDelta { entries: vec![stale], dead: vec![] },
        );
        let held = *peer
            .discovery_on(ChannelId(0))
            .unwrap()
            .claim_of(subject)
            .expect("the claim must survive");
        prop_assert_eq!(held, fresh, "a delayed stale delta rolled the claim backwards");
    }
}
