//! Protocol-level tests of the gossip state machine, driven through
//! `MockEffects` and a lockstep message router (no simulator involved).

use desim::{Duration, Message as _, Time};
use fabric_gossip::config::{GossipConfig, PushMode};
use fabric_gossip::messages::{GossipMsg, GossipTimer};
use fabric_gossip::peer::GossipPeer;
use fabric_gossip::testing::MockEffects;
use fabric_types::block::{Block, BlockRef};
use fabric_types::ids::PeerId;

fn block(num: u64) -> BlockRef {
    BlockRef::new(
        Block::new(num, fabric_types::crypto::Hash256::ZERO, vec![]).with_padding(160_000),
    )
}

fn roster(n: u32) -> Vec<PeerId> {
    (0..n).map(PeerId).collect()
}

/// Drives a set of peers to quiescence by repeatedly routing every sent
/// message (zero latency, FIFO). Timers are NOT fired — push phases with
/// `tpush = 0` never need them.
struct Lockstep {
    peers: Vec<GossipPeer>,
    fxs: Vec<MockEffects>,
}

impl Lockstep {
    fn new(n: u32, cfg: &GossipConfig) -> Self {
        Self::with_seed(n, cfg, 0)
    }

    fn with_seed(n: u32, cfg: &GossipConfig, seed: u64) -> Self {
        let ids = roster(n);
        let peers: Vec<GossipPeer> = ids
            .iter()
            .map(|id| GossipPeer::new(*id, ids.clone(), cfg.clone()))
            .collect();
        let fxs: Vec<MockEffects> = (0..n)
            .map(|i| MockEffects::new(seed * 7919 + 1000 + u64::from(i)))
            .collect();
        Lockstep { peers, fxs }
    }

    /// Routes messages until no peer has anything left to send.
    fn run_to_quiescence(&mut self) {
        loop {
            let mut queue: Vec<(PeerId, PeerId, GossipMsg)> = Vec::new();
            for (i, fx) in self.fxs.iter_mut().enumerate() {
                for (to, msg) in fx.take_sent() {
                    queue.push((PeerId(i as u32), to, msg));
                }
            }
            if queue.is_empty() {
                return;
            }
            for (from, to, msg) in queue {
                let idx = to.index();
                self.peers[idx].on_message(&mut self.fxs[idx], from, msg);
            }
        }
    }

    fn inject_to_leader(&mut self, b: BlockRef) {
        self.peers[0].on_block_from_orderer(&mut self.fxs[0], b);
    }

    fn peers_with_block(&self, num: u64) -> usize {
        self.peers.iter().filter(|p| p.store().has(num)).count()
    }

    fn total_sent_of_kind(&self, kind: &str) -> usize {
        self.fxs.iter().map(|fx| fx.sent_of_kind(kind).len()).sum()
    }

    /// Full blocks ever sent (routing drains the mock queues, so totals
    /// come from the peers' own counters).
    fn total_blocks_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.stats().blocks_sent).sum()
    }

    fn total_digests_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.stats().digests_sent).sum()
    }
}

#[test]
fn enhanced_push_reaches_all_peers_with_n_plus_o_n_block_transfers() {
    let cfg = GossipConfig::enhanced_f4();
    let mut net = Lockstep::new(100, &cfg);
    net.inject_to_leader(block(1));
    net.run_to_quiescence();

    assert_eq!(
        net.peers_with_block(1),
        100,
        "push phase must inform everyone"
    );

    // The paper: with digests, large blocks are transmitted n + o(n) times.
    let blocks_sent = net.total_blocks_sent();
    assert!(
        blocks_sent >= 99,
        "at least n-1 transfers needed, got {blocks_sent}"
    );
    assert!(
        blocks_sent <= 160,
        "block transfers should be n + o(n), got {blocks_sent} for n = 100"
    );
    // Digests do the fan-out work: k·ln(n) per peer across TTL rounds.
    let digests = net.total_digests_sent();
    assert!(
        digests > 300,
        "digests should carry the epidemic, got {digests}"
    );
}

#[test]
fn enhanced_push_without_digests_floods_full_blocks() {
    let cfg = GossipConfig::enhanced_no_digests();
    let mut net = Lockstep::new(100, &cfg);
    net.inject_to_leader(block(1));
    net.run_to_quiescence();

    assert_eq!(net.peers_with_block(1), 100);
    assert_eq!(net.total_digests_sent(), 0);
    let blocks_sent = net.total_blocks_sent();
    // Figure 11: every forward carries the full block; traffic blows up by
    // roughly an order of magnitude versus the digest variant.
    assert!(
        blocks_sent > 1000,
        "expected a full-block flood, got {blocks_sent}"
    );
}

#[test]
fn enhanced_leader_sends_exactly_f_leader_out_copies() {
    let cfg = GossipConfig::enhanced_f4();
    let ids = roster(10);
    let mut leader = GossipPeer::new(PeerId(0), ids, cfg);
    let mut fx = MockEffects::new(5);
    leader.on_block_from_orderer(&mut fx, block(1));
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 1, "f_leader_out = 1 means one initial copy");
    assert!(matches!(sent[0].1, GossipMsg::BlockPush { counter: 0, .. }));
}

#[test]
fn infect_and_die_forwards_once_and_dies() {
    let mut cfg = GossipConfig::original_fabric();
    // Flush immediately so the test needs no timers.
    if let PushMode::InfectAndDie { tpush, .. } = &mut cfg.push {
        *tpush = Duration::ZERO;
    }
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 0,
        },
    );
    let first = fx.take_sent();
    assert_eq!(first.len(), 3, "fout = 3 pushes on first reception");
    assert!(first.iter().all(|(_, m)| m.kind() == "block"));

    // Second reception of the same block: infected peers stay silent.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 0,
        },
    );
    assert!(
        fx.take_sent().is_empty(),
        "infect-and-die must not forward twice"
    );
    assert_eq!(peer.stats().duplicate_blocks, 1);
}

#[test]
fn pull_received_blocks_are_not_pushed() {
    let mut cfg = GossipConfig::original_fabric();
    if let PushMode::InfectAndDie { tpush, .. } = &mut cfg.push {
        *tpush = Duration::ZERO;
    }
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::PullResponse {
            nonce: 0,
            blocks: vec![block(1)],
        },
    );
    assert!(
        fx.take_sent().is_empty(),
        "blocks obtained via pull only feed pull responses, never push"
    );
    assert!(peer.store().has(1));
}

#[test]
fn ttl_stops_the_enhanced_dissemination() {
    let cfg = GossipConfig::enhanced(4, 9, 9); // all-direct, digests moot
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    // Counter below TTL: forward with counter + 1.
    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 8,
        },
    );
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 4);
    assert!(sent
        .iter()
        .all(|(_, m)| matches!(m, GossipMsg::BlockPush { counter: 9, .. })));

    // Counter at TTL: accept, do not forward.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::BlockPush {
            block: block(2),
            counter: 9,
        },
    );
    assert!(
        fx.take_sent().is_empty(),
        "counter = TTL must not be forwarded"
    );
}

#[test]
fn same_pair_is_forwarded_once_but_new_counters_reinfect() {
    let cfg = GossipConfig::enhanced(2, 19, 19);
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 3,
        },
    );
    assert_eq!(fx.take_sent().len(), 2);
    // Same (block, counter): ignored.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 3,
        },
    );
    assert!(fx.take_sent().is_empty());
    // Same block, fresh counter: infect-upon-contagion forwards again.
    peer.on_message(
        &mut fx,
        PeerId(3),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 7,
        },
    );
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 2);
    assert!(sent
        .iter()
        .all(|(_, m)| matches!(m, GossipMsg::BlockPush { counter: 8, .. })));
}

#[test]
fn digest_triggers_fetch_then_owed_forwards() {
    let cfg = GossipConfig::enhanced_f4(); // ttl 9, ttl_direct 2, digests on
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    // Digest for unknown content: exactly one fetch request to the sender.
    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::PushDigest {
            block_num: 1,
            counter: 4,
        },
    );
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 1);
    assert_eq!(sent[0].0, PeerId(1));
    assert!(matches!(
        sent[0].1,
        GossipMsg::PushRequest {
            block_num: 1,
            counter: 4
        }
    ));
    // A second digest with another counter queues, without a second fetch.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::PushDigest {
            block_num: 1,
            counter: 6,
        },
    );
    assert!(fx.take_sent().is_empty());

    // Content arrives (echoing counter 4): forwards are owed for counters 4
    // and 6, i.e. digests with counters 5 and 7 to fout = 4 targets each.
    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 4,
        },
    );
    let sent = fx.take_sent();
    let digests: Vec<u32> = sent
        .iter()
        .filter_map(|(_, m)| match m {
            GossipMsg::PushDigest { counter, .. } => Some(*counter),
            _ => None,
        })
        .collect();
    assert_eq!(sent.len(), 8);
    assert_eq!(digests.iter().filter(|c| **c == 5).count(), 4);
    assert_eq!(digests.iter().filter(|c| **c == 7).count(), 4);
}

#[test]
fn digest_for_known_content_forwards_without_fetch() {
    let cfg = GossipConfig::enhanced_f4();
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 5,
        },
    );
    fx.take_sent();
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::PushDigest {
            block_num: 1,
            counter: 7,
        },
    );
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 4, "known content reinfects straight away");
    assert!(sent
        .iter()
        .all(|(_, m)| matches!(m, GossipMsg::PushDigest { counter: 8, .. })));
    assert_eq!(peer.stats().fetch_requests, 0);
}

#[test]
fn ttl_direct_switches_between_blocks_and_digests() {
    let cfg = GossipConfig::enhanced(4, 9, 2);
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    // counter 1 -> forwards counter 2 <= ttl_direct: full blocks.
    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 1,
        },
    );
    let sent = fx.take_sent();
    assert!(sent.iter().all(|(_, m)| m.kind() == "block"));

    // counter 2 -> forwards counter 3 > ttl_direct: digests.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::BlockPush {
            block: block(2),
            counter: 2,
        },
    );
    let sent = fx.take_sent();
    assert!(sent.iter().all(|(_, m)| m.kind() == "push-digest"));
}

#[test]
fn push_request_is_served_from_the_store() {
    let cfg = GossipConfig::enhanced_f4();
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 9,
        },
    );
    fx.take_sent();
    peer.on_message(
        &mut fx,
        PeerId(3),
        GossipMsg::PushRequest {
            block_num: 1,
            counter: 6,
        },
    );
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 1);
    assert_eq!(sent[0].0, PeerId(3));
    assert!(matches!(sent[0].1, GossipMsg::BlockPush { counter: 6, .. }));

    // Unknown content: silence (the requester's retry timer handles it).
    peer.on_message(
        &mut fx,
        PeerId(3),
        GossipMsg::PushRequest {
            block_num: 99,
            counter: 1,
        },
    );
    assert!(fx.take_sent().is_empty());
}

#[test]
fn fetch_retry_rotates_advertisers_and_gives_up() {
    let mut cfg = GossipConfig::enhanced_f4();
    cfg.fetch.max_attempts = 3;
    let ids = roster(10);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(9);

    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::PushDigest {
            block_num: 1,
            counter: 4,
        },
    );
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::PushDigest {
            block_num: 1,
            counter: 5,
        },
    );
    fx.take_sent();

    // First retry goes to the rotation's next advertiser.
    peer.on_timer(
        &mut fx,
        GossipTimer::FetchRetry {
            block_num: 1,
            attempt: 1,
        },
    );
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 1);
    assert!(matches!(
        sent[0].1,
        GossipMsg::PushRequest { block_num: 1, .. }
    ));

    peer.on_timer(
        &mut fx,
        GossipTimer::FetchRetry {
            block_num: 1,
            attempt: 2,
        },
    );
    assert_eq!(fx.take_sent().len(), 1);

    // Attempt limit reached: give up silently (recovery's job now).
    peer.on_timer(
        &mut fx,
        GossipTimer::FetchRetry {
            block_num: 1,
            attempt: 3,
        },
    );
    assert!(fx.take_sent().is_empty());
    // After giving up, further retries are no-ops.
    peer.on_timer(
        &mut fx,
        GossipTimer::FetchRetry {
            block_num: 1,
            attempt: 2,
        },
    );
    assert!(fx.take_sent().is_empty());
}

#[test]
fn pull_engine_four_phase_flow() {
    let mut cfg = GossipConfig::original_fabric();
    cfg.pull.as_mut().unwrap().fin = 1;
    let ids = roster(3);
    let mut requester = GossipPeer::new(PeerId(1), ids.clone(), cfg.clone());
    let mut responder = GossipPeer::new(PeerId(2), ids, cfg);
    let mut rfx = MockEffects::new(1);
    let mut sfx = MockEffects::new(2);

    // Responder holds blocks 1..=3 (via pull so it does not push).
    responder.on_message(
        &mut sfx,
        PeerId(0),
        GossipMsg::PullResponse {
            nonce: 0,
            blocks: vec![block(1), block(2), block(3)],
        },
    );
    sfx.take_sent();

    // Phase 1: requester initiates a round.
    requester.on_timer(&mut rfx, GossipTimer::PullRound);
    let hello = rfx.take_sent();
    assert_eq!(hello.len(), 1);
    let GossipMsg::PullHello { nonce } = hello[0].1 else {
        panic!("expected hello")
    };

    // Phase 2: responder answers with its digest.
    responder.on_message(&mut sfx, PeerId(1), GossipMsg::PullHello { nonce });
    let digest = sfx.take_sent();
    assert_eq!(digest.len(), 1);
    let GossipMsg::PullDigestResponse { block_nums, .. } = &digest[0].1 else {
        panic!("expected digest response")
    };
    assert_eq!(block_nums, &vec![1, 2, 3]);

    // Phase 3: digests accumulate during the digest-wait window; at its
    // expiry the requester asks for everything it lacks.
    requester.on_message(&mut rfx, PeerId(2), digest[0].1.clone());
    assert!(
        rfx.take_sent().is_empty(),
        "requests wait for the digest window"
    );
    requester.on_timer(&mut rfx, GossipTimer::PullDigestWait { nonce });
    let request = rfx.take_sent();
    assert_eq!(request.len(), 1);
    let GossipMsg::PullRequest { block_nums, .. } = &request[0].1 else {
        panic!("expected pull request")
    };
    assert_eq!(block_nums, &vec![1, 2, 3]);

    // Phase 4: responder serves the blocks; requester delivers in order.
    responder.on_message(&mut sfx, PeerId(1), request[0].1.clone());
    let response = sfx.take_sent();
    assert_eq!(response.len(), 1);
    requester.on_message(&mut rfx, PeerId(2), response[0].1.clone());
    assert_eq!(rfx.delivered_numbers(), vec![1, 2, 3]);
}

#[test]
fn stale_pull_responses_are_ignored() {
    let cfg = GossipConfig::original_fabric();
    let ids = roster(3);
    let mut peer = GossipPeer::new(PeerId(1), ids, cfg);
    let mut fx = MockEffects::new(1);

    peer.on_timer(&mut fx, GossipTimer::PullRound); // nonce becomes 1
    fx.take_sent();
    peer.on_timer(&mut fx, GossipTimer::PullRound); // nonce becomes 2
    fx.take_sent();

    // A digest for the first round must not trigger requests, even after
    // its (stale) digest-wait fires.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::PullDigestResponse {
            nonce: 1,
            block_nums: vec![1, 2],
        },
    );
    peer.on_timer(&mut fx, GossipTimer::PullDigestWait { nonce: 1 });
    assert!(fx.take_sent().is_empty());
}

#[test]
fn pull_round_requests_each_block_from_one_advertiser() {
    let mut cfg = GossipConfig::original_fabric();
    cfg.pull.as_mut().unwrap().fin = 2;
    let ids = roster(4);
    let mut peer = GossipPeer::new(PeerId(1), ids, cfg);
    let mut fx = MockEffects::new(1);

    peer.on_timer(&mut fx, GossipTimer::PullRound);
    let hellos = fx.take_sent();
    assert_eq!(hellos.len(), 2);
    let GossipMsg::PullHello { nonce } = hellos[0].1 else {
        panic!()
    };

    // Two responders advertise overlapping digests within the wait window.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::PullDigestResponse {
            nonce,
            block_nums: vec![1, 2],
        },
    );
    peer.on_message(
        &mut fx,
        PeerId(3),
        GossipMsg::PullDigestResponse {
            nonce,
            block_nums: vec![2, 3],
        },
    );
    assert!(fx.take_sent().is_empty());

    peer.on_timer(&mut fx, GossipTimer::PullDigestWait { nonce });
    let requests = fx.take_sent();
    // Every missing block requested exactly once across all targets.
    let mut requested: Vec<u64> = requests
        .iter()
        .flat_map(|(_, m)| match m {
            GossipMsg::PullRequest { block_nums, .. } => block_nums.clone(),
            _ => panic!("only requests expected"),
        })
        .collect();
    requested.sort_unstable();
    assert_eq!(requested, vec![1, 2, 3]);
    // Block 1 can only come from peer 2; block 3 only from peer 3.
    for (to, m) in &requests {
        let GossipMsg::PullRequest { block_nums, .. } = m else {
            unreachable!()
        };
        if block_nums.contains(&1) {
            assert_eq!(*to, PeerId(2));
        }
        if block_nums.contains(&3) {
            assert_eq!(*to, PeerId(3));
        }
    }
}

#[test]
fn recovery_catches_up_from_the_highest_peer() {
    let cfg = GossipConfig::enhanced_f4();
    let ids = roster(3);
    let mut behind = GossipPeer::new(PeerId(1), ids.clone(), cfg.clone());
    let mut ahead = GossipPeer::new(PeerId(2), ids, cfg);
    let mut bfx = MockEffects::new(1);
    let mut afx = MockEffects::new(2);

    for n in 1..=5 {
        ahead.on_message(
            &mut afx,
            PeerId(0),
            GossipMsg::BlockPush {
                block: block(n),
                counter: 9,
            },
        );
    }
    afx.take_sent();
    assert_eq!(ahead.height(), 6);

    // The behind peer learns the height, then runs its recovery round.
    behind.on_message(
        &mut bfx,
        PeerId(2),
        GossipMsg::StateInfo {
            height: 6,
            checkpoint: None,
        },
    );
    behind.on_timer(&mut bfx, GossipTimer::RecoveryRound);
    let sent = bfx.take_sent();
    let req = sent
        .iter()
        .find(|(_, m)| matches!(m, GossipMsg::RecoveryRequest { .. }))
        .expect("expected a recovery request");
    assert_eq!(req.0, PeerId(2));
    let GossipMsg::RecoveryRequest { from, to } = req.1 else {
        panic!()
    };
    assert_eq!(from, 1);
    assert_eq!(to, 5);

    ahead.on_message(&mut afx, PeerId(1), GossipMsg::RecoveryRequest { from, to });
    let resp = afx.take_sent();
    assert_eq!(resp.len(), 1);
    behind.on_message(&mut bfx, PeerId(2), resp[0].1.clone());
    assert_eq!(behind.height(), 6);
    assert_eq!(bfx.delivered_numbers(), vec![1, 2, 3, 4, 5]);
}

#[test]
fn recovery_stays_quiet_when_caught_up() {
    let cfg = GossipConfig::enhanced_f4();
    let ids = roster(3);
    let mut peer = GossipPeer::new(PeerId(1), ids, cfg);
    let mut fx = MockEffects::new(1);
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::StateInfo {
            height: 1,
            checkpoint: None,
        },
    );
    peer.on_timer(&mut fx, GossipTimer::RecoveryRound);
    let sent = fx.take_sent();
    assert!(
        sent.iter()
            .all(|(_, m)| !matches!(m, GossipMsg::RecoveryRequest { .. })),
        "no recovery when heights match"
    );
}

#[test]
fn static_leader_is_lowest_id() {
    let cfg = GossipConfig::enhanced_f4();
    let ids = roster(5);
    assert!(GossipPeer::new(PeerId(0), ids.clone(), cfg.clone()).is_leader());
    assert!(!GossipPeer::new(PeerId(3), ids, cfg).is_leader());
}

#[test]
fn dynamic_election_stands_up_lowest_alive_and_steps_down() {
    let mut cfg = GossipConfig::enhanced_f4();
    cfg.election.dynamic = true;
    let ids = roster(3);
    let mut peer = GossipPeer::new(PeerId(1), ids, cfg);
    let mut fx = MockEffects::new(1);
    assert!(!peer.is_leader());

    // Nothing heard from any leader and peer 0 is silent past the alive
    // timeout: peer 1 must stand up once peer 0 is believed dead.
    fx.now = Time::from_secs(100);
    // Mark peer 2 alive recently so only peer 0 looks dead.
    peer.on_message(&mut fx, PeerId(2), GossipMsg::Alive);
    fx.take_sent();
    fx.now = Time::from_secs(120);
    peer.on_message(&mut fx, PeerId(2), GossipMsg::Alive);
    fx.take_sent();
    peer.on_timer(&mut fx, GossipTimer::ElectionTick);
    assert!(peer.is_leader(), "lowest alive id must claim leadership");
    let sent = fx.take_sent();
    assert!(sent
        .iter()
        .any(|(_, m)| matches!(m, GossipMsg::LeaderHeartbeat { .. })));
    assert_eq!(fx.leadership, vec![true]);

    // A lower-id leader reappears: step down.
    peer.on_message(
        &mut fx,
        PeerId(0),
        GossipMsg::LeaderHeartbeat { leader: PeerId(0) },
    );
    assert!(!peer.is_leader());
    assert_eq!(fx.leadership, vec![true, false]);
}

#[test]
fn original_push_coverage_matches_the_papers_expectation() {
    // Section IV: with n = 100 and fout = 3, infect-and-die reaches 94
    // peers on average (σ = 2.6) and transmits each block 282 times.
    let mut cfg = GossipConfig::original_fabric();
    if let PushMode::InfectAndDie { tpush, .. } = &mut cfg.push {
        *tpush = Duration::ZERO;
    }
    let rounds = 30;
    let mut coverage_sum = 0usize;
    let mut sends_sum = 0u64;
    for round in 0..rounds {
        let mut net = Lockstep::with_seed(100, &cfg, round);
        net.inject_to_leader(block(1));
        net.run_to_quiescence();
        coverage_sum += net.peers_with_block(1);
        sends_sum += net.total_blocks_sent();
    }
    let mean_coverage = coverage_sum as f64 / rounds as f64;
    let mean_sends = sends_sum as f64 / rounds as f64;
    assert!(
        (90.0..=98.0).contains(&mean_coverage),
        "expected ≈94 informed peers, measured {mean_coverage:.1}"
    );
    assert!(
        (260.0..=300.0).contains(&mean_sends),
        "expected ≈282 full-block transmissions, measured {mean_sends:.0}"
    );
}

#[test]
fn enhanced_f2_ttl19_also_reaches_everyone() {
    let cfg = GossipConfig::enhanced_f2();
    for seed_round in 0..5 {
        let mut net = Lockstep::with_seed(100, &cfg, seed_round);
        net.inject_to_leader(block(1));
        net.run_to_quiescence();
        assert_eq!(net.peers_with_block(1), 100, "round {seed_round}");
    }
}

#[test]
fn every_peer_delivers_blocks_in_order_despite_shuffled_arrival() {
    let cfg = GossipConfig::enhanced_f4();
    let ids = roster(4);
    let mut peer = GossipPeer::new(PeerId(1), ids, cfg);
    let mut fx = MockEffects::new(1);
    for num in [3u64, 1, 4, 2] {
        peer.on_message(
            &mut fx,
            PeerId(0),
            GossipMsg::BlockPush {
                block: block(num),
                counter: 9,
            },
        );
    }
    assert_eq!(fx.delivered_numbers(), vec![1, 2, 3, 4]);
    assert_eq!(
        fx.received,
        vec![3, 1, 4, 2],
        "reception order is arrival order"
    );
}

#[test]
fn lockstep_harness_sanity_check() {
    // The helper used above should drain to quiescence and count kinds.
    let cfg = GossipConfig::enhanced_f4();
    let mut net = Lockstep::new(10, &cfg);
    net.inject_to_leader(block(1));
    net.run_to_quiescence();
    assert_eq!(net.peers_with_block(1), 10);
    assert_eq!(
        net.total_sent_of_kind("anything"),
        0,
        "sent queues are drained"
    );
}

#[test]
fn crash_resets_volatile_state_but_keeps_the_store() {
    let cfg = GossipConfig::enhanced_f4();
    let ids = roster(6);
    let mut peer = GossipPeer::new(PeerId(0), ids, cfg);
    let mut fx = MockEffects::new(4);
    assert!(peer.is_leader(), "peer 0 is the static leader");

    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 9,
        },
    );
    // A digest leaves a fetch pending for block 2.
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::PushDigest {
            block_num: 2,
            counter: 3,
        },
    );
    fx.take_sent();

    peer.on_crash();
    assert!(!peer.is_leader(), "leadership is volatile");
    assert!(peer.store().has(1), "persisted blocks survive");
    // The fetch-retry timer for the pre-crash request must now be inert.
    peer.on_timer(
        &mut fx,
        GossipTimer::FetchRetry {
            block_num: 2,
            attempt: 1,
        },
    );
    assert!(
        fx.take_sent().is_empty(),
        "pending fetches died with the process"
    );
}

#[test]
fn buffered_enhanced_push_shares_one_target_sample() {
    // The t_push > 0 ablation: two pairs buffered within the window are
    // flushed to the same fout-peer sample — the bias §IV describes.
    let mut cfg = GossipConfig::enhanced(4, 9, 9); // direct mode, no digests
    if let PushMode::InfectUponContagion { tpush, .. } = &mut cfg.push {
        *tpush = Duration::from_millis(10);
    }
    let ids = roster(30);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(6);

    peer.on_message(
        &mut fx,
        PeerId(1),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 1,
        },
    );
    peer.on_message(
        &mut fx,
        PeerId(2),
        GossipMsg::BlockPush {
            block: block(1),
            counter: 4,
        },
    );
    assert!(fx.take_sent().is_empty(), "forwards wait in the buffer");
    let timers = fx.take_scheduled();
    assert_eq!(
        timers
            .iter()
            .filter(|(_, t)| *t == GossipTimer::PushFlush)
            .count(),
        1,
        "one flush timer guards the buffer"
    );

    peer.on_timer(&mut fx, GossipTimer::PushFlush);
    let sent = fx.take_sent();
    assert_eq!(sent.len(), 8, "two pairs x fout targets");
    let mut targets_a: Vec<PeerId> = sent
        .iter()
        .filter(|(_, m)| matches!(m, GossipMsg::BlockPush { counter: 2, .. }))
        .map(|(to, _)| *to)
        .collect();
    let mut targets_b: Vec<PeerId> = sent
        .iter()
        .filter(|(_, m)| matches!(m, GossipMsg::BlockPush { counter: 5, .. }))
        .map(|(to, _)| *to)
        .collect();
    targets_a.sort_unstable();
    targets_b.sort_unstable();
    assert_eq!(
        targets_a, targets_b,
        "both pairs hit the SAME sample — the bias"
    );
}

#[test]
fn unbuffered_enhanced_push_samples_independently() {
    // With t_push = 0 (the paper's fix), each pair draws its own sample;
    // with 30 candidate peers two independent 4-subsets almost never
    // coincide, and across several blocks certainly not all of them.
    let cfg = GossipConfig::enhanced(4, 9, 9);
    let ids = roster(30);
    let mut peer = GossipPeer::new(PeerId(5), ids, cfg);
    let mut fx = MockEffects::new(6);
    let mut all_same = true;
    for b in 1..=6u64 {
        peer.on_message(
            &mut fx,
            PeerId(1),
            GossipMsg::BlockPush {
                block: block(b),
                counter: 1,
            },
        );
        let first: Vec<PeerId> = fx.take_sent().into_iter().map(|(to, _)| to).collect();
        peer.on_message(
            &mut fx,
            PeerId(2),
            GossipMsg::BlockPush {
                block: block(b),
                counter: 4,
            },
        );
        let second: Vec<PeerId> = fx.take_sent().into_iter().map(|(to, _)| to).collect();
        let mut a = first.clone();
        let mut b2 = second.clone();
        a.sort_unstable();
        b2.sort_unstable();
        if a != b2 {
            all_same = false;
        }
    }
    assert!(!all_same, "independent samples must differ for some block");
}

#[test]
fn stats_count_the_message_economy() {
    let cfg = GossipConfig::enhanced_f4();
    let mut net = Lockstep::new(40, &cfg);
    net.inject_to_leader(block(1));
    net.run_to_quiescence();
    let digests_received: u64 = net.peers.iter().map(|p| p.stats().digests_received).sum();
    let digests_sent = net.total_digests_sent();
    assert_eq!(
        digests_received, digests_sent,
        "lossless routing conserves digests"
    );
    let fetches: u64 = net.peers.iter().map(|p| p.stats().fetch_requests).sum();
    assert!(fetches > 0, "digest-first dissemination requires fetches");
    let pull_rounds: u64 = net.peers.iter().map(|p| p.stats().pull_rounds).sum();
    assert_eq!(pull_rounds, 0, "the enhanced protocol never pulls");
}
