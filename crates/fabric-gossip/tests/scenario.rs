//! The adversarial suite: scripted and seeded-random scenarios over the
//! [`fabric_gossip::scenario`] DSL, with Byzantine fault injection.
//!
//! Each of the five attackers gets (at least) one **asserted surviving
//! guarantee** and one **measured degradation**:
//!
//! | attacker             | survives (asserted)                       | degrades (measured)        |
//! |----------------------|-------------------------------------------|----------------------------|
//! | stale replay         | no resurrection below obituary            | alive-msg byte inflation   |
//! | obituary forgery     | refuted via incarnation bump, views heal  | disruption window seconds  |
//! | selective forwarding | joiner still converges                    | join convergence seconds   |
//! | flood amplification  | view agreement + one leader               | discovery byte inflation   |
//! | eclipse              | one honest seed defeats it                | time-to-escape seconds     |
//! | forger+suppressors   | refutation still wins the coalition       | widened disruption window  |
//! | leader hunter        | one leader after the adaptive campaign    | leadership churn observed  |
//! | withholder           | completeness 1.0 via honest redundancy    | catch-up delay seconds     |
//! | equivocator          | every conflicting payload hash-rejected   | rejected payload count     |
//! | snapshot poisoner    | joiner resumes to an honest server        | extra bootstrap requests   |
//!
//! The random proptests compose loss, partitions, crashes and a random
//! attacker — or a random *coalition* (membership is part of the shrunk
//! input) — and still demand post-heal convergence, for both the full
//! and the delta anti-entropy wire formats. `FAIR_GOSSIP_ADVERSARIAL_SEED`
//! shifts the generated scenario space (the CI seed matrix).

use desim::Duration;
use fabric_gossip::config::GossipConfig;
use fabric_gossip::scenario::{
    random_scenario, Adaptively, Byzantine, CoalitionForger, DiscoveryHarness, Eclipser,
    Equivocator, Flooder, LeaderHunter, ObituaryForger, Predicate, RefutationSuppressor,
    ScenarioOp, ScenarioShape, SelectiveForwarder, SideChannel, SnapshotPoisoner, StaleReplayer,
    Withholder,
};
use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::ids::{ChannelId, PeerId};
use proptest::prelude::*;

/// Discovery timers tightened so convergence happens in seconds of
/// scripted time (same shape as the discovery suite).
fn discovery_cfg() -> GossipConfig {
    let mut cfg = GossipConfig::enhanced_f4().with_discovery_protocol();
    cfg.discovery.heartbeat_interval = Duration::from_secs(1);
    cfg.discovery.anti_entropy_interval = Duration::from_secs(1);
    cfg.membership.alive_timeout = Duration::from_secs(5);
    cfg
}

/// [`discovery_cfg`] with the byte-lean wire format: delta anti-entropy
/// plus adaptive heartbeat cadence.
fn delta_cfg() -> GossipConfig {
    let mut cfg = discovery_cfg();
    cfg.discovery.delta = true;
    cfg.discovery.adaptive_heartbeat = true;
    cfg
}

/// The CI seed matrix knob: shifts which random scenarios a run explores
/// without touching the test code.
fn env_seed() -> u64 {
    std::env::var("FAIR_GOSSIP_ADVERSARIAL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Polls `done` once per scripted second (running time in between) and
/// returns the first second at which it held, up to `limit`.
fn secs_until(
    net: &mut DiscoveryHarness,
    limit: u64,
    mut done: impl FnMut(&DiscoveryHarness) -> bool,
) -> Option<u64> {
    for elapsed in 0..=limit {
        if done(net) {
            return Some(elapsed);
        }
        if elapsed < limit {
            net.run_for(Duration::from_secs(1));
        }
    }
    None
}

// ---------------------------------------------------------------------
// DSL ports of the hand-written discovery tests: the scenario engine
// subsumes the old harness style.
// ---------------------------------------------------------------------

#[test]
fn dsl_subsumes_the_partition_heal_refutation_test() {
    // Port of `a_partitioned_minority_is_reaped_and_resurrects_on_heal`:
    // the same timeline as a script, the same guarantees as predicates.
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(6, vec![members], &discovery_cfg());
    net.run_script(&[
        ScenarioOp::Wait { secs: 3 },
        ScenarioOp::Partition {
            groups: vec![(0..5).map(PeerId).collect::<Vec<_>>(), vec![PeerId(5)]],
        },
        ScenarioOp::Wait { secs: 12 },
    ])
    .expect("no asserts yet");
    assert!(
        !net.view_of(PeerId(0), 0).contains(&PeerId(5)),
        "majority reaps the cut-off peer"
    );
    net.run_script(&[
        ScenarioOp::Heal,
        ScenarioOp::Assert(Predicate::ConvergenceWithin {
            channel: 0,
            secs: 20,
        }),
        ScenarioOp::Assert(Predicate::ExactlyOneLeader { channel: 0 }),
        ScenarioOp::Assert(Predicate::NoResurrectionBelowObituary { channel: 0 }),
    ])
    .expect("the refutation machinery heals the partition");
}

#[test]
fn dsl_subsumes_the_false_death_incarnation_bump_test() {
    // Port of `rejoin_after_reap_carries_a_strictly_higher_incarnation`.
    let members: Vec<PeerId> = (0..4).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(4, vec![members], &discovery_cfg());
    net.run_script(&[ScenarioOp::Wait { secs: 3 }]).unwrap();
    let first_life = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .unwrap()
        .claim_of(PeerId(3))
        .expect("peer 3 heartbeated")
        .incarnation;

    net.run_script(&[
        ScenarioOp::Leave {
            channel: 0,
            peer: PeerId(3),
        },
        ScenarioOp::Wait { secs: 15 },
        ScenarioOp::Assert(Predicate::ViewAgreement { channel: 0 }),
        ScenarioOp::Join {
            channel: 0,
            peer: PeerId(3),
        },
        ScenarioOp::Wait { secs: 15 },
        ScenarioOp::Assert(Predicate::ViewAgreement { channel: 0 }),
        ScenarioOp::Assert(Predicate::ExactlyOneLeader { channel: 0 }),
        ScenarioOp::Assert(Predicate::NoResurrectionBelowObituary { channel: 0 }),
    ])
    .expect("leave, reap, rejoin");

    let second_life = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .unwrap()
        .claim_of(PeerId(3))
        .expect("second life visible")
        .incarnation;
    assert!(
        second_life > first_life,
        "no resurrection without a higher incarnation: {first_life} -> {second_life}"
    );
}

#[test]
fn gap_free_catchup_holds_for_a_late_joiner_under_the_dsl() {
    let mut cfg = discovery_cfg();
    cfg.recovery.interval = Duration::from_secs(2);
    cfg.recovery.state_info_interval = Duration::from_secs(1);
    let members: Vec<PeerId> = (0..4).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(5, vec![members], &cfg);
    let mut prev = Hash256::ZERO;
    for num in 1..=5u64 {
        let block = BlockRef::new(Block::new(num, prev, vec![]).with_padding(200));
        prev = block.hash();
        net.inject(0, block);
        net.run_for(Duration::from_millis(200));
    }
    net.run_script(&[
        ScenarioOp::Assert(Predicate::GapFreeCatchup { channel: 0 }),
        ScenarioOp::Join {
            channel: 0,
            peer: PeerId(4),
        },
        ScenarioOp::Wait { secs: 15 },
        ScenarioOp::Assert(Predicate::ViewAgreement { channel: 0 }),
        ScenarioOp::Assert(Predicate::GapFreeCatchup { channel: 0 }),
    ])
    .expect("the late joiner catches up gap-free");
    assert_eq!(net.head(0), 5);
}

// ---------------------------------------------------------------------
// The attacker catalog, one scenario each.
// ---------------------------------------------------------------------

#[test]
fn stale_replay_never_resurrects_a_reaped_peer_and_its_spam_is_measured() {
    let run = |attach: bool| -> (Result<(), String>, u64) {
        let members: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(6, vec![members], &discovery_cfg());
        if attach {
            net.set_byzantine(PeerId(4), Box::new(StaleReplayer::new(2)));
        }
        // Let the replayer record peer 3's first-life claims, then reap
        // peer 3: every replay of its stale claims must stay inert.
        let res = net
            .run_script(&[
                ScenarioOp::Wait { secs: 3 },
                ScenarioOp::Leave {
                    channel: 0,
                    peer: PeerId(3),
                },
                ScenarioOp::Wait { secs: 20 },
                ScenarioOp::Assert(Predicate::ViewAgreement { channel: 0 }),
                ScenarioOp::Assert(Predicate::ExactlyOneLeader { channel: 0 }),
                ScenarioOp::Assert(Predicate::NoResurrectionBelowObituary { channel: 0 }),
            ])
            .map_err(|e| e.to_string());
        (res, net.wire_bytes_of_kind("alive-msg"))
    };
    let (baseline, baseline_bytes) = run(false);
    baseline.expect("benign run holds");
    let (attacked, attacked_bytes) = run(true);
    attacked.expect("replay must not resurrect the reaped peer or split views");
    // The surviving guarantee is not free: the replays are real traffic.
    assert!(
        attacked_bytes > baseline_bytes,
        "replay spam must show up in the alive-msg bytes: {attacked_bytes} vs {baseline_bytes}"
    );
}

#[test]
fn forged_obituaries_are_refuted_within_the_incarnation_bump_bound() {
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let victim = PeerId(2);
    let mut net = DiscoveryHarness::new(6, vec![members], &discovery_cfg());
    net.run_for(Duration::from_secs(3));
    let inc_before = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .unwrap()
        .claim_of(victim)
        .expect("victim heartbeated")
        .incarnation;

    net.set_byzantine(PeerId(4), Box::new(ObituaryForger::new(victim, 2)));
    // Walk time in steps, observing the attack land (some honest view
    // drops the live victim) and measuring the disruption window until
    // the refutation heals every view again.
    let mut disrupted_at = None;
    let mut healed_at = None;
    for tick in 0..60u64 {
        net.run_for(Duration::from_millis(500));
        let converged = net.views_converged(0);
        if !converged && disrupted_at.is_none() {
            disrupted_at = Some(tick);
        }
        if converged && disrupted_at.is_some() {
            healed_at = Some(tick);
            break;
        }
    }
    let disrupted_at = disrupted_at.expect("the forged obituary must actually disrupt views");
    let healed_at = healed_at.expect("views must heal: the victim refutes the forgery");
    let disruption_ms = (healed_at - disrupted_at) * 500;
    assert!(
        disruption_ms <= 20_000,
        "refutation exceeded the bump bound: {disruption_ms} ms of disruption"
    );
    let inc_after = net
        .gossip(0)
        .discovery_on(ChannelId(0))
        .unwrap()
        .claim_of(victim)
        .expect("victim re-entered the views")
        .incarnation;
    assert!(
        inc_after > inc_before,
        "the refutation is an incarnation bump: {inc_before} -> {inc_after}"
    );
    assert_eq!(net.leaders(0).len(), 1);
    net.check(&Predicate::NoResurrectionBelowObituary { channel: 0 })
        .expect("the bump is a new life, not a resurrection of the old one");
}

#[test]
fn selective_forwarding_slows_but_does_not_stop_a_joiner() {
    // The attacker drops anti-entropy toward peers 0 and 1; a runtime
    // joiner must still converge through the redundant honest paths.
    let join_secs = |attach: bool| -> u64 {
        let members: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(8, vec![members], &discovery_cfg());
        if attach {
            net.set_byzantine(
                PeerId(4),
                Box::new(SelectiveForwarder::new(vec![PeerId(0), PeerId(1)])),
            );
        }
        net.run_for(Duration::from_secs(3));
        net.join(0, PeerId(6));
        let secs = net
            .converge_within(0, 30)
            .expect("selective forwarding must not stop convergence");
        assert_eq!(net.leaders(0).len(), 1);
        secs
    };
    let baseline = join_secs(false);
    let attacked = join_secs(true);
    assert!(
        attacked >= baseline,
        "dropping anti-entropy cannot speed convergence up: {attacked} < {baseline}"
    );
}

#[test]
fn flood_amplification_inflates_bytes_but_not_views() {
    let run = |attach: bool| -> u64 {
        let members: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(6, vec![members], &discovery_cfg());
        if attach {
            net.set_byzantine(PeerId(4), Box::new(Flooder::new(6)));
        }
        net.run_script(&[
            ScenarioOp::Wait { secs: 30 },
            ScenarioOp::Assert(Predicate::ViewAgreement { channel: 0 }),
            ScenarioOp::Assert(Predicate::ExactlyOneLeader { channel: 0 }),
        ])
        .expect("the flood is protocol-valid: views and leadership hold");
        net.discovery_wire_bytes()
    };
    let baseline = run(false);
    let attacked = run(true);
    assert!(
        attacked > baseline + baseline / 2,
        "a 6x flooder must inflate discovery bytes well past the benign run: \
         {attacked} vs {baseline}"
    );
}

#[test]
fn a_fully_eclipsed_joiner_sees_only_the_attacker() {
    // Peer 5 bootstraps through the attacker alone: the attacker answers
    // with an attacker-only world and scrubs the victim from its honest
    // traffic. With no honest seed there is no escape path.
    let members: Vec<PeerId> = (0..5).map(PeerId).collect();
    let attacker = PeerId(3);
    let victim = PeerId(5);
    let mut net = DiscoveryHarness::new(6, vec![members.clone()], &discovery_cfg());
    net.run_for(Duration::from_secs(3));
    net.set_byzantine(attacker, Box::new(Eclipser::new(victim)));
    net.join_via(0, victim, &[attacker]);
    net.run_for(Duration::from_secs(20));
    assert_eq!(
        net.view_of(victim, 0),
        vec![attacker],
        "the victim's world is the attacker"
    );
    // The honest majority is untouched: it still agrees on the pre-join
    // membership (it never learned the victim exists).
    let honest: Vec<PeerId> = members.iter().copied().filter(|p| *p != attacker).collect();
    assert!(
        net.views_agree_among(0, &honest, &members),
        "the eclipse must not leak into honest views"
    );
}

#[test]
fn one_honest_seed_defeats_the_eclipse_in_measured_time() {
    let members: Vec<PeerId> = (0..5).map(PeerId).collect();
    let attacker = PeerId(3);
    let victim = PeerId(5);
    let mut net = DiscoveryHarness::new(6, vec![members.clone()], &discovery_cfg());
    net.run_for(Duration::from_secs(3));
    net.set_byzantine(attacker, Box::new(Eclipser::new(victim)));
    // One honest bootstrap contact is the whole difference.
    net.join_via(0, victim, &[attacker, PeerId(0)]);
    let honest: Vec<PeerId> = members.iter().copied().filter(|p| *p != attacker).collect();
    let escape_secs = secs_until(&mut net, 60, |net| {
        let view = net.view_of(victim, 0);
        honest.iter().any(|h| view.contains(h))
    })
    .expect("an honest seed must break the eclipse");
    assert!(
        escape_secs <= 30,
        "escape took {escape_secs}s — the refutation path is too slow"
    );
    // Once the attacker is detected and cut off, full convergence follows.
    net.clear_byzantine(attacker);
    assert!(
        net.converge_within(0, 40).is_some(),
        "post-eclipse recovery: {:?}",
        net.divergent_views(0)
    );
    assert_eq!(net.leaders(0).len(), 1);
}

// ---------------------------------------------------------------------
// Coalitions: several compromised peers coordinating over a SideChannel,
// and an adaptive attacker whose campaign reacts to wiretapped state.
// ---------------------------------------------------------------------

#[test]
fn a_forger_suppressor_coalition_widens_the_window_but_the_refutation_still_wins() {
    // A lone forger buries the victim; paired with suppressors that scrub
    // the victim's fresher-than-buried claims from their own wires, the
    // refutation must fight through a thinner redundancy margin. The
    // guarantee under test: it still wins, within the same bump bound.
    let run = |suppressors: bool| -> (u64, Option<u64>) {
        let members: Vec<PeerId> = (0..7).map(PeerId).collect();
        let victim = PeerId(2);
        let mut net = DiscoveryHarness::new(7, vec![members], &discovery_cfg());
        net.run_for(Duration::from_secs(3));
        let inc_before = net
            .gossip(0)
            .discovery_on(ChannelId(0))
            .unwrap()
            .claim_of(victim)
            .expect("victim heartbeated")
            .incarnation;
        let side = SideChannel::new();
        net.set_byzantine(
            PeerId(4),
            Box::new(CoalitionForger::new(victim, 2, side.clone())),
        );
        if suppressors {
            net.set_byzantine(
                PeerId(5),
                Box::new(RefutationSuppressor::new(victim, side.clone())),
            );
            net.set_byzantine(
                PeerId(6),
                Box::new(RefutationSuppressor::new(victim, side.clone())),
            );
        }
        // Integrate disruption over the whole campaign (both shots land
        // inside the horizon): every 500 ms tick with divergent views is
        // disruption the coalition bought.
        let mut disrupted_ticks = 0u64;
        for _ in 0..60u64 {
            net.run_for(Duration::from_millis(500));
            if !net.views_converged(0) {
                disrupted_ticks += 1;
            }
        }
        assert!(
            disrupted_ticks > 0,
            "the coalition forgery must disrupt views"
        );
        assert!(
            net.converge_within(0, 40).is_some(),
            "views must heal: the victim refutes the coalition: {:?}",
            net.divergent_views(0)
        );
        let inc_after = net
            .gossip(0)
            .discovery_on(ChannelId(0))
            .unwrap()
            .claim_of(victim)
            .expect("victim re-entered the views")
            .incarnation;
        assert!(
            inc_after > inc_before,
            "the refutation is an incarnation bump: {inc_before} -> {inc_after}"
        );
        assert_eq!(net.leaders(0).len(), 1);
        net.check(&Predicate::NoResurrectionBelowObituary { channel: 0 })
            .expect("the bump is a new life, not a resurrection");
        (disrupted_ticks, side.read("forged-incarnation"))
    };
    // At this deployment (7 peers, 2 suppressors) the refutation's
    // redundancy swamps the suppression: both runs must disrupt, both
    // must heal fast. How the window *grows* with the suppressor count is
    // the tolerance sweep's job (`fabric_experiments::tolerance`), where
    // f increases until the bound falls — a single-trajectory comparison
    // here would measure simulation noise, not the attack.
    let (solo_ticks, _) = run(false);
    let (coalition_ticks, signal) = run(true);
    assert!(
        signal.is_some(),
        "the forger must coordinate through the side channel"
    );
    assert!(
        solo_ticks <= 40 && coalition_ticks <= 40,
        "the coalition must still lose well inside the horizon: \
         solo {solo_ticks}, coalition {coalition_ticks} disrupted ticks of 60"
    );
}

#[test]
fn an_adaptive_leader_hunter_causes_churn_but_leadership_recovers_to_one() {
    // Dynamic election so leadership is observable on the wire: the
    // hunter wiretaps LeaderHeartbeats, forges the current leader's
    // obituary at its freshest incarnation, and re-targets whatever new
    // state it observes (a successor standing up, a victim's bump).
    let mut cfg = discovery_cfg();
    cfg.election.dynamic = true;
    cfg.election.heartbeat_interval = Duration::from_secs(1);
    cfg.election.leader_timeout = Duration::from_secs(4);
    let members: Vec<PeerId> = (0..6).map(PeerId).collect();
    let mut net = DiscoveryHarness::new(6, vec![members], &cfg);
    net.run_for(Duration::from_secs(5));
    assert_eq!(
        net.leaders(0),
        vec![PeerId(0)],
        "warmup elects the lowest id"
    );
    let inc_before = net
        .gossip(1)
        .discovery_on(ChannelId(0))
        .unwrap()
        .claim_of(PeerId(0))
        .expect("leader heartbeated")
        .incarnation;

    net.set_byzantine(PeerId(4), Box::new(Adaptively(LeaderHunter::new(2))));
    let mut disrupted = false;
    for _ in 0..80u64 {
        net.run_for(Duration::from_millis(500));
        if !net.views_converged(0) || net.leaders(0).len() != 1 {
            disrupted = true;
        }
    }
    assert!(
        disrupted,
        "the hunter must observe a leader and actually depose it"
    );
    // Shots exhausted: the campaign is over, the network settles.
    assert!(
        net.converge_within(0, 40).is_some(),
        "post-campaign views: {:?}",
        net.divergent_views(0)
    );
    assert_eq!(
        net.leaders(0).len(),
        1,
        "exactly one leader after the hunt: {:?}",
        net.leaders(0)
    );
    net.check(&Predicate::NoResurrectionBelowObituary { channel: 0 })
        .expect("every deposed leader re-entered by bumping, not resurrecting");
    let inc_after = net
        .gossip(1)
        .discovery_on(ChannelId(0))
        .unwrap()
        .claim_of(PeerId(0))
        .expect("the hunted leader re-entered the views")
        .incarnation;
    assert!(
        inc_after > inc_before,
        "the hunted leader refuted by bumping: {inc_before} -> {inc_after}"
    );
}

// ---------------------------------------------------------------------
// Dissemination-layer attackers: the push/pull block engines under fire.
// ---------------------------------------------------------------------

#[test]
fn a_withholder_stalls_but_cannot_stop_block_catch_up() {
    // The attacker advertises blocks honestly but never serves a payload;
    // a late joiner whose fetches land on it must rotate to honest
    // advertisers. Completeness still reaches 1.0, measurably slower.
    let catchup_secs = |attach: bool| -> u64 {
        let mut cfg = discovery_cfg();
        cfg.recovery.interval = Duration::from_secs(2);
        cfg.recovery.state_info_interval = Duration::from_secs(1);
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(5, vec![members], &cfg);
        if attach {
            net.set_byzantine(PeerId(1), Box::new(Withholder::new(Vec::new())));
        }
        let mut prev = Hash256::ZERO;
        for num in 1..=5u64 {
            let block = BlockRef::new(Block::new(num, prev, vec![]).with_padding(200));
            prev = block.hash();
            net.inject(0, block);
            net.run_for(Duration::from_millis(200));
        }
        net.run_script(&[
            ScenarioOp::Wait { secs: 10 },
            ScenarioOp::Assert(Predicate::GapFreeCatchup { channel: 0 }),
        ])
        .expect("sitting members complete through honest redundancy");
        net.join(0, PeerId(4));
        let secs = secs_until(&mut net, 60, |net| {
            net.gossip(4).height_on(ChannelId(0)) > 5
        })
        .expect("withholding must not stop the joiner's catch-up");
        net.run_script(&[ScenarioOp::Assert(Predicate::GapFreeCatchup { channel: 0 })])
            .expect("completeness reaches 1.0 despite the withholder");
        secs
    };
    let baseline = catchup_secs(false);
    let attacked = catchup_secs(true);
    assert!(
        attacked >= baseline,
        "withholding payloads cannot speed catch-up: {attacked} < {baseline}"
    );
}

#[test]
fn an_equivocators_conflicting_payloads_are_hash_rejected_and_completeness_holds() {
    // The attacker serves doctored payloads (original orderer-signed
    // header, tampered transactions) to even-id peers and genuine ones to
    // odd ids. Every doctored copy must fail `data_intact()` at the
    // receiver; the store must never hold one; completeness must still
    // reach 1.0 through honest redundancy.
    let members: Vec<PeerId> = (0..4).map(PeerId).collect();
    let mut cfg = discovery_cfg();
    cfg.recovery.interval = Duration::from_secs(2);
    cfg.recovery.state_info_interval = Duration::from_secs(1);
    let mut net = DiscoveryHarness::new(5, vec![members], &cfg);
    net.set_byzantine(PeerId(1), Box::new(Equivocator));
    let mut prev = Hash256::ZERO;
    for num in 1..=5u64 {
        let block = BlockRef::new(Block::new(num, prev, vec![]).with_padding(200));
        prev = block.hash();
        net.inject(0, block);
        net.run_for(Duration::from_millis(200));
    }
    net.run_script(&[
        ScenarioOp::Wait { secs: 10 },
        ScenarioOp::Assert(Predicate::GapFreeCatchup { channel: 0 }),
        ScenarioOp::Join {
            channel: 0,
            peer: PeerId(4),
        },
        ScenarioOp::Wait { secs: 30 },
        ScenarioOp::Assert(Predicate::GapFreeCatchup { channel: 0 }),
        ScenarioOp::Assert(Predicate::ViewAgreement { channel: 0 }),
    ])
    .expect("equivocation must not break completeness");
    assert_eq!(net.head(0), 5);

    // The rejections are visible and the stores are clean: every held or
    // delivered block carries an intact payload.
    let mut rejected = 0;
    for i in 0..5usize {
        if let Some(stats) = net.gossip(i).stats_on(ChannelId(0)) {
            rejected += stats.invalid_payloads;
        }
        for n in 1..=5u64 {
            if let Some(block) = net.gossip(i).store().get(n) {
                assert!(
                    block.data_intact(),
                    "peer {i} stored a tampered payload for block {n}"
                );
            }
        }
        assert!(
            net.effects(i).delivered.iter().all(|b| b.data_intact()),
            "peer {i} delivered a tampered payload"
        );
    }
    assert!(
        rejected > 0,
        "the doctored payloads must be rejected by hash verification somewhere"
    );
}

// ---------------------------------------------------------------------
// Anchor-peer entry composed with the eclipse surface: the joiner starts
// with a single anchor instead of a roster.
// ---------------------------------------------------------------------

#[test]
fn an_anchored_joiner_whose_anchor_is_the_attacker_is_eclipsed() {
    // The anchor entry narrows the bootstrap surface to one peer — when
    // that one peer is the attacker, the eclipse is total (the honest
    // majority never learns the victim exists).
    let members: Vec<PeerId> = (0..5).map(PeerId).collect();
    let attacker = PeerId(3);
    let victim = PeerId(5);
    let mut net = DiscoveryHarness::new(6, vec![members.clone()], &discovery_cfg());
    net.run_for(Duration::from_secs(3));
    net.set_byzantine(attacker, Box::new(Eclipser::new(victim)));
    net.join_anchored(0, victim, attacker);
    net.run_for(Duration::from_secs(20));
    assert_eq!(
        net.view_of(victim, 0),
        vec![attacker],
        "an attacker anchor owns the victim's world"
    );
    let honest: Vec<PeerId> = members.iter().copied().filter(|p| *p != attacker).collect();
    assert!(
        net.views_agree_among(0, &honest, &members),
        "the eclipse must not leak into honest views"
    );
}

#[test]
fn one_honest_anchor_defeats_the_eclipse() {
    // The flip side: the joiner still knows only ONE peer — but it is
    // honest, and discovery push-pull widens the single-anchor roster to
    // the full membership despite the Eclipser scrubbing the victim from
    // the attacker's traffic.
    let members: Vec<PeerId> = (0..5).map(PeerId).collect();
    let attacker = PeerId(3);
    let victim = PeerId(5);
    let mut net = DiscoveryHarness::new(6, vec![members.clone()], &discovery_cfg());
    net.run_for(Duration::from_secs(3));
    net.set_byzantine(attacker, Box::new(Eclipser::new(victim)));
    net.join_anchored(0, victim, PeerId(0));
    let honest: Vec<PeerId> = members.iter().copied().filter(|p| *p != attacker).collect();
    let escape_secs = secs_until(&mut net, 60, |net| {
        let view = net.view_of(victim, 0);
        honest.iter().all(|h| view.contains(h))
    })
    .expect("one honest anchor must widen to the full honest membership");
    assert!(
        escape_secs <= 30,
        "anchored bootstrap took {escape_secs}s to learn the honest world"
    );
    assert!(
        !net.gossip(victim.index()).is_leader_on(ChannelId(0)),
        "an anchored joiner must not grab leadership while bootstrapping"
    );
    // With the attacker cut off, the widened roster converges fully.
    net.clear_byzantine(attacker);
    assert!(
        net.converge_within(0, 40).is_some(),
        "post-eclipse recovery: {:?}",
        net.divergent_views(0)
    );
    assert_eq!(net.leaders(0).len(), 1);
}

// ---------------------------------------------------------------------
// Snapshot-equivalence under faults: the ledger-level proptest
// (fabric-ledger/tests/snapshot_equivalence.rs) pins the contract on a
// quiet network; here the same contract must survive loss and
// partitions injected through the scenario DSL.
// ---------------------------------------------------------------------

/// [`discovery_cfg`] with snapshot bootstrap on and recovery timers
/// tightened (the catch-up happens within the scripted run).
fn snapshot_cfg(every: u64) -> GossipConfig {
    let mut cfg = discovery_cfg();
    cfg.recovery.interval = Duration::from_secs(2);
    cfg.recovery.state_info_interval = Duration::from_secs(1);
    cfg.with_snapshots(every)
}

fn endorsed_write(
    msp: &fabric_types::msp::Msp,
    led: &fabric_ledger::ledger::Ledger,
    id: u64,
    key: &str,
    value: u64,
) -> fabric_types::transaction::Transaction {
    use fabric_ledger::state::StateReader;
    let rwset = fabric_types::rwset::RwSet::builder()
        .read(key, led.state().get_version(&key.into()))
        .write_u64(key, value)
        .build();
    let mut tx = fabric_types::transaction::Transaction::new(
        fabric_types::ids::TxId(id),
        "increment",
        fabric_types::ids::ClientId(0),
        rwset,
    );
    tx.endorse(msp, PeerId(0));
    tx
}

proptest! {
    /// A chain streamed under message loss and a mid-stream partition,
    /// then a late joiner that bootstraps from a published snapshot: the
    /// ledger it reconstructs (snapshot + delivered tail) must be
    /// byte-identical in state hash to the genesis-replay ledger, while
    /// never having seen the absorbed prefix.
    #[test]
    fn snapshot_bootstrap_is_state_identical_under_loss_and_partitions(
        height in 8u64..22,
        every in 2u64..7,
        loss_milli in 50u32..250,
        cut in 1usize..3,
    ) {
        use fabric_ledger::ledger::Ledger;
        use fabric_types::msp::Msp;
        use fabric_types::transaction::EndorsementPolicy;
        use std::sync::Arc;

        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let joiner = PeerId(4);
        let mut net = DiscoveryHarness::new(5, vec![members.clone()], &snapshot_cfg(every));
        let msp = Arc::new(Msp::single_org(3));
        let mut genesis =
            Ledger::new(msp.clone(), EndorsementPolicy::AnyMember).with_checkpoints(every);

        // Stream the chain lossy, cutting `cut` sitting peers off for the
        // middle third of it.
        net.run_script(&[ScenarioOp::SetLoss { loss_milli }])
            .expect("no asserts");
        let mut published = 0u64;
        for n in 1..=height {
            if n == height / 3 {
                let keep = members[..members.len() - cut].to_vec();
                let lost = members[members.len() - cut..].to_vec();
                net.run_script(&[ScenarioOp::Partition { groups: vec![keep, lost] }])
                    .expect("no asserts");
            }
            if n == 2 * height / 3 {
                // Heal the links but keep the catch-up itself lossy.
                net.run_script(&[
                    ScenarioOp::Heal,
                    ScenarioOp::SetLoss { loss_milli: loss_milli / 2 },
                ])
                .expect("no asserts");
            }
            let tx = endorsed_write(&msp, &genesis, n, "k", n);
            let block = BlockRef::new(Block::new(n, genesis.latest_hash(), vec![tx]));
            genesis.commit(block.clone()).expect("endorsed write commits");
            net.inject(0, block);
            net.run_for(Duration::from_millis(300));
            if let Some(snap) = genesis.snapshot() {
                if snap.checkpoint.height > published {
                    published = snap.checkpoint.height;
                    for m in &members {
                        net.publish_snapshot(0, *m, snap.clone());
                    }
                }
            }
        }
        prop_assert!(published >= every, "the stream must emit a checkpoint");

        // The joiner enters under residual loss and catches up.
        net.join(0, joiner);
        let caught = secs_until(&mut net, 120, |net| {
            net.gossip(joiner.index()).height_on(ChannelId(0)) > height
        });
        prop_assert!(caught.is_some(), "catch-up stalled under residual loss");

        // It bootstrapped from a snapshot, not genesis replay...
        let fx = net.effects(joiner.index());
        let (_, installed) = fx
            .installed
            .last()
            .expect("the lagging joiner must have installed a snapshot");
        let floor = installed.checkpoint.height;
        prop_assert!(floor >= every, "installed snapshot below the first boundary");
        // ...and reconstructs a ledger byte-identical to genesis replay
        // from the snapshot plus only the delivered tail.
        let mut bootstrapped = Ledger::from_snapshot(
            msp.clone(),
            EndorsementPolicy::AnyMember,
            installed.clone(),
            Some(every),
        )
        .expect("a published snapshot verifies");
        let mut tail: Vec<BlockRef> = fx
            .delivered
            .iter()
            .filter(|b| b.number() > floor)
            .cloned()
            .collect();
        tail.sort_by_key(|b| b.number());
        tail.dedup_by_key(|b| b.number());
        for block in tail {
            bootstrapped.commit(block).expect("tail replay commits");
        }
        prop_assert_eq!(bootstrapped.height(), genesis.height());
        prop_assert_eq!(bootstrapped.latest_hash(), genesis.latest_hash());
        prop_assert_eq!(
            bootstrapped.state().state_hash(),
            genesis.state().state_hash(),
            "loss/partitions must not break snapshot equivalence"
        );
        prop_assert!(
            fx.delivered.iter().all(|b| b.number() > floor),
            "the absorbed prefix must never have been delivered"
        );
    }
}

/// Chunked transfer under fire: the joiner bootstraps through a lossy
/// link and a mid-transfer partition that cuts it off entirely. The
/// transfer must survive by resuming — re-requesting the missing chunk
/// suffix after the timeout instead of restarting or storming — and still
/// install exactly one verified snapshot.
#[test]
fn chunked_transfer_resumes_under_loss_and_a_mid_transfer_partition() {
    use fabric_ledger::ledger::Ledger;
    use fabric_types::msp::Msp;
    use fabric_types::transaction::EndorsementPolicy;
    use std::sync::Arc;

    let mut cfg = snapshot_cfg(4);
    cfg = cfg.with_chunked_snapshots(4, 256);
    cfg.snapshot.request_timeout = Duration::from_secs(4);

    let members: Vec<PeerId> = (0..4).map(PeerId).collect();
    let joiner = PeerId(4);
    let mut net = DiscoveryHarness::new(5, vec![members.clone()], &cfg);
    let msp = Arc::new(Msp::single_org(3));
    let mut genesis = Ledger::new(msp.clone(), EndorsementPolicy::AnyMember).with_checkpoints(4);

    // Stream 16 blocks cleanly, one unique key per block so the snapshot
    // spans several chunks at a 256-byte budget, publishing each fresh
    // checkpoint export to every sitting member.
    let height = 16u64;
    for n in 1..=height {
        let tx = endorsed_write(&msp, &genesis, n, &format!("k{n}"), n);
        let block = BlockRef::new(Block::new(n, genesis.latest_hash(), vec![tx]));
        genesis
            .commit(block.clone())
            .expect("endorsed write commits");
        net.inject(0, block);
        net.run_for(Duration::from_millis(300));
        if let Some(snap) = genesis.snapshot() {
            for m in &members {
                net.publish_snapshot(0, *m, snap.clone());
            }
        }
    }

    // The joiner enters on a 30%-lossy link; a few seconds in, a
    // partition cuts it off from every member mid-transfer.
    net.run_script(&[ScenarioOp::SetLoss { loss_milli: 300 }])
        .expect("no asserts");
    net.join(0, joiner);
    net.run_for(Duration::from_secs(4));
    net.run_script(&[ScenarioOp::Partition {
        groups: vec![members.clone(), vec![joiner]],
    }])
    .expect("no asserts");
    net.run_for(Duration::from_secs(12));
    net.run_script(&[ScenarioOp::Heal, ScenarioOp::SetLoss { loss_milli: 100 }])
        .expect("no asserts");

    let caught = secs_until(&mut net, 120, |net| {
        net.gossip(joiner.index()).height_on(ChannelId(0)) > height
    });
    assert!(
        caught.is_some(),
        "chunked catch-up stalled after the partition healed"
    );

    let stats = net
        .gossip(joiner.index())
        .stats_on(ChannelId(0))
        .expect("joiner is on the channel");
    assert_eq!(
        stats.snapshots_installed, 1,
        "loss and partition must not double-install"
    );
    assert!(
        stats.snapshot_chunks_received > 1,
        "the snapshot must have streamed as chunks, got {}",
        stats.snapshot_chunks_received
    );
    assert!(
        stats.snapshot_resumes >= 1,
        "a transfer interrupted by loss and a partition must resume, got {}",
        stats.snapshot_resumes
    );
    assert!(
        stats.snapshot_requests < 2 + 2 * stats.snapshot_resumes,
        "every request past the first must be a timed-out resume, not a storm: \
         {} requests for {} resumes",
        stats.snapshot_requests,
        stats.snapshot_resumes
    );

    // The install is the verified one: floor at a published boundary and
    // nothing below it was ever delivered as a block.
    let fx = net.effects(joiner.index());
    let (_, installed) = fx.installed.last().expect("one installed snapshot");
    let floor = installed.checkpoint.height;
    assert!(floor >= 4, "installed snapshot below the first boundary");
    assert!(
        fx.delivered.iter().all(|b| b.number() > floor),
        "the absorbed prefix must never have been delivered"
    );
}

/// Byzantine bootstrap servers composed with snapshot entry: every
/// sitting member serves doctored snapshot state (the checkpoint hash no
/// longer covers it), so the joiner's verification must reject each
/// install and the transfer must resume — until one server is cleaned and
/// the honest payload lands. The reconstructed ledger must still be
/// byte-identical in state hash to genesis replay.
#[test]
fn a_poisoned_bootstrap_is_rejected_and_the_joiner_resumes_to_an_honest_server() {
    use fabric_ledger::ledger::Ledger;
    use fabric_types::msp::Msp;
    use fabric_types::transaction::EndorsementPolicy;
    use std::sync::Arc;

    let mut cfg = snapshot_cfg(4);
    cfg.snapshot.request_timeout = Duration::from_secs(4);
    let members: Vec<PeerId> = (0..4).map(PeerId).collect();
    let joiner = PeerId(4);
    let mut net = DiscoveryHarness::new(5, vec![members.clone()], &cfg);
    let msp = Arc::new(Msp::single_org(3));
    let mut genesis = Ledger::new(msp.clone(), EndorsementPolicy::AnyMember).with_checkpoints(4);

    let height = 12u64;
    for n in 1..=height {
        let tx = endorsed_write(&msp, &genesis, n, &format!("k{n}"), n);
        let block = BlockRef::new(Block::new(n, genesis.latest_hash(), vec![tx]));
        genesis
            .commit(block.clone())
            .expect("endorsed write commits");
        net.inject(0, block);
        net.run_for(Duration::from_millis(300));
        if let Some(snap) = genesis.snapshot() {
            for m in &members {
                net.publish_snapshot(0, *m, snap.clone());
            }
        }
    }

    // Every server is malicious when the joiner arrives: the first
    // transfer is guaranteed to hit a poisoner and be rejected by
    // `Snapshot::verify()` at install time.
    for m in &members {
        net.set_byzantine(*m, Box::new(SnapshotPoisoner));
    }
    net.join(0, joiner);
    net.run_for(Duration::from_secs(5));
    // The fleet is cleaned after the first poisoned payload was rejected:
    // the timed-out transfer must resume — and this time land honestly.
    for m in &members {
        net.clear_byzantine(*m);
    }

    let caught = secs_until(&mut net, 120, |net| {
        net.gossip(joiner.index()).height_on(ChannelId(0)) > height
    });
    assert!(caught.is_some(), "catch-up stalled on poisoned servers");

    let stats = net
        .gossip(joiner.index())
        .stats_on(ChannelId(0))
        .expect("joiner is on the channel");
    assert_eq!(
        stats.snapshots_installed, 1,
        "exactly one verified install; every poisoned payload rejected"
    );
    assert!(
        stats.snapshot_resumes >= 1,
        "a rejected install must time out and resume elsewhere, got {}",
        stats.snapshot_resumes
    );
    assert!(
        stats.snapshot_requests > 1,
        "the poisoned first attempt must cost an extra request"
    );

    // The installed snapshot is the honest one: reconstructing from it
    // plus the delivered tail is byte-identical to genesis replay.
    let fx = net.effects(joiner.index());
    let (_, installed) = fx.installed.last().expect("one installed snapshot");
    let floor = installed.checkpoint.height;
    assert!(floor >= 4, "installed snapshot below the first boundary");
    let mut bootstrapped = Ledger::from_snapshot(
        msp.clone(),
        EndorsementPolicy::AnyMember,
        installed.clone(),
        Some(4),
    )
    .expect("the honest snapshot verifies");
    let mut tail: Vec<BlockRef> = fx
        .delivered
        .iter()
        .filter(|b| b.number() > floor)
        .cloned()
        .collect();
    tail.sort_by_key(|b| b.number());
    tail.dedup_by_key(|b| b.number());
    for block in tail {
        bootstrapped.commit(block).expect("tail replay commits");
    }
    assert_eq!(bootstrapped.height(), genesis.height());
    assert_eq!(
        bootstrapped.state().state_hash(),
        genesis.state().state_hash(),
        "poisoned servers must not corrupt the reconstructed state"
    );
}

// ---------------------------------------------------------------------
// Seeded-random scenarios: loss + partitions + crashes + a random
// attacker, for both wire formats. Shrinking reduces a failing seed's
// script automatically (the script is a pure function of the seed).
// ---------------------------------------------------------------------

/// Runs one random scenario with the given attacker under `cfg`; the
/// script's epilogue (heal, settle, the three core invariants) is the
/// assertion.
fn run_random_adversarial(seed: u64, attacker_kind: u8, cfg: &GossipConfig) -> Result<(), String> {
    let initial: Vec<PeerId> = (0..5).map(PeerId).collect();
    let attacker = PeerId(4);
    let shape = ScenarioShape {
        deployment: 8,
        ops: 10,
        protected: vec![attacker],
        settle_secs: 40,
        ..ScenarioShape::default()
    };
    let mixed = seed.wrapping_add(env_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let script = random_scenario(mixed, &initial, &shape);
    let mut net = DiscoveryHarness::new(8, vec![initial], cfg);
    let behavior: Box<dyn Byzantine> = match attacker_kind {
        0 => Box::new(StaleReplayer::new(2)),
        1 => Box::new(ObituaryForger::new(PeerId(1), 2)),
        2 => Box::new(SelectiveForwarder::new(vec![PeerId(0), PeerId(2)])),
        _ => Box::new(Flooder::new(4)),
    };
    net.set_byzantine(attacker, behavior);
    net.run_script(&script).map_err(|e| e.to_string())
}

proptest! {
    /// Random op sequences composed with a random attacker still settle
    /// to view agreement, one leader and no resurrection under the full
    /// anti-entropy wire format.
    #[test]
    fn random_adversarial_scenarios_converge_under_full_exchange(
        seed in 0u64..1 << 32,
        attacker_kind in 0u8..4,
    ) {
        let res = run_random_adversarial(seed, attacker_kind, &discovery_cfg());
        prop_assert!(res.is_ok(), "attacker {attacker_kind}: {}", res.unwrap_err());
    }

    /// The delta wire format inherits the same adversarial robustness.
    #[test]
    fn random_adversarial_scenarios_converge_under_delta_anti_entropy(
        seed in 0u64..1 << 32,
        attacker_kind in 0u8..4,
    ) {
        let res = run_random_adversarial(seed, attacker_kind, &delta_cfg());
        prop_assert!(res.is_ok(), "attacker {attacker_kind}: {}", res.unwrap_err());
    }
}

/// Runs one random scenario against a random *coalition*: the `mask` bits
/// pick which members of the forger/suppressor/flooder trio are live, so
/// a failing case shrinks over coalition membership (toward the smallest
/// colluding set that still breaks the guarantee) as well as over the
/// script.
fn run_random_coalition(seed: u64, mask: u8, cfg: &GossipConfig) -> Result<(), String> {
    let initial: Vec<PeerId> = (0..7).map(PeerId).collect();
    let coalition = [PeerId(4), PeerId(5), PeerId(6)];
    let victim = PeerId(1);
    let shape = ScenarioShape {
        deployment: 8,
        ops: 10,
        protected: coalition.to_vec(),
        settle_secs: 40,
        ..ScenarioShape::default()
    };
    let mixed = seed.wrapping_add(env_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let script = random_scenario(mixed, &initial, &shape);
    let mut net = DiscoveryHarness::new(8, vec![initial], cfg);
    let side = SideChannel::new();
    if mask & 1 != 0 {
        net.set_byzantine(
            coalition[0],
            Box::new(CoalitionForger::new(victim, 2, side.clone())),
        );
    }
    if mask & 2 != 0 {
        net.set_byzantine(
            coalition[1],
            Box::new(RefutationSuppressor::new(victim, side.clone())),
        );
    }
    if mask & 4 != 0 {
        // A flooder screening the coalition: protocol-valid noise that
        // the forged-obituary traffic hides inside.
        net.set_byzantine(coalition[2], Box::new(Flooder::new(3)));
    }
    net.run_script(&script).map_err(|e| e.to_string())
}

proptest! {
    /// Random op sequences composed with a random coalition still settle
    /// to view agreement, one leader and no resurrection; a failure
    /// shrinks over the coalition membership mask too.
    #[test]
    fn random_coalition_scenarios_converge_and_shrink_over_membership(
        seed in 0u64..1 << 32,
        mask in 0u8..8,
    ) {
        let res = run_random_coalition(seed, mask, &discovery_cfg());
        prop_assert!(res.is_ok(), "coalition mask {mask:03b}: {}", res.unwrap_err());
    }
}
