//! Runtime channel-lifecycle invariants, driven through `MockEffects` and
//! a channel-aware lockstep router (no simulator involved).
//!
//! Three properties of the join/leave machinery:
//!
//! 1. **Catch-up** — a late joiner converges to the exact chain head with
//!    no gaps through the ordinary StateInfo + recovery machinery;
//! 2. **Leadership** — exactly one leader exists per channel after
//!    arbitrary leave sequences, under static and dynamic election alike;
//! 3. **Isolation** — blocks never leak across channels under arbitrary
//!    join/leave interleavings.
//!
//! The `ChurnNet` router models the pre-discovery embedding: an oracle
//! that calls `on_peer_joined`/`on_peer_left` on every sitting member
//! synchronously. That path is kept (it is still the
//! `DiscoveryMode::Oracle` escape hatch of the experiments). The
//! `discovery_ported` module at the bottom re-runs the same lifecycle
//! properties with the oracle removed — membership travels only through
//! the gossiped discovery protocol, driven by
//! [`fabric_gossip::testing::DiscoveryHarness`].

use desim::Time;
use fabric_gossip::config::GossipConfig;
use fabric_gossip::messages::{GossipMsg, GossipTimer};
use fabric_gossip::peer::GossipPeer;
use fabric_gossip::testing::MockEffects;
use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::ids::{ChannelId, PeerId};
use proptest::prelude::*;

/// Payload padding for channel `c`: distinct per channel so a leaked block
/// would be recognizable by size alone.
fn payload_of(c: usize) -> u32 {
    1_000 * (c as u32 + 1)
}

fn block_on(c: usize, num: u64) -> BlockRef {
    BlockRef::new(Block::new(num, Hash256::ZERO, vec![]).with_padding(payload_of(c)))
}

/// A lockstep network with runtime membership: routes every channel-tagged
/// message with zero latency until quiescence, and applies join/leave the
/// way an embedding's discovery layer would — the mover switches its own
/// instance, every sitting member is notified synchronously.
struct ChurnNet {
    peers: Vec<GossipPeer>,
    fxs: Vec<MockEffects>,
    /// Per channel: current members.
    members: Vec<Vec<PeerId>>,
    /// Per channel: blocks injected so far (the chain head).
    heads: Vec<u64>,
}

impl ChurnNet {
    /// `n` peers; peer `i` starts joined to every channel whose member
    /// list contains it.
    fn new(n: usize, memberships: Vec<Vec<PeerId>>, cfg: &GossipConfig) -> Self {
        let peers: Vec<GossipPeer> = (0..n as u32)
            .map(|i| {
                let mut peer = GossipPeer::with_channels(PeerId(i), cfg.clone());
                for (c, members) in memberships.iter().enumerate() {
                    if members.contains(&PeerId(i)) {
                        peer = peer.join_channel(ChannelId(c as u16), members.clone());
                    }
                }
                peer
            })
            .collect();
        let fxs: Vec<MockEffects> = (0..n as u64).map(|i| MockEffects::new(4_000 + i)).collect();
        let heads = vec![0; memberships.len()];
        ChurnNet {
            peers,
            fxs,
            members: memberships,
            heads,
        }
    }

    /// Routes messages until no peer has anything left to send.
    fn route(&mut self) {
        loop {
            let mut queue: Vec<(PeerId, ChannelId, PeerId, GossipMsg)> = Vec::new();
            for (i, fx) in self.fxs.iter_mut().enumerate() {
                for (ch, to, msg) in fx.take_sent_on() {
                    queue.push((PeerId(i as u32), ch, to, msg));
                }
            }
            if queue.is_empty() {
                return;
            }
            for (from, ch, to, msg) in queue {
                let idx = to.index();
                self.peers[idx].on_channel_message(&mut self.fxs[idx], ch, from, msg);
            }
        }
    }

    /// Runtime join: the joiner's roster is the membership as it stood
    /// before the join (the late-joiner rule — it never self-elects
    /// statically); sitting members learn through discovery.
    fn join(&mut self, c: usize, peer: PeerId) {
        if self.members[c].contains(&peer) {
            return;
        }
        let roster = self.members[c].clone();
        let idx = peer.index();
        self.peers[idx].join_channel_live(&mut self.fxs[idx], ChannelId(c as u16), roster);
        self.members[c].push(peer);
        for m in self.members[c].clone() {
            if m != peer {
                let i = m.index();
                self.peers[i].on_peer_joined(&mut self.fxs[i], ChannelId(c as u16), peer);
            }
        }
    }

    /// Runtime leave: the leaver drops its instance, sitting members are
    /// notified (forcing re-election when the leaver led).
    fn leave(&mut self, c: usize, peer: PeerId) {
        let Some(pos) = self.members[c].iter().position(|m| *m == peer) else {
            return;
        };
        self.members[c].remove(pos);
        self.peers[peer.index()].leave_channel(ChannelId(c as u16));
        for m in self.members[c].clone() {
            let i = m.index();
            self.peers[i].on_peer_left(&mut self.fxs[i], ChannelId(c as u16), peer);
        }
    }

    /// Injects the next block of channel `c` at its lowest current member
    /// and routes to quiescence.
    fn inject(&mut self, c: usize) {
        let Some(seed_peer) = self.members[c].iter().min().copied() else {
            return; // everyone left — nothing to disseminate to
        };
        self.heads[c] += 1;
        let b = block_on(c, self.heads[c]);
        let idx = seed_peer.index();
        self.peers[idx].on_block_from_orderer_on(&mut self.fxs[idx], ChannelId(c as u16), b);
        self.route();
    }

    /// Leaders of channel `c` among its current members.
    fn leaders(&self, c: usize) -> Vec<PeerId> {
        self.members[c]
            .iter()
            .copied()
            .filter(|m| self.peers[m.index()].is_leader_on(ChannelId(c as u16)))
            .collect()
    }
}

/// One churn step of the isolation property, decoded from a raw
/// `(kind, channel, peer)` tuple (the vendored proptest stand-in has no
/// `prop_oneof`): kind 0 = join, 1 = leave, 2 = inject.
fn apply_op(net: &mut ChurnNet, op: (u8, usize, u32)) {
    let (kind, channel, peer) = op;
    match kind {
        0 => net.join(channel, PeerId(peer)),
        1 => net.leave(channel, PeerId(peer)),
        _ => net.inject(channel),
    }
}

proptest! {
    /// A late joiner converges to the exact chain head, gap-free, through
    /// StateInfo + recovery alone.
    #[test]
    fn late_joiner_converges_to_the_exact_head_with_no_gaps(
        members in 3u32..8,
        head in 1u64..20,
    ) {
        let roster: Vec<PeerId> = (0..members).map(PeerId).collect();
        let mut net = ChurnNet::new(
            members as usize + 1,
            vec![roster],
            &GossipConfig::enhanced_f4(),
        );
        for _ in 0..head {
            net.inject(0);
        }
        let joiner = PeerId(members);
        net.join(0, joiner);
        prop_assert_eq!(net.peers[joiner.index()].height_on(ChannelId(0)), 1);

        // Drive the state-transfer machinery by hand (the lockstep router
        // does not fire timers): a member's StateInfo round advertises the
        // head, the joiner's recovery rounds then fetch consecutive runs —
        // batch_max 16 per round bounds the rounds needed.
        let teacher = PeerId(0);
        let mut rounds = 0;
        while net.peers[joiner.index()].height_on(ChannelId(0)) <= net.heads[0] {
            rounds += 1;
            prop_assert!(rounds <= 8, "catch-up must converge in bounded rounds");
            let h = net.peers[teacher.index()].height_on(ChannelId(0));
            net.peers[joiner.index()].on_channel_message(
                &mut net.fxs[joiner.index()],
                ChannelId(0),
                teacher,
                GossipMsg::StateInfo { height: h, checkpoint: None },
            );
            net.peers[joiner.index()].on_channel_timer(
                &mut net.fxs[joiner.index()],
                ChannelId(0),
                GossipTimer::RecoveryRound,
            );
            net.route();
        }

        let store = net.peers[joiner.index()]
            .store_on(ChannelId(0))
            .expect("joiner holds a store");
        prop_assert_eq!(store.height(), net.heads[0] + 1, "exact head reached");
        prop_assert_eq!(store.len() as u64, net.heads[0]);
        for num in 1..=net.heads[0] {
            prop_assert!(store.has(num), "no gap at block {}", num);
        }
        // And the joiner now receives fresh blocks first-class.
        net.inject(0);
        prop_assert!(net.peers[joiner.index()].store_on(ChannelId(0)).unwrap().has(net.heads[0]));
    }

    /// Exactly one leader per channel after arbitrary leave sequences
    /// (static election: departures promote the new lowest member
    /// synchronously).
    #[test]
    fn exactly_one_static_leader_survives_arbitrary_leaves(
        n in 3u32..10,
        leave_order in proptest::collection::vec(0u32..10, 1..9),
    ) {
        let roster: Vec<PeerId> = (0..n).map(PeerId).collect();
        let mut net = ChurnNet::new(n as usize, vec![roster], &GossipConfig::enhanced_f4());
        prop_assert_eq!(net.leaders(0), vec![PeerId(0)]);
        for raw in leave_order {
            let peer = PeerId(raw % n);
            if net.members[0].len() == 1 {
                break; // keep one peer seated so the channel stays alive
            }
            net.leave(0, peer);
            let leaders = net.leaders(0);
            prop_assert_eq!(
                leaders,
                vec![*net.members[0].iter().min().unwrap()],
                "the lowest sitting member must be the one leader"
            );
            // Dissemination still works after every departure.
            net.inject(0);
            let head = net.heads[0];
            for m in &net.members[0] {
                prop_assert!(
                    net.peers[m.index()].store_on(ChannelId(0)).unwrap().has(head),
                    "member {} missed block {} after a leave",
                    m,
                    head
                );
            }
        }
    }

    /// Exactly one leader survives arbitrary **mixed** join/leave
    /// sequences. This is the regression net for the roster-rank rule: a
    /// runtime joiner with a lower id than every sitting member ranks
    /// *last* (seniority), so a later leader departure must still promote
    /// exactly one peer — a min-over-roster rule would strand the channel
    /// with zero leaders (the joiner's own roster ranks it last) or crown
    /// a second one.
    #[test]
    fn exactly_one_static_leader_survives_arbitrary_churn(
        ops in proptest::collection::vec((0u8..2, 0usize..1, 0u32..8), 1..30),
    ) {
        let roster: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut net = ChurnNet::new(8, vec![roster], &GossipConfig::enhanced_f4());
        for op in ops {
            apply_op(&mut net, op);
            if net.members[0].is_empty() {
                continue;
            }
            let leaders = net.leaders(0);
            prop_assert!(
                leaders.len() == 1,
                "want exactly one leader, got {:?} among members {:?} after {:?}",
                leaders,
                net.members[0],
                op
            );
        }
    }

    /// Blocks never leak across channels, whatever join/leave/inject
    /// interleaving happens.
    #[test]
    fn blocks_never_leak_across_channels_under_churn(
        ops in proptest::collection::vec((0u8..3, 0usize..3, 0u32..10), 1..25),
    ) {
        let n = 10u32;
        // Three channels over overlapping thirds of the roster.
        let memberships: Vec<Vec<PeerId>> = vec![
            (0..5).map(PeerId).collect(),
            (3..8).map(PeerId).collect(),
            (5..10).map(PeerId).collect(),
        ];
        let mut net = ChurnNet::new(n as usize, memberships, &GossipConfig::enhanced_f4());
        for op in ops {
            apply_op(&mut net, op);
        }
        for c in 0..3 {
            let ch = ChannelId(c as u16);
            let expected_size = block_on(c, 1).wire_size();
            for p in 0..n {
                let peer = &net.peers[p as usize];
                match peer.store_on(ch) {
                    Some(store) => {
                        // Having an instance implies current membership.
                        prop_assert!(
                            net.members[c].contains(&PeerId(p)),
                            "peer {} holds an instance of {} it is no member of",
                            p,
                            ch
                        );
                        for num in 1..=net.heads[c] {
                            if let Some(held) = store.get(num) {
                                // A foreign block would betray itself by
                                // its per-channel payload size.
                                prop_assert_eq!(held.wire_size(), expected_size);
                            }
                        }
                        prop_assert!(
                            store.max_seen() <= net.heads[c],
                            "peer {} holds block numbers {} beyond {}'s head {}",
                            p,
                            store.max_seen(),
                            ch,
                            net.heads[c]
                        );
                    }
                    None => prop_assert!(
                        !net.members[c].contains(&PeerId(p)),
                        "member {} of {} lost its instance",
                        p,
                        ch
                    ),
                }
            }
        }
    }
}

/// The low-id-joiner scenario pinned deterministically: peer 0 joins a
/// sitting channel late (ranking last by seniority despite its id), the
/// leader leaves, and exactly one successor — the most senior sitting
/// member, not the joiner — stands up. Under a min-over-roster rule this
/// strands the channel with zero leaders: the joiner's own roster ranks
/// it last while every sitting member's min points at the joiner.
#[test]
fn low_id_late_joiner_neither_deadlocks_nor_usurps_the_succession() {
    let roster: Vec<PeerId> = (1..4).map(PeerId).collect(); // members 1, 2, 3
    let mut net = ChurnNet::new(4, vec![roster], &GossipConfig::enhanced_f4());
    assert_eq!(net.leaders(0), vec![PeerId(1)]);

    net.join(0, PeerId(0));
    assert_eq!(net.leaders(0), vec![PeerId(1)], "a join never deposes");

    net.leave(0, PeerId(1));
    assert_eq!(
        net.leaders(0),
        vec![PeerId(2)],
        "seniority promotes the sitting member, not the late joiner"
    );

    net.leave(0, PeerId(2));
    net.leave(0, PeerId(3));
    assert_eq!(
        net.leaders(0),
        vec![PeerId(0)],
        "the joiner leads once every senior member departed"
    );
}

/// The oracle-assuming lifecycle tests above, ported to the discovery
/// protocol: the same invariants must hold when nobody broadcasts
/// membership on anyone's behalf.
mod discovery_ported {
    use super::*;
    use desim::Duration;
    use fabric_gossip::testing::DiscoveryHarness;

    /// Protocol discovery with timers tightened for scripted-clock tests,
    /// and recovery tightened so ledger catch-up completes within a short
    /// settle window.
    fn cfg() -> GossipConfig {
        let mut cfg = GossipConfig::enhanced_f4().with_discovery_protocol();
        cfg.discovery.heartbeat_interval = Duration::from_secs(1);
        cfg.discovery.anti_entropy_interval = Duration::from_secs(1);
        cfg.membership.alive_timeout = Duration::from_secs(5);
        cfg.recovery.interval = Duration::from_secs(2);
        cfg.recovery.state_info_interval = Duration::from_secs(1);
        cfg
    }

    /// Port of `late_joiner_converges_to_the_exact_head_with_no_gaps`: the
    /// oracle version hand-fed StateInfo to the joiner; here the joiner
    /// announces itself through discovery and the ordinary timer-driven
    /// StateInfo + recovery machinery does the rest.
    #[test]
    fn late_joiner_converges_to_the_exact_head_without_an_oracle() {
        let members: Vec<PeerId> = (0..5).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(6, vec![members], &cfg());
        let head = 20u64;
        let mut prev = fabric_types::crypto::Hash256::ZERO;
        for num in 1..=head {
            let block = BlockRef::new(Block::new(num, prev, vec![]).with_padding(500));
            prev = block.hash();
            net.inject(0, block);
            net.run_for(Duration::from_millis(200));
        }
        net.join(0, PeerId(5));
        assert_eq!(net.gossip(5).height_on(ChannelId(0)), 1, "empty at join");

        // Bounded settle: discovery admits the joiner, StateInfo
        // advertises the head, recovery pulls 16-block batches every 2 s.
        net.run_for(Duration::from_secs(15));
        let store = net.gossip(5).store_on(ChannelId(0)).expect("store exists");
        assert_eq!(store.height(), head + 1, "exact head reached");
        for num in 1..=head {
            assert!(store.has(num), "gap at block {num}");
        }
        // And fresh blocks now reach the joiner first-class.
        let fresh = BlockRef::new(Block::new(head + 1, prev, vec![]).with_padding(500));
        net.inject(0, fresh);
        net.run_for(Duration::from_secs(2));
        assert!(net.gossip(5).store_on(ChannelId(0)).unwrap().has(head + 1));
    }

    /// Port of `exactly_one_static_leader_survives_arbitrary_leaves`: the
    /// oracle promoted a successor synchronously; under discovery each
    /// departure must be detected by expiry first, so the check runs
    /// after a settle window per leave.
    #[test]
    fn exactly_one_static_leader_survives_sequential_leaves() {
        let members: Vec<PeerId> = (0..5).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(5, vec![members], &cfg());
        for leaver in [PeerId(0), PeerId(2), PeerId(1)] {
            net.leave(0, leaver);
            net.run_for(Duration::from_secs(12));
            let leaders = net.leaders(0);
            assert_eq!(
                leaders.len(),
                1,
                "want one leader after {leaver} left, got {leaders:?} among {:?}",
                net.members(0)
            );
            assert_eq!(
                leaders[0],
                *net.members(0).iter().min().unwrap(),
                "the most senior sitting member leads"
            );
        }
    }

    /// Port of `low_id_late_joiner_neither_deadlocks_nor_usurps_the_succession`:
    /// discovery seniority ranks the late joiner by its (late) incarnation,
    /// so a lower id wins nothing — and the succession never deadlocks.
    #[test]
    fn low_id_late_joiner_neither_deadlocks_nor_usurps_under_discovery() {
        let members: Vec<PeerId> = (1..4).map(PeerId).collect(); // 1, 2, 3
        let mut net = DiscoveryHarness::new(4, vec![members], &cfg());
        assert_eq!(net.leaders(0), vec![PeerId(1)]);

        // Join strictly after deployment start: seniority is incarnation
        // first, so a later life ranks junior whatever its id. (A join at
        // the exact deployment instant would tie on incarnation and fall
        // back to id order — i.e. be an initial member in all but name.)
        net.run_for(Duration::from_secs(2));
        net.join(0, PeerId(0));
        net.run_for(Duration::from_secs(8));
        assert!(net.views_converged(0), "{:?}", net.divergent_views(0));
        assert_eq!(net.leaders(0), vec![PeerId(1)], "a join never deposes");

        net.leave(0, PeerId(1));
        net.run_for(Duration::from_secs(12));
        assert_eq!(
            net.leaders(0),
            vec![PeerId(2)],
            "seniority promotes the sitting member, not the low-id joiner"
        );

        net.leave(0, PeerId(2));
        net.run_for(Duration::from_secs(12));
        net.leave(0, PeerId(3));
        net.run_for(Duration::from_secs(12));
        assert_eq!(
            net.leaders(0),
            vec![PeerId(0)],
            "the joiner leads once every senior member departed"
        );
    }
}

/// Dynamic election under churn: after ticks-and-routing settle, exactly
/// one leader stands per channel, and a leave announcement skips the
/// leader timeout.
#[test]
fn dynamic_election_converges_to_one_leader_after_the_leader_leaves() {
    let mut cfg = GossipConfig::enhanced_f4();
    cfg.election.dynamic = true;
    let n = 6u32;
    let roster: Vec<PeerId> = (0..n).map(PeerId).collect();
    let mut net = ChurnNet::new(n as usize, vec![roster], &cfg);
    assert!(net.leaders(0).is_empty(), "dynamic mode starts leaderless");

    // A tick round at T: every member's election timer fires, claims are
    // routed (higher-id claimants step down on hearing a lower leader).
    let tick_round = |net: &mut ChurnNet, t: Time| {
        for m in net.members[0].clone() {
            let i = m.index();
            net.fxs[i].now = t;
            net.peers[i].on_channel_timer(&mut net.fxs[i], ChannelId(0), GossipTimer::ElectionTick);
        }
        net.route();
    };
    for round in 0..3 {
        tick_round(&mut net, Time::from_secs(40 + round * 5));
    }
    assert_eq!(
        net.leaders(0),
        vec![PeerId(0)],
        "lowest id wins the election"
    );

    // The leader leaves: the announcement clears the heartbeat memory, so
    // the very next tick round elects a successor without waiting out the
    // 15 s leader timeout.
    net.leave(0, PeerId(0));
    assert!(net.leaders(0).is_empty());
    for round in 0..3 {
        tick_round(&mut net, Time::from_secs(60 + round * 5));
    }
    assert_eq!(net.leaders(0), vec![PeerId(1)], "announced leave hands off");

    // And a non-leader leave changes nothing.
    net.leave(0, PeerId(4));
    tick_round(&mut net, Time::from_secs(80));
    assert_eq!(net.leaders(0), vec![PeerId(1)]);
}
