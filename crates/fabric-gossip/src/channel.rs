//! Per-channel protocol state: the shared core and the engine bundle.
//!
//! A Fabric peer joined to several channels runs one independent gossip
//! instance per channel. [`ChannelState`] is that instance: it owns the
//! [`ChannelCore`] (membership views, block store, per-channel counters)
//! and the three protocol engines — [`crate::push::PushEngine`],
//! [`crate::pull::PullEngine`] and [`crate::leadership::LeadershipEngine`] —
//! and dispatches messages and timers to them. [`crate::peer::GossipPeer`]
//! is nothing more than a multiplexer over these values.

use std::collections::BTreeMap;

use desim::{Duration, KindBytes, Message as _, Time};
use rand::RngExt;

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};

use crate::config::GossipConfig;
use crate::discovery::{DiscoveryDelta, DiscoveryEngine};
use crate::effects::Effects;
use crate::leadership::LeadershipEngine;
use crate::membership::Membership;
use crate::messages::{GossipMsg, GossipTimer};
use crate::pull::PullEngine;
use crate::push::PushEngine;
use crate::store::BlockStore;

/// Counters exposed for experiments and tests, kept **per channel**.
///
/// A peer joined to several channels owns one `PeerStats` per channel;
/// [`crate::peer::GossipPeer::total_stats`] sums them back into the
/// peer-global view (numeric counters and byte counters add up exactly;
/// `first_seen` stays per-channel because block numbers collide across
/// channels).
#[derive(Debug, Clone, Default)]
pub struct PeerStats {
    /// First content reception time per block number.
    pub first_seen: BTreeMap<u64, Time>,
    /// Content receptions for blocks already held.
    pub duplicate_blocks: u64,
    /// Push digests received.
    pub digests_received: u64,
    /// Full blocks sent (push, pull and recovery responses).
    pub blocks_sent: u64,
    /// Push digests sent.
    pub digests_sent: u64,
    /// Push content fetch requests issued.
    pub fetch_requests: u64,
    /// Pull rounds initiated.
    pub pull_rounds: u64,
    /// Recovery requests issued.
    pub recovery_requests: u64,
    /// Snapshot requests issued (snapshot bootstrap).
    pub snapshot_requests: u64,
    /// Snapshots served to other peers.
    pub snapshots_served: u64,
    /// Snapshots verified and installed locally.
    pub snapshots_installed: u64,
    /// Snapshot chunks put on the wire (chunked transfer).
    pub snapshot_chunks_sent: u64,
    /// Distinct snapshot chunks absorbed into an assembly (duplicates and
    /// foreign-checkpoint chunks excluded).
    pub snapshot_chunks_received: u64,
    /// Snapshot transfers re-requested after an in-flight timeout — the
    /// server crashed, the response was lost, or the floor was pruned.
    pub snapshot_resumes: u64,
    /// Block payloads rejected because the data hash did not match the
    /// transactions ([`fabric_types::block::Block::data_intact`]) — a
    /// tampered or equivocated payload, never honest traffic.
    pub invalid_payloads: u64,
    /// Block payloads rejected because a *different* block already occupies
    /// the same height ([`BlockStore::conflicts_with`]) — equivocation
    /// between otherwise self-consistent payloads. Honest duplicates are
    /// counted under `duplicate_blocks` instead.
    pub equivocations_rejected: u64,
    /// Bytes put on the wire by this channel instance, per message kind
    /// (the metrics tags of [`GossipMsg::kind`]), indexed by interned
    /// [`desim::KindId`] — a dense array add per send instead of the
    /// seed's string-keyed `BTreeMap` walk. Dissemination fairness is
    /// judged on this breakdown; per-channel values sum to the peer totals.
    pub bytes_sent_by_kind: KindBytes,
}

impl PeerStats {
    /// Total bytes sent across every message kind.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent_by_kind.total()
    }

    /// Bytes sent for one message kind (0 when the kind never occurred).
    pub fn bytes_of_kind(&self, kind: &str) -> u64 {
        self.bytes_sent_by_kind.get_named(kind)
    }

    /// Adds `other`'s numeric and byte counters into `self`.
    ///
    /// `first_seen` is intentionally left untouched: block numbers are only
    /// meaningful within one channel, so a cross-channel union would
    /// conflate unrelated blocks.
    pub fn absorb(&mut self, other: &PeerStats) {
        self.duplicate_blocks += other.duplicate_blocks;
        self.digests_received += other.digests_received;
        self.blocks_sent += other.blocks_sent;
        self.digests_sent += other.digests_sent;
        self.fetch_requests += other.fetch_requests;
        self.pull_rounds += other.pull_rounds;
        self.recovery_requests += other.recovery_requests;
        self.snapshot_requests += other.snapshot_requests;
        self.snapshots_served += other.snapshots_served;
        self.snapshots_installed += other.snapshots_installed;
        self.snapshot_chunks_sent += other.snapshot_chunks_sent;
        self.snapshot_chunks_received += other.snapshot_chunks_received;
        self.snapshot_resumes += other.snapshot_resumes;
        self.invalid_payloads += other.invalid_payloads;
        self.equivocations_rejected += other.equivocations_rejected;
        self.bytes_sent_by_kind.absorb(&other.bytes_sent_by_kind);
    }
}

/// State shared by every engine of one channel instance: identity,
/// configuration, membership views, the block store and the counters.
///
/// Engines receive `&mut ChannelCore` alongside their own private state, so
/// each engine file reads as pure protocol logic over an explicit, shared
/// substrate — and each is unit-testable with a bare core plus
/// [`crate::testing::MockEffects`].
#[derive(Debug)]
pub struct ChannelCore {
    /// The channel this instance serves.
    pub channel: ChannelId,
    /// The local peer.
    pub self_id: PeerId,
    /// The active configuration.
    pub cfg: GossipConfig,
    /// The organization roster as configured (self included or not, exactly
    /// as passed at join time), kept current under runtime join/leave. The
    /// static-leadership rule is re-evaluated over this list when a member
    /// departs.
    pub roster: Vec<PeerId>,
    /// Same-organization peers: the only legal targets for push and pull.
    pub membership: Membership,
    /// All channel peers (every organization): StateInfo and recovery may
    /// cross organization boundaries (§III of the paper).
    pub channel_view: Membership,
    /// Whether this peer forwards blocks (false models a free-rider).
    pub forwarding: bool,
    /// The channel's block store.
    pub store: BlockStore,
    /// The latest snapshot this peer can serve: published by the embedding
    /// when its ledger checkpoints ([`crate::peer::GossipPeer::
    /// publish_snapshot_on`]) or installed from a received
    /// [`GossipMsg::SnapshotResponse`]. `None` unless snapshot bootstrap
    /// produced one.
    pub snapshot: Option<fabric_types::snapshot::SnapshotRef>,
    /// Per-channel protocol counters.
    pub stats: PeerStats,
}

impl ChannelCore {
    /// Builds the core for `self_id` on `channel`, with the organization
    /// roster doubling as the channel-wide view until widened.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(
        channel: ChannelId,
        self_id: PeerId,
        roster: Vec<PeerId>,
        cfg: GossipConfig,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid gossip config: {e}");
        }
        let membership = Membership::new(self_id, roster.clone(), cfg.membership.alive_timeout);
        let channel_view = Membership::new(self_id, roster.clone(), cfg.membership.alive_timeout);
        ChannelCore {
            channel,
            self_id,
            cfg,
            roster,
            membership,
            channel_view,
            forwarding: true,
            store: BlockStore::new(),
            snapshot: None,
            stats: PeerStats::default(),
        }
    }

    /// Sends `msg` to `to` on this core's channel, recording the byte cost
    /// in the per-kind breakdown. Every engine send goes through here so
    /// the fairness accounting can never miss a message.
    pub fn send(&mut self, fx: &mut dyn Effects, to: PeerId, msg: GossipMsg) {
        self.stats
            .bytes_sent_by_kind
            .add(msg.kind_id(), msg.wire_size() as u64);
        fx.send(self.channel, to, msg);
    }

    /// Arms `timer` on this core's channel.
    pub fn schedule(&mut self, fx: &mut dyn Effects, after: Duration, timer: GossipTimer) {
        fx.schedule(after, self.channel, timer);
    }

    /// Stores new content, fires the reception hook and delivers any newly
    /// contiguous run. Returns whether the content was new. Common to every
    /// arrival path (push, pull, recovery).
    ///
    /// Hash verification gates the store: a payload whose data hash does
    /// not cover its transactions is forged or corrupted (a real peer
    /// verifies the orderer's signature over the header; here the header
    /// is the trusted part), and a self-consistent payload conflicting
    /// with the block already held at its height is equivocation. Both are
    /// rejected and counted — honest traffic never trips either check.
    pub fn accept_content(&mut self, fx: &mut dyn Effects, block: &BlockRef) -> bool {
        if !block.data_intact() {
            self.stats.invalid_payloads += 1;
            return false;
        }
        if self.store.conflicts_with(block) {
            self.stats.equivocations_rejected += 1;
            return false;
        }
        match self.store.insert(block.clone()) {
            None => {
                self.stats.duplicate_blocks += 1;
                false
            }
            Some(deliverable) => {
                let num = block.number();
                self.stats.first_seen.insert(num, fx.now());
                fx.block_received(self.channel, num);
                for b in deliverable {
                    fx.deliver(self.channel, b);
                }
                true
            }
        }
    }
}

/// Static-leadership rule shared by every channel: the lowest-id *member*
/// of the roster leads. See [`crate::peer::GossipPeer::new`] for the exact
/// semantics (a peer excluded from its roster never self-elects).
pub(crate) fn statically_leads(id: PeerId, roster: &[PeerId]) -> bool {
    // A roster containing `id` has min <= id, so `id == lowest` alone
    // encodes both "member" and "lowest member"; a roster excluding
    // `id` either has a smaller minimum (not lowest) or only larger
    // entries (id != lowest) — never a static leader.
    match roster.iter().copied().min() {
        None => true, // alone in the organization
        Some(lowest) => id == lowest,
    }
}

/// One channel's complete gossip instance: core + engines.
#[derive(Debug)]
pub struct ChannelState {
    core: ChannelCore,
    push: PushEngine,
    pull: PullEngine,
    leadership: LeadershipEngine,
    discovery: DiscoveryEngine,
}

impl ChannelState {
    /// Builds the instance. `statically_leads` seeds static leadership (it
    /// is ignored under dynamic election, which starts leaderless).
    pub fn new(core: ChannelCore, statically_leads: bool) -> Self {
        let is_leader = !core.cfg.election.dynamic && statically_leads;
        ChannelState {
            core,
            push: PushEngine::default(),
            pull: PullEngine::default(),
            leadership: LeadershipEngine::new(is_leader),
            discovery: DiscoveryEngine::default(),
        }
    }

    /// The discovery engine's state (claims, obituaries, incarnation) —
    /// read-only, for tests and embeddings that inspect convergence.
    pub fn discovery(&self) -> &DiscoveryEngine {
        &self.discovery
    }

    /// The shared core (membership views, store, counters).
    pub fn core(&self) -> &ChannelCore {
        &self.core
    }

    /// Mutable access to the shared core (free-rider toggling, view
    /// widening — the multiplexer's builder paths).
    pub fn core_mut(&mut self) -> &mut ChannelCore {
        &mut self.core
    }

    /// Whether this channel instance currently acts as organization leader.
    pub fn is_leader(&self) -> bool {
        self.leadership.is_leader()
    }

    /// Arms the periodic timers of this channel instance. Periods get a
    /// uniformly random initial phase so rounds de-synchronize across
    /// peers, as in a real deployment.
    pub fn init(&mut self, fx: &mut dyn Effects) {
        if let Some(pull) = &self.core.cfg.pull {
            let phase = random_phase(fx, pull.tpull);
            self.core.schedule(fx, phase, GossipTimer::PullRound);
        }
        let recovery_phase = random_phase(fx, self.core.cfg.recovery.interval);
        self.core
            .schedule(fx, recovery_phase, GossipTimer::RecoveryRound);
        let si_phase = random_phase(fx, self.core.cfg.recovery.state_info_interval);
        self.core
            .schedule(fx, si_phase, GossipTimer::StateInfoRound);
        if self.core.cfg.discovery.protocol {
            // Protocol discovery subsumes the legacy alive traffic: its
            // heartbeats both announce this peer (a runtime joiner's join
            // propagates through them, not through an oracle) and keep
            // liveness fresh.
            self.discovery.init(&mut self.core, fx);
        } else {
            let alive_phase = random_phase(fx, self.core.cfg.membership.alive_interval);
            self.core.schedule(fx, alive_phase, GossipTimer::AliveRound);
        }
        if self.core.cfg.election.dynamic {
            let tick = random_phase(fx, self.core.cfg.election.heartbeat_interval);
            self.core.schedule(fx, tick, GossipTimer::ElectionTick);
        }
    }

    /// Models a process crash: volatile state — leadership, push buffers,
    /// fetches in flight, pull bookkeeping, membership freshness — is lost.
    /// The block store survives (blocks are persisted through the ledger).
    pub fn on_crash(&mut self) {
        self.push.clear_volatile();
        self.pull.clear_volatile();
        self.leadership.clear_volatile();
        self.discovery.clear_volatile();
    }

    /// Entry point for a block delivered by the ordering service (the
    /// leader's path, or any peer an orderer chooses to seed).
    pub fn on_block_from_orderer(&mut self, fx: &mut dyn Effects, block: BlockRef) {
        self.push.on_block_from_orderer(&mut self.core, fx, block);
    }

    /// Entry point for every gossip message on this channel.
    pub fn on_message(&mut self, fx: &mut dyn Effects, from: PeerId, msg: GossipMsg) {
        let now = fx.now();
        self.core.membership.mark_alive(from, now);
        self.core.channel_view.mark_alive(from, now);
        match msg {
            GossipMsg::BlockPush { block, counter } => {
                self.push
                    .on_block_push(&mut self.core, fx, from, block, counter)
            }
            GossipMsg::PushDigest { block_num, counter } => {
                self.push
                    .on_push_digest(&mut self.core, fx, from, block_num, counter)
            }
            GossipMsg::PushRequest { block_num, counter } => {
                self.push
                    .on_push_request(&mut self.core, fx, from, block_num, counter)
            }
            GossipMsg::PullHello { nonce } => self.pull.on_hello(&mut self.core, fx, from, nonce),
            GossipMsg::PullDigestResponse { nonce, block_nums } => {
                self.pull
                    .on_digest_response(&mut self.core, from, nonce, block_nums)
            }
            GossipMsg::PullRequest { nonce, block_nums } => {
                self.pull
                    .on_request(&mut self.core, fx, from, nonce, block_nums)
            }
            GossipMsg::PullResponse { nonce: _, blocks } => {
                self.pull.on_response(&mut self.core, fx, blocks)
            }
            GossipMsg::StateInfo { height, checkpoint } => {
                self.leadership.on_state_info(from, height, checkpoint)
            }
            GossipMsg::RecoveryRequest { from: lo, to } => {
                self.leadership
                    .on_recovery_request(&mut self.core, fx, from, lo, to)
            }
            GossipMsg::RecoveryResponse { blocks } => {
                for block in blocks {
                    self.core.accept_content(fx, &block);
                }
            }
            GossipMsg::SnapshotRequest { height, from_chunk } => self
                .leadership
                .on_snapshot_request(&mut self.core, fx, from, height, from_chunk),
            GossipMsg::SnapshotResponse { snapshot } => {
                self.leadership
                    .on_snapshot_response(&mut self.core, fx, snapshot)
            }
            GossipMsg::SnapshotChunk { chunk } => {
                self.leadership.on_snapshot_chunk(&mut self.core, fx, chunk)
            }
            GossipMsg::Alive => {} // mark_alive above is the whole effect
            GossipMsg::AliveMsg(claim) => {
                let delta = self.discovery.on_alive(&mut self.core, fx, claim);
                self.apply_discovery(fx, delta);
            }
            GossipMsg::MembershipRequest { entries, dead } => {
                let delta =
                    self.discovery
                        .on_membership_request(&mut self.core, fx, from, entries, dead);
                self.apply_discovery(fx, delta);
            }
            GossipMsg::MembershipResponse { entries, dead } => {
                let delta =
                    self.discovery
                        .on_membership_response(&mut self.core, fx, entries, dead);
                self.apply_discovery(fx, delta);
            }
            GossipMsg::MembershipDigest { entries, dead } => {
                let delta =
                    self.discovery
                        .on_membership_digest(&mut self.core, fx, from, entries, dead);
                self.apply_discovery(fx, delta);
            }
            GossipMsg::MembershipDelta { entries, dead } => {
                // A delta is merged exactly like a full-view response: it
                // carries only claims the digest proved this peer lacks.
                let delta =
                    self.discovery
                        .on_membership_response(&mut self.core, fx, entries, dead);
                self.apply_discovery(fx, delta);
            }
            GossipMsg::LeaderHeartbeat { leader } => {
                self.leadership
                    .on_leader_heartbeat(&mut self.core, fx, leader, now)
            }
        }
    }

    /// Entry point for every timer armed through [`Effects::schedule`] on
    /// this channel.
    pub fn on_timer(&mut self, fx: &mut dyn Effects, timer: GossipTimer) {
        match timer {
            GossipTimer::PushFlush => self.push.on_flush(&mut self.core, fx),
            GossipTimer::PullRound => self.pull.on_round(&mut self.core, fx),
            GossipTimer::PullDigestWait { nonce } => {
                self.pull.on_digest_wait(&mut self.core, fx, nonce)
            }
            GossipTimer::RecoveryRound => self.leadership.on_recovery_round(&mut self.core, fx),
            GossipTimer::StateInfoRound => self.leadership.on_state_info_round(&mut self.core, fx),
            GossipTimer::AliveRound => self.on_alive_round(fx),
            GossipTimer::DiscoveryRound => {
                let delta = self.discovery.on_round(&mut self.core, fx);
                self.apply_discovery(fx, delta);
            }
            GossipTimer::AntiEntropyRound => {
                self.discovery.on_anti_entropy_round(&mut self.core, fx)
            }
            GossipTimer::ElectionTick => self.leadership.on_election_tick(&mut self.core, fx),
            GossipTimer::FetchRetry { block_num, attempt } => {
                self.push
                    .on_fetch_retry(&mut self.core, fx, block_num, attempt)
            }
        }
    }

    /// A peer joined this channel at runtime: discovery adds it to both the
    /// organization and the channel-wide view, immediately sampleable and
    /// believed alive (the join announcement is first contact).
    ///
    /// Static leadership is **not** re-evaluated on a join: a newcomer with
    /// a lower id does not depose a pinned leader (Fabric's `orgLeader`
    /// semantics); under dynamic election the newcomer competes through the
    /// ordinary heartbeat machinery.
    pub fn on_peer_joined(&mut self, fx: &mut dyn Effects, peer: PeerId) {
        if peer == self.core.self_id {
            return;
        }
        let now = fx.now();
        if !self.core.roster.contains(&peer) {
            self.core.roster.push(peer);
        }
        self.core.membership.add_peer(peer, now);
        self.core.channel_view.add_peer(peer, now);
    }

    /// A peer left this channel at runtime: it is removed from the roster
    /// and both membership views (never sampled again), its advertised
    /// height is forgotten, and leadership re-election is forced when the
    /// departed peer was the known leader — see
    /// [`LeadershipEngine::on_peer_left`].
    pub fn on_peer_left(&mut self, fx: &mut dyn Effects, peer: PeerId) {
        if peer == self.core.self_id {
            return;
        }
        self.core.roster.retain(|p| *p != peer);
        self.core.membership.remove_peer(peer);
        self.core.channel_view.remove_peer(peer);
        self.leadership.on_peer_left(&mut self.core, fx, peer);
    }

    /// Applies the membership consequences of one discovery step:
    /// discovered joins and reaps run through the same local machinery the
    /// oracle path uses ([`ChannelState::on_peer_joined`] /
    /// [`ChannelState::on_peer_left`]) — membership changes are now a
    /// *consequence of received gossip*, and each one is reported through
    /// [`Effects::discovery_event`] so the embedding can measure
    /// convergence.
    ///
    /// A refuted self-obituary additionally demotes this peer to roster
    /// juniority (matching where every other peer re-seats a resurrected
    /// member) and, under static election, drops any leadership claim —
    /// the seat was reassigned while this peer was presumed dead.
    fn apply_discovery(&mut self, fx: &mut dyn Effects, delta: DiscoveryDelta) {
        if delta.self_deposed {
            let me = self.core.self_id;
            self.core.roster.retain(|p| *p != me);
            self.core.roster.push(me);
            self.leadership.on_self_deposed(&mut self.core, fx);
        }
        for peer in delta.joined {
            self.on_peer_joined(fx, peer);
            fx.discovery_event(self.core.channel, peer, true);
        }
        for peer in delta.renewed {
            // A rejoin this view never saw as a leave: membership is
            // already correct, but both halves must reach the embedding
            // (leave observed, then join observed) or its convergence
            // accounting dangles forever.
            fx.discovery_event(self.core.channel, peer, false);
            fx.discovery_event(self.core.channel, peer, true);
        }
        for peer in &delta.left {
            let peer = *peer;
            if peer == self.core.self_id {
                continue;
            }
            // The membership half of `on_peer_left`, but NOT its
            // roster-order promotion: reaps arrive in different orders on
            // different peers, so protocol-mode static election follows
            // discovery seniority instead (below).
            self.core.roster.retain(|p| *p != peer);
            self.core.membership.remove_peer(peer);
            self.core.channel_view.remove_peer(peer);
            self.leadership.forget_peer(peer);
            fx.discovery_event(self.core.channel, peer, false);
        }
        // Re-enforce `is_leader == most-senior-in-view` on every discovery
        // step: eventually-consistent views then drive leadership to
        // exactly one claimant (reaped leaders are succeeded, stale
        // claimants step down).
        let senior = self.discovery.self_is_most_senior(&self.core);
        self.leadership.set_static_claim(&mut self.core, fx, senior);
    }

    /// Membership heartbeats: the background "alive" traffic that keeps the
    /// organization view fresh. Small enough to live on the dispatcher.
    fn on_alive_round(&mut self, fx: &mut dyn Effects) {
        let targets = {
            let k = self.core.cfg.fout;
            self.core.membership.sample(fx.rng(), k)
        };
        for t in targets {
            self.core.send(fx, t, GossipMsg::Alive);
        }
        let interval = self.core.cfg.membership.alive_interval;
        self.core.schedule(fx, interval, GossipTimer::AliveRound);
    }
}

/// Uniform random phase in `[0, period)`, so periodic rounds interleave
/// across peers instead of firing in lockstep.
pub(crate) fn random_phase(fx: &mut dyn Effects, period: Duration) -> Duration {
    if period.is_zero() {
        return Duration::ZERO;
    }
    Duration::from_nanos(fx.rng().random_range(0..period.as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_sums_counters_and_bytes() {
        use desim::KindId;
        let mut a = PeerStats {
            blocks_sent: 3,
            ..PeerStats::default()
        };
        a.bytes_sent_by_kind.add(KindId::intern("block"), 1000);
        let mut b = PeerStats {
            blocks_sent: 2,
            duplicate_blocks: 7,
            ..PeerStats::default()
        };
        b.bytes_sent_by_kind.add(KindId::intern("block"), 500);
        b.bytes_sent_by_kind.add(KindId::intern("alive"), 150);
        a.absorb(&b);
        assert_eq!(a.blocks_sent, 5);
        assert_eq!(a.duplicate_blocks, 7);
        assert_eq!(a.bytes_of_kind("block"), 1500);
        assert_eq!(a.bytes_of_kind("alive"), 150);
        assert_eq!(a.bytes_sent(), 1650);
    }

    #[test]
    fn core_send_accounts_bytes_per_kind() {
        use crate::testing::MockEffects;
        let mut core = ChannelCore::new(
            ChannelId(3),
            PeerId(0),
            (0..4).map(PeerId).collect(),
            GossipConfig::enhanced_f4(),
        );
        let mut fx = MockEffects::new(1);
        core.send(&mut fx, PeerId(1), GossipMsg::Alive);
        core.send(
            &mut fx,
            PeerId(2),
            GossipMsg::PushDigest {
                block_num: 1,
                counter: 0,
            },
        );
        assert_eq!(core.stats.bytes_of_kind("alive"), 150);
        assert!(core.stats.bytes_of_kind("push-digest") > 0);
        assert_eq!(fx.sent_on.len(), 2);
        assert!(fx.sent_on.iter().all(|(ch, _, _)| *ch == ChannelId(3)));
    }
}
