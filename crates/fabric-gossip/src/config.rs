//! Gossip configuration: the original Fabric parameters and the paper's
//! enhanced variants.
//!
//! Table I of the paper maps one-to-one onto fields here:
//!
//! | Enhancement | Field |
//! |---|---|
//! | Infect-upon-contagion push | [`PushMode::InfectUponContagion`] |
//! | Digests for the push phase | [`PushMode::InfectUponContagion::digests`] |
//! | Randomized initial gossiper | [`GossipConfig::f_leader_out`] ` = 1` |
//! | Removal of the pull component | [`GossipConfig::pull`] ` = None` |

use desim::Duration;
use serde::{Deserialize, Serialize};

/// How the push phase forwards blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushMode {
    /// Stock Fabric: a peer pushes a block once, on first reception, to
    /// `fout` random peers, then never again ("infect and die"). Newly
    /// received blocks wait in a buffer flushed when full or after `tpush`;
    /// every flush shares one random target sample.
    InfectAndDie {
        /// Buffer flush timer (Fabric default: 10 ms).
        tpush: Duration,
        /// Buffer capacity forcing an early flush (Fabric default: 10).
        buffer_cap: usize,
    },
    /// The paper's protocol: a peer forwards a block once per *distinct
    /// counter value* it receives it with, until the counter reaches `ttl`.
    InfectUponContagion {
        /// Stop forwarding once a block's counter reaches this value.
        ttl: u32,
        /// Counters `<= ttl_direct` push the full block; larger counters
        /// push a digest first (ignored when `digests` is false).
        ttl_direct: u32,
        /// Whether to announce with digests instead of pushing full blocks.
        digests: bool,
        /// Forward buffering timer. The paper sets this to zero for data
        /// blocks to keep every `(block, counter)` pair on an independent
        /// random sample; nonzero values reproduce the bias ablation.
        tpush: Duration,
    },
}

/// Pull engine parameters (stock Fabric; removed by the enhanced protocol).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PullConfig {
    /// Number of random peers contacted per pull round (Fabric: 3).
    pub fin: usize,
    /// Pull round period (Fabric: 4 s).
    pub tpull: Duration,
    /// How long the requester gathers digest responses before sending its
    /// block requests (Fabric's `digestWaitTime`: 1 s).
    pub digest_wait: Duration,
    /// How many recent block numbers a digest response advertises.
    pub digest_window: u64,
}

impl Default for PullConfig {
    fn default() -> Self {
        PullConfig {
            fin: 3,
            tpull: Duration::from_secs(4),
            digest_wait: Duration::from_secs(1),
            digest_window: 64,
        }
    }
}

/// Recovery (anti-entropy/state transfer) parameters. Kept by both
/// protocols: it also serves crash recovery and late joiners.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Recovery check period (Fabric: 10 s).
    pub interval: Duration,
    /// Maximum blocks per recovery request.
    pub batch_max: u64,
    /// StateInfo (ledger height metadata) broadcast period (Fabric: 4 s).
    pub state_info_interval: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            interval: Duration::from_secs(10),
            batch_max: 16,
            state_info_interval: Duration::from_secs(4),
        }
    }
}

/// Membership heartbeat parameters (background "alive" traffic).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipConfig {
    /// Alive message period (Fabric: 5 s).
    pub alive_interval: Duration,
    /// A peer unheard of for this long counts as dead.
    pub alive_timeout: Duration,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            alive_interval: Duration::from_secs(5),
            alive_timeout: Duration::from_secs(25),
        }
    }
}

/// Gossiped-discovery parameters (the membership *protocol* that replaces
/// the embedding's synchronous join/leave oracle).
///
/// When `protocol` is `false` (the default), membership changes reach a
/// peer only through the embedding's oracle callbacks
/// ([`crate::peer::GossipPeer::on_peer_joined`] /
/// [`crate::peer::GossipPeer::on_peer_left`]) and the channel keeps the
/// legacy payload-less `Alive` heartbeat. When `true`, the channel runs
/// the [`crate::discovery::DiscoveryEngine`]: periodic
/// [`crate::messages::GossipMsg::AliveMsg`] heartbeats carrying a
/// monotonic `(incarnation, seq)` pair, push–pull
/// `MembershipRequest`/`MembershipResponse` anti-entropy, expiry of
/// silent peers via [`crate::membership::Membership::believes_alive`],
/// and reaping — joins and leaves then become *local consequences of
/// received gossip*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Run discovery as a gossip protocol instead of relying on oracle
    /// callbacks.
    pub protocol: bool,
    /// Heartbeat ([`crate::messages::GossipMsg::AliveMsg`]) period. Also
    /// the cadence of the expiry/reap sweep.
    pub heartbeat_interval: Duration,
    /// Anti-entropy (membership digest exchange) period.
    pub anti_entropy_interval: Duration,
    /// Delta anti-entropy: requests carry a compact view digest
    /// ([`crate::messages::GossipMsg::MembershipDigest`]) and responses
    /// return only the claims the requester is missing or holds stale
    /// ([`crate::messages::GossipMsg::MembershipDelta`]) instead of the
    /// full view both ways. Off by default: the PR 4 full-view exchange
    /// stays byte-identical unless a deployment opts in.
    pub delta: bool,
    /// In delta mode, every Nth anti-entropy round still runs the classic
    /// full-view [`crate::messages::GossipMsg::MembershipRequest`] as a
    /// self-healing fallback (guards against any divergence a compact
    /// digest could ever hide). Must be ≥ 1; 1 degenerates to always-full.
    pub full_exchange_every: u32,
    /// Adaptive heartbeat cadence: a channel whose discovery state has
    /// been quiet for [`DiscoveryConfig::quiet_rounds_to_backoff`]
    /// consecutive rounds doubles its heartbeat interval (up to
    /// [`DiscoveryConfig::max_heartbeat_backoff`]×, and never beyond a
    /// third of the alive timeout so liveness refresh and true-death
    /// detection keep their bounds); any membership change snaps the
    /// cadence back to the configured base. Off by default.
    pub adaptive_heartbeat: bool,
    /// Quiet rounds before the first back-off step.
    pub quiet_rounds_to_backoff: u32,
    /// Cap on the heartbeat back-off multiplier.
    pub max_heartbeat_backoff: u32,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            protocol: false,
            heartbeat_interval: Duration::from_secs(5),
            anti_entropy_interval: Duration::from_secs(4),
            delta: false,
            full_exchange_every: 8,
            adaptive_heartbeat: false,
            quiet_rounds_to_backoff: 3,
            max_heartbeat_backoff: 4,
        }
    }
}

/// Leader election parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElectionConfig {
    /// When `false`, peer 0 is the static leader (Fabric's
    /// `orgLeader = true` deployment style).
    pub dynamic: bool,
    /// Leader heartbeat period.
    pub heartbeat_interval: Duration,
    /// Without a leader heartbeat for this long, a new leader stands up.
    pub leader_timeout: Duration,
}

impl Default for ElectionConfig {
    fn default() -> Self {
        ElectionConfig {
            dynamic: false,
            heartbeat_interval: Duration::from_secs(5),
            leader_timeout: Duration::from_secs(15),
        }
    }
}

/// Snapshot-bootstrap parameters (checkpoints + snapshot transfer in the
/// recovery phase).
///
/// Off by default: StateInfo broadcasts then carry no checkpoint and every
/// joiner catches up by block replay, byte-identical to the pre-snapshot
/// wire format. When enabled, StateInfo messages piggyback the sender's
/// latest [`fabric_types::Checkpoint`] (+40 wire bytes when present), and
/// a peer whose height trails the best advertised checkpoint by at least
/// `min_lag` blocks requests the snapshot instead of replaying the chain —
/// O(state + tail) instead of O(chain).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotConfig {
    /// Advertise checkpoints and bootstrap joiners from snapshots.
    pub enabled: bool,
    /// Checkpoint cadence in blocks: the embedding's ledger emits a
    /// checkpoint every `interval` blocks (see
    /// `fabric_ledger::Ledger::with_checkpoints`).
    pub interval: u64,
    /// Minimum lag (best advertised checkpoint height + 1 − own height)
    /// before a peer prefers a snapshot over block replay. Keeps
    /// steady-state stragglers on the cheap block-recovery path.
    pub min_lag: u64,
    /// Stream snapshots as [`fabric_types::snapshot::SnapshotChunk`]s of at
    /// most `chunk_size` wire bytes instead of one whole-state response.
    /// Off by default: the snapshot wire format is unchanged.
    pub chunked: bool,
    /// Upper bound on one snapshot-chunk message on the wire (envelope
    /// included), when `chunked` is on.
    pub chunk_size: usize,
    /// Ledger-side delta snapshots: emit per-checkpoint deltas and full
    /// exports only every `full_every` checkpoints (see
    /// `fabric_ledger::ledger::SnapshotPolicy::delta`). Off by default.
    pub delta: bool,
    /// Full-snapshot cadence in checkpoints when `delta` is on.
    pub full_every: u64,
    /// How long a snapshot request stays in flight before the requester
    /// gives the server up and resumes from a different peer. Doubles per
    /// failed attempt (the fetch-retry idiom applied to bulk transfer).
    pub request_timeout: Duration,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            enabled: false,
            interval: 32,
            min_lag: 32,
            chunked: false,
            chunk_size: 64 * 1024,
            delta: false,
            full_every: 2,
            request_timeout: Duration::from_secs(8),
        }
    }
}

/// Retry policy for fetching block content announced by a push digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchConfig {
    /// Re-request content from another advertiser after this long.
    pub timeout: Duration,
    /// Give up after this many attempts (recovery then takes over).
    pub max_attempts: u32,
}

impl Default for FetchConfig {
    fn default() -> Self {
        FetchConfig {
            timeout: Duration::from_millis(500),
            max_attempts: 5,
        }
    }
}

/// Complete gossip-layer configuration for one peer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Push fan-out for regular peers.
    pub fout: usize,
    /// Push fan-out of the leader peer when it receives a block from the
    /// ordering service. Stock Fabric uses `fout`; the enhanced protocol
    /// sets 1 and lets the chosen peer start the dissemination.
    pub f_leader_out: usize,
    /// Push phase behaviour.
    pub push: PushMode,
    /// Pull engine; `None` disables it (enhanced protocol).
    pub pull: Option<PullConfig>,
    /// Recovery / state transfer.
    pub recovery: RecoveryConfig,
    /// Membership heartbeats.
    pub membership: MembershipConfig,
    /// Gossiped discovery (off by default: the embedding's oracle drives
    /// membership, as in every pre-discovery deployment).
    pub discovery: DiscoveryConfig,
    /// Leader election.
    pub election: ElectionConfig,
    /// Push-digest fetch retries.
    pub fetch: FetchConfig,
    /// Snapshot bootstrap (off by default: wire format and golden traces
    /// are unchanged unless a deployment opts in).
    pub snapshot: SnapshotConfig,
}

impl GossipConfig {
    /// Stock Fabric v1.2 defaults: `fout = 3`, `tpush = 10 ms` infect-and-
    /// die push, `fin = 3` / `tpull = 4 s` pull, 10 s recovery.
    pub fn original_fabric() -> Self {
        GossipConfig {
            fout: 3,
            f_leader_out: 3,
            push: PushMode::InfectAndDie {
                tpush: Duration::from_millis(10),
                buffer_cap: 10,
            },
            pull: Some(PullConfig::default()),
            recovery: RecoveryConfig::default(),
            membership: MembershipConfig::default(),
            discovery: DiscoveryConfig::default(),
            election: ElectionConfig::default(),
            fetch: FetchConfig::default(),
            snapshot: SnapshotConfig::default(),
        }
    }

    /// The paper's first enhanced configuration: `fout = ⌊ln 100⌋ = 4`,
    /// `TTL = 9`, `TTL_direct = 2` — imperfect-dissemination probability
    /// 1e-6 at n = 100. Pull removed, `f_leader_out = 1`, `tpush = 0`.
    pub fn enhanced_f4() -> Self {
        Self::enhanced(4, 9, 2)
    }

    /// The paper's second enhanced configuration: `fout = 2`, `TTL = 19`,
    /// `TTL_direct = 3` — same 1e-6 guarantee with smoother load.
    pub fn enhanced_f2() -> Self {
        Self::enhanced(2, 19, 3)
    }

    /// An enhanced configuration with explicit parameters.
    pub fn enhanced(fout: usize, ttl: u32, ttl_direct: u32) -> Self {
        GossipConfig {
            fout,
            f_leader_out: 1,
            push: PushMode::InfectUponContagion {
                ttl,
                ttl_direct,
                digests: true,
                tpush: Duration::ZERO,
            },
            pull: None,
            recovery: RecoveryConfig::default(),
            membership: MembershipConfig::default(),
            discovery: DiscoveryConfig::default(),
            election: ElectionConfig::default(),
            fetch: FetchConfig::default(),
            snapshot: SnapshotConfig::default(),
        }
    }

    /// Flips discovery into protocol mode (see [`DiscoveryConfig`]):
    /// membership is then maintained by gossiped heartbeats and
    /// anti-entropy instead of oracle callbacks.
    pub fn with_discovery_protocol(mut self) -> Self {
        self.discovery.protocol = true;
        self
    }

    /// Protocol discovery with the byte-lean wire format: delta
    /// anti-entropy (digest requests, missing-claims-only responses, the
    /// periodic full exchange kept as a fallback) plus adaptive heartbeat
    /// cadence that backs off on quiet converged channels and snaps back
    /// on churn.
    pub fn with_delta_discovery(mut self) -> Self {
        self.discovery.protocol = true;
        self.discovery.delta = true;
        self.discovery.adaptive_heartbeat = true;
        self
    }

    /// Turns on snapshot bootstrap with checkpoints every `interval`
    /// blocks. `min_lag` is set to the interval: a joiner more than one
    /// checkpoint behind takes the snapshot path, a steady-state straggler
    /// keeps cheap block recovery.
    pub fn with_snapshots(mut self, interval: u64) -> Self {
        self.snapshot.enabled = true;
        self.snapshot.interval = interval;
        self.snapshot.min_lag = interval;
        self
    }

    /// [`Self::with_snapshots`] plus chunked transfer: snapshots stream as
    /// chunk messages of at most `chunk_size` wire bytes, reassembled and
    /// verified by the receiver, resumable from any eligible server.
    pub fn with_chunked_snapshots(mut self, interval: u64, chunk_size: usize) -> Self {
        self = self.with_snapshots(interval);
        self.snapshot.chunked = true;
        self.snapshot.chunk_size = chunk_size;
        self
    }

    /// Figure 10's ablation: enhanced protocol but the leader keeps the
    /// full fan-out, overloading its NIC.
    pub fn enhanced_heavy_leader() -> Self {
        let mut cfg = Self::enhanced_f4();
        cfg.f_leader_out = cfg.fout;
        cfg
    }

    /// Figure 11's ablation: enhanced protocol without digests — every
    /// forward carries the full block, blowing bandwidth up by ~an order of
    /// magnitude.
    pub fn enhanced_no_digests() -> Self {
        let mut cfg = Self::enhanced_f4();
        if let PushMode::InfectUponContagion { digests, .. } = &mut cfg.push {
            *digests = false;
        }
        cfg
    }

    /// The TTL of the push phase (0 for infect-and-die).
    pub fn ttl(&self) -> u32 {
        match self.push {
            PushMode::InfectAndDie { .. } => 0,
            PushMode::InfectUponContagion { ttl, .. } => ttl,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.fout == 0 {
            return Err("fout must be positive".into());
        }
        if self.f_leader_out == 0 {
            return Err("f_leader_out must be positive".into());
        }
        match &self.push {
            PushMode::InfectAndDie { buffer_cap, .. } => {
                if *buffer_cap == 0 {
                    return Err("push buffer capacity must be positive".into());
                }
            }
            PushMode::InfectUponContagion {
                ttl, ttl_direct, ..
            } => {
                if *ttl == 0 {
                    return Err("TTL must be positive".into());
                }
                if ttl_direct > ttl {
                    return Err(format!("TTL_direct {ttl_direct} exceeds TTL {ttl}"));
                }
            }
        }
        if let Some(pull) = &self.pull {
            if pull.fin == 0 {
                return Err("fin must be positive".into());
            }
            if pull.tpull.is_zero() {
                return Err("tpull must be positive".into());
            }
            if pull.digest_wait >= pull.tpull {
                return Err("digest_wait must be shorter than tpull".into());
            }
            if pull.digest_window == 0 {
                return Err("pull digest window must be positive".into());
            }
        }
        if self.recovery.interval.is_zero() || self.recovery.state_info_interval.is_zero() {
            return Err("recovery intervals must be positive".into());
        }
        if self.recovery.batch_max == 0 {
            return Err("recovery batch_max must be positive".into());
        }
        if self.membership.alive_interval.is_zero() {
            return Err("alive interval must be positive".into());
        }
        if self.discovery.heartbeat_interval.is_zero() {
            return Err("discovery heartbeat interval must be positive".into());
        }
        if self.discovery.anti_entropy_interval.is_zero() {
            return Err("discovery anti-entropy interval must be positive".into());
        }
        if self.discovery.delta && self.discovery.full_exchange_every == 0 {
            return Err("delta discovery needs full_exchange_every >= 1".into());
        }
        if self.discovery.adaptive_heartbeat {
            if self.discovery.max_heartbeat_backoff == 0 {
                return Err("adaptive heartbeat backoff cap must be positive".into());
            }
            if self.discovery.quiet_rounds_to_backoff == 0 {
                return Err("adaptive heartbeat quiet threshold must be positive".into());
            }
        }
        if self.fetch.max_attempts == 0 {
            return Err("fetch max_attempts must be positive".into());
        }
        if self.snapshot.enabled {
            if self.snapshot.interval == 0 {
                return Err("snapshot checkpoint interval must be positive".into());
            }
            if self.snapshot.min_lag == 0 {
                return Err("snapshot min_lag must be positive".into());
            }
            if self.snapshot.request_timeout.is_zero() {
                return Err("snapshot request_timeout must be positive".into());
            }
            if self.snapshot.chunked && self.snapshot.chunk_size < 128 {
                return Err("snapshot chunk_size must be at least 128 bytes".into());
            }
            if self.snapshot.delta && self.snapshot.full_every == 0 {
                return Err("snapshot full_every must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_validate() {
        assert!(GossipConfig::original_fabric().validate().is_ok());
        assert!(GossipConfig::enhanced_f4().validate().is_ok());
        assert!(GossipConfig::enhanced_f2().validate().is_ok());
        assert!(GossipConfig::enhanced_heavy_leader().validate().is_ok());
        assert!(GossipConfig::enhanced_no_digests().validate().is_ok());
    }

    #[test]
    fn presets_match_paper_parameters() {
        let orig = GossipConfig::original_fabric();
        assert_eq!(orig.fout, 3);
        assert_eq!(orig.f_leader_out, 3);
        assert!(matches!(orig.push, PushMode::InfectAndDie { .. }));
        assert_eq!(orig.pull.as_ref().unwrap().fin, 3);
        assert_eq!(orig.pull.as_ref().unwrap().tpull, Duration::from_secs(4));
        assert_eq!(orig.recovery.interval, Duration::from_secs(10));

        let e4 = GossipConfig::enhanced_f4();
        assert_eq!(e4.fout, 4);
        assert_eq!(e4.f_leader_out, 1);
        assert_eq!(e4.ttl(), 9);
        assert!(e4.pull.is_none());

        let e2 = GossipConfig::enhanced_f2();
        assert_eq!(e2.fout, 2);
        assert_eq!(e2.ttl(), 19);
    }

    #[test]
    fn ablation_presets_flip_the_right_knob() {
        let heavy = GossipConfig::enhanced_heavy_leader();
        assert_eq!(heavy.f_leader_out, heavy.fout);
        let plain = GossipConfig::enhanced_no_digests();
        assert!(matches!(
            plain.push,
            PushMode::InfectUponContagion { digests: false, .. }
        ));
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = GossipConfig::original_fabric();
        c.fout = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enhanced_f4();
        if let PushMode::InfectUponContagion { ttl_direct, .. } = &mut c.push {
            *ttl_direct = 100;
        }
        assert!(c.validate().is_err());

        let mut c = GossipConfig::original_fabric();
        c.pull.as_mut().unwrap().fin = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::original_fabric();
        c.recovery.batch_max = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn discovery_defaults_to_oracle_mode_and_validates() {
        let cfg = GossipConfig::enhanced_f4();
        assert!(!cfg.discovery.protocol, "oracle mode is the default");
        let proto = GossipConfig::enhanced_f4().with_discovery_protocol();
        assert!(proto.discovery.protocol);
        assert!(proto.validate().is_ok());

        let mut bad = GossipConfig::enhanced_f4();
        bad.discovery.heartbeat_interval = Duration::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = GossipConfig::enhanced_f4();
        bad.discovery.anti_entropy_interval = Duration::ZERO;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn delta_discovery_preset_enables_the_lean_wire_format() {
        let cfg = GossipConfig::enhanced_f4().with_delta_discovery();
        assert!(cfg.discovery.protocol);
        assert!(cfg.discovery.delta);
        assert!(cfg.discovery.adaptive_heartbeat);
        assert!(cfg.validate().is_ok());
        // Plain protocol mode keeps the PR 4 wire format untouched.
        let plain = GossipConfig::enhanced_f4().with_discovery_protocol();
        assert!(!plain.discovery.delta && !plain.discovery.adaptive_heartbeat);

        let mut bad = GossipConfig::enhanced_f4().with_delta_discovery();
        bad.discovery.full_exchange_every = 0;
        assert!(bad.validate().is_err());
        let mut bad = GossipConfig::enhanced_f4().with_delta_discovery();
        bad.discovery.max_heartbeat_backoff = 0;
        assert!(bad.validate().is_err());
        let mut bad = GossipConfig::enhanced_f4().with_delta_discovery();
        bad.discovery.quiet_rounds_to_backoff = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn snapshots_default_off_and_builder_validates() {
        let cfg = GossipConfig::enhanced_f4();
        assert!(!cfg.snapshot.enabled, "wire format unchanged by default");
        let snap = GossipConfig::enhanced_f4().with_snapshots(16);
        assert!(snap.snapshot.enabled);
        assert_eq!(snap.snapshot.interval, 16);
        assert_eq!(snap.snapshot.min_lag, 16);
        assert!(
            !snap.snapshot.chunked && !snap.snapshot.delta,
            "chunking and deltas stay off unless asked for"
        );
        assert!(snap.validate().is_ok());
        let chunked = GossipConfig::enhanced_f4().with_chunked_snapshots(16, 4096);
        assert!(chunked.snapshot.chunked);
        assert_eq!(chunked.snapshot.chunk_size, 4096);
        assert!(chunked.validate().is_ok());

        let mut bad = GossipConfig::enhanced_f4().with_snapshots(16);
        bad.snapshot.interval = 0;
        assert!(bad.validate().is_err());
        let mut bad = GossipConfig::enhanced_f4().with_snapshots(16);
        bad.snapshot.min_lag = 0;
        assert!(bad.validate().is_err());
        let mut bad = GossipConfig::enhanced_f4().with_snapshots(16);
        bad.snapshot.request_timeout = Duration::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = GossipConfig::enhanced_f4().with_chunked_snapshots(16, 64);
        assert!(
            bad.validate().is_err(),
            "a chunk must fit at least a header"
        );
        bad.snapshot.chunk_size = 128;
        assert!(bad.validate().is_ok());
        let mut bad = GossipConfig::enhanced_f4().with_snapshots(16);
        bad.snapshot.delta = true;
        bad.snapshot.full_every = 0;
        assert!(bad.validate().is_err());
        // Disabled snapshots never fail validation, whatever the fields say.
        let mut off = GossipConfig::enhanced_f4();
        off.snapshot.interval = 0;
        assert!(off.validate().is_ok());
    }

    #[test]
    fn ttl_is_zero_for_infect_and_die() {
        assert_eq!(GossipConfig::original_fabric().ttl(), 0);
        assert_eq!(GossipConfig::enhanced_f2().ttl(), 19);
    }
}
