//! The side-effect boundary of the gossip state machine.
//!
//! [`crate::peer::GossipPeer`] is sans-io: it never sleeps, sends or reads a
//! clock directly. Every interaction with the outside world goes through an
//! [`Effects`] implementation — the discrete-event simulation provides one,
//! the real-threads runtime another, and unit tests use
//! [`crate::testing::MockEffects`] to assert on exactly what the protocol
//! did.
//!
//! Every side effect is tagged with the [`ChannelId`] it belongs to: a peer
//! joined to several channels runs one protocol instance per channel, and
//! the host environment routes messages, timers and deliveries back to the
//! right instance. Single-channel deployments use [`ChannelId::DEFAULT`]
//! throughout.

use desim::{Duration, Time};
use rand::rngs::StdRng;

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};
use fabric_types::snapshot::SnapshotRef;

use crate::messages::{GossipMsg, GossipTimer};

/// Host environment of one gossip peer.
pub trait Effects {
    /// Current time.
    fn now(&self) -> Time;

    /// Sends `msg` to `to` on `channel` (another peer of the organization).
    fn send(&mut self, channel: ChannelId, to: PeerId, msg: GossipMsg);

    /// Arms `timer` to fire for this peer's `channel` instance `after` from
    /// now.
    fn schedule(&mut self, after: Duration, channel: ChannelId, timer: GossipTimer);

    /// Deterministic randomness source.
    fn rng(&mut self) -> &mut StdRng;

    /// Called exactly once per block per channel, on first reception of its
    /// content — the measurement point of the paper's latency figures.
    fn block_received(&mut self, channel: ChannelId, block_num: u64) {
        let _ = (channel, block_num);
    }

    /// Called when `block` becomes deliverable in height order on
    /// `channel` — the ledger-commit point.
    fn deliver(&mut self, channel: ChannelId, block: BlockRef);

    /// Called when this peer gains or loses organization leadership on
    /// `channel`.
    fn leadership_changed(&mut self, channel: ChannelId, is_leader: bool) {
        let _ = (channel, is_leader);
    }

    /// Called when the **discovery protocol** changes this peer's view of
    /// `channel`'s membership: `joined = true` when `peer` entered the view
    /// through received gossip (a heartbeat or anti-entropy claim about an
    /// unknown or resurrected peer), `false` when it was reaped (expired
    /// silent or learned dead). Oracle-driven changes
    /// ([`crate::peer::GossipPeer::on_peer_joined`] /
    /// [`crate::peer::GossipPeer::on_peer_left`]) do **not** fire this hook
    /// — the embedding already knows what it did itself. The measurement
    /// point of discovery convergence and stale-view metrics.
    fn discovery_event(&mut self, channel: ChannelId, peer: PeerId, joined: bool) {
        let _ = (channel, peer, joined);
    }

    /// Called when this peer verified and installed a received `snapshot`
    /// on `channel` — before the buffered tail above it is delivered. The
    /// embedding seeds its ledger from the snapshot here
    /// (`fabric_ledger::Ledger::from_snapshot`) so the tail commits have a
    /// state to land on.
    fn snapshot_installed(&mut self, channel: ChannelId, snapshot: &SnapshotRef) {
        let _ = (channel, snapshot);
    }
}
