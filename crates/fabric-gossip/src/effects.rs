//! The side-effect boundary of the gossip state machine.
//!
//! [`crate::peer::GossipPeer`] is sans-io: it never sleeps, sends or reads a
//! clock directly. Every interaction with the outside world goes through an
//! [`Effects`] implementation — the discrete-event simulation provides one,
//! the real-threads runtime another, and unit tests use
//! [`crate::testing::MockEffects`] to assert on exactly what the protocol
//! did.

use desim::{Duration, Time};
use rand::rngs::StdRng;

use fabric_types::block::BlockRef;
use fabric_types::ids::PeerId;

use crate::messages::{GossipMsg, GossipTimer};

/// Host environment of one gossip peer.
pub trait Effects {
    /// Current time.
    fn now(&self) -> Time;

    /// Sends `msg` to `to` (another peer of the organization).
    fn send(&mut self, to: PeerId, msg: GossipMsg);

    /// Arms `timer` to fire for this peer `after` from now.
    fn schedule(&mut self, after: Duration, timer: GossipTimer);

    /// Deterministic randomness source.
    fn rng(&mut self) -> &mut StdRng;

    /// Called exactly once per block, on first reception of its content —
    /// the measurement point of the paper's latency figures.
    fn block_received(&mut self, block_num: u64) {
        let _ = block_num;
    }

    /// Called when `block` becomes deliverable in height order — the
    /// ledger-commit point.
    fn deliver(&mut self, block: BlockRef);

    /// Called when this peer gains or loses organization leadership.
    fn leadership_changed(&mut self, is_leader: bool) {
        let _ = is_leader;
    }
}
