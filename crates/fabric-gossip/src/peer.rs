//! The gossip peer state machine: push (both protocols), pull, recovery,
//! membership heartbeats and leader election.
//!
//! One [`GossipPeer`] value holds the gossip state of a single peer. It is
//! driven entirely by three entry points — [`GossipPeer::init`],
//! [`GossipPeer::on_message`], [`GossipPeer::on_timer`] — plus
//! [`GossipPeer::on_block_from_orderer`] on the leader, and performs all
//! I/O through [`Effects`].

use std::collections::{BTreeMap, HashSet};

use desim::{Duration, Time};
use rand::RngExt;

use fabric_types::block::BlockRef;
use fabric_types::ids::PeerId;

use crate::config::{GossipConfig, PushMode};
use crate::effects::Effects;
use crate::membership::Membership;
use crate::messages::{GossipMsg, GossipTimer};
use crate::store::BlockStore;

/// A fetch in flight for block content announced by push digests.
#[derive(Debug, Clone, Default)]
struct PendingFetch {
    /// Counters received in digests while the content was missing; each one
    /// owes a forward once the content arrives.
    counters: Vec<u32>,
    /// Peers that advertised the block (retry candidates).
    advertisers: Vec<PeerId>,
    /// Fetch attempts made so far.
    attempts: u32,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Default)]
pub struct PeerStats {
    /// First content reception time per block number.
    pub first_seen: BTreeMap<u64, Time>,
    /// Content receptions for blocks already held.
    pub duplicate_blocks: u64,
    /// Push digests received.
    pub digests_received: u64,
    /// Full blocks sent (push, pull and recovery responses).
    pub blocks_sent: u64,
    /// Push digests sent.
    pub digests_sent: u64,
    /// Push content fetch requests issued.
    pub fetch_requests: u64,
    /// Pull rounds initiated.
    pub pull_rounds: u64,
    /// Recovery requests issued.
    pub recovery_requests: u64,
}

/// The gossip state machine of one peer.
///
/// See the crate docs for a runnable end-to-end example.
#[derive(Debug)]
pub struct GossipPeer {
    id: PeerId,
    cfg: GossipConfig,
    /// Same-organization peers: the only legal targets for push and pull.
    membership: Membership,
    /// All channel peers (every organization): StateInfo and recovery may
    /// cross organization boundaries (§III of the paper).
    channel: Membership,
    /// Whether this peer forwards blocks (false models a free-rider).
    forwarding: bool,
    store: BlockStore,

    // ---- push: original (infect-and-die) ----
    /// Blocks awaiting the buffered push flush.
    push_buffer: Vec<BlockRef>,
    /// Whether a PushFlush timer is armed.
    flush_armed: bool,

    // ---- push: enhanced (infect-upon-contagion) ----
    /// `(block, counter)` pairs already processed.
    seen_pairs: HashSet<(u64, u32)>,
    /// Content fetches in flight, by block number.
    pending_fetch: BTreeMap<u64, PendingFetch>,
    /// Pairs awaiting a buffered forward (`tpush > 0` ablation).
    forward_buffer: Vec<(BlockRef, u32)>,

    // ---- pull ----
    pull_nonce: u64,
    /// Advertisers per missing block, gathered during the digest-wait
    /// window of the current pull round.
    pull_offers: BTreeMap<u64, Vec<PeerId>>,

    // ---- recovery ----
    /// Last advertised ledger height per peer.
    peer_heights: BTreeMap<PeerId, u64>,

    // ---- election ----
    is_leader: bool,
    last_leader_seen: Option<(PeerId, Time)>,

    stats: PeerStats,
}

impl GossipPeer {
    /// Creates the peer `id` within `roster` (all peers of the
    /// organization, self included or not — the peer never samples itself
    /// either way).
    ///
    /// With static election (the default), the lowest-id peer of the roster
    /// is the leader from the start, mirroring a Fabric deployment with
    /// `orgLeader` pinned. Static leadership semantics, exactly:
    ///
    /// * roster **contains** `id` → this peer leads iff `id` is the
    ///   roster's minimum;
    /// * roster **is empty** → the peer is alone in its organization and
    ///   leads;
    /// * roster **excludes** `id` → the caller deliberately listed an
    ///   organization this peer is not a full member of (a late joiner or
    ///   observer): the peer never self-elects statically, *even if* its id
    ///   is lower than every roster entry. (The seed implementation
    ///   computed `min(roster ∪ {id})`, silently making such an observer
    ///   the leader; dynamic election is the supported path for a peer
    ///   that should eventually lead an organization it joined late.)
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(id: PeerId, roster: Vec<PeerId>, cfg: GossipConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid gossip config: {e}");
        }
        // A roster containing `id` has min <= id, so `id == lowest` alone
        // encodes both "member" and "lowest member"; a roster excluding
        // `id` either has a smaller minimum (not lowest) or only larger
        // entries (id != lowest) — never a static leader.
        let statically_leads = match roster.iter().copied().min() {
            None => true, // alone in the organization
            Some(lowest) => id == lowest,
        };
        let is_leader = !cfg.election.dynamic && statically_leads;
        let membership = Membership::new(id, roster.clone(), cfg.membership.alive_timeout);
        let channel = Membership::new(id, roster, cfg.membership.alive_timeout);
        GossipPeer {
            id,
            cfg,
            membership,
            channel,
            forwarding: true,
            store: BlockStore::new(),
            push_buffer: Vec::new(),
            flush_armed: false,
            seen_pairs: HashSet::new(),
            pending_fetch: BTreeMap::new(),
            forward_buffer: Vec::new(),
            pull_nonce: 0,
            pull_offers: BTreeMap::new(),
            peer_heights: BTreeMap::new(),
            is_leader,
            last_leader_seen: None,
            stats: PeerStats::default(),
        }
    }

    /// This peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The active configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// Whether this peer currently acts as the organization leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Contiguous ledger height (next expected block number).
    pub fn height(&self) -> u64 {
        self.store.height()
    }

    /// The gossip block store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Protocol counters.
    pub fn stats(&self) -> &PeerStats {
        &self.stats
    }

    /// The same-organization membership view.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// The channel-wide membership view (all organizations).
    pub fn channel(&self) -> &Membership {
        &self.channel
    }

    /// Widens the channel view beyond the organization: StateInfo
    /// broadcasts and recovery requests may then target foreign peers,
    /// while push and pull stay confined to the organization — Fabric's
    /// access-control rule, preserved by the paper.
    pub fn with_channel(mut self, channel_roster: Vec<PeerId>) -> Self {
        self.channel = Membership::new(self.id, channel_roster, self.cfg.membership.alive_timeout);
        self
    }

    /// Turns this peer into a free-rider: it receives, stores and delivers
    /// blocks but never forwards anything (the adversarial behaviour the
    /// paper's discussion section raises). Pull and recovery requests are
    /// still answered — a silent dropper, not a liar.
    pub fn set_forwarding(&mut self, forwarding: bool) {
        self.forwarding = forwarding;
    }

    /// Whether this peer forwards blocks.
    pub fn forwarding(&self) -> bool {
        self.forwarding
    }

    /// Arms the periodic timers. Call once at startup (and again after a
    /// simulated reboot). Periods get a uniformly random initial phase so
    /// rounds de-synchronize across peers, as in a real deployment.
    pub fn init(&mut self, fx: &mut dyn Effects) {
        if let Some(pull) = &self.cfg.pull {
            let phase = random_phase(fx, pull.tpull);
            fx.schedule(phase, GossipTimer::PullRound);
        }
        let recovery_phase = random_phase(fx, self.cfg.recovery.interval);
        fx.schedule(recovery_phase, GossipTimer::RecoveryRound);
        let si_phase = random_phase(fx, self.cfg.recovery.state_info_interval);
        fx.schedule(si_phase, GossipTimer::StateInfoRound);
        let alive_phase = random_phase(fx, self.cfg.membership.alive_interval);
        fx.schedule(alive_phase, GossipTimer::AliveRound);
        if self.cfg.election.dynamic {
            let tick = random_phase(fx, self.cfg.election.heartbeat_interval);
            fx.schedule(tick, GossipTimer::ElectionTick);
        }
    }

    /// Models a process crash: volatile state — leadership, push buffers,
    /// fetches in flight, pull bookkeeping, membership freshness — is lost.
    /// The block store survives (blocks are persisted through the ledger).
    /// After a reboot, call [`GossipPeer::init`] to re-arm the timers;
    /// recovery then catches the peer up.
    pub fn on_crash(&mut self) {
        self.is_leader = false;
        self.last_leader_seen = None;
        self.push_buffer.clear();
        self.forward_buffer.clear();
        self.flush_armed = false;
        self.pending_fetch.clear();
        self.pull_offers.clear();
        self.peer_heights.clear();
    }

    /// Entry point for a block delivered by the ordering service (the
    /// leader's path, or any peer an orderer chooses to seed).
    pub fn on_block_from_orderer(&mut self, fx: &mut dyn Effects, block: BlockRef) {
        let num = block.number();
        let is_new = self.accept_content(fx, &block);
        if !is_new {
            return;
        }
        if !self.forwarding {
            return;
        }
        match self.cfg.push {
            PushMode::InfectAndDie { .. } => {
                // The leader pushes through the same buffered emitter as any
                // first reception (f_leader_out == fout in stock Fabric).
                self.buffer_for_push(fx, block);
            }
            PushMode::InfectUponContagion { .. } => {
                // Hand the block to f_leader_out random peers with counter 0;
                // they start the infect-upon-contagion dissemination.
                self.seen_pairs.insert((num, 0));
                let targets = {
                    let k = self.cfg.f_leader_out;
                    self.membership.sample(fx.rng(), k)
                };
                for t in targets {
                    self.stats.blocks_sent += 1;
                    fx.send(
                        t,
                        GossipMsg::BlockPush {
                            block: block.clone(),
                            counter: 0,
                        },
                    );
                }
            }
        }
    }

    /// Entry point for every gossip message.
    pub fn on_message(&mut self, fx: &mut dyn Effects, from: PeerId, msg: GossipMsg) {
        let now = fx.now();
        self.membership.mark_alive(from, now);
        self.channel.mark_alive(from, now);
        match msg {
            GossipMsg::BlockPush { block, counter } => self.on_block_push(fx, from, block, counter),
            GossipMsg::PushDigest { block_num, counter } => {
                self.on_push_digest(fx, from, block_num, counter)
            }
            GossipMsg::PushRequest { block_num, counter } => {
                if let Some(block) = self.store.get(block_num) {
                    let block = block.clone();
                    self.stats.blocks_sent += 1;
                    fx.send(from, GossipMsg::BlockPush { block, counter });
                }
            }
            GossipMsg::PullHello { nonce } => {
                let window = self
                    .cfg
                    .pull
                    .as_ref()
                    .map(|p| p.digest_window)
                    .unwrap_or(64);
                let block_nums = self.store.recent(window);
                fx.send(from, GossipMsg::PullDigestResponse { nonce, block_nums });
            }
            GossipMsg::PullDigestResponse { nonce, block_nums } => {
                self.on_pull_digest(fx, from, nonce, block_nums)
            }
            GossipMsg::PullRequest { nonce, block_nums } => {
                let blocks: Vec<BlockRef> = block_nums
                    .iter()
                    .filter_map(|n| self.store.get(*n).cloned())
                    .collect();
                if !blocks.is_empty() {
                    self.stats.blocks_sent += blocks.len() as u64;
                    fx.send(from, GossipMsg::PullResponse { nonce, blocks });
                }
            }
            GossipMsg::PullResponse { nonce: _, blocks } => {
                for block in blocks {
                    self.accept_content(fx, &block);
                }
            }
            GossipMsg::StateInfo { height } => {
                let entry = self.peer_heights.entry(from).or_insert(0);
                *entry = (*entry).max(height);
            }
            GossipMsg::RecoveryRequest { from: lo, to } => {
                let blocks = self
                    .store
                    .consecutive_run(lo, to, self.cfg.recovery.batch_max);
                if !blocks.is_empty() {
                    self.stats.blocks_sent += blocks.len() as u64;
                    fx.send(from, GossipMsg::RecoveryResponse { blocks });
                }
            }
            GossipMsg::RecoveryResponse { blocks } => {
                for block in blocks {
                    self.accept_content(fx, &block);
                }
            }
            GossipMsg::Alive => {} // mark_alive above is the whole effect
            GossipMsg::LeaderHeartbeat { leader } => self.on_leader_heartbeat(fx, leader, now),
        }
    }

    /// Entry point for every timer armed through [`Effects::schedule`].
    pub fn on_timer(&mut self, fx: &mut dyn Effects, timer: GossipTimer) {
        match timer {
            GossipTimer::PushFlush => self.on_push_flush(fx),
            GossipTimer::PullRound => self.on_pull_round(fx),
            GossipTimer::PullDigestWait { nonce } => self.on_pull_digest_wait(fx, nonce),
            GossipTimer::RecoveryRound => self.on_recovery_round(fx),
            GossipTimer::StateInfoRound => self.on_state_info_round(fx),
            GossipTimer::AliveRound => self.on_alive_round(fx),
            GossipTimer::ElectionTick => self.on_election_tick(fx),
            GossipTimer::FetchRetry { block_num, attempt } => {
                self.on_fetch_retry(fx, block_num, attempt)
            }
        }
    }

    // ------------------------------------------------------------------
    // Content acceptance (common to every arrival path)
    // ------------------------------------------------------------------

    /// Stores new content, fires the reception hook and delivers any newly
    /// contiguous run. Returns whether the content was new.
    fn accept_content(&mut self, fx: &mut dyn Effects, block: &BlockRef) -> bool {
        match self.store.insert(block.clone()) {
            None => {
                self.stats.duplicate_blocks += 1;
                false
            }
            Some(deliverable) => {
                let num = block.number();
                self.stats.first_seen.insert(num, fx.now());
                fx.block_received(num);
                for b in deliverable {
                    fx.deliver(b);
                }
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Push — both protocols
    // ------------------------------------------------------------------

    fn on_block_push(
        &mut self,
        fx: &mut dyn Effects,
        _from: PeerId,
        block: BlockRef,
        counter: u32,
    ) {
        let num = block.number();
        let is_new = self.accept_content(fx, &block);
        if !self.forwarding {
            return;
        }
        match self.cfg.push {
            PushMode::InfectAndDie { .. } => {
                // Infect and die: forward only on first content reception.
                if is_new {
                    self.buffer_for_push(fx, block);
                }
            }
            PushMode::InfectUponContagion { ttl, .. } => {
                // Forward once per distinct counter; content arrival also
                // settles the forwards owed by digests that preceded it.
                let mut owed: Vec<u32> = Vec::new();
                if is_new {
                    if let Some(pending) = self.pending_fetch.remove(&num) {
                        owed.extend(pending.counters);
                    }
                }
                if self.seen_pairs.insert((num, counter)) {
                    owed.push(counter);
                }
                owed.sort_unstable();
                owed.dedup();
                for c in owed {
                    if c < ttl {
                        self.queue_forward(fx, block.clone(), c + 1);
                    }
                }
            }
        }
    }

    fn on_push_digest(&mut self, fx: &mut dyn Effects, from: PeerId, block_num: u64, counter: u32) {
        self.stats.digests_received += 1;
        let PushMode::InfectUponContagion { ttl, .. } = self.cfg.push else {
            return; // digests are not part of the original protocol
        };
        if !self.forwarding {
            // A free-rider still fetches content it lacks (it wants the
            // chain) but never re-announces it.
            if !self.seen_pairs.insert((block_num, counter)) || self.store.has(block_num) {
                return;
            }
            let pending = self.pending_fetch.entry(block_num).or_default();
            pending.counters.push(counter);
            if !pending.advertisers.contains(&from) {
                pending.advertisers.push(from);
            }
            if pending.attempts == 0 {
                pending.attempts = 1;
                self.stats.fetch_requests += 1;
                fx.send(from, GossipMsg::PushRequest { block_num, counter });
                let timeout = self.cfg.fetch.timeout;
                fx.schedule(
                    timeout,
                    GossipTimer::FetchRetry {
                        block_num,
                        attempt: 1,
                    },
                );
            }
            return;
        }
        if !self.seen_pairs.insert((block_num, counter)) {
            return;
        }
        if self.store.has(block_num) {
            if counter < ttl {
                let block = self
                    .store
                    .get(block_num)
                    .expect("store.has checked")
                    .clone();
                self.queue_forward(fx, block, counter + 1);
            }
            return;
        }
        // Content missing: fetch it, remembering the counter so the forward
        // happens when the block arrives.
        let pending = self.pending_fetch.entry(block_num).or_default();
        pending.counters.push(counter);
        if !pending.advertisers.contains(&from) {
            pending.advertisers.push(from);
        }
        let first_request = pending.attempts == 0;
        if first_request {
            pending.attempts = 1;
            self.stats.fetch_requests += 1;
            fx.send(from, GossipMsg::PushRequest { block_num, counter });
            let timeout = self.cfg.fetch.timeout;
            fx.schedule(
                timeout,
                GossipTimer::FetchRetry {
                    block_num,
                    attempt: 1,
                },
            );
        }
    }

    fn on_fetch_retry(&mut self, fx: &mut dyn Effects, block_num: u64, attempt: u32) {
        if self.store.has(block_num) {
            return; // fetched in the meantime
        }
        let max_attempts = self.cfg.fetch.max_attempts;
        let Some(pending) = self.pending_fetch.get_mut(&block_num) else {
            return;
        };
        if attempt >= max_attempts {
            // Give up; the recovery component will catch this block up.
            self.pending_fetch.remove(&block_num);
            return;
        }
        pending.attempts = attempt + 1;
        let counter = pending.counters.last().copied().unwrap_or(0);
        // Prefer an advertiser we have not asked yet (they rotate by
        // attempt); any advertiser certainly has the content.
        let advertisers = pending.advertisers.clone();
        let target = advertisers
            .get(attempt as usize % advertisers.len().max(1))
            .copied()
            .unwrap_or_else(|| {
                self.membership
                    .sample(fx.rng(), 1)
                    .first()
                    .copied()
                    .unwrap_or(self.id)
            });
        self.stats.fetch_requests += 1;
        fx.send(target, GossipMsg::PushRequest { block_num, counter });
        let timeout = self.cfg.fetch.timeout;
        fx.schedule(
            timeout,
            GossipTimer::FetchRetry {
                block_num,
                attempt: attempt + 1,
            },
        );
    }

    /// Original protocol: stage a first-reception block in the push buffer.
    fn buffer_for_push(&mut self, fx: &mut dyn Effects, block: BlockRef) {
        let PushMode::InfectAndDie { tpush, buffer_cap } = self.cfg.push else {
            unreachable!("buffer_for_push is an infect-and-die path");
        };
        self.push_buffer.push(block);
        if self.push_buffer.len() >= buffer_cap || tpush.is_zero() {
            self.flush_push_buffer(fx);
        } else if !self.flush_armed {
            self.flush_armed = true;
            fx.schedule(tpush, GossipTimer::PushFlush);
        }
    }

    /// Enhanced protocol: forward `(block, counter)`, immediately or via the
    /// `tpush` buffer (the bias ablation).
    fn queue_forward(&mut self, fx: &mut dyn Effects, block: BlockRef, counter: u32) {
        let PushMode::InfectUponContagion { tpush, .. } = self.cfg.push else {
            unreachable!("queue_forward is an infect-upon-contagion path");
        };
        if tpush.is_zero() {
            self.forward_pairs(fx, &[(block, counter)]);
        } else {
            self.forward_buffer.push((block, counter));
            if !self.flush_armed {
                self.flush_armed = true;
                fx.schedule(tpush, GossipTimer::PushFlush);
            }
        }
    }

    fn on_push_flush(&mut self, fx: &mut dyn Effects) {
        self.flush_armed = false;
        match self.cfg.push {
            PushMode::InfectAndDie { .. } => self.flush_push_buffer(fx),
            PushMode::InfectUponContagion { .. } => {
                let items = std::mem::take(&mut self.forward_buffer);
                if !items.is_empty() {
                    self.forward_pairs(fx, &items);
                }
            }
        }
    }

    /// Infect-and-die flush: one random target sample shared by every
    /// buffered block (the bias the paper describes), then die.
    fn flush_push_buffer(&mut self, fx: &mut dyn Effects) {
        if self.push_buffer.is_empty() {
            return;
        }
        let blocks = std::mem::take(&mut self.push_buffer);
        let targets = {
            let k = self.cfg.fout;
            self.membership.sample(fx.rng(), k)
        };
        for block in &blocks {
            for t in &targets {
                self.stats.blocks_sent += 1;
                fx.send(
                    *t,
                    GossipMsg::BlockPush {
                        block: block.clone(),
                        counter: 0,
                    },
                );
            }
        }
    }

    /// Enhanced forward of one or more pairs sharing a target sample (a
    /// single pair when `tpush = 0`, the unbiased setting).
    fn forward_pairs(&mut self, fx: &mut dyn Effects, items: &[(BlockRef, u32)]) {
        let PushMode::InfectUponContagion {
            ttl_direct,
            digests,
            ..
        } = self.cfg.push
        else {
            unreachable!("forward_pairs is an infect-upon-contagion path");
        };
        let targets = {
            let k = self.cfg.fout;
            self.membership.sample(fx.rng(), k)
        };
        for (block, counter) in items {
            let direct = !digests || *counter <= ttl_direct;
            for t in &targets {
                if direct {
                    self.stats.blocks_sent += 1;
                    fx.send(
                        *t,
                        GossipMsg::BlockPush {
                            block: block.clone(),
                            counter: *counter,
                        },
                    );
                } else {
                    self.stats.digests_sent += 1;
                    fx.send(
                        *t,
                        GossipMsg::PushDigest {
                            block_num: block.number(),
                            counter: *counter,
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pull
    // ------------------------------------------------------------------

    fn on_pull_round(&mut self, fx: &mut dyn Effects) {
        let Some(pull) = self.cfg.pull.clone() else {
            return;
        };
        self.pull_nonce += 1;
        self.pull_offers.clear();
        self.stats.pull_rounds += 1;
        let nonce = self.pull_nonce;
        let targets = self.membership.sample(fx.rng(), pull.fin);
        for t in targets {
            fx.send(t, GossipMsg::PullHello { nonce });
        }
        // Fabric's pull engine gathers digests for `digestWaitTime` before
        // deciding what to request from whom.
        fx.schedule(pull.digest_wait, GossipTimer::PullDigestWait { nonce });
        fx.schedule(pull.tpull, GossipTimer::PullRound);
    }

    fn on_pull_digest(
        &mut self,
        _fx: &mut dyn Effects,
        from: PeerId,
        nonce: u64,
        block_nums: Vec<u64>,
    ) {
        if nonce != self.pull_nonce {
            return; // stale round
        }
        for num in block_nums {
            if !self.store.has(num) {
                let offers = self.pull_offers.entry(num).or_default();
                if !offers.contains(&from) {
                    offers.push(from);
                }
            }
        }
    }

    /// Digest-wait expiry: pick a random advertiser per missing block and
    /// send the grouped requests.
    fn on_pull_digest_wait(&mut self, fx: &mut dyn Effects, nonce: u64) {
        if nonce != self.pull_nonce {
            return; // a newer round superseded this one
        }
        let offers = std::mem::take(&mut self.pull_offers);
        let mut per_target: BTreeMap<PeerId, Vec<u64>> = BTreeMap::new();
        for (num, advertisers) in offers {
            if self.store.has(num) || advertisers.is_empty() {
                continue;
            }
            let pick = fx.rng().random_range(0..advertisers.len());
            per_target.entry(advertisers[pick]).or_default().push(num);
        }
        for (target, block_nums) in per_target {
            fx.send(target, GossipMsg::PullRequest { nonce, block_nums });
        }
    }

    // ------------------------------------------------------------------
    // Recovery and StateInfo
    // ------------------------------------------------------------------

    fn on_state_info_round(&mut self, fx: &mut dyn Effects) {
        let height = self.store.height();
        // StateInfo metadata crosses organization boundaries (§III).
        let targets = {
            let k = self.cfg.fout;
            self.channel.sample(fx.rng(), k)
        };
        for t in targets {
            fx.send(t, GossipMsg::StateInfo { height });
        }
        let interval = self.cfg.recovery.state_info_interval;
        fx.schedule(interval, GossipTimer::StateInfoRound);
    }

    fn on_recovery_round(&mut self, fx: &mut dyn Effects) {
        let my_height = self.store.height();
        let best = self.peer_heights.values().copied().max().unwrap_or(0);
        if best > my_height {
            // Ask one of the most advanced peers for the missing run.
            let candidates: Vec<PeerId> = self
                .peer_heights
                .iter()
                .filter(|(_, h)| **h == best)
                .map(|(p, _)| *p)
                .collect();
            let pick = fx.rng().random_range(0..candidates.len());
            let target = candidates[pick];
            let to = (best - 1).min(my_height + self.cfg.recovery.batch_max - 1);
            self.stats.recovery_requests += 1;
            fx.send(
                target,
                GossipMsg::RecoveryRequest {
                    from: my_height,
                    to,
                },
            );
        }
        let interval = self.cfg.recovery.interval;
        fx.schedule(interval, GossipTimer::RecoveryRound);
    }

    fn on_alive_round(&mut self, fx: &mut dyn Effects) {
        let targets = {
            let k = self.cfg.fout;
            self.membership.sample(fx.rng(), k)
        };
        for t in targets {
            fx.send(t, GossipMsg::Alive);
        }
        let interval = self.cfg.membership.alive_interval;
        fx.schedule(interval, GossipTimer::AliveRound);
    }

    // ------------------------------------------------------------------
    // Leader election
    // ------------------------------------------------------------------

    fn on_leader_heartbeat(&mut self, fx: &mut dyn Effects, leader: PeerId, now: Time) {
        self.last_leader_seen = Some((leader, now));
        if self.is_leader && leader < self.id {
            // A lower-id leader exists: step down (deterministic tie-break).
            self.is_leader = false;
            fx.leadership_changed(false);
        }
    }

    fn on_election_tick(&mut self, fx: &mut dyn Effects) {
        let now = fx.now();
        if self.is_leader {
            self.broadcast_leadership(fx);
        } else {
            let leader_fresh = matches!(
                self.last_leader_seen,
                Some((_, at)) if now.since(at) <= self.cfg.election.leader_timeout
            );
            if !leader_fresh {
                // No live leader. The lowest-id peer believed alive stands
                // up; everyone runs the same rule, so exactly the live
                // minimum claims leadership.
                let lowest_alive = self
                    .membership
                    .alive_peers(now)
                    .into_iter()
                    .chain(std::iter::once(self.id))
                    .min()
                    .expect("iterator contains self");
                if lowest_alive == self.id {
                    self.is_leader = true;
                    fx.leadership_changed(true);
                    self.broadcast_leadership(fx);
                }
            }
        }
        let interval = self.cfg.election.heartbeat_interval;
        fx.schedule(interval, GossipTimer::ElectionTick);
    }

    fn broadcast_leadership(&mut self, fx: &mut dyn Effects) {
        let me = self.id;
        for p in self.membership.peers().to_vec() {
            fx.send(p, GossipMsg::LeaderHeartbeat { leader: me });
        }
    }
}

/// Uniform random phase in `[0, period)`, so periodic rounds interleave
/// across peers instead of firing in lockstep.
fn random_phase(fx: &mut dyn Effects, period: Duration) -> Duration {
    if period.is_zero() {
        return Duration::ZERO;
    }
    Duration::from_nanos(fx.rng().random_range(0..period.as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(ids: &[u32]) -> Vec<PeerId> {
        ids.iter().copied().map(PeerId).collect()
    }

    #[test]
    fn lowest_roster_member_statically_leads() {
        let roster = peers(&[0, 1, 2, 3]);
        assert!(
            GossipPeer::new(PeerId(0), roster.clone(), GossipConfig::enhanced_f4()).is_leader()
        );
        assert!(
            !GossipPeer::new(PeerId(1), roster.clone(), GossipConfig::enhanced_f4()).is_leader()
        );
        assert!(!GossipPeer::new(PeerId(3), roster, GossipConfig::enhanced_f4()).is_leader());
    }

    #[test]
    fn roster_minimum_leads_even_when_ids_are_sparse() {
        let roster = peers(&[5, 9, 12]);
        assert!(
            GossipPeer::new(PeerId(5), roster.clone(), GossipConfig::enhanced_f4()).is_leader()
        );
        assert!(!GossipPeer::new(PeerId(9), roster, GossipConfig::enhanced_f4()).is_leader());
    }

    #[test]
    fn peer_excluded_from_roster_never_statically_self_elects() {
        // The caller handed this peer a roster that deliberately excludes
        // it — a late joiner / observer. Before the fix, min(roster ∪ {id})
        // silently crowned it leader because its id is lowest.
        let observer = GossipPeer::new(PeerId(0), peers(&[1, 2, 3]), GossipConfig::enhanced_f4());
        assert!(
            !observer.is_leader(),
            "an observer excluded from the roster must not claim static leadership"
        );
        // Higher-id observers were never leaders; still are not.
        let late = GossipPeer::new(PeerId(7), peers(&[1, 2, 3]), GossipConfig::enhanced_f4());
        assert!(!late.is_leader());
    }

    #[test]
    fn empty_roster_means_alone_and_leading() {
        let alone = GossipPeer::new(PeerId(4), Vec::new(), GossipConfig::enhanced_f4());
        assert!(alone.is_leader());
        assert!(alone.membership().is_empty());
    }

    #[test]
    fn dynamic_election_starts_without_a_static_leader() {
        let mut cfg = GossipConfig::enhanced_f4();
        cfg.election.dynamic = true;
        let peer = GossipPeer::new(PeerId(0), peers(&[0, 1, 2]), cfg);
        assert!(
            !peer.is_leader(),
            "dynamic mode elects through heartbeats, not construction"
        );
    }
}
