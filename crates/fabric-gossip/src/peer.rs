//! The gossip peer: a thin multiplexer over per-channel protocol
//! instances.
//!
//! One [`GossipPeer`] value holds the gossip state of a single peer across
//! every channel it has joined. All protocol logic lives in the per-channel
//! engines ([`crate::push`], [`crate::pull`], [`crate::leadership`])
//! bundled into a [`ChannelState`] per joined channel; this type only
//! routes entry points to the right instance:
//!
//! * [`GossipPeer::init`], [`GossipPeer::on_crash`] — fan out to every
//!   channel;
//! * [`GossipPeer::on_channel_message`], [`GossipPeer::on_channel_timer`],
//!   [`GossipPeer::on_block_from_orderer_on`] — route to one channel;
//! * the historical single-channel entry points ([`GossipPeer::on_message`]
//!   et al.) operate on [`ChannelId::DEFAULT`], so single-channel code and
//!   tests read exactly as before.
//!
//! All I/O goes through [`Effects`], tagged with the channel it belongs to.

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};

use crate::channel::{statically_leads, ChannelCore, ChannelState};
use crate::config::GossipConfig;
use crate::effects::Effects;
use crate::membership::Membership;
use crate::messages::{GossipMsg, GossipTimer};
use crate::store::BlockStore;

pub use crate::channel::PeerStats;

/// The gossip state machine of one peer: per-channel instances behind a
/// multiplexer.
///
/// See the crate docs for a runnable end-to-end example.
#[derive(Debug)]
pub struct GossipPeer {
    id: PeerId,
    cfg: GossipConfig,
    /// Joined channels, sorted by [`ChannelId`] so `init`/`on_crash` fan
    /// out deterministically.
    channels: Vec<(ChannelId, ChannelState)>,
    /// Set by [`GossipPeer::init`]; guards the builder-only methods.
    initialized: bool,
}

impl GossipPeer {
    /// Creates the peer `id` within `roster` (all peers of the
    /// organization, self included or not — the peer never samples itself
    /// either way), joined to the single [`ChannelId::DEFAULT`] channel.
    ///
    /// With static election (the default), the lowest-id peer of the roster
    /// is the leader from the start, mirroring a Fabric deployment with
    /// `orgLeader` pinned. Static leadership semantics, exactly:
    ///
    /// * roster **contains** `id` → this peer leads iff `id` is the
    ///   roster's minimum;
    /// * roster **is empty** → the peer is alone in its organization and
    ///   leads;
    /// * roster **excludes** `id` → the caller deliberately listed an
    ///   organization this peer is not a full member of (a late joiner or
    ///   observer): the peer never self-elects statically, *even if* its id
    ///   is lower than every roster entry. (The seed implementation
    ///   computed `min(roster ∪ {id})`, silently making such an observer
    ///   the leader; dynamic election is the supported path for a peer
    ///   that should eventually lead an organization it joined late.)
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(id: PeerId, roster: Vec<PeerId>, cfg: GossipConfig) -> Self {
        Self::with_channels(id, cfg).join_channel(ChannelId::DEFAULT, roster)
    }

    /// Builder entry point for multi-channel peers: a peer with **no**
    /// joined channels. Chain [`GossipPeer::join_channel`] once per
    /// channel, then call [`GossipPeer::init`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_channels(id: PeerId, cfg: GossipConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid gossip config: {e}");
        }
        GossipPeer {
            id,
            cfg,
            channels: Vec::new(),
            initialized: false,
        }
    }

    /// Joins `channel` with `roster` as the organization view (the static
    /// leadership rule of [`GossipPeer::new`] applies per channel). The
    /// channel-wide view starts equal to the organization view; widen it
    /// with [`GossipPeer::widen_channel_view`].
    ///
    /// Channel membership is a **runtime operation**: this builder form
    /// chains before [`GossipPeer::init`]; after `init`, use
    /// [`GossipPeer::join_channel_live`], which creates the instance and
    /// arms its timers in one step.
    ///
    /// # Panics
    ///
    /// Panics when called after [`GossipPeer::init`] (use the live
    /// variants) or when `channel` is already joined.
    pub fn join_channel(self, channel: ChannelId, roster: Vec<PeerId>) -> Self {
        let cfg = self.cfg.clone();
        self.join_channel_with_cfg(channel, roster, cfg)
    }

    /// Like [`GossipPeer::join_channel`] but with a channel-specific
    /// configuration: one peer can run stock pull-assisted gossip on one
    /// channel and the enhanced protocol on another. Every engine of the
    /// instance — push mode, pull, recovery, election — follows `cfg`
    /// instead of the peer default.
    ///
    /// # Panics
    ///
    /// Panics when called after [`GossipPeer::init`] (a builder-joined
    /// channel would sit timerless — use the live variants, which arm the
    /// new instance's timers), when `channel` is already joined, or when
    /// `cfg` fails validation.
    pub fn join_channel_with_cfg(
        mut self,
        channel: ChannelId,
        roster: Vec<PeerId>,
        cfg: GossipConfig,
    ) -> Self {
        assert!(
            !self.initialized,
            "the consuming join_channel builders leave the new channel timerless: \
             after init, join at runtime with join_channel_live / join_channel_live_with_cfg"
        );
        self.insert_channel(channel, roster, cfg);
        self
    }

    /// Replaces the configuration of the already-joined `channel` — the
    /// per-channel override knob for builder chains that start from
    /// [`GossipPeer::new`] (which joins [`ChannelId::DEFAULT`] with the
    /// peer default). The channel instance is rebuilt under `cfg` with its
    /// roster — and any view widened through
    /// [`GossipPeer::widen_channel_view`] — preserved.
    ///
    /// Builder-only: the rebuild discards protocol state, so it must
    /// happen before [`GossipPeer::init`]. At runtime, reconfigure by
    /// leaving and re-joining with
    /// [`GossipPeer::join_channel_live_with_cfg`].
    ///
    /// # Panics
    ///
    /// Panics when called after [`GossipPeer::init`], on a channel that was
    /// never joined, or when `cfg` fails validation.
    pub fn with_channel_cfg(mut self, channel: ChannelId, cfg: GossipConfig) -> Self {
        assert!(
            !self.initialized,
            "with_channel_cfg is builder-only: reconfigure live channels by \
             leaving and re-joining with join_channel_live_with_cfg"
        );
        let at = self
            .channels
            .iter()
            .position(|(ch, _)| *ch == channel)
            .unwrap_or_else(|| panic!("cannot configure unjoined channel {channel}"));
        let (_, state) = self.channels.remove(at);
        let roster = state.core().roster.clone();
        let view: Vec<PeerId> = state.core().channel_view.peers().to_vec();
        let timeout = cfg.membership.alive_timeout;
        let id = self.id;
        let st = self.insert_channel(channel, roster, cfg);
        st.core_mut().channel_view = Membership::new(id, view, timeout);
        self
    }

    /// Joins `channel` at runtime, with the peer-default configuration.
    /// When the peer is already initialized the new instance's periodic
    /// timers are armed immediately, so a **late joiner** starts
    /// broadcasting StateInfo and running recovery (and pull, if
    /// configured) right away — the existing state-transfer machinery
    /// bootstraps it to the channel head with no extra protocol.
    ///
    /// Under protocol discovery
    /// ([`crate::config::DiscoveryConfig::protocol`]) the joiner also
    /// **announces itself**: its discovery engine immediately heartbeats
    /// its own `(incarnation, seq)` claim to the sitting members, who
    /// treat the unknown claim as the join — no oracle broadcasts
    /// [`GossipPeer::on_peer_joined`] on its behalf, and the rest of the
    /// channel converges through heartbeats and anti-entropy.
    ///
    /// Works before `init` too (equivalent to the builder form).
    ///
    /// # Panics
    ///
    /// Panics when `channel` is already joined.
    pub fn join_channel_live(
        &mut self,
        fx: &mut dyn Effects,
        channel: ChannelId,
        roster: Vec<PeerId>,
    ) {
        self.join_channel_live_with_cfg(fx, channel, roster, self.cfg.clone());
    }

    /// [`GossipPeer::join_channel_live`] with a channel-specific
    /// configuration (the runtime variant of
    /// [`GossipPeer::join_channel_with_cfg`]).
    ///
    /// # Panics
    ///
    /// Panics when `channel` is already joined or `cfg` fails validation.
    pub fn join_channel_live_with_cfg(
        &mut self,
        fx: &mut dyn Effects,
        channel: ChannelId,
        roster: Vec<PeerId>,
        cfg: GossipConfig,
    ) {
        let initialized = self.initialized;
        let id = self.id;
        let state = self.insert_channel(channel, roster, cfg);
        // Static leadership was just evaluated over the as-passed roster
        // (a roster excluding self never self-elects — the late-joiner
        // rule). From here on the roster is seniority-ordered shared
        // state: append self so this peer ranks exactly where every
        // sitting member's `on_peer_joined` ranks it, and departures
        // re-elect consistently (see `LeadershipEngine::on_peer_left`).
        if !state.core().roster.contains(&id) {
            state.core_mut().roster.push(id);
        }
        if initialized {
            state.init(fx);
        }
    }

    /// Joins `channel` at runtime knowing only **one seed peer** — the
    /// anchor-peer entry of a Fabric channel configuration. The joiner's
    /// roster starts as `{anchor}` and the rest of the membership is
    /// learned through the ordinary discovery push–pull (heartbeats +
    /// anti-entropy), so no oracle hands over the sitting roster.
    ///
    /// Requires protocol discovery
    /// ([`crate::config::DiscoveryConfig::protocol`]): without it nothing
    /// would ever widen the single-peer view. The static-leadership rule
    /// evaluates over `{anchor}` before self is appended, so an anchored
    /// joiner never self-elects — exactly the late-joiner semantics of
    /// [`GossipPeer::join_channel_live`].
    ///
    /// # Panics
    ///
    /// Panics when `channel` is already joined or when the configuration
    /// does not run protocol discovery.
    pub fn join_channel_anchored(
        &mut self,
        fx: &mut dyn Effects,
        channel: ChannelId,
        anchor: PeerId,
    ) {
        assert!(
            self.cfg.discovery.protocol,
            "anchor-peer join needs protocol discovery: \
             a single-seed roster can only widen through gossiped membership"
        );
        self.join_channel_live(fx, channel, vec![anchor]);
    }

    /// Publishes `snapshot` as the one this peer serves on `channel`
    /// (typically right after the embedding's ledger emitted a checkpoint).
    /// Freshness-gated: an older snapshot than the current one is ignored.
    /// Returns whether the snapshot was adopted (false when the channel is
    /// not joined or the snapshot is stale).
    pub fn publish_snapshot_on(
        &mut self,
        channel: ChannelId,
        snapshot: fabric_types::snapshot::SnapshotRef,
    ) -> bool {
        match self.state_mut(channel) {
            None => false,
            Some(state) => {
                let core = state.core_mut();
                let stale = core
                    .snapshot
                    .as_ref()
                    .is_some_and(|held| held.checkpoint.height >= snapshot.checkpoint.height);
                if stale {
                    return false;
                }
                core.snapshot = Some(snapshot);
                true
            }
        }
    }

    /// The snapshot this peer currently serves on `channel` (published by
    /// the embedding or installed from gossip), if any.
    pub fn snapshot_on(&self, channel: ChannelId) -> Option<&fabric_types::snapshot::SnapshotRef> {
        self.state(channel).and_then(|s| s.core().snapshot.as_ref())
    }

    /// Leaves `channel` at runtime: the instance is dropped wholesale —
    /// store, views, counters and engines. Pending timers of the departed
    /// channel become inert ([`GossipPeer::on_channel_timer`] drops timers
    /// of unjoined channels), so no cancellation round-trip is needed.
    /// Returns whether the channel was joined.
    ///
    /// The remaining members learn of the departure through
    /// [`GossipPeer::on_peer_left`] (driven by the embedding's discovery
    /// layer), which also forces leader re-election when the leaver led.
    pub fn leave_channel(&mut self, channel: ChannelId) -> bool {
        match self.channels.iter().position(|(ch, _)| *ch == channel) {
            Some(at) => {
                self.channels.remove(at);
                true
            }
            None => false,
        }
    }

    /// Discovery observed `peer` joining `channel`: add it to this peer's
    /// rosters and views (see [`ChannelState::on_peer_joined`]). Inert for
    /// unjoined channels.
    pub fn on_peer_joined(&mut self, fx: &mut dyn Effects, channel: ChannelId, peer: PeerId) {
        if let Some(state) = self.state_mut(channel) {
            state.on_peer_joined(fx, peer);
        }
    }

    /// Discovery observed `peer` leaving `channel`: remove it from this
    /// peer's rosters and views and force leader re-election when the
    /// departed peer led (see [`ChannelState::on_peer_left`]). Inert for
    /// unjoined channels.
    pub fn on_peer_left(&mut self, fx: &mut dyn Effects, channel: ChannelId, peer: PeerId) {
        if let Some(state) = self.state_mut(channel) {
            state.on_peer_left(fx, peer);
        }
    }

    /// Inserts the channel instance, keeping `channels` sorted. Shared by
    /// every join path (builder and live).
    fn insert_channel(
        &mut self,
        channel: ChannelId,
        roster: Vec<PeerId>,
        cfg: GossipConfig,
    ) -> &mut ChannelState {
        assert!(
            !self.channels.iter().any(|(ch, _)| *ch == channel),
            "channel {channel} joined twice"
        );
        let leads = statically_leads(self.id, &roster);
        let core = ChannelCore::new(channel, self.id, roster, cfg);
        let state = ChannelState::new(core, leads);
        let at = self.channels.partition_point(|(ch, _)| *ch < channel);
        self.channels.insert(at, (channel, state));
        &mut self.channels[at].1
    }

    /// This peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer-default configuration (channels joined without an explicit
    /// override run under this; see [`GossipPeer::config_on`]).
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// The configuration `channel`'s instance actually runs under —
    /// differs from [`GossipPeer::config`] when the channel was joined
    /// with a per-channel override. `None` when not joined.
    pub fn config_on(&self, channel: ChannelId) -> Option<&GossipConfig> {
        self.state(channel).map(|s| &s.core().cfg)
    }

    /// Whether [`GossipPeer::init`] has run (runtime joins arm their own
    /// timers from then on).
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Channels this peer has joined, in id order.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        self.channels.iter().map(|(ch, _)| *ch).collect()
    }

    /// Whether `channel` is joined.
    pub fn has_channel(&self, channel: ChannelId) -> bool {
        self.state(channel).is_some()
    }

    fn state(&self, channel: ChannelId) -> Option<&ChannelState> {
        self.channels
            .iter()
            .find(|(ch, _)| *ch == channel)
            .map(|(_, s)| s)
    }

    fn state_mut(&mut self, channel: ChannelId) -> Option<&mut ChannelState> {
        self.channels
            .iter_mut()
            .find(|(ch, _)| *ch == channel)
            .map(|(_, s)| s)
    }

    fn default_state(&self) -> &ChannelState {
        self.state(ChannelId::DEFAULT)
            .expect("peer has not joined the default channel; use the *_on accessors")
    }

    fn default_state_mut(&mut self) -> &mut ChannelState {
        self.state_mut(ChannelId::DEFAULT)
            .expect("peer has not joined the default channel; use the *_on accessors")
    }

    // ------------------------------------------------------------------
    // Single-channel (default-channel) view — the historical API
    // ------------------------------------------------------------------

    /// Whether this peer currently acts as the organization leader (on the
    /// default channel).
    pub fn is_leader(&self) -> bool {
        self.default_state().is_leader()
    }

    /// Contiguous ledger height (next expected block number) on the
    /// default channel.
    pub fn height(&self) -> u64 {
        self.default_state().core().store.height()
    }

    /// The gossip block store of the default channel.
    pub fn store(&self) -> &BlockStore {
        &self.default_state().core().store
    }

    /// Protocol counters of the default channel.
    pub fn stats(&self) -> &PeerStats {
        &self.default_state().core().stats
    }

    /// The same-organization membership view of the default channel.
    pub fn membership(&self) -> &Membership {
        &self.default_state().core().membership
    }

    /// The channel-wide membership view of the default channel (all
    /// organizations).
    pub fn channel(&self) -> &Membership {
        &self.default_state().core().channel_view
    }

    /// Widens the default channel's view beyond the organization —
    /// equivalent to [`GossipPeer::widen_channel_view`] on
    /// [`ChannelId::DEFAULT`]; see there for the contract.
    pub fn with_channel(self, channel_roster: Vec<PeerId>) -> Self {
        self.widen_channel_view(ChannelId::DEFAULT, channel_roster)
    }

    /// Widens `channel`'s view beyond the organization: StateInfo
    /// broadcasts and recovery requests may then target foreign peers,
    /// while push and pull stay confined to the organization — Fabric's
    /// access-control rule, preserved by the paper.
    ///
    /// **Builder-only.** The view is deployment-time configuration; calling
    /// this after [`GossipPeer::init`] would race the live protocol and is
    /// rejected. Liveness already learned about peers present in both the
    /// old and the new roster is carried over, so re-widening (e.g. widen,
    /// then widen again with more organizations) can never make a
    /// known-alive peer look silent. (The seed implementation rebuilt the
    /// view from scratch, silently dropping every `last_heard` timestamp.)
    ///
    /// # Panics
    ///
    /// Panics when called after [`GossipPeer::init`] or on a channel that
    /// was never joined.
    pub fn widen_channel_view(mut self, channel: ChannelId, channel_roster: Vec<PeerId>) -> Self {
        assert!(
            !self.initialized,
            "widen_channel_view/with_channel is builder-only: \
             channel views must be set before init"
        );
        let id = self.id;
        let timeout = self.cfg.membership.alive_timeout;
        let state = self
            .state_mut(channel)
            .unwrap_or_else(|| panic!("cannot widen unjoined channel {channel}"));
        let mut widened = Membership::new(id, channel_roster, timeout);
        widened.adopt_liveness(&state.core().channel_view);
        state.core_mut().channel_view = widened;
        self
    }

    /// Turns this peer into a free-rider on every joined channel: it
    /// receives, stores and delivers blocks but never forwards anything
    /// (the adversarial behaviour the paper's discussion section raises).
    /// Pull and recovery requests are still answered — a silent dropper,
    /// not a liar.
    pub fn set_forwarding(&mut self, forwarding: bool) {
        for (_, state) in &mut self.channels {
            state.core_mut().forwarding = forwarding;
        }
    }

    /// Whether this peer forwards blocks (on the default channel).
    pub fn forwarding(&self) -> bool {
        self.default_state().core().forwarding
    }

    /// Entry point for a block delivered by the ordering service on the
    /// default channel.
    pub fn on_block_from_orderer(&mut self, fx: &mut dyn Effects, block: BlockRef) {
        self.default_state_mut().on_block_from_orderer(fx, block);
    }

    /// Entry point for every gossip message on the default channel.
    pub fn on_message(&mut self, fx: &mut dyn Effects, from: PeerId, msg: GossipMsg) {
        self.default_state_mut().on_message(fx, from, msg);
    }

    /// Entry point for every timer armed through [`Effects::schedule`] on
    /// the default channel.
    pub fn on_timer(&mut self, fx: &mut dyn Effects, timer: GossipTimer) {
        self.default_state_mut().on_timer(fx, timer);
    }

    // ------------------------------------------------------------------
    // Channel-aware entry points and accessors
    // ------------------------------------------------------------------

    /// Routes an incoming gossip message to its channel instance. Messages
    /// for channels this peer never joined are dropped — gossip scope is
    /// the isolation boundary, so stray cross-channel traffic must never
    /// touch any store.
    pub fn on_channel_message(
        &mut self,
        fx: &mut dyn Effects,
        channel: ChannelId,
        from: PeerId,
        msg: GossipMsg,
    ) {
        if let Some(state) = self.state_mut(channel) {
            state.on_message(fx, from, msg);
        }
    }

    /// Routes a timer to its channel instance (timers of unjoined channels
    /// are inert).
    pub fn on_channel_timer(
        &mut self,
        fx: &mut dyn Effects,
        channel: ChannelId,
        timer: GossipTimer,
    ) {
        if let Some(state) = self.state_mut(channel) {
            state.on_timer(fx, timer);
        }
    }

    /// Entry point for a block the ordering service delivers on `channel`.
    /// Blocks for unjoined channels are dropped (isolation again).
    pub fn on_block_from_orderer_on(
        &mut self,
        fx: &mut dyn Effects,
        channel: ChannelId,
        block: BlockRef,
    ) {
        if let Some(state) = self.state_mut(channel) {
            state.on_block_from_orderer(fx, block);
        }
    }

    /// Whether this peer leads `channel`'s organization (false when not
    /// joined).
    pub fn is_leader_on(&self, channel: ChannelId) -> bool {
        self.state(channel).is_some_and(|s| s.is_leader())
    }

    /// Contiguous ledger height on `channel` (0 when not joined).
    pub fn height_on(&self, channel: ChannelId) -> u64 {
        self.state(channel).map_or(0, |s| s.core().store.height())
    }

    /// The block store of `channel`, if joined.
    pub fn store_on(&self, channel: ChannelId) -> Option<&BlockStore> {
        self.state(channel).map(|s| &s.core().store)
    }

    /// The protocol counters of `channel`, if joined.
    pub fn stats_on(&self, channel: ChannelId) -> Option<&PeerStats> {
        self.state(channel).map(|s| &s.core().stats)
    }

    /// The organization membership view of `channel`, if joined.
    pub fn membership_on(&self, channel: ChannelId) -> Option<&Membership> {
        self.state(channel).map(|s| &s.core().membership)
    }

    /// The discovery engine of `channel`, if joined — claims, obituaries
    /// and this life's incarnation, for convergence inspection.
    pub fn discovery_on(&self, channel: ChannelId) -> Option<&crate::discovery::DiscoveryEngine> {
        self.state(channel).map(|s| s.discovery())
    }

    /// Peer-global counters: every per-channel [`PeerStats`] summed
    /// (numeric and per-kind byte counters add exactly; `first_seen` stays
    /// per-channel — block numbers collide across channels).
    pub fn total_stats(&self) -> PeerStats {
        let mut total = PeerStats::default();
        for (_, state) in &self.channels {
            total.absorb(&state.core().stats);
        }
        total
    }

    // ------------------------------------------------------------------
    // Lifecycle (all channels)
    // ------------------------------------------------------------------

    /// Arms the periodic timers of every joined channel, in channel-id
    /// order. Call once at startup (and again after a simulated reboot).
    /// Periods get a uniformly random initial phase so rounds
    /// de-synchronize across peers, as in a real deployment.
    pub fn init(&mut self, fx: &mut dyn Effects) {
        self.initialized = true;
        for (_, state) in &mut self.channels {
            state.init(fx);
        }
    }

    /// Models a process crash: volatile state — leadership, push buffers,
    /// fetches in flight, pull bookkeeping, membership freshness — is lost
    /// on every channel. The block stores survive (blocks are persisted
    /// through the ledger). After a reboot, call [`GossipPeer::init`] to
    /// re-arm the timers; recovery then catches the peer up.
    pub fn on_crash(&mut self) {
        for (_, state) in &mut self.channels {
            state.on_crash();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GossipConfig;
    use crate::testing::MockEffects;
    use fabric_types::block::Block;

    fn peers(ids: &[u32]) -> Vec<PeerId> {
        ids.iter().copied().map(PeerId).collect()
    }

    #[test]
    fn lowest_roster_member_statically_leads() {
        let roster = peers(&[0, 1, 2, 3]);
        assert!(
            GossipPeer::new(PeerId(0), roster.clone(), GossipConfig::enhanced_f4()).is_leader()
        );
        assert!(
            !GossipPeer::new(PeerId(1), roster.clone(), GossipConfig::enhanced_f4()).is_leader()
        );
        assert!(!GossipPeer::new(PeerId(3), roster, GossipConfig::enhanced_f4()).is_leader());
    }

    #[test]
    fn roster_minimum_leads_even_when_ids_are_sparse() {
        let roster = peers(&[5, 9, 12]);
        assert!(
            GossipPeer::new(PeerId(5), roster.clone(), GossipConfig::enhanced_f4()).is_leader()
        );
        assert!(!GossipPeer::new(PeerId(9), roster, GossipConfig::enhanced_f4()).is_leader());
    }

    #[test]
    fn peer_excluded_from_roster_never_statically_self_elects() {
        // The caller handed this peer a roster that deliberately excludes
        // it — a late joiner / observer. Before the fix, min(roster ∪ {id})
        // silently crowned it leader because its id is lowest.
        let observer = GossipPeer::new(PeerId(0), peers(&[1, 2, 3]), GossipConfig::enhanced_f4());
        assert!(
            !observer.is_leader(),
            "an observer excluded from the roster must not claim static leadership"
        );
        // Higher-id observers were never leaders; still are not.
        let late = GossipPeer::new(PeerId(7), peers(&[1, 2, 3]), GossipConfig::enhanced_f4());
        assert!(!late.is_leader());
    }

    #[test]
    fn empty_roster_means_alone_and_leading() {
        let alone = GossipPeer::new(PeerId(4), Vec::new(), GossipConfig::enhanced_f4());
        assert!(alone.is_leader());
        assert!(alone.membership().is_empty());
    }

    #[test]
    fn dynamic_election_starts_without_a_static_leader() {
        let mut cfg = GossipConfig::enhanced_f4();
        cfg.election.dynamic = true;
        let peer = GossipPeer::new(PeerId(0), peers(&[0, 1, 2]), cfg);
        assert!(
            !peer.is_leader(),
            "dynamic mode elects through heartbeats, not construction"
        );
    }

    #[test]
    fn leadership_is_independent_per_channel() {
        let peer = GossipPeer::with_channels(PeerId(2), GossipConfig::enhanced_f4())
            .join_channel(ChannelId(0), peers(&[0, 1, 2]))
            .join_channel(ChannelId(1), peers(&[2, 3, 4]));
        assert!(!peer.is_leader_on(ChannelId(0)), "peer 0 leads channel 0");
        assert!(
            peer.is_leader_on(ChannelId(1)),
            "lowest member of channel 1"
        );
        assert!(!peer.is_leader_on(ChannelId(9)), "unjoined channel");
        assert_eq!(peer.channel_ids(), vec![ChannelId(0), ChannelId(1)]);
    }

    #[test]
    fn messages_for_unjoined_channels_never_touch_a_store() {
        let mut peer = GossipPeer::new(PeerId(1), peers(&[0, 1, 2]), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        let block =
            fabric_types::block::BlockRef::new(Block::new(1, Block::genesis().hash(), vec![]));
        peer.on_channel_message(
            &mut fx,
            ChannelId(7),
            PeerId(0),
            GossipMsg::BlockPush { block, counter: 0 },
        );
        assert!(!peer.store().has(1), "stray channel traffic must not leak");
        assert!(fx.take_sent().is_empty());
        assert!(fx.delivered.is_empty());
    }

    #[test]
    #[should_panic(expected = "builder-only")]
    fn widening_after_init_is_rejected() {
        let mut peer = GossipPeer::new(PeerId(0), peers(&[0, 1]), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        let _ = peer.with_channel(peers(&[0, 1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn joining_a_channel_twice_is_rejected() {
        let _ = GossipPeer::with_channels(PeerId(0), GossipConfig::enhanced_f4())
            .join_channel(ChannelId(0), peers(&[0, 1]))
            .join_channel(ChannelId(0), peers(&[0, 1]));
    }

    #[test]
    fn runtime_join_after_init_arms_the_new_channels_timers() {
        let mut peer = GossipPeer::new(PeerId(1), peers(&[0, 1, 2]), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        let armed_before = fx.take_scheduled_on();
        assert!(armed_before.iter().all(|(_, ch, _)| *ch == ChannelId(0)));

        peer.join_channel_live(&mut fx, ChannelId(3), peers(&[1, 2, 3]));
        assert!(peer.has_channel(ChannelId(3)));
        let armed = fx.take_scheduled_on();
        assert!(
            armed.iter().any(|(_, ch, _)| *ch == ChannelId(3)),
            "a live join must arm the new channel's timers immediately"
        );
        assert!(
            armed.iter().all(|(_, ch, _)| *ch == ChannelId(3)),
            "existing channels' timers must not be re-armed"
        );
    }

    #[test]
    #[should_panic(expected = "timerless")]
    fn builder_join_after_init_is_rejected_loudly() {
        let mut peer = GossipPeer::new(PeerId(0), peers(&[0, 1]), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        // The consuming builder would create a dormant, timerless channel;
        // post-init joins must go through join_channel_live.
        let _ = peer.join_channel(ChannelId(2), peers(&[0, 1]));
    }

    #[test]
    fn runtime_join_before_init_stays_dormant_until_init() {
        let mut peer = GossipPeer::with_channels(PeerId(0), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        peer.join_channel_live(&mut fx, ChannelId(0), peers(&[0, 1]));
        assert!(fx.take_scheduled_on().is_empty(), "not initialized yet");
        peer.init(&mut fx);
        assert!(!fx.take_scheduled_on().is_empty());
    }

    #[test]
    fn leaving_a_channel_makes_its_traffic_and_timers_inert() {
        let mut peer = GossipPeer::with_channels(PeerId(1), GossipConfig::enhanced_f4())
            .join_channel(ChannelId(0), peers(&[0, 1, 2]))
            .join_channel(ChannelId(1), peers(&[1, 2, 3]));
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        fx.take_scheduled_on();
        assert!(peer.leave_channel(ChannelId(1)));
        assert!(!peer.leave_channel(ChannelId(1)), "second leave is a no-op");
        assert_eq!(peer.channel_ids(), vec![ChannelId(0)]);
        // Stray traffic and timers of the departed channel vanish.
        let block = BlockRef::new(Block::new(1, Block::genesis().hash(), vec![]));
        peer.on_channel_message(
            &mut fx,
            ChannelId(1),
            PeerId(2),
            GossipMsg::BlockPush { block, counter: 0 },
        );
        peer.on_channel_timer(&mut fx, ChannelId(1), GossipTimer::RecoveryRound);
        assert!(fx.take_sent_on().is_empty());
        assert!(fx.take_scheduled_on().is_empty());
        assert!(fx.delivered.is_empty());
    }

    #[test]
    fn rejoining_a_left_channel_starts_fresh() {
        let mut peer = GossipPeer::new(PeerId(0), peers(&[0, 1]), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        let block = BlockRef::new(Block::new(1, Block::genesis().hash(), vec![]));
        peer.on_block_from_orderer(&mut fx, block);
        assert_eq!(peer.height(), 2);
        peer.leave_channel(ChannelId::DEFAULT);
        peer.join_channel_live(&mut fx, ChannelId::DEFAULT, peers(&[0, 1]));
        assert_eq!(peer.height(), 1, "a rejoin starts from an empty store");
    }

    #[test]
    fn per_channel_cfg_override_via_join_channel_with_cfg() {
        let peer = GossipPeer::with_channels(PeerId(0), GossipConfig::enhanced_f4())
            .join_channel(ChannelId(0), peers(&[0, 1, 2]))
            .join_channel_with_cfg(
                ChannelId(1),
                peers(&[0, 1, 2]),
                GossipConfig::original_fabric(),
            );
        assert!(peer.config_on(ChannelId(0)).unwrap().pull.is_none());
        assert!(
            peer.config_on(ChannelId(1)).unwrap().pull.is_some(),
            "channel 1 must run the stock pull-assisted protocol"
        );
        assert_eq!(peer.config_on(ChannelId(9)), None);
    }

    #[test]
    fn with_channel_cfg_rebuilds_and_preserves_roster_and_view() {
        let peer = GossipPeer::new(PeerId(0), peers(&[0, 1, 2]), GossipConfig::enhanced_f4())
            .with_channel(peers(&[0, 1, 2, 3, 4]))
            .with_channel_cfg(ChannelId::DEFAULT, GossipConfig::original_fabric());
        assert!(peer.config_on(ChannelId::DEFAULT).unwrap().pull.is_some());
        assert_eq!(peer.membership().len(), 2, "org roster preserved");
        assert_eq!(peer.channel().len(), 4, "widened view preserved");
        assert!(peer.is_leader(), "static leadership recomputed from roster");
    }

    #[test]
    #[should_panic(expected = "builder-only")]
    fn with_channel_cfg_after_init_is_rejected() {
        let mut peer = GossipPeer::new(PeerId(0), peers(&[0, 1]), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        let _ = peer.with_channel_cfg(ChannelId::DEFAULT, GossipConfig::original_fabric());
    }

    #[test]
    fn peer_join_and_leave_notifications_maintain_the_rosters() {
        let mut peer = GossipPeer::new(PeerId(1), peers(&[0, 1, 2]), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        peer.on_peer_joined(&mut fx, ChannelId::DEFAULT, PeerId(7));
        assert!(peer.membership().peers().contains(&PeerId(7)));
        assert!(peer.channel().peers().contains(&PeerId(7)));
        peer.on_peer_left(&mut fx, ChannelId::DEFAULT, PeerId(7));
        assert!(!peer.membership().peers().contains(&PeerId(7)));
        // Departure of the static leader promotes this peer (id 1 is the
        // lowest remaining member).
        assert!(!peer.is_leader());
        peer.on_peer_left(&mut fx, ChannelId::DEFAULT, PeerId(0));
        assert!(peer.is_leader(), "static re-election on leader departure");
        // Notifications for unjoined channels are inert.
        peer.on_peer_joined(&mut fx, ChannelId(9), PeerId(3));
        assert!(!peer.has_channel(ChannelId(9)));
    }

    #[test]
    fn publish_snapshot_is_freshness_gated_per_channel() {
        use fabric_types::snapshot::{Checkpoint, Snapshot, SnapshotRef};
        let snap = |height| {
            let entries = Vec::new();
            let state_hash = fabric_types::snapshot::hash_state_entries(std::iter::empty());
            SnapshotRef::new(Snapshot {
                checkpoint: Checkpoint { height, state_hash },
                last_block_hash: fabric_types::crypto::Hash256::ZERO,
                entries,
            })
        };
        let mut peer = GossipPeer::new(PeerId(0), peers(&[0, 1, 2]), GossipConfig::enhanced_f4());
        assert!(peer.snapshot_on(ChannelId::DEFAULT).is_none());
        assert!(!peer.publish_snapshot_on(ChannelId(9), snap(8)), "unjoined");
        assert!(peer.publish_snapshot_on(ChannelId::DEFAULT, snap(8)));
        assert!(
            !peer.publish_snapshot_on(ChannelId::DEFAULT, snap(8)),
            "same height is not fresher"
        );
        assert!(peer.publish_snapshot_on(ChannelId::DEFAULT, snap(16)));
        assert_eq!(
            peer.snapshot_on(ChannelId::DEFAULT)
                .map(|s| s.checkpoint.height),
            Some(16)
        );
        assert!(!peer.publish_snapshot_on(ChannelId::DEFAULT, snap(12)));
    }

    #[test]
    fn anchored_join_starts_from_a_single_seed_without_leading() {
        let mut peer = GossipPeer::with_channels(
            PeerId(9),
            GossipConfig::enhanced_f4().with_discovery_protocol(),
        );
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        peer.join_channel_anchored(&mut fx, ChannelId(0), PeerId(3));
        assert!(peer.has_channel(ChannelId(0)));
        assert!(
            !peer.is_leader_on(ChannelId(0)),
            "an anchored joiner must never self-elect, even with a low id"
        );
        let state = peer.state(ChannelId(0)).unwrap();
        assert_eq!(
            state.core().roster,
            vec![PeerId(3), PeerId(9)],
            "roster starts as anchor + self, discovery widens it"
        );
        assert!(
            !fx.take_scheduled_on().is_empty(),
            "a live anchored join arms timers immediately"
        );
    }

    #[test]
    #[should_panic(expected = "protocol discovery")]
    fn anchored_join_without_discovery_protocol_is_rejected() {
        let mut peer = GossipPeer::with_channels(PeerId(9), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        peer.init(&mut fx);
        peer.join_channel_anchored(&mut fx, ChannelId(0), PeerId(3));
    }

    #[test]
    fn widening_preserves_learned_liveness() {
        use desim::{Duration, Time};
        // A peer hears from peer 1 before the deployment widens its channel
        // view (e.g. a reconfiguration adds an organization). The learned
        // freshness must survive the widening.
        let mut peer = GossipPeer::new(PeerId(0), peers(&[0, 1, 2]), GossipConfig::enhanced_f4());
        let mut fx = MockEffects::new(1);
        fx.now = Time::from_secs(40); // past the startup grace
        peer.on_message(&mut fx, PeerId(1), GossipMsg::Alive);
        let peer = peer.with_channel(peers(&[0, 1, 2, 3, 4, 5]));
        assert!(
            peer.channel()
                .believes_alive(PeerId(1), Time::from_secs(40) + Duration::from_secs(5)),
            "liveness learned before widening must carry over"
        );
        assert_eq!(peer.channel().len(), 5);
    }
}
