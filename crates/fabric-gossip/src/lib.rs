//! # fabric-gossip — fair and efficient block dissemination
//!
//! The paper's contribution, as a reusable library: the gossip layer that
//! broadcasts new blocks from the organization's leader peer to every other
//! peer. Two complete protocols are provided behind one configuration type:
//!
//! * **Original Fabric v1.2 gossip** ([`GossipConfig::original_fabric`]):
//!   infect-and-die push (`fout = 3`, 10 ms buffer), a four-phase pull
//!   engine every 4 s, and 10 s recovery — the baseline whose heavy tail the
//!   paper measures;
//! * **Enhanced gossip** ([`GossipConfig::enhanced_f4`],
//!   [`GossipConfig::enhanced_f2`]): infect-upon-contagion push with a
//!   per-`(block, counter)` TTL, digests above `TTL_direct`, a randomized
//!   initial gossiper (`f_leader_out = 1`), and no pull.
//!
//! The state machine ([`peer::GossipPeer`]) is sans-io: it runs under the
//! deterministic simulator (crate `fabric-experiments`), under the bundled
//! real-threads runtime ([`runtime::ThreadedNet`]), or under
//! [`testing::MockEffects`] in tests.
//!
//! ## Module map: multiplexer → engines → effects
//!
//! Gossip in Fabric is scoped per *channel*; a peer joined to several
//! channels runs one independent protocol instance per channel:
//!
//! * [`peer::GossipPeer`] — the **multiplexer**: routes messages, timers
//!   and orderer deliveries to the right channel instance and fans out
//!   lifecycle events (`init`, `on_crash`). Channel membership is a
//!   runtime operation: [`peer::GossipPeer::join_channel_live`] creates an
//!   instance mid-run (a late joiner catches up through StateInfo +
//!   recovery), [`peer::GossipPeer::leave_channel`] drops one, and
//!   [`peer::GossipPeer::on_peer_left`] forces leader re-election when
//!   the departed peer led; per-channel configuration overrides
//!   ([`peer::GossipPeer::join_channel_with_cfg`]) let one peer run
//!   different protocols on different channels;
//! * [`channel::ChannelState`] — one channel's instance: the shared
//!   [`channel::ChannelCore`] (membership views, block store, per-channel
//!   [`channel::PeerStats`]) plus the three **engines**:
//!   * [`push::PushEngine`] — infect-and-die and infect-upon-contagion
//!     push, digests, content-fetch retries;
//!   * [`pull::PullEngine`] — the four-phase pull (hello → digest →
//!     request → response);
//!   * [`leadership::LeadershipEngine`] — election plus state transfer
//!     (StateInfo heights and recovery);
//!   * [`discovery::DiscoveryEngine`] — gossiped membership (when
//!     [`config::DiscoveryConfig::protocol`] is on): `AliveMsg`
//!     heartbeats with monotonic `(incarnation, seq)` claims,
//!     `MembershipRequest`/`MembershipResponse` anti-entropy, expiry of
//!     silent peers and obituary spreading — joins and leaves become
//!     local consequences of received gossip instead of oracle
//!     callbacks;
//! * [`effects::Effects`] — the side-effect boundary every engine drives;
//!   all I/O is tagged with its [`fabric_types::ids::ChannelId`], and the
//!   wire unit is [`messages::ChannelMsg`] (channel tag + payload).
//!
//! ```
//! use fabric_gossip::config::GossipConfig;
//! use fabric_gossip::peer::GossipPeer;
//! use fabric_gossip::testing::MockEffects;
//! use fabric_types::block::{Block, BlockRef};
//! use fabric_types::ids::PeerId;
//!
//! // A five-peer organization; peer 0 is the leader.
//! let roster: Vec<PeerId> = (0..5).map(PeerId).collect();
//! let mut leader = GossipPeer::new(PeerId(0), roster, GossipConfig::enhanced_f4());
//! let mut fx = MockEffects::new(1);
//! leader.init(&mut fx);
//!
//! // The ordering service hands the leader a block: with f_leader_out = 1
//! // it forwards the full content to exactly one random peer.
//! let block = BlockRef::new(Block::new(1, Block::genesis().hash(), vec![]));
//! leader.on_block_from_orderer(&mut fx, block);
//! assert_eq!(fx.sent_of_kind("block").len(), 1);
//! assert_eq!(fx.delivered_numbers(), vec![1]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod config;
pub mod discovery;
pub mod effects;
pub mod leadership;
pub mod membership;
pub mod messages;
pub mod peer;
pub mod pull;
pub mod push;
pub mod runtime;
pub mod scenario;
pub mod store;
pub mod testing;

pub use channel::{ChannelCore, ChannelState};
pub use config::{DiscoveryConfig, GossipConfig, PullConfig, PushMode, RecoveryConfig};
pub use discovery::{DiscoveryDelta, DiscoveryEngine};
pub use effects::Effects;
pub use leadership::LeadershipEngine;
pub use membership::Membership;
pub use messages::{ChannelMsg, GossipMsg, GossipTimer, PeerAlive};
pub use peer::{GossipPeer, PeerStats};
pub use pull::PullEngine;
pub use push::PushEngine;
pub use store::BlockStore;
