//! Leader election and state transfer (StateInfo + recovery).
//!
//! Fabric couples the two concerns: the elected leader is the peer that
//! pulls blocks from the ordering service, while StateInfo height metadata
//! and the recovery (anti-entropy) rounds keep every peer's ledger
//! converging regardless of who leads — including across organization
//! boundaries (§III of the paper). Both live here as one engine because
//! they share the per-peer height view and the crash-volatility rules.
//!
//! The engine owns only election/recovery-private state; everything shared
//! lives in the [`ChannelCore`] passed into every entry point.

use std::collections::BTreeMap;

use desim::Time;
use rand::RngExt;

use fabric_types::ids::PeerId;

use crate::channel::ChannelCore;
use crate::effects::Effects;
use crate::messages::{GossipMsg, GossipTimer};

/// Election and state-transfer state of one channel instance.
#[derive(Debug)]
pub struct LeadershipEngine {
    is_leader: bool,
    last_leader_seen: Option<(PeerId, Time)>,
    /// Last advertised ledger height per peer.
    peer_heights: BTreeMap<PeerId, u64>,
}

impl LeadershipEngine {
    /// A fresh engine; `is_leader` seeds static leadership.
    pub fn new(is_leader: bool) -> Self {
        LeadershipEngine {
            is_leader,
            last_leader_seen: None,
            peer_heights: BTreeMap::new(),
        }
    }

    /// Whether this channel instance currently acts as leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Drops what a process crash would lose: leadership is volatile, as is
    /// the height view and the last-heartbeat memory.
    pub fn clear_volatile(&mut self) {
        self.is_leader = false;
        self.last_leader_seen = None;
        self.peer_heights.clear();
    }

    /// A peer advertised its ledger height.
    pub fn on_state_info(&mut self, from: PeerId, height: u64) {
        let entry = self.peer_heights.entry(from).or_insert(0);
        *entry = (*entry).max(height);
    }

    /// The StateInfoRound timer: broadcast our height across the channel.
    pub fn on_state_info_round(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let height = core.store.height();
        // StateInfo metadata crosses organization boundaries (§III).
        let targets = {
            let k = core.cfg.fout;
            core.channel_view.sample(fx.rng(), k)
        };
        for t in targets {
            core.send(fx, t, GossipMsg::StateInfo { height });
        }
        let interval = core.cfg.recovery.state_info_interval;
        core.schedule(fx, interval, GossipTimer::StateInfoRound);
    }

    /// The RecoveryRound timer: if somebody is ahead, ask one of the most
    /// advanced peers for the missing run.
    pub fn on_recovery_round(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let my_height = core.store.height();
        let best = self.peer_heights.values().copied().max().unwrap_or(0);
        if best > my_height {
            let candidates: Vec<PeerId> = self
                .peer_heights
                .iter()
                .filter(|(_, h)| **h == best)
                .map(|(p, _)| *p)
                .collect();
            let pick = fx.rng().random_range(0..candidates.len());
            let target = candidates[pick];
            let to = (best - 1).min(my_height + core.cfg.recovery.batch_max - 1);
            core.stats.recovery_requests += 1;
            core.send(
                fx,
                target,
                GossipMsg::RecoveryRequest {
                    from: my_height,
                    to,
                },
            );
        }
        let interval = core.cfg.recovery.interval;
        core.schedule(fx, interval, GossipTimer::RecoveryRound);
    }

    /// Serves a recovery request with a consecutive run from the store.
    pub fn on_recovery_request(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        lo: u64,
        to: u64,
    ) {
        let blocks = core
            .store
            .consecutive_run(lo, to, core.cfg.recovery.batch_max);
        if !blocks.is_empty() {
            core.stats.blocks_sent += blocks.len() as u64;
            core.send(fx, from, GossipMsg::RecoveryResponse { blocks });
        }
    }

    /// A peer left the channel: forget its advertised height and, when it
    /// was the leader this peer last heard from, force re-election.
    ///
    /// * **Dynamic election** — the last-heartbeat memory is cleared, so
    ///   the next [`GossipTimer::ElectionTick`] sees no fresh leader and
    ///   the lowest live id stands up without waiting out
    ///   `leader_timeout` (the leave was announced, not a silent crash).
    /// * **Static election** — the roster is **seniority-ordered**
    ///   (initial members as configured — id order in every shipped
    ///   embedding — runtime joiners appended in join order, identically
    ///   on every peer), and its *first* sitting entry claims leadership,
    ///   mirroring an operator re-pinning `orgLeader` after
    ///   decommissioning the old leader. Seniority, not the id minimum:
    ///   a runtime joiner with a low id must not outrank the seated
    ///   leader — and since every peer agrees on the append order, no
    ///   departure can strand the channel with zero or two leaders
    ///   (min-over-roster cannot promise that, because a joiner's own
    ///   roster legitimately ranks it last).
    pub fn on_peer_left(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects, peer: PeerId) {
        self.forget_peer(peer);
        if !core.cfg.election.dynamic
            && !self.is_leader
            && core.roster.first() == Some(&core.self_id)
        {
            self.is_leader = true;
            fx.leadership_changed(core.channel, true);
        }
    }

    /// Drops everything remembered about `peer` — its advertised height
    /// and, when it was the last leader heard, the heartbeat memory (so a
    /// dynamic election re-runs on the next tick instead of waiting out
    /// `leader_timeout`). The bookkeeping half of [`Self::on_peer_left`],
    /// shared with the discovery-protocol reap path, which runs its own
    /// promotion rule ([`Self::set_static_claim`]) instead of the
    /// roster-order one.
    pub fn forget_peer(&mut self, peer: PeerId) {
        self.peer_heights.remove(&peer);
        if matches!(self.last_leader_seen, Some((l, _)) if l == peer) {
            self.last_leader_seen = None;
        }
    }

    /// Protocol-discovery static election: enforce `is_leader == senior`,
    /// where `senior` is the caller's discovery-seniority verdict
    /// ([`crate::discovery::DiscoveryEngine::self_is_most_senior`]). Runs
    /// on every discovery step, so leadership converges with the views:
    /// the senior survivor claims within one heartbeat period of reaping
    /// its predecessor, and a stale claimant (deposed while presumed
    /// dead) steps down as soon as its view shows somebody more senior.
    /// Inert under dynamic election.
    pub fn set_static_claim(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects, senior: bool) {
        if core.cfg.election.dynamic || self.is_leader == senior {
            return;
        }
        self.is_leader = senior;
        fx.leadership_changed(core.channel, senior);
    }

    /// Discovery refuted an obituary about **this** peer: while it was
    /// presumed dead, the other members reassigned its seat (static
    /// re-election promoted the next senior member), so any leadership
    /// claim it still holds is stale and must be dropped. Under dynamic
    /// election nothing is forced — the ordinary heartbeat machinery
    /// already resolves competing claimants (the lower id wins).
    pub fn on_self_deposed(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        if !core.cfg.election.dynamic && self.is_leader {
            self.is_leader = false;
            fx.leadership_changed(core.channel, false);
        }
    }

    /// A leader heartbeat arrived.
    pub fn on_leader_heartbeat(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        leader: PeerId,
        now: Time,
    ) {
        self.last_leader_seen = Some((leader, now));
        if self.is_leader && leader < core.self_id {
            // A lower-id leader exists: step down (deterministic tie-break).
            self.is_leader = false;
            fx.leadership_changed(core.channel, false);
        }
    }

    /// The ElectionTick timer: heartbeat while leading; stand up as the
    /// lowest live id when the leader went silent.
    pub fn on_election_tick(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let now = fx.now();
        if self.is_leader {
            self.broadcast_leadership(core, fx);
        } else {
            let leader_fresh = matches!(
                self.last_leader_seen,
                Some((_, at)) if now.since(at) <= core.cfg.election.leader_timeout
            );
            if !leader_fresh {
                // No live leader. The lowest-id peer believed alive stands
                // up; everyone runs the same rule, so exactly the live
                // minimum claims leadership.
                let lowest_alive = core
                    .membership
                    .alive_peers(now)
                    .into_iter()
                    .chain(std::iter::once(core.self_id))
                    .min()
                    .expect("iterator contains self");
                if lowest_alive == core.self_id {
                    self.is_leader = true;
                    fx.leadership_changed(core.channel, true);
                    self.broadcast_leadership(core, fx);
                }
            }
        }
        let interval = core.cfg.election.heartbeat_interval;
        core.schedule(fx, interval, GossipTimer::ElectionTick);
    }

    fn broadcast_leadership(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let me = core.self_id;
        for p in core.membership.peers().to_vec() {
            core.send(fx, p, GossipMsg::LeaderHeartbeat { leader: me });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GossipConfig;
    use crate::testing::MockEffects;
    use fabric_types::block::{Block, BlockRef};
    use fabric_types::ids::ChannelId;

    fn core(self_id: u32) -> ChannelCore {
        ChannelCore::new(
            ChannelId::DEFAULT,
            PeerId(self_id),
            (0..4).map(PeerId).collect(),
            GossipConfig::enhanced_f4(),
        )
    }

    #[test]
    fn engine_alone_requests_recovery_from_the_highest_peer() {
        let mut c = core(1);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        e.on_state_info(PeerId(2), 6);
        e.on_state_info(PeerId(2), 4); // heights never regress
        e.on_recovery_round(&mut c, &mut fx);
        let sent = fx.take_sent();
        let req = sent
            .iter()
            .find(|(_, m)| matches!(m, GossipMsg::RecoveryRequest { .. }))
            .expect("a recovery request");
        assert_eq!(req.0, PeerId(2));
        assert!(matches!(
            req.1,
            GossipMsg::RecoveryRequest { from: 1, to: 5 }
        ));
        assert_eq!(c.stats.recovery_requests, 1);
    }

    #[test]
    fn serves_consecutive_runs_and_steps_down_for_lower_ids() {
        let mut c = core(1);
        let mut e = LeadershipEngine::new(true);
        let mut fx = MockEffects::new(1);
        for n in 1..=3 {
            c.store.insert(BlockRef::new(Block::new(
                n,
                fabric_types::crypto::Hash256::ZERO,
                vec![],
            )));
        }
        e.on_recovery_request(&mut c, &mut fx, PeerId(3), 1, 3);
        let sent = fx.take_sent();
        assert!(matches!(
            &sent[0].1,
            GossipMsg::RecoveryResponse { blocks } if blocks.len() == 3
        ));

        e.on_leader_heartbeat(&mut c, &mut fx, PeerId(0), Time::ZERO);
        assert!(!e.is_leader(), "lower-id leader forces a step-down");
        assert_eq!(fx.leadership, vec![false]);
    }

    #[test]
    fn static_departure_of_the_leader_promotes_the_new_lowest_member() {
        // Peer 1 in a {0, 1, 2, 3} roster: peer 0 statically leads.
        let mut c = core(1);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        // A non-leader departure changes nothing.
        c.roster.retain(|p| *p != PeerId(3));
        e.on_peer_left(&mut c, &mut fx, PeerId(3));
        assert!(!e.is_leader());
        // The leader departs: peer 1 is now the lowest member and stands up.
        c.roster.retain(|p| *p != PeerId(0));
        e.on_peer_left(&mut c, &mut fx, PeerId(0));
        assert!(e.is_leader(), "new lowest member must claim leadership");
        assert_eq!(fx.leadership, vec![true]);
    }

    #[test]
    fn dynamic_departure_clears_the_heartbeat_memory_and_height() {
        let mut c = core(1);
        c.cfg.election.dynamic = true;
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        e.on_state_info(PeerId(0), 12);
        e.on_leader_heartbeat(&mut c, &mut fx, PeerId(0), Time::from_secs(1));
        e.on_peer_left(&mut c, &mut fx, PeerId(0));
        assert!(!e.is_leader(), "dynamic mode re-elects on the next tick");
        // The departed leader's height must not drive recovery requests.
        e.on_recovery_round(&mut c, &mut fx);
        assert!(
            !fx.take_sent()
                .iter()
                .any(|(_, m)| matches!(m, GossipMsg::RecoveryRequest { .. })),
            "no recovery request toward a departed peer"
        );
        // The very next election tick stands this peer up (lowest alive id
        // among the remaining members believed alive is irrelevant at time
        // zero grace — self is lowest surviving claimant here).
        fx.now = Time::from_secs(100);
        e.on_election_tick(&mut c, &mut fx);
        assert!(e.is_leader(), "announced leave skips the leader timeout");
    }
}
