//! Leader election and state transfer (StateInfo + recovery).
//!
//! Fabric couples the two concerns: the elected leader is the peer that
//! pulls blocks from the ordering service, while StateInfo height metadata
//! and the recovery (anti-entropy) rounds keep every peer's ledger
//! converging regardless of who leads — including across organization
//! boundaries (§III of the paper). Both live here as one engine because
//! they share the per-peer height view and the crash-volatility rules.
//!
//! The engine owns only election/recovery-private state; everything shared
//! lives in the [`ChannelCore`] passed into every entry point.

use std::collections::{BTreeMap, BTreeSet};

use desim::Time;
use rand::RngExt;

use fabric_types::ids::PeerId;
use fabric_types::snapshot::{Checkpoint, SnapshotAssembler, SnapshotChunk, SnapshotRef};

use crate::channel::ChannelCore;
use crate::effects::Effects;
use crate::messages::{GossipMsg, GossipTimer, ENVELOPE};

/// One snapshot transfer in progress: the request this peer has in flight
/// and, under chunked transfer, the partial assembly. The in-flight guard
/// keeps every RecoveryRound from re-requesting a multi-MB transfer that is
/// merely still in transit; the timeout (doubling per attempt) is what
/// eventually routes around a crashed or pruned server.
#[derive(Debug)]
struct SnapshotTransfer {
    /// The peer the outstanding request went to.
    server: PeerId,
    /// When the outstanding request was sent.
    requested_at: Time,
    /// Requests sent for this transfer so far (drives the backoff).
    attempts: u32,
    /// Set when the server announced its departure — treated as an instant
    /// timeout on the next round.
    server_gone: bool,
    /// Partial chunked assembly; `None` until the first chunk arrives (and
    /// always for whole-snapshot transfers).
    assembler: Option<SnapshotAssembler>,
}

/// Election and state-transfer state of one channel instance.
#[derive(Debug)]
pub struct LeadershipEngine {
    is_leader: bool,
    last_leader_seen: Option<(PeerId, Time)>,
    /// Last advertised ledger height per peer.
    peer_heights: BTreeMap<PeerId, u64>,
    /// Latest checkpoint advertised per peer (snapshot bootstrap only).
    peer_checkpoints: BTreeMap<PeerId, Checkpoint>,
    /// The snapshot transfer currently in flight, if any.
    inflight: Option<SnapshotTransfer>,
    /// Servers that timed out on this transfer — excluded from selection
    /// until the transfer completes or no candidate remains.
    failed_servers: BTreeSet<PeerId>,
}

impl LeadershipEngine {
    /// A fresh engine; `is_leader` seeds static leadership.
    pub fn new(is_leader: bool) -> Self {
        LeadershipEngine {
            is_leader,
            last_leader_seen: None,
            peer_heights: BTreeMap::new(),
            peer_checkpoints: BTreeMap::new(),
            inflight: None,
            failed_servers: BTreeSet::new(),
        }
    }

    /// Whether this channel instance currently acts as leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Drops what a process crash would lose: leadership is volatile, as is
    /// the height view, the last-heartbeat memory, and any half-finished
    /// snapshot transfer.
    pub fn clear_volatile(&mut self) {
        self.is_leader = false;
        self.last_leader_seen = None;
        self.peer_heights.clear();
        self.peer_checkpoints.clear();
        self.inflight = None;
        self.failed_servers.clear();
    }

    /// A peer advertised its ledger height (and, under snapshot bootstrap,
    /// possibly its latest checkpoint).
    pub fn on_state_info(&mut self, from: PeerId, height: u64, checkpoint: Option<Checkpoint>) {
        let entry = self.peer_heights.entry(from).or_insert(0);
        *entry = (*entry).max(height);
        if let Some(cp) = checkpoint {
            match self.peer_checkpoints.entry(from) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(cp);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if cp.height > o.get().height {
                        o.insert(cp);
                    }
                }
            }
        }
    }

    /// The StateInfoRound timer: broadcast our height across the channel
    /// (piggybacking our latest checkpoint under snapshot bootstrap).
    pub fn on_state_info_round(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let height = core.store.height();
        let checkpoint = if core.cfg.snapshot.enabled {
            core.snapshot.as_ref().map(|s| s.checkpoint)
        } else {
            None
        };
        // StateInfo metadata crosses organization boundaries (§III).
        let targets = {
            let k = core.cfg.fout;
            core.channel_view.sample(fx.rng(), k)
        };
        for t in targets {
            core.send(fx, t, GossipMsg::StateInfo { height, checkpoint });
        }
        let interval = core.cfg.recovery.state_info_interval;
        core.schedule(fx, interval, GossipTimer::StateInfoRound);
    }

    /// The RecoveryRound timer: if somebody is ahead, ask one of the most
    /// advanced peers for the missing run. Under snapshot bootstrap, a peer
    /// lagging the best advertised checkpoint by at least
    /// [`crate::config::SnapshotConfig::min_lag`] blocks requests the
    /// snapshot instead — O(state + tail) rather than O(chain) replay.
    pub fn on_recovery_round(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let my_height = core.store.height();
        if core.cfg.snapshot.enabled && self.snapshot_round(core, fx, my_height) {
            let interval = core.cfg.recovery.interval;
            core.schedule(fx, interval, GossipTimer::RecoveryRound);
            return;
        }
        let best = self.peer_heights.values().copied().max().unwrap_or(0);
        if best > my_height {
            let candidates: Vec<PeerId> = self
                .peer_heights
                .iter()
                .filter(|(_, h)| **h == best)
                .map(|(p, _)| *p)
                .collect();
            let pick = fx.rng().random_range(0..candidates.len());
            let target = candidates[pick];
            let to = (best - 1).min(my_height + core.cfg.recovery.batch_max - 1);
            core.stats.recovery_requests += 1;
            core.send(
                fx,
                target,
                GossipMsg::RecoveryRequest {
                    from: my_height,
                    to,
                },
            );
        }
        let interval = core.cfg.recovery.interval;
        core.schedule(fx, interval, GossipTimer::RecoveryRound);
    }

    /// The snapshot half of a recovery round. Returns `true` when the
    /// round was consumed by the snapshot path — a transfer is in flight
    /// within its timeout, or a (re-)request just went out. Returns `false`
    /// to fall through to block recovery: the lag trigger didn't fire, or
    /// no eligible server remains (empty checkpoint view, every candidate
    /// timed out, or the requested floor was pruned everywhere).
    fn snapshot_round(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        my_height: u64,
    ) -> bool {
        let min_lag = core.cfg.snapshot.min_lag;
        let trigger = move |cp_height: u64| cp_height + 1 >= my_height + min_lag;
        let best_cp = self
            .peer_checkpoints
            .values()
            .map(|c| c.height)
            .max()
            .unwrap_or(0);
        if !trigger(best_cp) {
            return false;
        }
        // In-flight guard: while a request is pending and inside its
        // (doubling) timeout window, never re-send — a multi-MB response
        // in transit must not be requested again every round.
        if let Some(t) = &self.inflight {
            let backoff = 2u64.saturating_pow(t.attempts.saturating_sub(1).min(10));
            let timeout = core.cfg.snapshot.request_timeout * backoff;
            if !t.server_gone && fx.now().since(t.requested_at) < timeout {
                return true;
            }
            // Timed out (or the server announced its departure): give the
            // server up and move the transfer elsewhere.
            self.failed_servers.insert(t.server);
        }
        // A partial chunked assembly pins a checkpoint; its missing suffix
        // can only come from servers holding *exactly* that checkpoint
        // (chunk plans line up only at identical checkpoints).
        let pinned = self
            .inflight
            .as_ref()
            .and_then(|t| t.assembler.as_ref())
            .map(|a| a.checkpoint().height);
        let candidates_where = |ok: &dyn Fn(u64) -> bool| -> Vec<PeerId> {
            self.peer_checkpoints
                .iter()
                .filter(|(p, c)| ok(c.height) && !self.failed_servers.contains(p))
                .map(|(p, _)| *p)
                .collect()
        };
        let mut resuming = false;
        let mut candidates = Vec::new();
        if let Some(h) = pinned {
            candidates = candidates_where(&|cp| cp == h);
            resuming = !candidates.is_empty();
        }
        if candidates.is_empty() {
            // Fresh request: spread uniformly over *every* peer clearing
            // the trigger floor, not just the best-checkpoint holders —
            // N joiners don't all pile onto one server.
            candidates = candidates_where(&trigger);
        }
        if candidates.is_empty() {
            // Nobody left to ask. Release the transfer and fall back to
            // block recovery; the blacklist resets so a later round can
            // try recovered servers afresh.
            self.inflight = None;
            self.failed_servers.clear();
            return false;
        }
        let pick = candidates[fx.rng().random_range(0..candidates.len())];
        let prior = self.inflight.take();
        if prior.is_some() {
            core.stats.snapshot_resumes += 1;
        }
        let (attempts, assembler) = match prior {
            Some(t) if resuming => (t.attempts + 1, t.assembler),
            Some(t) => (t.attempts + 1, None),
            None => (1, None),
        };
        let (height, from_chunk) = match &assembler {
            Some(a) if resuming => (a.checkpoint().height, a.first_missing()),
            _ => (self.peer_checkpoints[&pick].height, 0),
        };
        core.stats.snapshot_requests += 1;
        core.send(fx, pick, GossipMsg::SnapshotRequest { height, from_chunk });
        self.inflight = Some(SnapshotTransfer {
            server: pick,
            requested_at: fx.now(),
            attempts,
            server_gone: false,
            assembler,
        });
        true
    }

    /// Serves a recovery request with a consecutive run from the store.
    pub fn on_recovery_request(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        lo: u64,
        to: u64,
    ) {
        let blocks = core
            .store
            .consecutive_run(lo, to, core.cfg.recovery.batch_max);
        if !blocks.is_empty() {
            core.stats.blocks_sent += blocks.len() as u64;
            core.send(fx, from, GossipMsg::RecoveryResponse { blocks });
        }
    }

    /// Serves a snapshot request from the channel's retained snapshot.
    /// The served snapshot may be newer than the requested height (the
    /// server checkpointed again since advertising) — never older, so the
    /// requester always gains at least the height it asked for. Under
    /// chunked transfer the snapshot streams as chunk messages of at most
    /// [`crate::config::SnapshotConfig::chunk_size`] wire bytes, starting
    /// at the requested resume offset; a non-zero offset is only honored
    /// at an exact checkpoint match, since chunk plans of different
    /// checkpoints don't line up.
    pub fn on_snapshot_request(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        height: u64,
        from_chunk: u32,
    ) {
        let Some(snapshot) = core.snapshot.clone() else {
            return;
        };
        if snapshot.checkpoint.height < height {
            return;
        }
        if !core.cfg.snapshot.chunked {
            core.stats.snapshots_served += 1;
            core.send(fx, from, GossipMsg::SnapshotResponse { snapshot });
            return;
        }
        if from_chunk > 0 && snapshot.checkpoint.height != height {
            return;
        }
        let budget = core.cfg.snapshot.chunk_size.saturating_sub(ENVELOPE);
        let chunks = SnapshotChunk::plan(&snapshot, budget);
        if (from_chunk as usize) >= chunks.len() {
            return;
        }
        core.stats.snapshots_served += 1;
        for chunk in chunks.into_iter().skip(from_chunk as usize) {
            core.stats.snapshot_chunks_sent += 1;
            core.send(fx, from, GossipMsg::SnapshotChunk { chunk });
        }
    }

    /// A whole snapshot arrived: verify it, install it (jumping the
    /// store's delivery cursor past the absorbed prefix), notify the
    /// embedding so it can seed its ledger, retain the snapshot for
    /// re-serving, and deliver whatever buffered tail just became
    /// contiguous. Stale responses — including duplicates arriving after a
    /// first copy installed — are dropped without touching the counters.
    pub fn on_snapshot_response(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        snapshot: SnapshotRef,
    ) {
        self.install_snapshot(core, fx, snapshot);
    }

    /// One chunk of an in-flight transfer arrived: absorb it into the
    /// assembly (pinning the checkpoint on the first chunk) and, once the
    /// plan is complete, reassemble and install through the same verified
    /// path as a whole-snapshot response. Chunks that are stale,
    /// unsolicited (no transfer in flight — e.g. arriving after install),
    /// foreign to the pinned checkpoint, or duplicates are dropped.
    pub fn on_snapshot_chunk(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        chunk: SnapshotChunk,
    ) {
        if chunk.checkpoint().height < core.store.height() {
            return;
        }
        let Some(transfer) = &mut self.inflight else {
            return;
        };
        let accepted = match &mut transfer.assembler {
            Some(asm) => asm.accept(&chunk),
            None => {
                transfer.assembler = Some(SnapshotAssembler::new(&chunk));
                true
            }
        };
        if !accepted {
            return;
        }
        core.stats.snapshot_chunks_received += 1;
        if !transfer
            .assembler
            .as_ref()
            .is_some_and(SnapshotAssembler::is_complete)
        {
            return;
        }
        let Some(snapshot) = self
            .inflight
            .take()
            .and_then(|t| t.assembler)
            .and_then(|a| a.assemble())
        else {
            return;
        };
        self.install_snapshot(core, fx, SnapshotRef::new(snapshot));
    }

    /// The one verified install path shared by whole-snapshot responses
    /// and completed chunk assemblies: reject stale or tampered state,
    /// then atomically adopt it and release any in-flight transfer.
    fn install_snapshot(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        snapshot: SnapshotRef,
    ) {
        if snapshot.checkpoint.height < core.store.height() {
            return; // stale: we already have everything it covers
        }
        if !snapshot.verify() {
            return; // entries don't hash to the checkpoint — discard
        }
        let run = core.store.adopt_snapshot(snapshot.checkpoint.height);
        core.stats.snapshots_installed += 1;
        fx.snapshot_installed(core.channel, &snapshot);
        core.snapshot = Some(snapshot);
        self.inflight = None;
        self.failed_servers.clear();
        for block in run {
            fx.deliver(core.channel, block);
        }
    }

    /// A peer left the channel: forget its advertised height and, when it
    /// was the leader this peer last heard from, force re-election.
    ///
    /// * **Dynamic election** — the last-heartbeat memory is cleared, so
    ///   the next [`GossipTimer::ElectionTick`] sees no fresh leader and
    ///   the lowest live id stands up without waiting out
    ///   `leader_timeout` (the leave was announced, not a silent crash).
    /// * **Static election** — the roster is **seniority-ordered**
    ///   (initial members as configured — id order in every shipped
    ///   embedding — runtime joiners appended in join order, identically
    ///   on every peer), and its *first* sitting entry claims leadership,
    ///   mirroring an operator re-pinning `orgLeader` after
    ///   decommissioning the old leader. Seniority, not the id minimum:
    ///   a runtime joiner with a low id must not outrank the seated
    ///   leader — and since every peer agrees on the append order, no
    ///   departure can strand the channel with zero or two leaders
    ///   (min-over-roster cannot promise that, because a joiner's own
    ///   roster legitimately ranks it last).
    pub fn on_peer_left(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects, peer: PeerId) {
        self.forget_peer(peer);
        if !core.cfg.election.dynamic
            && !self.is_leader
            && core.roster.first() == Some(&core.self_id)
        {
            self.is_leader = true;
            fx.leadership_changed(core.channel, true);
        }
    }

    /// Drops everything remembered about `peer` — its advertised height
    /// and checkpoint, and, when it was the last leader heard, the
    /// heartbeat memory (so a dynamic election re-runs on the next tick
    /// instead of waiting out `leader_timeout`). A departed peer serving
    /// an in-flight snapshot transfer is marked gone, which the next
    /// recovery round treats as an instant timeout (resume elsewhere
    /// rather than waiting out the full window). The bookkeeping half of
    /// [`Self::on_peer_left`], shared with the discovery-protocol reap
    /// path, which runs its own promotion rule ([`Self::set_static_claim`])
    /// instead of the roster-order one.
    pub fn forget_peer(&mut self, peer: PeerId) {
        self.peer_heights.remove(&peer);
        self.peer_checkpoints.remove(&peer);
        self.failed_servers.remove(&peer);
        if let Some(t) = &mut self.inflight {
            if t.server == peer {
                t.server_gone = true;
            }
        }
        if matches!(self.last_leader_seen, Some((l, _)) if l == peer) {
            self.last_leader_seen = None;
        }
    }

    /// Protocol-discovery static election: enforce `is_leader == senior`,
    /// where `senior` is the caller's discovery-seniority verdict
    /// ([`crate::discovery::DiscoveryEngine::self_is_most_senior`]). Runs
    /// on every discovery step, so leadership converges with the views:
    /// the senior survivor claims within one heartbeat period of reaping
    /// its predecessor, and a stale claimant (deposed while presumed
    /// dead) steps down as soon as its view shows somebody more senior.
    /// Inert under dynamic election.
    pub fn set_static_claim(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects, senior: bool) {
        if core.cfg.election.dynamic || self.is_leader == senior {
            return;
        }
        self.is_leader = senior;
        fx.leadership_changed(core.channel, senior);
    }

    /// Discovery refuted an obituary about **this** peer: while it was
    /// presumed dead, the other members reassigned its seat (static
    /// re-election promoted the next senior member), so any leadership
    /// claim it still holds is stale and must be dropped. Under dynamic
    /// election nothing is forced — the ordinary heartbeat machinery
    /// already resolves competing claimants (the lower id wins).
    pub fn on_self_deposed(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        if !core.cfg.election.dynamic && self.is_leader {
            self.is_leader = false;
            fx.leadership_changed(core.channel, false);
        }
    }

    /// A leader heartbeat arrived.
    pub fn on_leader_heartbeat(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        leader: PeerId,
        now: Time,
    ) {
        self.last_leader_seen = Some((leader, now));
        if self.is_leader && leader < core.self_id {
            // A lower-id leader exists: step down (deterministic tie-break).
            self.is_leader = false;
            fx.leadership_changed(core.channel, false);
        }
    }

    /// The ElectionTick timer: heartbeat while leading; stand up as the
    /// lowest live id when the leader went silent.
    pub fn on_election_tick(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let now = fx.now();
        if self.is_leader {
            self.broadcast_leadership(core, fx);
        } else {
            let leader_fresh = matches!(
                self.last_leader_seen,
                Some((_, at)) if now.since(at) <= core.cfg.election.leader_timeout
            );
            if !leader_fresh {
                // No live leader. The lowest-id peer believed alive stands
                // up; everyone runs the same rule, so exactly the live
                // minimum claims leadership.
                let lowest_alive = core
                    .membership
                    .alive_peers(now)
                    .into_iter()
                    .chain(std::iter::once(core.self_id))
                    .min()
                    .expect("iterator contains self");
                if lowest_alive == core.self_id {
                    self.is_leader = true;
                    fx.leadership_changed(core.channel, true);
                    self.broadcast_leadership(core, fx);
                }
            }
        }
        let interval = core.cfg.election.heartbeat_interval;
        core.schedule(fx, interval, GossipTimer::ElectionTick);
    }

    fn broadcast_leadership(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let me = core.self_id;
        for p in core.membership.peers().to_vec() {
            core.send(fx, p, GossipMsg::LeaderHeartbeat { leader: me });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GossipConfig;
    use crate::testing::MockEffects;
    use fabric_types::block::{Block, BlockRef};
    use fabric_types::ids::ChannelId;

    fn core(self_id: u32) -> ChannelCore {
        ChannelCore::new(
            ChannelId::DEFAULT,
            PeerId(self_id),
            (0..4).map(PeerId).collect(),
            GossipConfig::enhanced_f4(),
        )
    }

    #[test]
    fn engine_alone_requests_recovery_from_the_highest_peer() {
        let mut c = core(1);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        e.on_state_info(PeerId(2), 6, None);
        e.on_state_info(PeerId(2), 4, None); // heights never regress
        e.on_recovery_round(&mut c, &mut fx);
        let sent = fx.take_sent();
        let req = sent
            .iter()
            .find(|(_, m)| matches!(m, GossipMsg::RecoveryRequest { .. }))
            .expect("a recovery request");
        assert_eq!(req.0, PeerId(2));
        assert!(matches!(
            req.1,
            GossipMsg::RecoveryRequest { from: 1, to: 5 }
        ));
        assert_eq!(c.stats.recovery_requests, 1);
    }

    #[test]
    fn serves_consecutive_runs_and_steps_down_for_lower_ids() {
        let mut c = core(1);
        let mut e = LeadershipEngine::new(true);
        let mut fx = MockEffects::new(1);
        for n in 1..=3 {
            c.store.insert(BlockRef::new(Block::new(
                n,
                fabric_types::crypto::Hash256::ZERO,
                vec![],
            )));
        }
        e.on_recovery_request(&mut c, &mut fx, PeerId(3), 1, 3);
        let sent = fx.take_sent();
        assert!(matches!(
            &sent[0].1,
            GossipMsg::RecoveryResponse { blocks } if blocks.len() == 3
        ));

        e.on_leader_heartbeat(&mut c, &mut fx, PeerId(0), Time::ZERO);
        assert!(!e.is_leader(), "lower-id leader forces a step-down");
        assert_eq!(fx.leadership, vec![false]);
    }

    fn test_snapshot(height: u64) -> SnapshotRef {
        use fabric_types::rwset::{Key, Value, Version};
        use fabric_types::snapshot::{hash_state_entries, Snapshot};
        let entries: Vec<_> = (0..height)
            .map(|i| {
                (
                    Key::from(format!("k{i}").as_str()),
                    Value::from_u64(i),
                    Version::new(i.max(1), 0),
                )
            })
            .collect();
        let state_hash = hash_state_entries(entries.iter().map(|(k, v, ver)| (k, v, *ver)));
        SnapshotRef::new(Snapshot {
            checkpoint: Checkpoint { height, state_hash },
            last_block_hash: fabric_types::crypto::Hash256([height as u8; 32]),
            entries,
        })
    }

    #[test]
    fn lagging_peer_requests_the_snapshot_instead_of_blocks() {
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_snapshots(8);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        let snap = test_snapshot(16);
        e.on_state_info(PeerId(2), 17, Some(snap.checkpoint));
        e.on_recovery_round(&mut c, &mut fx);
        let sent = fx.take_sent();
        assert!(
            matches!(
                sent.as_slice(),
                [(
                    to,
                    GossipMsg::SnapshotRequest {
                        height: 16,
                        from_chunk: 0
                    }
                )] if *to == PeerId(2)
            ),
            "a fresh joiner far behind the checkpoint asks for the snapshot"
        );
        assert_eq!(c.stats.snapshot_requests, 1);
        assert_eq!(c.stats.recovery_requests, 0);
    }

    #[test]
    fn straggler_within_min_lag_keeps_block_recovery() {
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_snapshots(8);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        // Height 12 of 17: only 5 behind the checkpoint at 16 — under the
        // min_lag of 8 once the store is at 12.
        for n in 1..=11 {
            c.store.insert(BlockRef::new(Block::new(
                n,
                fabric_types::crypto::Hash256::ZERO,
                vec![],
            )));
        }
        assert_eq!(c.store.height(), 12);
        e.on_state_info(PeerId(2), 17, Some(test_snapshot(16).checkpoint));
        e.on_recovery_round(&mut c, &mut fx);
        let sent = fx.take_sent();
        assert!(
            sent.iter()
                .any(|(_, m)| matches!(m, GossipMsg::RecoveryRequest { .. })),
            "a near straggler replays blocks, not the snapshot"
        );
        assert_eq!(c.stats.snapshot_requests, 0);
    }

    #[test]
    fn snapshot_request_is_served_from_the_retained_snapshot() {
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_snapshots(8);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        // Nothing to serve yet: the request is dropped.
        e.on_snapshot_request(&mut c, &mut fx, PeerId(3), 8, 0);
        assert!(fx.take_sent().is_empty());
        let snap = test_snapshot(16);
        c.snapshot = Some(snap.clone());
        e.on_snapshot_request(&mut c, &mut fx, PeerId(3), 8, 0);
        let sent = fx.take_sent();
        assert!(matches!(
            &sent[..],
            [(to, GossipMsg::SnapshotResponse { snapshot })]
                if *to == PeerId(3) && SnapshotRef::ptr_eq(snapshot, &snap)
        ));
        assert_eq!(c.stats.snapshots_served, 1);
        // A request for a height above what we hold is not served.
        e.on_snapshot_request(&mut c, &mut fx, PeerId(3), 24, 0);
        assert!(fx.take_sent().is_empty());
    }

    #[test]
    fn snapshot_response_installs_verifies_and_delivers_the_tail() {
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_snapshots(8);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        // A buffered tail block above the snapshot waits for contiguity.
        c.store.insert(BlockRef::new(Block::new(
            17,
            fabric_types::crypto::Hash256::ZERO,
            vec![],
        )));
        let snap = test_snapshot(16);
        e.on_snapshot_response(&mut c, &mut fx, snap.clone());
        assert_eq!(c.store.height(), 18, "floor 16 plus the buffered 17");
        assert_eq!(c.store.snapshot_floor(), 16);
        assert_eq!(c.stats.snapshots_installed, 1);
        assert_eq!(fx.installed.len(), 1, "embedding hook fired");
        assert_eq!(fx.delivered_numbers(), vec![17]);
        assert!(
            c.snapshot
                .as_ref()
                .is_some_and(|s| SnapshotRef::ptr_eq(s, &snap)),
            "the installed snapshot is re-servable"
        );

        // A stale snapshot is ignored wholesale.
        e.on_snapshot_response(&mut c, &mut fx, test_snapshot(8));
        assert_eq!(c.stats.snapshots_installed, 1);
        assert_eq!(c.store.height(), 18);

        // A tampered snapshot is rejected before touching the store.
        let mut forged = (*test_snapshot(32)).clone();
        forged.entries[0].1 = fabric_types::rwset::Value::from_u64(999);
        e.on_snapshot_response(&mut c, &mut fx, forged.into());
        assert_eq!(c.stats.snapshots_installed, 1);
        assert_eq!(c.store.height(), 18);
        assert_eq!(fx.installed.len(), 1);
    }

    #[test]
    fn empty_candidate_set_falls_back_to_block_recovery_instead_of_panicking() {
        // Regression: the lag trigger can fire against an *empty*
        // checkpoint view (no peer has advertised a checkpoint yet). The
        // old code indexed a random element of the empty candidate list
        // and panicked; the round must instead fall through to block
        // recovery.
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_snapshots(1);
        c.cfg.snapshot.min_lag = 0;
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        e.on_recovery_round(&mut c, &mut fx); // must not panic
        assert_eq!(c.stats.snapshot_requests, 0);
        assert!(fx.take_sent().is_empty(), "nobody to ask, nothing sent");
        // Once a peer advertises blocks (still no checkpoint), the same
        // round runs plain block recovery.
        e.on_state_info(PeerId(2), 6, None);
        e.on_recovery_round(&mut c, &mut fx);
        assert!(fx
            .take_sent()
            .iter()
            .any(|(_, m)| matches!(m, GossipMsg::RecoveryRequest { .. })));
        assert_eq!(c.stats.snapshot_requests, 0);
    }

    #[test]
    fn inflight_guard_suppresses_request_storms_and_duplicate_installs() {
        use desim::Duration;
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_snapshots(8);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        let snap = test_snapshot(16);
        e.on_state_info(PeerId(2), 17, Some(snap.checkpoint));
        e.on_state_info(PeerId(3), 17, Some(snap.checkpoint));
        e.on_recovery_round(&mut c, &mut fx);
        assert_eq!(c.stats.snapshot_requests, 1);
        let first_server = fx.take_sent()[0].0;
        // Rounds firing inside the request timeout re-send nothing — the
        // multi-MB response may simply still be in transit.
        for _ in 0..5 {
            fx.advance(Duration::from_secs(1));
            e.on_recovery_round(&mut c, &mut fx);
            assert!(fx.take_sent().is_empty(), "no duplicate request storm");
        }
        assert_eq!(c.stats.snapshot_requests, 1);
        // Past the timeout the transfer moves to the *other* eligible
        // server (the first is held failed) and counts as a resume.
        fx.advance(Duration::from_secs(10));
        e.on_recovery_round(&mut c, &mut fx);
        assert_eq!(c.stats.snapshot_requests, 2);
        assert_eq!(c.stats.snapshot_resumes, 1);
        let sent = fx.take_sent();
        let retry = sent
            .iter()
            .find(|(_, m)| matches!(m, GossipMsg::SnapshotRequest { .. }))
            .expect("a retried snapshot request");
        assert_ne!(retry.0, first_server, "retry avoids the failed server");
        // Both servers eventually answer: exactly one response installs,
        // the straggler is dropped without double-counting.
        e.on_snapshot_response(&mut c, &mut fx, snap.clone());
        assert_eq!(c.stats.snapshots_installed, 1);
        e.on_snapshot_response(&mut c, &mut fx, snap.clone());
        assert_eq!(c.stats.snapshots_installed, 1, "duplicate install dropped");
        // Caught up: the next round has nothing snapshot-shaped to do.
        e.on_recovery_round(&mut c, &mut fx);
        assert_eq!(c.stats.snapshot_requests, 2);
    }

    #[test]
    fn chunked_serving_bounds_message_size_and_reassembly_installs_once() {
        use desim::Message;
        // Server side: the snapshot streams as chunks, none larger on the
        // wire than the configured chunk size.
        let mut sc = core(2);
        sc.cfg = GossipConfig::enhanced_f4().with_chunked_snapshots(8, 256);
        let mut server = LeadershipEngine::new(false);
        let mut sfx = MockEffects::new(2);
        let snap = test_snapshot(16);
        sc.snapshot = Some(snap.clone());
        server.on_snapshot_request(&mut sc, &mut sfx, PeerId(1), 16, 0);
        let sent = sfx.take_sent();
        assert!(sent.len() > 1, "a 16-entry snapshot needs several chunks");
        for (to, m) in &sent {
            assert_eq!(*to, PeerId(1));
            assert!(matches!(m, GossipMsg::SnapshotChunk { .. }));
            assert!(m.wire_size() <= 256, "chunk message exceeds chunk_size");
        }
        assert_eq!(sc.stats.snapshots_served, 1);
        assert_eq!(sc.stats.snapshot_chunks_sent, sent.len() as u64);
        // A resume offset is only honored at the exact checkpoint the
        // plan was cut from (pruned/advanced servers stay silent).
        server.on_snapshot_request(&mut sc, &mut sfx, PeerId(1), 8, 2);
        assert!(sfx.take_sent().is_empty());

        // Joiner side: request in flight, chunks arrive out of order,
        // exactly one verified install results.
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_chunked_snapshots(8, 256);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        // Unsolicited chunks (no transfer in flight) are dropped.
        if let GossipMsg::SnapshotChunk { chunk } = &sent[0].1 {
            e.on_snapshot_chunk(&mut c, &mut fx, chunk.clone());
        }
        assert_eq!(c.stats.snapshot_chunks_received, 0);
        e.on_state_info(PeerId(2), 17, Some(snap.checkpoint));
        e.on_recovery_round(&mut c, &mut fx);
        fx.take_sent();
        for (_, m) in sent.iter().rev() {
            if let GossipMsg::SnapshotChunk { chunk } = m {
                e.on_snapshot_chunk(&mut c, &mut fx, chunk.clone());
                // Replays of an already-absorbed chunk don't count twice.
                e.on_snapshot_chunk(&mut c, &mut fx, chunk.clone());
            }
        }
        assert_eq!(c.stats.snapshot_chunks_received, sent.len() as u64);
        assert_eq!(c.stats.snapshots_installed, 1);
        assert_eq!(c.store.snapshot_floor(), 16);
        assert!(c
            .snapshot
            .as_ref()
            .is_some_and(|s| s.checkpoint == snap.checkpoint));
    }

    #[test]
    fn partial_transfer_resumes_its_missing_suffix_from_another_server() {
        use desim::Duration;
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_chunked_snapshots(8, 256);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        let snap = test_snapshot(16);
        e.on_state_info(PeerId(2), 17, Some(snap.checkpoint));
        e.on_state_info(PeerId(3), 17, Some(snap.checkpoint));
        e.on_recovery_round(&mut c, &mut fx);
        let first_server = fx.take_sent()[0].0;
        let chunks = SnapshotChunk::plan(&snap, 256 - ENVELOPE);
        assert!(chunks.len() > 2);
        // The server crashes mid-stream: only the first two chunks land.
        for chunk in chunks.iter().take(2) {
            e.on_snapshot_chunk(&mut c, &mut fx, chunk.clone());
        }
        assert_eq!(c.stats.snapshots_installed, 0);
        fx.advance(Duration::from_secs(10));
        e.on_recovery_round(&mut c, &mut fx);
        assert_eq!(c.stats.snapshot_resumes, 1);
        let sent = fx.take_sent();
        let (to, m) = sent
            .iter()
            .find(|(_, m)| matches!(m, GossipMsg::SnapshotRequest { .. }))
            .expect("a resume request");
        assert_ne!(*to, first_server, "the resume goes to a different server");
        assert!(
            matches!(
                m,
                GossipMsg::SnapshotRequest {
                    height: 16,
                    from_chunk: 2
                }
            ),
            "the resume asks for the first missing chunk, not the whole plan"
        );
        // The suffix arrives from the second server; the partial assembly
        // completes and installs exactly once.
        for chunk in chunks.iter().skip(2) {
            e.on_snapshot_chunk(&mut c, &mut fx, chunk.clone());
        }
        assert_eq!(c.stats.snapshots_installed, 1);
        assert_eq!(c.store.snapshot_floor(), 16);
        assert_eq!(c.stats.snapshot_chunks_received, chunks.len() as u64);
    }

    #[test]
    fn pruned_floor_everywhere_falls_back_to_block_recovery() {
        use desim::Duration;
        // The only checkpoint holder pruned the export this joiner wants:
        // it serves nothing, the transfer times out, and with no eligible
        // server left the round falls back cleanly to block recovery.
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_chunked_snapshots(8, 256);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        e.on_state_info(PeerId(2), 17, Some(test_snapshot(16).checkpoint));
        e.on_state_info(PeerId(3), 17, None);
        e.on_recovery_round(&mut c, &mut fx);
        assert_eq!(c.stats.snapshot_requests, 1);
        fx.take_sent();
        fx.advance(Duration::from_secs(10));
        e.on_recovery_round(&mut c, &mut fx);
        assert_eq!(c.stats.snapshot_requests, 1, "no snapshot retry loop");
        assert!(
            fx.take_sent()
                .iter()
                .any(|(_, m)| matches!(m, GossipMsg::RecoveryRequest { .. })),
            "blocks flow even though the snapshot floor is gone"
        );
    }

    #[test]
    fn departed_server_releases_the_transfer_without_waiting_out_the_timeout() {
        let mut c = core(1);
        c.cfg = GossipConfig::enhanced_f4().with_snapshots(8);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        let snap = test_snapshot(16);
        e.on_state_info(PeerId(2), 17, Some(snap.checkpoint));
        e.on_state_info(PeerId(3), 17, Some(snap.checkpoint));
        e.on_recovery_round(&mut c, &mut fx);
        let first_server = fx.take_sent()[0].0;
        // The serving peer announces its departure: its checkpoint is
        // forgotten and the very next round re-requests elsewhere — no
        // waiting out the request timeout for a peer known to be gone.
        e.on_peer_left(&mut c, &mut fx, first_server);
        e.on_recovery_round(&mut c, &mut fx);
        assert_eq!(c.stats.snapshot_requests, 2);
        assert_eq!(c.stats.snapshot_resumes, 1);
        let sent = fx.take_sent();
        let retry = sent
            .iter()
            .find(|(_, m)| matches!(m, GossipMsg::SnapshotRequest { .. }))
            .expect("an immediate re-request");
        assert_ne!(retry.0, first_server);
    }

    #[test]
    fn static_departure_of_the_leader_promotes_the_new_lowest_member() {
        // Peer 1 in a {0, 1, 2, 3} roster: peer 0 statically leads.
        let mut c = core(1);
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        // A non-leader departure changes nothing.
        c.roster.retain(|p| *p != PeerId(3));
        e.on_peer_left(&mut c, &mut fx, PeerId(3));
        assert!(!e.is_leader());
        // The leader departs: peer 1 is now the lowest member and stands up.
        c.roster.retain(|p| *p != PeerId(0));
        e.on_peer_left(&mut c, &mut fx, PeerId(0));
        assert!(e.is_leader(), "new lowest member must claim leadership");
        assert_eq!(fx.leadership, vec![true]);
    }

    #[test]
    fn dynamic_departure_clears_the_heartbeat_memory_and_height() {
        let mut c = core(1);
        c.cfg.election.dynamic = true;
        let mut e = LeadershipEngine::new(false);
        let mut fx = MockEffects::new(1);
        e.on_state_info(PeerId(0), 12, None);
        e.on_leader_heartbeat(&mut c, &mut fx, PeerId(0), Time::from_secs(1));
        e.on_peer_left(&mut c, &mut fx, PeerId(0));
        assert!(!e.is_leader(), "dynamic mode re-elects on the next tick");
        // The departed leader's height must not drive recovery requests.
        e.on_recovery_round(&mut c, &mut fx);
        assert!(
            !fx.take_sent()
                .iter()
                .any(|(_, m)| matches!(m, GossipMsg::RecoveryRequest { .. })),
            "no recovery request toward a departed peer"
        );
        // The very next election tick stands this peer up (lowest alive id
        // among the remaining members believed alive is irrelevant at time
        // zero grace — self is lowest surviving claimant here).
        fx.now = Time::from_secs(100);
        e.on_election_tick(&mut c, &mut fx);
        assert!(e.is_leader(), "announced leave skips the leader timeout");
    }
}
