//! The push engine: infect-and-die (stock Fabric) and infect-upon-contagion
//! (the paper's enhancement), including digest announcements and the
//! content-fetch retry machinery.
//!
//! The engine owns only push-private state; everything shared with the
//! other engines (store, membership, counters, configuration) lives in the
//! [`ChannelCore`] passed into every entry point, which makes the protocol
//! logic here directly unit-testable against a bare core and
//! [`crate::testing::MockEffects`].

use std::collections::{BTreeMap, HashSet};

use fabric_types::block::BlockRef;
use fabric_types::ids::PeerId;

use crate::channel::ChannelCore;
use crate::config::PushMode;
use crate::effects::Effects;
use crate::messages::{GossipMsg, GossipTimer};

/// A fetch in flight for block content announced by push digests.
#[derive(Debug, Clone, Default)]
struct PendingFetch {
    /// Counters received in digests while the content was missing; each one
    /// owes a forward once the content arrives.
    counters: Vec<u32>,
    /// Peers that advertised the block (retry candidates).
    advertisers: Vec<PeerId>,
    /// Fetch attempts made so far.
    attempts: u32,
}

/// Push-phase state of one channel instance.
#[derive(Debug, Default)]
pub struct PushEngine {
    // ---- push: original (infect-and-die) ----
    /// Blocks awaiting the buffered push flush.
    push_buffer: Vec<BlockRef>,
    /// Whether a PushFlush timer is armed.
    flush_armed: bool,

    // ---- push: enhanced (infect-upon-contagion) ----
    /// `(block, counter)` pairs already processed.
    seen_pairs: HashSet<(u64, u32)>,
    /// Content fetches in flight, by block number.
    pending_fetch: BTreeMap<u64, PendingFetch>,
    /// Pairs awaiting a buffered forward (`tpush > 0` ablation).
    forward_buffer: Vec<(BlockRef, u32)>,
}

impl PushEngine {
    /// Drops everything a process crash would lose (buffers, in-flight
    /// fetches, dedup memory is *kept* — it mirrors the store, which
    /// survives).
    pub fn clear_volatile(&mut self) {
        self.push_buffer.clear();
        self.forward_buffer.clear();
        self.flush_armed = false;
        self.pending_fetch.clear();
    }

    /// Entry point for a block delivered by the ordering service.
    pub fn on_block_from_orderer(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        block: BlockRef,
    ) {
        let num = block.number();
        let is_new = core.accept_content(fx, &block);
        if !is_new {
            return;
        }
        if !core.forwarding {
            return;
        }
        match core.cfg.push {
            PushMode::InfectAndDie { .. } => {
                // The leader pushes through the same buffered emitter as any
                // first reception (f_leader_out == fout in stock Fabric).
                self.buffer_for_push(core, fx, block);
            }
            PushMode::InfectUponContagion { .. } => {
                // Hand the block to f_leader_out random peers with counter 0;
                // they start the infect-upon-contagion dissemination.
                self.seen_pairs.insert((num, 0));
                let targets = {
                    let k = core.cfg.f_leader_out;
                    core.membership.sample(fx.rng(), k)
                };
                for t in targets {
                    core.stats.blocks_sent += 1;
                    core.send(
                        fx,
                        t,
                        GossipMsg::BlockPush {
                            block: block.clone(),
                            counter: 0,
                        },
                    );
                }
            }
        }
    }

    /// Full block content arriving with a dissemination counter.
    pub fn on_block_push(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        _from: PeerId,
        block: BlockRef,
        counter: u32,
    ) {
        let num = block.number();
        let is_new = core.accept_content(fx, &block);
        if !is_new && !core.store.has(num) {
            // Rejected payload (forged or conflicting), not a duplicate:
            // never forward it, and leave any pending fetch armed so the
            // retry rotation can reach an honest advertiser instead.
            return;
        }
        if !core.forwarding {
            return;
        }
        // Forward only content the store vouches for — on a duplicate the
        // held copy and the received one are identical unless the payload
        // conflicted, in which case the held one wins.
        let block = match core.store.get(num) {
            Some(held) if !is_new => held.clone(),
            _ => block,
        };
        match core.cfg.push {
            PushMode::InfectAndDie { .. } => {
                // Infect and die: forward only on first content reception.
                if is_new {
                    self.buffer_for_push(core, fx, block);
                }
            }
            PushMode::InfectUponContagion { ttl, .. } => {
                // Forward once per distinct counter; content arrival also
                // settles the forwards owed by digests that preceded it.
                let mut owed: Vec<u32> = Vec::new();
                if is_new {
                    if let Some(pending) = self.pending_fetch.remove(&num) {
                        owed.extend(pending.counters);
                    }
                }
                if self.seen_pairs.insert((num, counter)) {
                    owed.push(counter);
                }
                owed.sort_unstable();
                owed.dedup();
                for c in owed {
                    if c < ttl {
                        self.queue_forward(core, fx, block.clone(), c + 1);
                    }
                }
            }
        }
    }

    /// A digest announcing content this peer may lack.
    pub fn on_push_digest(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        block_num: u64,
        counter: u32,
    ) {
        core.stats.digests_received += 1;
        let PushMode::InfectUponContagion { ttl, .. } = core.cfg.push else {
            return; // digests are not part of the original protocol
        };
        if !core.forwarding {
            // A free-rider still fetches content it lacks (it wants the
            // chain) but never re-announces it.
            if !self.seen_pairs.insert((block_num, counter)) || core.store.has(block_num) {
                return;
            }
            let pending = self.pending_fetch.entry(block_num).or_default();
            pending.counters.push(counter);
            if !pending.advertisers.contains(&from) {
                pending.advertisers.push(from);
            }
            if pending.attempts == 0 {
                pending.attempts = 1;
                core.stats.fetch_requests += 1;
                core.send(fx, from, GossipMsg::PushRequest { block_num, counter });
                let timeout = core.cfg.fetch.timeout;
                core.schedule(
                    fx,
                    timeout,
                    GossipTimer::FetchRetry {
                        block_num,
                        attempt: 1,
                    },
                );
            }
            return;
        }
        if !self.seen_pairs.insert((block_num, counter)) {
            return;
        }
        if core.store.has(block_num) {
            if counter < ttl {
                let block = core
                    .store
                    .get(block_num)
                    .expect("store.has checked")
                    .clone();
                self.queue_forward(core, fx, block, counter + 1);
            }
            return;
        }
        // Content missing: fetch it, remembering the counter so the forward
        // happens when the block arrives.
        let pending = self.pending_fetch.entry(block_num).or_default();
        pending.counters.push(counter);
        if !pending.advertisers.contains(&from) {
            pending.advertisers.push(from);
        }
        let first_request = pending.attempts == 0;
        if first_request {
            pending.attempts = 1;
            core.stats.fetch_requests += 1;
            core.send(fx, from, GossipMsg::PushRequest { block_num, counter });
            let timeout = core.cfg.fetch.timeout;
            core.schedule(
                fx,
                timeout,
                GossipTimer::FetchRetry {
                    block_num,
                    attempt: 1,
                },
            );
        }
    }

    /// Serves a content request issued after one of our digests.
    pub fn on_push_request(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        block_num: u64,
        counter: u32,
    ) {
        if let Some(block) = core.store.get(block_num) {
            let block = block.clone();
            core.stats.blocks_sent += 1;
            core.send(fx, from, GossipMsg::BlockPush { block, counter });
        }
    }

    /// The fetch-retry timer: re-request missing content, rotating through
    /// the advertisers, until the attempt budget runs out.
    pub fn on_fetch_retry(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        block_num: u64,
        attempt: u32,
    ) {
        if core.store.has(block_num) {
            return; // fetched in the meantime
        }
        let max_attempts = core.cfg.fetch.max_attempts;
        let Some(pending) = self.pending_fetch.get_mut(&block_num) else {
            return;
        };
        if attempt >= max_attempts {
            // Give up; the recovery component will catch this block up.
            self.pending_fetch.remove(&block_num);
            return;
        }
        pending.attempts = attempt + 1;
        let counter = pending.counters.last().copied().unwrap_or(0);
        // Prefer an advertiser we have not asked yet (they rotate by
        // attempt); any advertiser certainly has the content.
        let advertisers = pending.advertisers.clone();
        let target = advertisers
            .get(attempt as usize % advertisers.len().max(1))
            .copied()
            .unwrap_or_else(|| {
                core.membership
                    .sample(fx.rng(), 1)
                    .first()
                    .copied()
                    .unwrap_or(core.self_id)
            });
        core.stats.fetch_requests += 1;
        core.send(fx, target, GossipMsg::PushRequest { block_num, counter });
        let timeout = core.cfg.fetch.timeout;
        core.schedule(
            fx,
            timeout,
            GossipTimer::FetchRetry {
                block_num,
                attempt: attempt + 1,
            },
        );
    }

    /// Original protocol: stage a first-reception block in the push buffer.
    fn buffer_for_push(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects, block: BlockRef) {
        let PushMode::InfectAndDie { tpush, buffer_cap } = core.cfg.push else {
            unreachable!("buffer_for_push is an infect-and-die path");
        };
        self.push_buffer.push(block);
        if self.push_buffer.len() >= buffer_cap || tpush.is_zero() {
            self.flush_push_buffer(core, fx);
        } else if !self.flush_armed {
            self.flush_armed = true;
            core.schedule(fx, tpush, GossipTimer::PushFlush);
        }
    }

    /// Enhanced protocol: forward `(block, counter)`, immediately or via the
    /// `tpush` buffer (the bias ablation).
    fn queue_forward(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        block: BlockRef,
        counter: u32,
    ) {
        let PushMode::InfectUponContagion { tpush, .. } = core.cfg.push else {
            unreachable!("queue_forward is an infect-upon-contagion path");
        };
        if tpush.is_zero() {
            self.forward_pairs(core, fx, &[(block, counter)]);
        } else {
            self.forward_buffer.push((block, counter));
            if !self.flush_armed {
                self.flush_armed = true;
                core.schedule(fx, tpush, GossipTimer::PushFlush);
            }
        }
    }

    /// The PushFlush timer: emit whatever the active protocol buffered.
    pub fn on_flush(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        self.flush_armed = false;
        match core.cfg.push {
            PushMode::InfectAndDie { .. } => self.flush_push_buffer(core, fx),
            PushMode::InfectUponContagion { .. } => {
                let items = std::mem::take(&mut self.forward_buffer);
                if !items.is_empty() {
                    self.forward_pairs(core, fx, &items);
                }
            }
        }
    }

    /// Infect-and-die flush: one random target sample shared by every
    /// buffered block (the bias the paper describes), then die.
    fn flush_push_buffer(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        if self.push_buffer.is_empty() {
            return;
        }
        let blocks = std::mem::take(&mut self.push_buffer);
        let targets = {
            let k = core.cfg.fout;
            core.membership.sample(fx.rng(), k)
        };
        for block in &blocks {
            for t in &targets {
                core.stats.blocks_sent += 1;
                core.send(
                    fx,
                    *t,
                    GossipMsg::BlockPush {
                        block: block.clone(),
                        counter: 0,
                    },
                );
            }
        }
    }

    /// Enhanced forward of one or more pairs sharing a target sample (a
    /// single pair when `tpush = 0`, the unbiased setting).
    fn forward_pairs(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        items: &[(BlockRef, u32)],
    ) {
        let PushMode::InfectUponContagion {
            ttl_direct,
            digests,
            ..
        } = core.cfg.push
        else {
            unreachable!("forward_pairs is an infect-upon-contagion path");
        };
        let targets = {
            let k = core.cfg.fout;
            core.membership.sample(fx.rng(), k)
        };
        for (block, counter) in items {
            let direct = !digests || *counter <= ttl_direct;
            for t in &targets {
                if direct {
                    core.stats.blocks_sent += 1;
                    core.send(
                        fx,
                        *t,
                        GossipMsg::BlockPush {
                            block: block.clone(),
                            counter: *counter,
                        },
                    );
                } else {
                    core.stats.digests_sent += 1;
                    core.send(
                        fx,
                        *t,
                        GossipMsg::PushDigest {
                            block_num: block.number(),
                            counter: *counter,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GossipConfig;
    use crate::testing::MockEffects;
    use fabric_types::block::Block;
    use fabric_types::ids::ChannelId;

    fn core(cfg: GossipConfig) -> ChannelCore {
        ChannelCore::new(
            ChannelId::DEFAULT,
            PeerId(5),
            (0..10).map(PeerId).collect(),
            cfg,
        )
    }

    fn block(num: u64) -> BlockRef {
        BlockRef::new(Block::new(num, fabric_types::crypto::Hash256::ZERO, vec![]))
    }

    #[test]
    fn engine_alone_forwards_per_distinct_counter() {
        let mut c = core(GossipConfig::enhanced(4, 9, 9));
        let mut e = PushEngine::default();
        let mut fx = MockEffects::new(3);
        e.on_block_push(&mut c, &mut fx, PeerId(1), block(1), 3);
        assert_eq!(fx.take_sent().len(), 4, "fout targets on first counter");
        e.on_block_push(&mut c, &mut fx, PeerId(2), block(1), 3);
        assert!(fx.take_sent().is_empty(), "same pair is silent");
        e.on_block_push(&mut c, &mut fx, PeerId(3), block(1), 5);
        assert_eq!(fx.take_sent().len(), 4, "fresh counter re-infects");
        assert_eq!(c.stats.duplicate_blocks, 2);
    }

    #[test]
    fn crash_clears_fetches_but_not_dedup_memory() {
        let mut c = core(GossipConfig::enhanced_f4());
        let mut e = PushEngine::default();
        let mut fx = MockEffects::new(3);
        e.on_push_digest(&mut c, &mut fx, PeerId(1), 7, 2);
        assert_eq!(c.stats.fetch_requests, 1);
        fx.take_sent();
        e.clear_volatile();
        e.on_fetch_retry(&mut c, &mut fx, 7, 1);
        assert!(fx.take_sent().is_empty(), "pending fetch died with crash");
    }
}
