//! Test support: a scriptable [`Effects`] implementation.
//!
//! `MockEffects` records everything the protocol asks for — sends, timers,
//! deliveries — so unit and integration tests can assert on the exact
//! behaviour of a [`crate::peer::GossipPeer`] without any engine.

use desim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fabric_types::block::BlockRef;
use fabric_types::ids::PeerId;

use crate::effects::Effects;
use crate::messages::{GossipMsg, GossipTimer};

/// A recording [`Effects`] for tests.
#[derive(Debug)]
pub struct MockEffects {
    /// The clock handed to the protocol; tests advance it directly.
    pub now: Time,
    /// Every message sent, in order.
    pub sent: Vec<(PeerId, GossipMsg)>,
    /// Every timer armed, with its delay.
    pub scheduled: Vec<(Duration, GossipTimer)>,
    /// Block numbers whose content arrived (first receptions).
    pub received: Vec<u64>,
    /// Blocks delivered in order to the application.
    pub delivered: Vec<BlockRef>,
    /// Leadership transitions observed.
    pub leadership: Vec<bool>,
    rng: StdRng,
}

impl MockEffects {
    /// A fresh mock with a deterministic RNG.
    pub fn new(seed: u64) -> Self {
        MockEffects {
            now: Time::ZERO,
            sent: Vec::new(),
            scheduled: Vec::new(),
            received: Vec::new(),
            delivered: Vec::new(),
            leadership: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Advances the mock clock.
    pub fn advance(&mut self, d: Duration) {
        self.now += d;
    }

    /// Drains and returns the sent messages.
    pub fn take_sent(&mut self) -> Vec<(PeerId, GossipMsg)> {
        std::mem::take(&mut self.sent)
    }

    /// Drains and returns the armed timers.
    pub fn take_scheduled(&mut self) -> Vec<(Duration, GossipTimer)> {
        std::mem::take(&mut self.scheduled)
    }

    /// Numbers of the blocks delivered so far.
    pub fn delivered_numbers(&self) -> Vec<u64> {
        self.delivered.iter().map(|b| b.number()).collect()
    }

    /// Messages of a given metrics kind (e.g. `"block"`, `"push-digest"`).
    pub fn sent_of_kind(&self, kind: &str) -> Vec<&(PeerId, GossipMsg)> {
        use desim::Message as _;
        self.sent.iter().filter(|(_, m)| m.kind() == kind).collect()
    }
}

impl Effects for MockEffects {
    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, to: PeerId, msg: GossipMsg) {
        self.sent.push((to, msg));
    }

    fn schedule(&mut self, after: Duration, timer: GossipTimer) {
        self.scheduled.push((after, timer));
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn block_received(&mut self, block_num: u64) {
        self.received.push(block_num);
    }

    fn deliver(&mut self, block: BlockRef) {
        self.delivered.push(block);
    }

    fn leadership_changed(&mut self, is_leader: bool) {
        self.leadership.push(is_leader);
    }
}
