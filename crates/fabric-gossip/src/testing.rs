//! Test support: a scriptable [`Effects`] implementation.
//!
//! `MockEffects` records everything the protocol asks for — sends, timers,
//! deliveries — so unit and integration tests can assert on the exact
//! behaviour of a [`crate::peer::GossipPeer`] without any engine. Sends and
//! timers are stored once, channel-tagged; the historical channel-less
//! accessors ([`MockEffects::take_sent`], [`MockEffects::take_scheduled`],
//! [`MockEffects::sent_of_kind`]) project the tag away so single-channel
//! tests read exactly as before.
//!
//! The scripted multi-peer network that used to live here grew into the
//! adversarial scenario engine and moved to [`crate::scenario`];
//! [`DiscoveryHarness`] is re-exported so existing test imports keep
//! working.

use desim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};

use crate::effects::Effects;
use crate::messages::{GossipMsg, GossipTimer};

pub use crate::scenario::DiscoveryHarness;

/// A recording [`Effects`] for tests.
#[derive(Debug)]
pub struct MockEffects {
    /// The clock handed to the protocol; tests advance it directly.
    pub now: Time,
    /// Every message sent, in order, tagged with its channel.
    pub sent_on: Vec<(ChannelId, PeerId, GossipMsg)>,
    /// Every timer armed, with its delay, tagged with its channel.
    pub scheduled_on: Vec<(Duration, ChannelId, GossipTimer)>,
    /// Block numbers whose content arrived (first receptions).
    pub received: Vec<u64>,
    /// First receptions tagged with their channel.
    pub received_on: Vec<(ChannelId, u64)>,
    /// Blocks delivered in order to the application.
    pub delivered: Vec<BlockRef>,
    /// Deliveries tagged with their channel.
    pub delivered_on: Vec<(ChannelId, u64)>,
    /// Leadership transitions observed.
    pub leadership: Vec<bool>,
    /// Leadership transitions tagged with their channel.
    pub leadership_on: Vec<(ChannelId, bool)>,
    /// Discovery-driven view changes: `(channel, peer, joined)`.
    pub discovery_events: Vec<(ChannelId, PeerId, bool)>,
    /// Snapshots verified and installed, tagged with their channel.
    pub installed: Vec<(ChannelId, fabric_types::snapshot::SnapshotRef)>,
    rng: StdRng,
}

impl MockEffects {
    /// A fresh mock with a deterministic RNG.
    pub fn new(seed: u64) -> Self {
        MockEffects {
            now: Time::ZERO,
            sent_on: Vec::new(),
            scheduled_on: Vec::new(),
            received: Vec::new(),
            received_on: Vec::new(),
            delivered: Vec::new(),
            delivered_on: Vec::new(),
            leadership: Vec::new(),
            leadership_on: Vec::new(),
            discovery_events: Vec::new(),
            installed: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Advances the mock clock.
    pub fn advance(&mut self, d: Duration) {
        self.now += d;
    }

    /// Drains and returns the sent messages, channel tags projected away.
    pub fn take_sent(&mut self) -> Vec<(PeerId, GossipMsg)> {
        self.take_sent_on()
            .into_iter()
            .map(|(_, to, msg)| (to, msg))
            .collect()
    }

    /// Drains and returns the sent messages with their channel tags.
    pub fn take_sent_on(&mut self) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        std::mem::take(&mut self.sent_on)
    }

    /// Drains and returns the armed timers, channel tags projected away.
    pub fn take_scheduled(&mut self) -> Vec<(Duration, GossipTimer)> {
        self.take_scheduled_on()
            .into_iter()
            .map(|(after, _, timer)| (after, timer))
            .collect()
    }

    /// Drains and returns the armed timers with their channel tags.
    pub fn take_scheduled_on(&mut self) -> Vec<(Duration, ChannelId, GossipTimer)> {
        std::mem::take(&mut self.scheduled_on)
    }

    /// Numbers of the blocks delivered so far (any channel).
    pub fn delivered_numbers(&self) -> Vec<u64> {
        self.delivered.iter().map(|b| b.number()).collect()
    }

    /// Messages of a given metrics kind (e.g. `"block"`, `"push-digest"`)
    /// still pending in the record, as `(target, message)` pairs.
    pub fn sent_of_kind(&self, kind: &str) -> Vec<(PeerId, &GossipMsg)> {
        use desim::Message as _;
        self.sent_on
            .iter()
            .filter(|(_, _, m)| m.kind() == kind)
            .map(|(_, to, m)| (*to, m))
            .collect()
    }
}

impl Effects for MockEffects {
    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, channel: ChannelId, to: PeerId, msg: GossipMsg) {
        self.sent_on.push((channel, to, msg));
    }

    fn schedule(&mut self, after: Duration, channel: ChannelId, timer: GossipTimer) {
        self.scheduled_on.push((after, channel, timer));
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn block_received(&mut self, channel: ChannelId, block_num: u64) {
        self.received.push(block_num);
        self.received_on.push((channel, block_num));
    }

    fn deliver(&mut self, channel: ChannelId, block: BlockRef) {
        self.delivered_on.push((channel, block.number()));
        self.delivered.push(block);
    }

    fn leadership_changed(&mut self, channel: ChannelId, is_leader: bool) {
        self.leadership.push(is_leader);
        self.leadership_on.push((channel, is_leader));
    }

    fn discovery_event(&mut self, channel: ChannelId, peer: PeerId, joined: bool) {
        self.discovery_events.push((channel, peer, joined));
    }

    fn snapshot_installed(
        &mut self,
        channel: ChannelId,
        snapshot: &fabric_types::snapshot::SnapshotRef,
    ) {
        self.installed.push((channel, snapshot.clone()));
    }
}
