//! Test support: a scriptable [`Effects`] implementation and a scripted
//! multi-peer discovery harness.
//!
//! `MockEffects` records everything the protocol asks for — sends, timers,
//! deliveries — so unit and integration tests can assert on the exact
//! behaviour of a [`crate::peer::GossipPeer`] without any engine. Sends and
//! timers are stored once, channel-tagged; the historical channel-less
//! accessors ([`MockEffects::take_sent`], [`MockEffects::take_scheduled`],
//! [`MockEffects::sent_of_kind`]) project the tag away so single-channel
//! tests read exactly as before.
//!
//! [`DiscoveryHarness`] drives a whole network of peers under a **scripted
//! clock**: it owns every peer's timer queue, fires due timers in
//! deterministic order, delivers messages with zero latency, and supports
//! drop/partition injection — the substrate for convergence tests of the
//! gossiped discovery protocol, where joins and leaves must propagate
//! through `AliveMsg`/anti-entropy alone (no oracle callbacks).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use desim::{Duration, Time};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};

use crate::config::GossipConfig;
use crate::effects::Effects;
use crate::messages::{GossipMsg, GossipTimer};
use crate::peer::GossipPeer;

/// A recording [`Effects`] for tests.
#[derive(Debug)]
pub struct MockEffects {
    /// The clock handed to the protocol; tests advance it directly.
    pub now: Time,
    /// Every message sent, in order, tagged with its channel.
    pub sent_on: Vec<(ChannelId, PeerId, GossipMsg)>,
    /// Every timer armed, with its delay, tagged with its channel.
    pub scheduled_on: Vec<(Duration, ChannelId, GossipTimer)>,
    /// Block numbers whose content arrived (first receptions).
    pub received: Vec<u64>,
    /// First receptions tagged with their channel.
    pub received_on: Vec<(ChannelId, u64)>,
    /// Blocks delivered in order to the application.
    pub delivered: Vec<BlockRef>,
    /// Deliveries tagged with their channel.
    pub delivered_on: Vec<(ChannelId, u64)>,
    /// Leadership transitions observed.
    pub leadership: Vec<bool>,
    /// Leadership transitions tagged with their channel.
    pub leadership_on: Vec<(ChannelId, bool)>,
    /// Discovery-driven view changes: `(channel, peer, joined)`.
    pub discovery_events: Vec<(ChannelId, PeerId, bool)>,
    rng: StdRng,
}

impl MockEffects {
    /// A fresh mock with a deterministic RNG.
    pub fn new(seed: u64) -> Self {
        MockEffects {
            now: Time::ZERO,
            sent_on: Vec::new(),
            scheduled_on: Vec::new(),
            received: Vec::new(),
            received_on: Vec::new(),
            delivered: Vec::new(),
            delivered_on: Vec::new(),
            leadership: Vec::new(),
            leadership_on: Vec::new(),
            discovery_events: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Advances the mock clock.
    pub fn advance(&mut self, d: Duration) {
        self.now += d;
    }

    /// Drains and returns the sent messages, channel tags projected away.
    pub fn take_sent(&mut self) -> Vec<(PeerId, GossipMsg)> {
        self.take_sent_on()
            .into_iter()
            .map(|(_, to, msg)| (to, msg))
            .collect()
    }

    /// Drains and returns the sent messages with their channel tags.
    pub fn take_sent_on(&mut self) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        std::mem::take(&mut self.sent_on)
    }

    /// Drains and returns the armed timers, channel tags projected away.
    pub fn take_scheduled(&mut self) -> Vec<(Duration, GossipTimer)> {
        self.take_scheduled_on()
            .into_iter()
            .map(|(after, _, timer)| (after, timer))
            .collect()
    }

    /// Drains and returns the armed timers with their channel tags.
    pub fn take_scheduled_on(&mut self) -> Vec<(Duration, ChannelId, GossipTimer)> {
        std::mem::take(&mut self.scheduled_on)
    }

    /// Numbers of the blocks delivered so far (any channel).
    pub fn delivered_numbers(&self) -> Vec<u64> {
        self.delivered.iter().map(|b| b.number()).collect()
    }

    /// Messages of a given metrics kind (e.g. `"block"`, `"push-digest"`)
    /// still pending in the record, as `(target, message)` pairs.
    pub fn sent_of_kind(&self, kind: &str) -> Vec<(PeerId, &GossipMsg)> {
        use desim::Message as _;
        self.sent_on
            .iter()
            .filter(|(_, _, m)| m.kind() == kind)
            .map(|(_, to, m)| (*to, m))
            .collect()
    }
}

impl Effects for MockEffects {
    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, channel: ChannelId, to: PeerId, msg: GossipMsg) {
        self.sent_on.push((channel, to, msg));
    }

    fn schedule(&mut self, after: Duration, channel: ChannelId, timer: GossipTimer) {
        self.scheduled_on.push((after, channel, timer));
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn block_received(&mut self, channel: ChannelId, block_num: u64) {
        self.received.push(block_num);
        self.received_on.push((channel, block_num));
    }

    fn deliver(&mut self, channel: ChannelId, block: BlockRef) {
        self.delivered_on.push((channel, block.number()));
        self.delivered.push(block);
    }

    fn leadership_changed(&mut self, channel: ChannelId, is_leader: bool) {
        self.leadership.push(is_leader);
        self.leadership_on.push((channel, is_leader));
    }

    fn discovery_event(&mut self, channel: ChannelId, peer: PeerId, joined: bool) {
        self.discovery_events.push((channel, peer, joined));
    }
}

/// One armed timer of the harness, ordered by `(at, seq)` so same-instant
/// timers fire in arming order (deterministic, like the simulator).
#[derive(Debug)]
struct HarnessTimer {
    at: Time,
    seq: u64,
    peer: usize,
    channel: ChannelId,
    timer: GossipTimer,
}

impl PartialEq for HarnessTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HarnessTimer {}
impl PartialOrd for HarnessTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HarnessTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A scripted multi-peer network for discovery-protocol tests.
///
/// Unlike the oracle-style lockstep routers used before the discovery
/// protocol existed, the harness **never** calls
/// [`GossipPeer::on_peer_joined`] / [`GossipPeer::on_peer_left`] on
/// sitting members: a join is only the joiner's own
/// [`GossipPeer::join_channel_live`] (whose discovery engine announces
/// it), and a leave is only the leaver dropping its instance — everyone
/// else must find out through gossip. The clock is scripted: timers fire
/// under [`DiscoveryHarness::run_for`] in deterministic `(time, arming)`
/// order, messages deliver with zero latency, and links can drop
/// ([`DiscoveryHarness::set_loss`]) or partition
/// ([`DiscoveryHarness::partition`]).
#[derive(Debug)]
pub struct DiscoveryHarness {
    peers: Vec<GossipPeer>,
    fxs: Vec<MockEffects>,
    now: Time,
    timers: BinaryHeap<Reverse<HarnessTimer>>,
    timer_seq: u64,
    /// Ground-truth membership per channel (what the script did), for
    /// convergence assertions.
    members: Vec<Vec<PeerId>>,
    /// Symmetric blocked links (partition injection).
    blocked: HashSet<(u32, u32)>,
    /// Independent per-message loss probability.
    loss: f64,
    loss_rng: StdRng,
    outbox: VecDeque<(PeerId, ChannelId, PeerId, GossipMsg)>,
}

impl DiscoveryHarness {
    /// Builds and initializes `n` peers; peer `i` starts joined to every
    /// channel whose member list contains it. Every peer's timers are
    /// armed (discovery announces each initial member to its samples) and
    /// the resulting traffic is routed to quiescence at `t = 0`.
    pub fn new(n: usize, memberships: Vec<Vec<PeerId>>, cfg: &GossipConfig) -> Self {
        let peers: Vec<GossipPeer> = (0..n as u32)
            .map(|i| {
                let mut peer = GossipPeer::with_channels(PeerId(i), cfg.clone());
                for (c, members) in memberships.iter().enumerate() {
                    if members.contains(&PeerId(i)) {
                        peer = peer.join_channel(ChannelId(c as u16), members.clone());
                    }
                }
                peer
            })
            .collect();
        let fxs: Vec<MockEffects> = (0..n as u64).map(|i| MockEffects::new(9_000 + i)).collect();
        let mut harness = DiscoveryHarness {
            peers,
            fxs,
            now: Time::ZERO,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            members: memberships,
            blocked: HashSet::new(),
            loss: 0.0,
            loss_rng: StdRng::seed_from_u64(77),
            outbox: VecDeque::new(),
        };
        for i in 0..harness.peers.len() {
            harness.fxs[i].now = harness.now;
            harness.peers[i].init(&mut harness.fxs[i]);
            harness.drain_effects(i);
        }
        harness.route();
        harness
    }

    /// The scripted clock's current instant.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The gossip state of peer `i`.
    pub fn gossip(&self, i: usize) -> &GossipPeer {
        &self.peers[i]
    }

    /// The recorded effects of peer `i` (deliveries, discovery events...).
    pub fn effects(&self, i: usize) -> &MockEffects {
        &self.fxs[i]
    }

    /// Ground-truth members of channel `c` (what the script enacted).
    pub fn members(&self, c: usize) -> &[PeerId] {
        &self.members[c]
    }

    /// Sets the independent per-message loss probability.
    pub fn set_loss(&mut self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
    }

    /// Blocks (or unblocks) the link between `a` and `b`, both directions.
    pub fn set_link(&mut self, a: PeerId, b: PeerId, up: bool) {
        let key = (a.0.min(b.0), a.0.max(b.0));
        if up {
            self.blocked.remove(&key);
        } else {
            self.blocked.insert(key);
        }
    }

    /// Partitions the network into `groups`: every link between two
    /// different groups is blocked (links inside a group are restored).
    pub fn partition(&mut self, groups: &[Vec<PeerId>]) {
        self.heal();
        for (gi, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(gi + 1) {
                for a in ga {
                    for b in gb {
                        self.set_link(*a, *b, false);
                    }
                }
            }
        }
    }

    /// Removes every block and resets loss to zero.
    pub fn heal(&mut self) {
        self.blocked.clear();
        self.loss = 0.0;
    }

    /// Runs the network for `d` of scripted time: fires every timer due in
    /// the window (in deterministic order), routing all resulting traffic
    /// with zero latency.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        loop {
            match self.timers.peek() {
                Some(Reverse(entry)) if entry.at <= deadline => {
                    let Reverse(entry) = self.timers.pop().expect("peeked");
                    self.now = self.now.max(entry.at);
                    let i = entry.peer;
                    self.fxs[i].now = self.now;
                    self.peers[i].on_channel_timer(&mut self.fxs[i], entry.channel, entry.timer);
                    self.drain_effects(i);
                    self.route();
                }
                _ => break,
            }
        }
        self.now = deadline;
    }

    /// Runtime join, discovery-style: **only the joiner acts** — it joins
    /// live with the sitting membership as its roster and its discovery
    /// engine announces the join; nobody else is told anything.
    pub fn join(&mut self, c: usize, peer: PeerId) {
        if self.members[c].contains(&peer) {
            return;
        }
        let roster = self.members[c].clone();
        let idx = peer.index();
        self.fxs[idx].now = self.now;
        self.peers[idx].join_channel_live(&mut self.fxs[idx], ChannelId(c as u16), roster);
        self.drain_effects(idx);
        self.members[c].push(peer);
        self.route();
    }

    /// Runtime leave, discovery-style: **only the leaver acts** — it drops
    /// its instance and goes silent; the sitting members must detect the
    /// departure by alive-timeout expiry and spread the obituary.
    pub fn leave(&mut self, c: usize, peer: PeerId) {
        let Some(pos) = self.members[c].iter().position(|m| *m == peer) else {
            return;
        };
        self.members[c].remove(pos);
        self.peers[peer.index()].leave_channel(ChannelId(c as u16));
    }

    /// Injects block `num` of channel `c` at its lowest current member (as
    /// the ordering service would) and routes to quiescence.
    pub fn inject(&mut self, c: usize, block: BlockRef) {
        let Some(seed_peer) = self.members[c].iter().min().copied() else {
            return;
        };
        let idx = seed_peer.index();
        self.fxs[idx].now = self.now;
        self.peers[idx].on_block_from_orderer_on(&mut self.fxs[idx], ChannelId(c as u16), block);
        self.drain_effects(idx);
        self.route();
    }

    /// Peer `m`'s organization view of channel `c`, in id order.
    pub fn view_of(&self, m: PeerId, c: usize) -> Vec<PeerId> {
        let mut view = self.peers[m.index()]
            .membership_on(ChannelId(c as u16))
            .map(|mem| mem.peers().to_vec())
            .unwrap_or_default();
        view.sort_unstable();
        view
    }

    /// Whether every current member of channel `c` sees exactly the other
    /// current members — the convergence predicate of the discovery
    /// protocol.
    pub fn views_converged(&self, c: usize) -> bool {
        self.divergent_views(c).is_empty()
    }

    /// Members of channel `c` whose view does **not** match the ground
    /// truth, with their views — for assertion messages.
    pub fn divergent_views(&self, c: usize) -> Vec<(PeerId, Vec<PeerId>)> {
        self.members[c]
            .iter()
            .filter_map(|m| {
                let mut expected: Vec<PeerId> =
                    self.members[c].iter().copied().filter(|p| p != m).collect();
                expected.sort_unstable();
                let got = self.view_of(*m, c);
                (got != expected).then_some((*m, got))
            })
            .collect()
    }

    /// Current leaders of channel `c` among its current members.
    pub fn leaders(&self, c: usize) -> Vec<PeerId> {
        self.members[c]
            .iter()
            .copied()
            .filter(|m| self.peers[m.index()].is_leader_on(ChannelId(c as u16)))
            .collect()
    }

    /// Moves peer `i`'s recorded sends and timers into the harness queues.
    fn drain_effects(&mut self, i: usize) {
        for (after, channel, timer) in self.fxs[i].take_scheduled_on() {
            self.timer_seq += 1;
            self.timers.push(Reverse(HarnessTimer {
                at: self.fxs[i].now + after,
                seq: self.timer_seq,
                peer: i,
                channel,
                timer,
            }));
        }
        for (channel, to, msg) in self.fxs[i].take_sent_on() {
            self.outbox.push_back((PeerId(i as u32), channel, to, msg));
        }
    }

    /// Delivers queued messages (and whatever they trigger) until quiet,
    /// applying loss and blocked links.
    fn route(&mut self) {
        while let Some((from, channel, to, msg)) = self.outbox.pop_front() {
            let key = (from.0.min(to.0), from.0.max(to.0));
            if self.blocked.contains(&key) {
                continue;
            }
            if self.loss > 0.0 && self.loss_rng.random_bool(self.loss) {
                continue;
            }
            let i = to.index();
            if i >= self.peers.len() {
                continue;
            }
            self.fxs[i].now = self.now;
            self.peers[i].on_channel_message(&mut self.fxs[i], channel, from, msg);
            self.drain_effects(i);
        }
    }
}
