//! The gossip layer's block store and in-order payload buffer.
//!
//! Gossip receives blocks in arbitrary order; the application (ledger)
//! wants them in height order. The store keeps every block it has seen
//! (serving pull, push-digest fetches and recovery) and tracks the
//! contiguous prefix already handed to the application.

use std::collections::BTreeMap;

use fabric_types::block::BlockRef;

/// Block storage plus payload-buffer bookkeeping for one peer.
///
/// Heights are 1-based: block 0 (genesis) is implicit, and `next_expected`
/// starts at 1.
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    blocks: BTreeMap<u64, BlockRef>,
    next_expected: u64,
    /// Highest block number absorbed through a snapshot (0: none). Blocks
    /// at or below the floor are logically delivered without being held.
    snapshot_floor: u64,
}

impl BlockStore {
    /// An empty store expecting block 1.
    pub fn new() -> Self {
        BlockStore {
            blocks: BTreeMap::new(),
            next_expected: 1,
            snapshot_floor: 0,
        }
    }

    /// Whether block `num` is present (snapshot-absorbed numbers count).
    pub fn has(&self, num: u64) -> bool {
        num <= self.snapshot_floor || self.blocks.contains_key(&num)
    }

    /// Highest block number absorbed through a snapshot (0 when the peer
    /// never installed one). Everything above it was individually
    /// received and replayed.
    pub fn snapshot_floor(&self) -> u64 {
        self.snapshot_floor
    }

    /// Installs a snapshot covering every block up to and including
    /// `height`: jumps the delivery cursor past the floor, drops any
    /// individually held block the snapshot absorbs, and returns the run
    /// of already-buffered tail blocks that just became deliverable (in
    /// order). No-op returning an empty run when the store is already at
    /// or past `height + 1`.
    pub fn adopt_snapshot(&mut self, height: u64) -> Vec<BlockRef> {
        if height < self.next_expected {
            return Vec::new();
        }
        self.snapshot_floor = self.snapshot_floor.max(height);
        self.blocks = self.blocks.split_off(&(height + 1));
        self.next_expected = height + 1;
        let mut deliverable = Vec::new();
        while let Some(next) = self.blocks.get(&self.next_expected) {
            deliverable.push(next.clone());
            self.next_expected += 1;
        }
        deliverable
    }

    /// The block at height `num`, if present.
    pub fn get(&self, num: u64) -> Option<&BlockRef> {
        self.blocks.get(&num)
    }

    /// Contiguous ledger height: every block below `height()` has been
    /// delivered to the application. Equals 1 + the last delivered number.
    pub fn height(&self) -> u64 {
        self.next_expected
    }

    /// Highest block number seen so far (0 when empty), contiguous or not.
    pub fn max_seen(&self) -> u64 {
        self.blocks.keys().next_back().copied().unwrap_or(0)
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when no block has been stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether `block` *conflicts* with what the store already holds at the
    /// same height: a block is present at `block.number()` whose header
    /// hash differs. Honest dissemination re-serves the identical block
    /// (a plain duplicate, never a conflict); a conflicting payload is
    /// equivocation and must be rejected, not merely deduplicated.
    pub fn conflicts_with(&self, block: &BlockRef) -> bool {
        self.blocks
            .get(&block.number())
            .is_some_and(|held| held.hash() != block.hash())
    }

    /// Inserts a block. Returns `None` if it was already present; otherwise
    /// returns the blocks that just became deliverable in order (possibly
    /// empty while a gap remains).
    pub fn insert(&mut self, block: BlockRef) -> Option<Vec<BlockRef>> {
        let num = block.number();
        if num <= self.snapshot_floor || self.blocks.contains_key(&num) {
            return None;
        }
        self.blocks.insert(num, block);
        let mut deliverable = Vec::new();
        while let Some(next) = self.blocks.get(&self.next_expected) {
            deliverable.push(next.clone());
            self.next_expected += 1;
        }
        Some(deliverable)
    }

    /// Block numbers available in `[lo, hi]`, for pull digests and
    /// recovery responses.
    pub fn available_in(&self, lo: u64, hi: u64) -> Vec<u64> {
        self.blocks.range(lo..=hi).map(|(n, _)| *n).collect()
    }

    /// The most recent `window` block numbers present (pull digest body).
    pub fn recent(&self, window: u64) -> Vec<u64> {
        let hi = self.max_seen();
        let lo = hi.saturating_sub(window.saturating_sub(1)).max(1);
        self.available_in(lo, hi)
    }

    /// Blocks serving a recovery request for `[from, to]`, capped at
    /// `batch_max` and truncated at the first gap (recovery transfers a
    /// consecutive run so the receiver's prefix extends).
    pub fn consecutive_run(&self, from: u64, to: u64, batch_max: u64) -> Vec<BlockRef> {
        let mut out = Vec::new();
        let mut n = from;
        while n <= to && (out.len() as u64) < batch_max {
            match self.blocks.get(&n) {
                Some(b) => out.push(b.clone()),
                None => break,
            }
            n += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::block::Block;
    use fabric_types::crypto::Hash256;
    fn block(num: u64) -> BlockRef {
        BlockRef::new(Block::new(num, Hash256::ZERO, vec![]))
    }

    #[test]
    fn in_order_insertion_delivers_immediately() {
        let mut store = BlockStore::new();
        assert_eq!(store.insert(block(1)).unwrap().len(), 1);
        assert_eq!(store.insert(block(2)).unwrap().len(), 1);
        assert_eq!(store.height(), 3);
    }

    #[test]
    fn gap_defers_delivery_until_filled() {
        let mut store = BlockStore::new();
        assert_eq!(store.insert(block(2)).unwrap().len(), 0);
        assert_eq!(store.insert(block(3)).unwrap().len(), 0);
        assert_eq!(store.height(), 1);
        let run = store.insert(block(1)).unwrap();
        assert_eq!(
            run.iter().map(|b| b.number()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(store.height(), 4);
    }

    #[test]
    fn duplicate_insert_returns_none() {
        let mut store = BlockStore::new();
        store.insert(block(1));
        assert!(store.insert(block(1)).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn conflicting_same_height_block_is_detected_duplicate_is_not() {
        let mut store = BlockStore::new();
        store.insert(block(1));
        assert!(
            !store.conflicts_with(&block(1)),
            "the identical block is a duplicate, not a conflict"
        );
        let forged = BlockRef::new(Block::new(1, Hash256::ZERO, vec![]).with_padding(7));
        // Padding is not hashed, so build a genuinely different header.
        let conflicting = BlockRef::new(Block::new(1, Hash256([9u8; 32]), vec![]));
        assert!(!store.conflicts_with(&forged), "same header: no conflict");
        assert!(store.conflicts_with(&conflicting));
        assert!(
            !store.conflicts_with(&block(2)),
            "absent height: no conflict"
        );
    }

    #[test]
    fn genesis_is_implicitly_present() {
        let store = BlockStore::new();
        assert!(store.has(0));
        assert!(!store.has(1));
        assert!(BlockStore::new().insert(block(0)).is_none());
    }

    #[test]
    fn max_seen_tracks_highest_regardless_of_gaps() {
        let mut store = BlockStore::new();
        store.insert(block(7));
        store.insert(block(3));
        assert_eq!(store.max_seen(), 7);
        assert_eq!(store.height(), 1);
    }

    #[test]
    fn recent_window_returns_last_numbers() {
        let mut store = BlockStore::new();
        for n in 1..=10 {
            store.insert(block(n));
        }
        assert_eq!(store.recent(3), vec![8, 9, 10]);
        assert_eq!(store.recent(100), (1..=10).collect::<Vec<_>>());
        assert!(BlockStore::new().recent(5).is_empty());
    }

    #[test]
    fn consecutive_run_truncates_at_gap_and_cap() {
        let mut store = BlockStore::new();
        for n in [1u64, 2, 3, 5, 6] {
            store.insert(block(n));
        }
        let run = store.consecutive_run(1, 6, 10);
        assert_eq!(
            run.iter().map(|b| b.number()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let capped = store.consecutive_run(1, 6, 2);
        assert_eq!(capped.len(), 2);
        assert!(store.consecutive_run(4, 6, 10).is_empty());
    }

    #[test]
    fn adopt_snapshot_jumps_cursor_and_frees_absorbed_blocks() {
        let mut store = BlockStore::new();
        // Buffered out-of-order tail plus some blocks the snapshot absorbs.
        for n in [1u64, 2, 9, 10, 12] {
            store.insert(block(n));
        }
        assert_eq!(store.height(), 3);
        let run = store.adopt_snapshot(8);
        assert_eq!(
            run.iter().map(|b| b.number()).collect::<Vec<_>>(),
            vec![9, 10],
            "buffered tail above the floor delivers immediately"
        );
        assert_eq!(store.height(), 11);
        assert_eq!(store.snapshot_floor(), 8);
        assert_eq!(store.len(), 3, "absorbed 1 and 2 are dropped, tail stays");
        assert!(store.has(5), "absorbed numbers count as present");
        assert!(store.has(12));
        assert!(!store.has(11));
        // Re-pushing an absorbed block is a no-op, the tail still works.
        assert!(store.insert(block(3)).is_none());
        assert_eq!(store.insert(block(11)).unwrap().len(), 2);
        assert_eq!(store.height(), 13);
    }

    #[test]
    fn adopt_snapshot_behind_the_cursor_is_a_no_op() {
        let mut store = BlockStore::new();
        for n in 1..=6 {
            store.insert(block(n));
        }
        assert_eq!(store.height(), 7);
        assert!(store.adopt_snapshot(4).is_empty());
        assert_eq!(store.height(), 7);
        assert_eq!(store.snapshot_floor(), 0, "stale snapshot leaves no floor");
        assert_eq!(store.len(), 6);
    }

    #[test]
    fn available_in_is_range_inclusive() {
        let mut store = BlockStore::new();
        for n in 1..=5 {
            store.insert(block(n));
        }
        assert_eq!(store.available_in(2, 4), vec![2, 3, 4]);
    }
}
