//! Gossiped discovery: the membership protocol that replaces the
//! embedding's synchronous join/leave oracle.
//!
//! Fabric peers do not learn channel membership from an omniscient
//! coordinator; they learn it from each other. Each peer periodically
//! gossips an [`GossipMsg::AliveMsg`] heartbeat carrying its own
//! [`PeerAlive`] claim — a `(incarnation, seq)` pair that is strictly
//! monotonic across that peer's lives — and periodically push–pulls its
//! whole alive view with one random peer
//! ([`GossipMsg::MembershipRequest`] / [`GossipMsg::MembershipResponse`]).
//! Receivers merge claims by freshness, so:
//!
//! * a **join** is simply the first claim heard about an unknown peer
//!   (directly from the joiner's announcement heartbeat, or relayed by
//!   anti-entropy);
//! * a **leave** is silence: the departed peer's claim stops refreshing,
//!   [`crate::membership::Membership::believes_alive`] turns false after
//!   the alive timeout, and the sweep **reaps** the entry — recording an
//!   obituary (the incarnation the peer died at) that anti-entropy then
//!   spreads, so one peer's timeout detection becomes everyone's;
//! * a **false death** (drops or a partition) is refuted: a peer that
//!   learns it was declared dead bumps its incarnation above the obituary
//!   and resurrects in every view, while demoting itself to the junior end
//!   of the roster — matching where every other peer re-seats it — so
//!   static-leadership seniority stays consistent.
//!
//! The engine owns only discovery-private state (claims, obituaries, its
//! own incarnation/seq). Everything shared lives in the
//! [`ChannelCore`]; membership *consequences* — roster edits, view edits,
//! leader re-election — are returned as a [`DiscoveryDelta`] and applied
//! by [`crate::channel::ChannelState`], which also fires
//! [`Effects::discovery_event`] per change so embeddings can measure
//! convergence and stale-view windows.

use std::collections::BTreeMap;

use desim::Duration;
use rand::RngExt;

use crate::channel::{random_phase, ChannelCore};
use crate::effects::Effects;
use crate::messages::{GossipMsg, GossipTimer, PeerAlive};
use fabric_types::ids::PeerId;

/// Membership consequences of one discovery step, to be applied by the
/// channel dispatcher (the engine cannot reach its sibling engines).
#[derive(Debug, Default)]
pub struct DiscoveryDelta {
    /// Peers that entered the alive view (joins and resurrections).
    pub joined: Vec<PeerId>,
    /// Peers reaped from the alive view (expired silent or learned dead).
    pub left: Vec<PeerId>,
    /// Peers observed starting a **new life without ever being reaped
    /// here**: a strictly higher incarnation displaced a live claim (the
    /// peer left and rejoined faster than this view could expire it).
    /// Membership is untouched — the entry just stays — but the embedding
    /// is told about both halves (a leave observation, then a join
    /// observation) so convergence accounting never dangles.
    pub renewed: Vec<PeerId>,
    /// This peer learned it was declared dead and refuted the obituary:
    /// it must demote itself to roster juniority and, under static
    /// election, drop any leadership claim (its seat was reassigned).
    pub self_deposed: bool,
}

impl DiscoveryDelta {
    /// Whether the step changed nothing.
    pub fn is_empty(&self) -> bool {
        self.joined.is_empty()
            && self.left.is_empty()
            && self.renewed.is_empty()
            && !self.self_deposed
    }
}

/// Discovery state of one channel instance.
#[derive(Debug, Default)]
pub struct DiscoveryEngine {
    /// This life's incarnation; 0 until [`DiscoveryEngine::init`] runs.
    incarnation: u64,
    /// Heartbeats emitted this life.
    seq: u64,
    /// Freshest claim held per peer (self excluded).
    view: BTreeMap<PeerId, PeerAlive>,
    /// Obituaries: the incarnation each reaped peer died at. A claim only
    /// resurrects its peer when its incarnation is **strictly** higher.
    dead: BTreeMap<PeerId, u64>,
    /// An observer life: this peer was handed a roster excluding itself
    /// (a deliberate non-member), so it ranks junior to every member and
    /// never claims static seniority while anyone else sits.
    junior: bool,
    /// Anti-entropy rounds run this life (drives the delta mode's
    /// periodic full-view fallback).
    ae_round: u64,
    /// A membership-level change (join, leave, renewal, refutation) was
    /// observed since the last heartbeat round — adaptive cadence snaps
    /// back to base when set.
    churned: bool,
    /// Consecutive quiet heartbeat rounds.
    quiet_rounds: u32,
    /// Current heartbeat back-off multiplier (1 = base cadence).
    backoff: u32,
}

impl DiscoveryEngine {
    /// This life's incarnation (0 before init).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The freshest claim held about `peer`, if any.
    pub fn claim_of(&self, peer: PeerId) -> Option<&PeerAlive> {
        self.view.get(&peer)
    }

    /// The obituary incarnation of `peer`, if it was reaped.
    pub fn obituary_of(&self, peer: PeerId) -> Option<u64> {
        self.dead.get(&peer).copied()
    }

    /// Every claim currently held about other peers, in id order.
    pub fn claims(&self) -> impl Iterator<Item = &PeerAlive> {
        self.view.values()
    }

    /// Every obituary held, as `(peer, incarnation-it-died-at)`, in id
    /// order.
    pub fn obituary_iter(&self) -> impl Iterator<Item = (PeerId, u64)> + '_ {
        self.dead.iter().map(|(p, inc)| (*p, *inc))
    }

    /// Drops what a process crash would lose: the merged view, the
    /// obituaries and the heartbeat counter. The incarnation is kept so
    /// the next [`DiscoveryEngine::init`] picks a strictly higher one.
    pub fn clear_volatile(&mut self) {
        self.view.clear();
        self.dead.clear();
        self.seq = 0;
        self.ae_round = 0;
        self.churned = false;
        self.quiet_rounds = 0;
        self.backoff = 1;
    }

    /// Starts this life: picks a fresh incarnation (strictly above any
    /// previous one), seeds the view with the roster handed at join time
    /// (first contact counts from `now`, mirroring the membership grace),
    /// **announces itself** with an immediate heartbeat to `fout` members
    /// — this is how a runtime joiner propagates its own join, with no
    /// oracle broadcasting on its behalf — and arms the periodic timers.
    pub fn init(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let now = fx.now();
        self.incarnation = now.as_nanos().max(1).max(self.incarnation + 1);
        self.seq = 0;
        self.ae_round = 0;
        self.churned = true; // a fresh join is churn: start at base cadence
        self.quiet_rounds = 0;
        self.backoff = 1;
        self.junior = self.junior || !core.roster.contains(&core.self_id);
        for peer in core.membership.peers().to_vec() {
            self.view.entry(peer).or_insert(PeerAlive {
                peer,
                incarnation: 0,
                seq: 0,
            });
            core.membership.mark_alive(peer, now);
            core.channel_view.mark_alive(peer, now);
        }
        self.heartbeat(core, fx);
        let hb_phase = random_phase(fx, core.cfg.discovery.heartbeat_interval);
        core.schedule(fx, hb_phase, GossipTimer::DiscoveryRound);
        let ae_phase = random_phase(fx, core.cfg.discovery.anti_entropy_interval);
        core.schedule(fx, ae_phase, GossipTimer::AntiEntropyRound);
    }

    /// The DiscoveryRound timer: heartbeat, then sweep — reap every view
    /// entry whose silence outlived the alive timeout (the
    /// `believes_alive` machinery is the single source of expiry truth).
    /// Under [`crate::config::DiscoveryConfig::adaptive_heartbeat`] the
    /// next round is scheduled at the backed-off cadence.
    pub fn on_round(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) -> DiscoveryDelta {
        self.heartbeat(core, fx);
        let mut delta = DiscoveryDelta::default();
        let now = fx.now();
        let expired: Vec<PeerId> = self
            .view
            .keys()
            .copied()
            .filter(|p| !core.membership.believes_alive(*p, now))
            .collect();
        for peer in expired {
            self.reap(peer, &mut delta);
        }
        let interval = self.next_round_interval(core, &delta);
        core.schedule(fx, interval, GossipTimer::DiscoveryRound);
        delta
    }

    /// The cadence of the next heartbeat/sweep round. Base interval unless
    /// adaptive cadence is on; then a channel quiet for
    /// `quiet_rounds_to_backoff` consecutive rounds doubles its interval up
    /// to `max_heartbeat_backoff`×, clamped to a third of the alive timeout
    /// — everyone must keep hearing a backed-off peer well inside their
    /// expiry window, and true-death detection lag stays bounded by one
    /// (clamped) interval past the timeout. Any membership change —
    /// observed mid-interval through gossip or by this round's sweep —
    /// snaps straight back to base.
    fn next_round_interval(&mut self, core: &ChannelCore, delta: &DiscoveryDelta) -> Duration {
        let cfg = &core.cfg.discovery;
        let base = cfg.heartbeat_interval;
        if !cfg.adaptive_heartbeat {
            return base;
        }
        let churned = self.churned || !delta.is_empty();
        self.churned = false;
        if churned {
            self.quiet_rounds = 0;
            self.backoff = 1;
            return base;
        }
        self.quiet_rounds = self.quiet_rounds.saturating_add(1);
        if self.quiet_rounds >= cfg.quiet_rounds_to_backoff
            && self.backoff < cfg.max_heartbeat_backoff
        {
            self.backoff = (self.backoff.saturating_mul(2)).min(cfg.max_heartbeat_backoff);
        }
        let cap = core.cfg.membership.alive_timeout / 3;
        (base * u64::from(self.backoff)).min(cap).max(base)
    }

    /// The AntiEntropyRound timer: exchange membership with one random
    /// live member — plus one **tombstone probe** to a random reaped peer.
    /// If the "dead" peer is in fact alive (a false death, e.g. across a
    /// healed partition), the obituary about itself it finds in the probe
    /// lets it refute, which is the only way two sides that reaped each
    /// other ever reconnect.
    ///
    /// In the classic format the push is the full view
    /// ([`GossipMsg::MembershipRequest`]); under
    /// [`crate::config::DiscoveryConfig::delta`] it is the compact digest
    /// ([`GossipMsg::MembershipDigest`]) — same claims, fewer bytes — with
    /// the full request kept every `full_exchange_every`-th round as a
    /// self-healing fallback.
    pub fn on_anti_entropy_round(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let mut targets = core.membership.sample(fx.rng(), 1);
        if !self.dead.is_empty() {
            let keys: Vec<PeerId> = self.dead.keys().copied().collect();
            let pick = fx.rng().random_range(0..keys.len());
            targets.push(keys[pick]);
        }
        let full = !core.cfg.discovery.delta
            || self
                .ae_round
                .is_multiple_of(u64::from(core.cfg.discovery.full_exchange_every.max(1)));
        self.ae_round += 1;
        for to in targets {
            let entries = self.entries_with_self(core);
            let dead = self.obituaries();
            let request = if full {
                GossipMsg::MembershipRequest { entries, dead }
            } else {
                GossipMsg::MembershipDigest { entries, dead }
            };
            core.send(fx, to, request);
        }
        let interval = core.cfg.discovery.anti_entropy_interval;
        core.schedule(fx, interval, GossipTimer::AntiEntropyRound);
    }

    /// An [`GossipMsg::AliveMsg`] heartbeat arrived.
    pub fn on_alive(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        claim: PeerAlive,
    ) -> DiscoveryDelta {
        let mut delta = DiscoveryDelta::default();
        self.merge(core, fx, claim, &mut delta);
        delta
    }

    /// A [`GossipMsg::MembershipRequest`] arrived: merge the requester's
    /// view and obituaries, answer with ours.
    pub fn on_membership_request(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        entries: Vec<PeerAlive>,
        dead: Vec<PeerAlive>,
    ) -> DiscoveryDelta {
        let mut delta = DiscoveryDelta::default();
        for claim in entries {
            self.merge(core, fx, claim, &mut delta);
        }
        for obituary in dead {
            self.apply_death(core, fx, obituary, &mut delta);
        }
        let response = GossipMsg::MembershipResponse {
            entries: self.entries_with_self(core),
            dead: self.obituaries(),
        };
        core.send(fx, from, response);
        delta
    }

    /// A [`GossipMsg::MembershipDigest`] arrived (delta anti-entropy):
    /// merge the requester's claims — the digest carries full
    /// `(incarnation, seq)` freshness, so it teaches exactly what a
    /// full-view request would — then answer with **only** the claims and
    /// obituaries the digest proves the requester is missing or holds
    /// stale. When there is nothing to teach, no response is sent at all
    /// (a full-view response carrying no strictly-fresher claims would
    /// have been merged into nothing anyway).
    pub fn on_membership_digest(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        entries: Vec<PeerAlive>,
        dead: Vec<PeerAlive>,
    ) -> DiscoveryDelta {
        // Index the digest before merging: the response must be judged
        // against what the requester *claimed to know*, not against the
        // view we are about to teach ourselves from it.
        let claimed: BTreeMap<PeerId, (u64, u64)> = entries
            .iter()
            .map(|c| (c.peer, (c.incarnation, c.seq)))
            .collect();
        let claimed_dead: BTreeMap<PeerId, u64> =
            dead.iter().map(|o| (o.peer, o.incarnation)).collect();

        let mut delta = DiscoveryDelta::default();
        for claim in entries {
            self.merge(core, fx, claim, &mut delta);
        }
        for obituary in dead {
            self.apply_death(core, fx, obituary, &mut delta);
        }

        let self_claim = PeerAlive {
            peer: core.self_id,
            incarnation: self.incarnation,
            seq: self.seq,
        };
        let response_entries: Vec<PeerAlive> = std::iter::once(self_claim)
            .chain(self.view.values().copied())
            .filter(|claim| {
                let fresher_than_digest = match claimed.get(&claim.peer) {
                    Some(&(inc, seq)) => (claim.incarnation, claim.seq) > (inc, seq),
                    None => true,
                };
                // A claim the requester's own obituary outranks would be
                // rejected on arrival; skip it.
                let outranked = claimed_dead
                    .get(&claim.peer)
                    .is_some_and(|&obit| claim.incarnation <= obit);
                fresher_than_digest && !outranked
            })
            .collect();
        let response_dead: Vec<PeerAlive> = self
            .dead
            .iter()
            .filter(|(p, &inc)| {
                let requester_knows = claimed_dead.get(p).is_some_and(|&theirs| theirs >= inc);
                let superseded = claimed
                    .get(p)
                    .is_some_and(|&(their_inc, _)| their_inc > inc);
                !requester_knows && !superseded
            })
            .map(|(p, &inc)| PeerAlive {
                peer: *p,
                incarnation: inc,
                seq: 0,
            })
            .collect();
        if !(response_entries.is_empty() && response_dead.is_empty()) {
            core.send(
                fx,
                from,
                GossipMsg::MembershipDelta {
                    entries: response_entries,
                    dead: response_dead,
                },
            );
        }
        delta
    }

    /// A [`GossipMsg::MembershipResponse`] arrived: merge the responder's
    /// view and apply its obituaries.
    pub fn on_membership_response(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        entries: Vec<PeerAlive>,
        dead: Vec<PeerAlive>,
    ) -> DiscoveryDelta {
        let mut delta = DiscoveryDelta::default();
        for claim in entries {
            self.merge(core, fx, claim, &mut delta);
        }
        for obituary in dead {
            self.apply_death(core, fx, obituary, &mut delta);
        }
        delta
    }

    /// Emits one heartbeat: bump `seq`, gossip the fresh claim to `fout`
    /// random members.
    fn heartbeat(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        self.seq += 1;
        let claim = PeerAlive {
            peer: core.self_id,
            incarnation: self.incarnation,
            seq: self.seq,
        };
        let targets = {
            let k = core.cfg.fout;
            core.membership.sample(fx.rng(), k)
        };
        for t in targets {
            core.send(fx, t, GossipMsg::AliveMsg(claim));
        }
    }

    /// Whether this peer is the most **senior** member it knows of:
    /// seniority ranks by `(incarnation, id)` — initial members (who all
    /// share the deployment-start incarnation) rank in id order, runtime
    /// joiners rank by join time, and a refuted false death demotes (the
    /// refutation bumps the incarnation). This is the static-leadership
    /// rule of protocol-discovery channels: because it is computed from
    /// the gossiped view, it converges to exactly one claimant as the
    /// views converge — something a roster-order rule cannot promise when
    /// peers reap and resurrect each other in different orders.
    ///
    /// Seeded entries (incarnation 0, placed at init for the handed
    /// roster) and genuine deployment-start claims (incarnation ≥ 1, all
    /// equal) are ranked alike via `max(1)`, so holding a seed instead of
    /// the real claim never changes the order.
    pub fn self_is_most_senior(&self, core: &ChannelCore) -> bool {
        let me = if self.junior {
            (u64::MAX, core.self_id)
        } else {
            (self.incarnation.max(1), core.self_id)
        };
        core.membership.peers().iter().all(|p| {
            let rank = self
                .view
                .get(p)
                .map_or((1, *p), |c| (c.incarnation.max(1), *p));
            me < rank
        })
    }

    /// The recorded obituaries, serialized for the wire.
    fn obituaries(&self) -> Vec<PeerAlive> {
        self.dead
            .iter()
            .map(|(p, inc)| PeerAlive {
                peer: *p,
                incarnation: *inc,
                seq: 0,
            })
            .collect()
    }

    /// Every claim this peer would share: its own (current incarnation and
    /// seq) plus the whole merged view.
    fn entries_with_self(&self, core: &ChannelCore) -> Vec<PeerAlive> {
        let mut entries = Vec::with_capacity(1 + self.view.len());
        entries.push(PeerAlive {
            peer: core.self_id,
            incarnation: self.incarnation,
            seq: self.seq,
        });
        entries.extend(self.view.values().copied());
        entries
    }

    /// Merges one alive claim by freshness. A claim about an unknown (or
    /// reaped-then-renewed) peer is a join; a strictly fresher claim about
    /// a known peer refreshes its liveness; anything else is stale noise.
    fn merge(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        claim: PeerAlive,
        delta: &mut DiscoveryDelta,
    ) {
        let peer = claim.peer;
        if peer == core.self_id {
            return; // nobody knows this peer's life better than itself
        }
        if let Some(obituary) = self.dead.get(&peer).copied() {
            if claim.incarnation <= obituary {
                return; // no resurrection without a strictly higher life
            }
            self.dead.remove(&peer);
            self.view.insert(peer, claim);
            self.churned = true;
            delta.joined.push(peer);
            return;
        }
        match self.view.get(&peer) {
            None => {
                self.view.insert(peer, claim);
                if !core.membership.peers().contains(&peer) {
                    self.churned = true;
                    delta.joined.push(peer);
                } else {
                    // Already a member (seeded roster raced the claim):
                    // just refresh.
                    let now = fx.now();
                    core.membership.mark_alive(peer, now);
                    core.channel_view.mark_alive(peer, now);
                }
            }
            Some(held) if claim.fresher_than(held) => {
                // A higher incarnation over a *live* claim is a rejoin
                // this view never saw as a leave — report the renewal so
                // the embedding's leave/join accounting completes. Seed
                // displacement (incarnation 0 → first real claim) is
                // first contact, not a renewal.
                if claim.incarnation > held.incarnation && held.incarnation > 0 {
                    self.churned = true;
                    delta.renewed.push(peer);
                }
                self.view.insert(peer, claim);
                let now = fx.now();
                core.membership.mark_alive(peer, now);
                core.channel_view.mark_alive(peer, now);
            }
            Some(_) => {} // stale relay: must not refresh liveness
        }
    }

    /// Applies one obituary: deaths win ties (equal incarnation means the
    /// peer really fell silent in that life), refutation beats both (a
    /// live peer bumps above its own obituary).
    fn apply_death(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        obituary: PeerAlive,
        delta: &mut DiscoveryDelta,
    ) {
        let peer = obituary.peer;
        if peer == core.self_id {
            if obituary.incarnation >= self.incarnation {
                // Refute: claim a strictly higher life and accept the
                // demotion (the seat was reassigned while we were
                // presumed dead).
                self.incarnation = (obituary.incarnation + 1).max(fx.now().as_nanos().max(1));
                self.seq = 0;
                self.churned = true;
                delta.self_deposed = true;
            }
            return;
        }
        match self.view.get(&peer) {
            Some(held) if held.incarnation > obituary.incarnation => {
                // We know a newer life: the obituary is history.
            }
            Some(_) => self.reap_at(peer, obituary.incarnation, delta),
            None => {
                let entry = self.dead.entry(peer).or_insert(obituary.incarnation);
                *entry = (*entry).max(obituary.incarnation);
            }
        }
    }

    /// Reaps `peer` at the incarnation currently held for it.
    fn reap(&mut self, peer: PeerId, delta: &mut DiscoveryDelta) {
        let at = self.view.get(&peer).map_or(0, |c| c.incarnation);
        self.reap_at(peer, at, delta);
    }

    fn reap_at(&mut self, peer: PeerId, incarnation: u64, delta: &mut DiscoveryDelta) {
        self.view.remove(&peer);
        let entry = self.dead.entry(peer).or_insert(incarnation);
        *entry = (*entry).max(incarnation);
        self.churned = true;
        delta.left.push(peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GossipConfig;
    use crate::testing::MockEffects;
    use desim::{Duration, Time};
    use fabric_types::ids::ChannelId;

    fn core(self_id: u32, n: u32) -> ChannelCore {
        ChannelCore::new(
            ChannelId::DEFAULT,
            PeerId(self_id),
            (0..n).map(PeerId).collect(),
            GossipConfig::enhanced_f4().with_discovery_protocol(),
        )
    }

    #[test]
    fn init_announces_and_arms_both_timers() {
        let mut c = core(1, 4);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(1);
        fx.now = Time::from_secs(30);
        e.init(&mut c, &mut fx);
        assert!(e.incarnation() >= Time::from_secs(30).as_nanos());
        let sent = fx.take_sent();
        assert!(
            sent.iter()
                .all(|(_, m)| matches!(m, GossipMsg::AliveMsg(c) if c.peer == PeerId(1))),
            "init announces this peer's own claim"
        );
        assert!(!sent.is_empty());
        let timers: Vec<GossipTimer> = fx.take_scheduled().into_iter().map(|(_, t)| t).collect();
        assert!(timers.contains(&GossipTimer::DiscoveryRound));
        assert!(timers.contains(&GossipTimer::AntiEntropyRound));
        // The seeded roster got join-time grace: nobody is reaped yet.
        let delta = e.on_round(&mut c, &mut fx);
        assert!(delta.left.is_empty());
    }

    #[test]
    fn reinit_always_picks_a_strictly_higher_incarnation() {
        let mut c = core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(2);
        e.init(&mut c, &mut fx); // at t = 0: incarnation is the 1 floor
        let first = e.incarnation();
        e.clear_volatile();
        e.init(&mut c, &mut fx); // clock did not move
        assert!(e.incarnation() > first, "a reboot is a strictly newer life");
    }

    #[test]
    fn unknown_claim_is_a_join_and_stale_claims_do_not_refresh() {
        let mut c = core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(3);
        e.init(&mut c, &mut fx);
        let newcomer = PeerAlive {
            peer: PeerId(9),
            incarnation: 50,
            seq: 4,
        };
        let delta = e.on_alive(&mut c, &mut fx, newcomer);
        assert_eq!(delta.joined, vec![PeerId(9)]);
        // The dispatcher (ChannelState) is who adds it to the membership;
        // at engine level the claim is now held.
        assert_eq!(e.claim_of(PeerId(9)), Some(&newcomer));

        // A stale relay (same claim again) is not a join and must not
        // refresh anything.
        let delta = e.on_alive(&mut c, &mut fx, newcomer);
        assert!(delta.is_empty());
    }

    #[test]
    fn silence_reaps_and_equal_incarnation_cannot_resurrect() {
        let mut c = core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(4);
        e.init(&mut c, &mut fx);
        let life = PeerAlive {
            peer: PeerId(1),
            incarnation: 10,
            seq: 3,
        };
        e.on_alive(&mut c, &mut fx, life);
        // Silence past the alive timeout (25 s default): the sweep reaps.
        fx.now = Time::from_secs(60);
        let delta = e.on_round(&mut c, &mut fx);
        assert!(delta.left.contains(&PeerId(1)));
        assert_eq!(e.obituary_of(PeerId(1)), Some(10));

        // Same-incarnation claims are stale echoes of the dead life.
        let echo = PeerAlive {
            peer: PeerId(1),
            incarnation: 10,
            seq: 99,
        };
        assert!(e.on_alive(&mut c, &mut fx, echo).is_empty());
        // A strictly higher incarnation is a genuine new life.
        let reborn = PeerAlive {
            peer: PeerId(1),
            incarnation: 11,
            seq: 1,
        };
        let delta = e.on_alive(&mut c, &mut fx, reborn);
        assert_eq!(delta.joined, vec![PeerId(1)]);
        assert_eq!(e.obituary_of(PeerId(1)), None);
    }

    #[test]
    fn faster_than_timeout_rejoin_is_reported_as_a_renewal() {
        let mut c = core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(11);
        e.init(&mut c, &mut fx);
        let first_life = PeerAlive {
            peer: PeerId(1),
            incarnation: 10,
            seq: 5,
        };
        // Displacing the seed (incarnation 0) is first contact, never a
        // renewal.
        assert!(e.on_alive(&mut c, &mut fx, first_life).renewed.is_empty());
        // The peer leaves and rejoins before this view's timeout expires:
        // the higher incarnation over a live claim is the only trace.
        let second_life = PeerAlive {
            peer: PeerId(1),
            incarnation: 20,
            seq: 1,
        };
        let delta = e.on_alive(&mut c, &mut fx, second_life);
        assert_eq!(delta.renewed, vec![PeerId(1)]);
        assert!(delta.joined.is_empty() && delta.left.is_empty());
        // Same-incarnation progress is an ordinary refresh.
        let heartbeat = PeerAlive {
            peer: PeerId(1),
            incarnation: 20,
            seq: 2,
        };
        assert!(e.on_alive(&mut c, &mut fx, heartbeat).is_empty());
    }

    #[test]
    fn channel_reports_a_renewal_as_leave_then_join_events() {
        use crate::peer::GossipPeer;
        use fabric_types::ids::ChannelId;

        let roster: Vec<PeerId> = (0..3).map(PeerId).collect();
        let cfg = GossipConfig::enhanced_f4().with_discovery_protocol();
        let mut peer = GossipPeer::new(PeerId(0), roster, cfg);
        let mut fx = MockEffects::new(12);
        peer.init(&mut fx);
        let alive = |inc, seq| {
            GossipMsg::AliveMsg(PeerAlive {
                peer: PeerId(1),
                incarnation: inc,
                seq,
            })
        };
        peer.on_channel_message(&mut fx, ChannelId::DEFAULT, PeerId(1), alive(10, 3));
        fx.discovery_events.clear();
        peer.on_channel_message(&mut fx, ChannelId::DEFAULT, PeerId(1), alive(20, 1));
        assert_eq!(
            fx.discovery_events,
            vec![
                (ChannelId::DEFAULT, PeerId(1), false),
                (ChannelId::DEFAULT, PeerId(1), true),
            ],
            "a renewal must surface as leave-observed then join-observed"
        );
        // Membership itself never flinched.
        assert!(peer.membership().peers().contains(&PeerId(1)));
    }

    #[test]
    fn request_answers_with_view_and_obituaries() {
        let mut c = core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(5);
        e.init(&mut c, &mut fx);
        fx.take_sent();
        // Reap peer 2 first so the response carries an obituary.
        fx.now = Time::from_secs(60);
        e.on_round(&mut c, &mut fx);
        fx.take_sent();
        fx.take_scheduled();
        let delta = e.on_membership_request(&mut c, &mut fx, PeerId(1), vec![], vec![]);
        assert!(delta.is_empty(), "an empty digest teaches nothing");
        let sent = fx.take_sent();
        assert_eq!(sent.len(), 1);
        let (to, msg) = &sent[0];
        assert_eq!(*to, PeerId(1));
        match msg {
            GossipMsg::MembershipResponse { entries, dead } => {
                assert!(entries.iter().any(|e| e.peer == PeerId(0)), "self included");
                assert!(!dead.is_empty(), "obituaries travel with the response");
            }
            other => panic!("expected a membership response, got {other:?}"),
        }
    }

    #[test]
    fn obituary_about_self_is_refuted_with_a_higher_life() {
        let mut c = core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(6);
        e.init(&mut c, &mut fx);
        let my_death = PeerAlive {
            peer: PeerId(0),
            incarnation: e.incarnation(),
            seq: 0,
        };
        let delta = e.on_membership_response(&mut c, &mut fx, vec![], vec![my_death]);
        assert!(delta.self_deposed, "a refutation concedes the old seat");
        assert!(e.incarnation() > my_death.incarnation);
        // An obituary for a life we already outgrew is ignored.
        let old_death = PeerAlive {
            peer: PeerId(0),
            incarnation: 1,
            seq: 0,
        };
        let delta = e.on_membership_response(&mut c, &mut fx, vec![], vec![old_death]);
        assert!(!delta.self_deposed);
    }

    #[test]
    fn obituaries_spread_deaths_but_newer_lives_survive_them() {
        let mut c = core(0, 4);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(7);
        e.init(&mut c, &mut fx);
        e.on_alive(
            &mut c,
            &mut fx,
            PeerAlive {
                peer: PeerId(1),
                incarnation: 7,
                seq: 2,
            },
        );
        e.on_alive(
            &mut c,
            &mut fx,
            PeerAlive {
                peer: PeerId(2),
                incarnation: 9,
                seq: 1,
            },
        );
        let deaths = vec![
            PeerAlive {
                peer: PeerId(1),
                incarnation: 7,
                seq: 0,
            },
            PeerAlive {
                peer: PeerId(2),
                incarnation: 8, // we hold incarnation 9: obituary is history
                seq: 0,
            },
        ];
        let delta = e.on_membership_response(&mut c, &mut fx, vec![], deaths);
        assert_eq!(delta.left, vec![PeerId(1)]);
        assert!(e.claim_of(PeerId(2)).is_some(), "newer life survives");
    }

    fn delta_core(self_id: u32, n: u32) -> ChannelCore {
        ChannelCore::new(
            ChannelId::DEFAULT,
            PeerId(self_id),
            (0..n).map(PeerId).collect(),
            GossipConfig::enhanced_f4().with_delta_discovery(),
        )
    }

    #[test]
    fn delta_rounds_send_digests_with_periodic_full_fallback() {
        let mut c = delta_core(0, 5);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(21);
        e.init(&mut c, &mut fx);
        fx.take_sent();
        fx.take_scheduled();
        let every = c.cfg.discovery.full_exchange_every as usize;
        let mut kinds = Vec::new();
        for _ in 0..(2 * every) {
            e.on_anti_entropy_round(&mut c, &mut fx);
            for (_, msg) in fx.take_sent() {
                kinds.push(match msg {
                    GossipMsg::MembershipRequest { .. } => "full",
                    GossipMsg::MembershipDigest { .. } => "digest",
                    other => panic!("unexpected anti-entropy message {other:?}"),
                });
            }
        }
        assert_eq!(kinds.iter().filter(|k| **k == "full").count(), 2);
        assert_eq!(kinds[0], "full", "bootstrap round runs the full exchange");
        assert!(kinds[1..every].iter().all(|k| *k == "digest"));
        assert_eq!(kinds[every], "full", "every Nth round falls back to full");
    }

    #[test]
    fn digest_reply_carries_only_missing_or_stale_claims() {
        let mut c = delta_core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(22);
        e.init(&mut c, &mut fx);
        // Hold a fresh claim about 9 and a stale view of 1.
        let nine = PeerAlive {
            peer: PeerId(9),
            incarnation: 40,
            seq: 2,
        };
        e.on_alive(&mut c, &mut fx, nine);
        let one_old = PeerAlive {
            peer: PeerId(1),
            incarnation: 10,
            seq: 1,
        };
        e.on_alive(&mut c, &mut fx, one_old);
        fx.take_sent();
        // The requester's digest: current on 9, fresher on 1 and 2 (we
        // hold only 2's roster seed), silent on us.
        let digest = vec![
            nine,
            PeerAlive {
                peer: PeerId(1),
                incarnation: 10,
                seq: 7,
            },
            PeerAlive {
                peer: PeerId(2),
                incarnation: 5,
                seq: 5,
            },
        ];
        let delta = e.on_membership_digest(&mut c, &mut fx, PeerId(2), digest, vec![]);
        assert!(delta.is_empty(), "digest taught membership nothing new");
        // We adopted the fresher claim about 1.
        assert_eq!(e.claim_of(PeerId(1)).unwrap().seq, 7);
        let sent = fx.take_sent();
        assert_eq!(sent.len(), 1);
        match &sent[0].1 {
            GossipMsg::MembershipDelta { entries, dead } => {
                // Only our self-claim is news to the requester: it already
                // held 9 at our freshness and beat us on 1.
                assert_eq!(entries.len(), 1, "delta over-shared: {entries:?}");
                assert_eq!(entries[0].peer, PeerId(0));
                assert!(dead.is_empty());
            }
            other => panic!("expected a delta, got {other:?}"),
        }
    }

    #[test]
    fn digest_exchange_with_nothing_to_teach_sends_no_reply() {
        let mut c = delta_core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(23);
        e.init(&mut c, &mut fx);
        fx.take_sent();
        // The requester already knows our exact claim and everything else
        // we hold (the seeded roster entries are incarnation-0 seeds the
        // digest filter treats as stale-or-equal).
        let digest = vec![
            PeerAlive {
                peer: PeerId(0),
                incarnation: e.incarnation(),
                seq: 1,
            },
            PeerAlive {
                peer: PeerId(1),
                incarnation: 5,
                seq: 5,
            },
            PeerAlive {
                peer: PeerId(2),
                incarnation: 5,
                seq: 5,
            },
        ];
        e.on_membership_digest(&mut c, &mut fx, PeerId(1), digest, vec![]);
        assert!(
            fx.take_sent().is_empty(),
            "a fully-current requester needs no delta"
        );
    }

    #[test]
    fn digest_obituaries_spread_and_refute_like_full_ones() {
        let mut c = delta_core(0, 3);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(24);
        e.init(&mut c, &mut fx);
        // An obituary about us inside a digest triggers the refutation.
        let my_death = PeerAlive {
            peer: PeerId(0),
            incarnation: e.incarnation(),
            seq: 0,
        };
        let delta = e.on_membership_digest(&mut c, &mut fx, PeerId(1), vec![], vec![my_death]);
        assert!(delta.self_deposed);
        assert!(e.incarnation() > my_death.incarnation);
        // A reaped peer we know about travels in the delta's dead list
        // when the requester doesn't know it.
        fx.now = Time::from_secs(60);
        e.on_round(&mut c, &mut fx);
        fx.take_sent();
        let delta = e.on_membership_digest(&mut c, &mut fx, PeerId(1), vec![], vec![]);
        let _ = delta;
        let sent = fx.take_sent();
        assert_eq!(sent.len(), 1);
        match &sent[0].1 {
            GossipMsg::MembershipDelta { dead, .. } => {
                assert!(!dead.is_empty(), "unknown obituaries must travel");
            }
            other => panic!("expected a delta, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_cadence_backs_off_when_quiet_and_snaps_back_on_churn() {
        let mut c = delta_core(0, 4);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(25);
        e.init(&mut c, &mut fx);
        fx.take_scheduled();
        let base = c.cfg.discovery.heartbeat_interval;
        let keep_alive = |e: &mut DiscoveryEngine, c: &mut ChannelCore, fx: &mut MockEffects| {
            // Keep the roster fresh so the sweep itself stays quiet.
            let now = fx.now;
            for p in 1..4 {
                c.membership.mark_alive(PeerId(p), now);
                c.channel_view.mark_alive(PeerId(p), now);
            }
            let _ = e;
        };
        let mut intervals = Vec::new();
        for _ in 0..8 {
            keep_alive(&mut e, &mut c, &mut fx);
            e.on_round(&mut c, &mut fx);
            let timers = fx.take_scheduled();
            let (after, _) = timers
                .iter()
                .find(|(_, t)| *t == GossipTimer::DiscoveryRound)
                .expect("round rearms itself");
            intervals.push(*after);
            fx.advance(*after);
        }
        // First round still base (init counted as churn), later rounds
        // backed off, and never beyond a third of the alive timeout.
        assert_eq!(intervals[0], base);
        let cap = c.cfg.membership.alive_timeout / 3;
        let max = *intervals.iter().max().unwrap();
        assert!(max > base, "quiet channel must back off: {intervals:?}");
        assert!(max <= cap.max(base), "cap violated: {max} > {cap}");
        // Churn — a brand-new joiner — snaps the cadence back to base.
        let newcomer = PeerAlive {
            peer: PeerId(9),
            incarnation: 77,
            seq: 1,
        };
        e.on_alive(&mut c, &mut fx, newcomer);
        keep_alive(&mut e, &mut c, &mut fx);
        c.membership.mark_alive(PeerId(9), fx.now);
        e.on_round(&mut c, &mut fx);
        let timers = fx.take_scheduled();
        let (after, _) = timers
            .iter()
            .find(|(_, t)| *t == GossipTimer::DiscoveryRound)
            .expect("round rearms itself");
        assert_eq!(*after, base, "churn must snap the cadence back");
    }

    #[test]
    fn fixed_cadence_is_untouched_without_the_adaptive_flag() {
        let mut c = core(0, 4); // plain protocol mode: adaptive off
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(26);
        e.init(&mut c, &mut fx);
        fx.take_scheduled();
        let base = c.cfg.discovery.heartbeat_interval;
        for _ in 0..6 {
            let now = fx.now;
            for p in 1..4 {
                c.membership.mark_alive(PeerId(p), now);
            }
            e.on_round(&mut c, &mut fx);
            let timers = fx.take_scheduled();
            let (after, _) = timers
                .iter()
                .find(|(_, t)| *t == GossipTimer::DiscoveryRound)
                .expect("round rearms itself");
            assert_eq!(*after, base, "PR 4 cadence must stay byte-identical");
            fx.advance(*after);
        }
    }

    #[test]
    fn anti_entropy_round_targets_one_member() {
        let mut c = core(0, 5);
        let mut e = DiscoveryEngine::default();
        let mut fx = MockEffects::new(8);
        e.init(&mut c, &mut fx);
        fx.take_sent();
        fx.take_scheduled();
        e.on_anti_entropy_round(&mut c, &mut fx);
        let sent = fx.take_sent();
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].1, GossipMsg::MembershipRequest { .. }));
        let timers: Vec<(Duration, GossipTimer)> = fx.take_scheduled();
        assert_eq!(
            timers,
            vec![(
                c.cfg.discovery.anti_entropy_interval,
                GossipTimer::AntiEntropyRound
            )]
        );
    }
}
