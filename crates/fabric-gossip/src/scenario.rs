//! Adversarial scenario engine: a scripted **and** seeded-random
//! op-sequence DSL over a multi-peer discovery network, with Byzantine
//! fault injection.
//!
//! The substrate is [`DiscoveryHarness`] (moved here from
//! [`crate::testing`], which still re-exports it): a whole network of
//! [`GossipPeer`]s under a scripted clock — the harness owns every peer's
//! timer queue, fires due timers in deterministic `(time, arming)` order,
//! delivers messages with zero latency, and injects faults (loss,
//! blocked links, partitions, crashes).
//!
//! On top of it sit three layers:
//!
//! * **The op DSL** — [`ScenarioOp`]: `Join`, `Leave`, `Crash` (silent
//!   stop, no leave), `Partition`, `Heal`, `DropLink`, `SetLoss`, `Wait`
//!   and `Assert(predicate)`, applied by
//!   [`DiscoveryHarness::run_script`]. Scripts are plain data: tests
//!   write them literally, property tests generate them with
//!   [`random_scenario`] and shrink them on failure.
//! * **Reusable predicates** — [`Predicate`]: view agreement,
//!   exactly-one-leader, no-resurrection-below-obituary, gap-free
//!   catch-up and convergence-within-bound, checked by
//!   [`DiscoveryHarness::check`].
//! * **Byzantine peers** — the [`Byzantine`] trait wraps a designated
//!   peer's traffic: every protocol-emitted outbound message passes
//!   through [`Byzantine::on_outbound`] (drop, rewrite, amplify), every
//!   delivery to the compromised peer is wiretapped by
//!   [`Byzantine::on_inbound`], and each of the attacker's timer fires
//!   grants an injection opportunity via [`Byzantine::on_step`]. The
//!   underlying peer keeps running the honest protocol — the attacker is
//!   a *man-on-its-own-wire*, exactly the power a compromised process
//!   has. Five discovery-layer behaviors ship: [`StaleReplayer`],
//!   [`ObituaryForger`], [`SelectiveForwarder`], [`Flooder`] and
//!   [`Eclipser`]. On top of them:
//!
//!   - **Coalitions** — several Byzantine peers coordinate through a
//!     shared [`SideChannel`] (pooled wiretap intel plus named signals):
//!     [`CoalitionForger`] forges at the coalition's *pooled* freshest
//!     incarnation and announces what it buried, and every
//!     [`RefutationSuppressor`] scrubs exactly that refutation from its
//!     own wire.
//!   - **Adaptive attackers** — the [`Adaptive`] trait splits a campaign
//!     into `observe` (wiretap) and `act` (react to what was observed);
//!     [`Adaptively`] attaches one as a [`Byzantine`] behavior.
//!     [`LeaderHunter`] targets whichever peer currently claims
//!     leadership and re-forges after observing an incarnation bump.
//!   - **Dissemination-layer attackers** — [`Withholder`] advertises
//!     blocks but never serves payloads toward its targets;
//!     [`Equivocator`] serves conflicting payloads for the same height to
//!     different peers; [`SnapshotPoisoner`] serves corrupted snapshots.
//!     All are classified through the wiretap hooks on
//!     [`GossipMsg::carries_blocks`] / [`GossipMsg::map_blocks`].
//!
//! ## Determinism contract
//!
//! Every run of the same scenario over the same harness configuration is
//! bit-identical. The harness owns four RNG streams, all fixed-seeded:
//! per-peer protocol RNGs (seeds `9000 + i`), the attacker RNG (seed
//! [`DiscoveryHarness::ATTACK_SEED`]), and the loss RNG. The loss stream
//! is **epoch-reseeded**: every [`DiscoveryHarness::set_loss`] (and
//! [`DiscoveryHarness::heal`], which routes through it) re-seeds the
//! loss RNG as a pure function of the base seed and the count of
//! loss-rate changes so far — so the drop decisions after the *k*-th
//! change never depend on how many messages earlier phases happened to
//! route, and a scenario prefix can be edited without scrambling the
//! loss pattern of everything after the next `SetLoss`/`Heal`.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use desim::{Duration, Message as _, Time};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, ClientId, PeerId, TxId};
use fabric_types::rwset::RwSet;
use fabric_types::transaction::Transaction;

use crate::config::GossipConfig;
use crate::messages::{GossipMsg, GossipTimer, PeerAlive};
use crate::peer::GossipPeer;
use crate::testing::MockEffects;

/// One armed timer of the harness, ordered by `(at, seq)` so same-instant
/// timers fire in arming order (deterministic, like the simulator).
#[derive(Debug)]
struct HarnessTimer {
    at: Time,
    seq: u64,
    peer: usize,
    /// Timer epoch of the owning peer at arming time; a crash bumps the
    /// peer's epoch so timers armed by a previous life never fire into
    /// the rebooted instance.
    epoch: u64,
    channel: ChannelId,
    timer: GossipTimer,
}

impl PartialEq for HarnessTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HarnessTimer {}
impl PartialOrd for HarnessTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HarnessTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// What a [`Byzantine`] behavior sees of the world when it acts: the
/// compromised peer's identity, the scripted clock, a deterministic
/// attacker-private RNG, and the ground-truth membership (an omniscient
/// attacker — the strongest adversary the guarantees must survive).
#[derive(Debug)]
pub struct AttackCtx<'a> {
    /// The compromised peer.
    pub self_id: PeerId,
    /// The scripted clock's current instant.
    pub now: Time,
    /// Attacker-private RNG, deterministic per harness.
    pub rng: &'a mut StdRng,
    /// Ground-truth membership per channel.
    pub members: &'a [Vec<PeerId>],
}

impl AttackCtx<'_> {
    /// Current members of `channel` other than the attacker itself.
    pub fn honest(&self, channel: ChannelId) -> Vec<PeerId> {
        self.members
            .get(channel.0 as usize)
            .map(|m| m.iter().copied().filter(|p| *p != self.self_id).collect())
            .unwrap_or_default()
    }

    /// One uniformly random member of `channel` other than the attacker.
    pub fn pick(&mut self, channel: ChannelId) -> Option<PeerId> {
        let others = self.honest(channel);
        if others.is_empty() {
            None
        } else {
            Some(others[self.rng.random_range(0..others.len())])
        }
    }
}

/// A Byzantine behavior attached to one peer of the harness.
///
/// The compromised peer still runs the honest protocol underneath; the
/// behavior sits on its wire. Default implementations are transparent,
/// so an attacker only overrides the hooks it needs. To add a new
/// attacker: implement this trait, attach it with
/// [`DiscoveryHarness::set_byzantine`], and write a scenario asserting
/// which guarantees survive it (and measuring the ones that degrade).
pub trait Byzantine: fmt::Debug {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Transforms one protocol-emitted outbound message. Return the
    /// messages to actually put on the wire: empty drops it, one passes
    /// or rewrites it, several amplify it.
    fn on_outbound(
        &mut self,
        ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        to: PeerId,
        msg: GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        let _ = ctx;
        vec![(channel, to, msg)]
    }

    /// Wiretaps one message delivered to the compromised peer (which
    /// still processes it normally). Returned messages are injected.
    fn on_inbound(
        &mut self,
        ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        from: PeerId,
        msg: &GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        let _ = (ctx, channel, from, msg);
        Vec::new()
    }

    /// Fires after each of the attacker's own timers: a clocked chance to
    /// inject spontaneous traffic.
    fn on_step(&mut self, ctx: &mut AttackCtx<'_>) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        let _ = ctx;
        Vec::new()
    }
}

/// Passive wiretap shared by the attackers: records, per `(channel,
/// peer)`, the freshest and the stalest claim ever seen in any message
/// delivered to the compromised peer. The wire carries no
/// authentication, so whatever an attacker has heard it can re-emit —
/// verbatim (replay) or doctored (forgery).
#[derive(Debug, Default, Clone)]
pub struct ClaimIntel {
    freshest: BTreeMap<(u16, PeerId), PeerAlive>,
    stalest: BTreeMap<(u16, PeerId), PeerAlive>,
}

impl ClaimIntel {
    /// Records every claim carried by `msg`.
    pub fn observe(&mut self, channel: ChannelId, msg: &GossipMsg) {
        let claims: &[PeerAlive] = match msg {
            GossipMsg::AliveMsg(c) => std::slice::from_ref(c),
            GossipMsg::MembershipRequest { entries, .. }
            | GossipMsg::MembershipResponse { entries, .. }
            | GossipMsg::MembershipDigest { entries, .. }
            | GossipMsg::MembershipDelta { entries, .. } => entries,
            _ => return,
        };
        for c in claims {
            let key = (channel.0, c.peer);
            match self.freshest.get(&key) {
                Some(old) if !c.fresher_than(old) => {}
                _ => {
                    self.freshest.insert(key, *c);
                }
            }
            match self.stalest.get(&key) {
                Some(old) if !old.fresher_than(c) => {}
                _ => {
                    self.stalest.insert(key, *c);
                }
            }
        }
    }

    /// The freshest claim heard about `peer` on `channel`.
    pub fn freshest_of(&self, channel: ChannelId, peer: PeerId) -> Option<PeerAlive> {
        self.freshest.get(&(channel.0, peer)).copied()
    }

    /// The stalest claim heard per peer on `channel` — replay ammunition.
    pub fn stale_claims(&self, channel: ChannelId) -> Vec<PeerAlive> {
        self.stalest
            .iter()
            .filter(|((c, _), _)| *c == channel.0)
            .map(|(_, claim)| *claim)
            .collect()
    }
}

/// Attacker 1 — **stale-incarnation replay**: wiretaps every claim it
/// ever hears and keeps re-emitting the *stalest* version of each as
/// spoofed `AliveMsg`s. Against a correct merge (monotonic
/// `(incarnation, seq)` freshness, obituaries blocking anything not
/// strictly newer) the replays must be inert: in particular a reaped
/// peer's old claims must never resurrect it.
#[derive(Debug, Default)]
pub struct StaleReplayer {
    intel: ClaimIntel,
    burst: usize,
}

impl StaleReplayer {
    /// Replays each stale claim to `burst` random targets per step.
    pub fn new(burst: usize) -> Self {
        StaleReplayer {
            intel: ClaimIntel::default(),
            burst,
        }
    }
}

impl Byzantine for StaleReplayer {
    fn name(&self) -> &'static str {
        "stale-replay"
    }

    fn on_inbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        _from: PeerId,
        msg: &GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        self.intel.observe(channel, msg);
        Vec::new()
    }

    fn on_step(&mut self, ctx: &mut AttackCtx<'_>) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        let mut out = Vec::new();
        for c in 0..ctx.members.len() {
            let channel = ChannelId(c as u16);
            for claim in self.intel.stale_claims(channel) {
                for _ in 0..self.burst {
                    if let Some(target) = ctx.pick(channel) {
                        out.push((channel, target, GossipMsg::AliveMsg(claim)));
                    }
                }
            }
        }
        out
    }
}

/// Attacker 2 — **obituary forgery**: declares a live victim dead by
/// sending unsolicited `MembershipResponse`s whose `dead` list carries
/// the victim at its *current* incarnation (deaths win ties, so honest
/// peers apply it). The surviving guarantee is the refutation bound: the
/// victim finds its own obituary through anti-entropy, bumps its
/// incarnation, and re-enters every view — the attack costs a bounded
/// disruption window, not the victim's membership. `shots` bounds the
/// campaign so scenarios can measure recovery after it ends.
#[derive(Debug)]
pub struct ObituaryForger {
    victim: PeerId,
    shots: u32,
    intel: ClaimIntel,
}

impl ObituaryForger {
    /// Forges `shots` obituary broadcasts against `victim`.
    pub fn new(victim: PeerId, shots: u32) -> Self {
        ObituaryForger {
            victim,
            shots,
            intel: ClaimIntel::default(),
        }
    }
}

impl Byzantine for ObituaryForger {
    fn name(&self) -> &'static str {
        "obituary-forgery"
    }

    fn on_inbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        _from: PeerId,
        msg: &GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        self.intel.observe(channel, msg);
        Vec::new()
    }

    fn on_step(&mut self, ctx: &mut AttackCtx<'_>) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        if self.shots == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for c in 0..ctx.members.len() {
            let channel = ChannelId(c as u16);
            let Some(claim) = self.intel.freshest_of(channel, self.victim) else {
                continue;
            };
            let forged = PeerAlive {
                peer: self.victim,
                incarnation: claim.incarnation,
                seq: 0,
            };
            // Spread to everyone but the victim: the longer the victim
            // takes to find its own obituary, the longer the disruption.
            for target in ctx.honest(channel) {
                if target != self.victim {
                    out.push((
                        channel,
                        target,
                        GossipMsg::MembershipResponse {
                            entries: Vec::new(),
                            dead: vec![forged],
                        },
                    ));
                }
            }
        }
        if !out.is_empty() {
            self.shots -= 1;
        }
        out
    }
}

/// Attacker 3 — **selective forwarding**: passes heartbeats but silently
/// drops every anti-entropy message (requests, responses, digests,
/// deltas) addressed to the chosen targets. Convergence must survive on
/// redundancy — the targets still exchange views with everyone else —
/// but it measurably slows.
#[derive(Debug)]
pub struct SelectiveForwarder {
    targets: Vec<PeerId>,
}

impl SelectiveForwarder {
    /// Drops anti-entropy traffic toward `targets`.
    pub fn new(targets: Vec<PeerId>) -> Self {
        SelectiveForwarder { targets }
    }
}

impl Byzantine for SelectiveForwarder {
    fn name(&self) -> &'static str {
        "selective-forwarding"
    }

    fn on_outbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        to: PeerId,
        msg: GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        if msg.is_membership_exchange() && self.targets.contains(&to) {
            Vec::new()
        } else {
            vec![(channel, to, msg)]
        }
    }
}

/// Attacker 4 — **flood amplification**: every heartbeat and
/// anti-entropy request it would send goes out `amplification`-fold to
/// random extra targets, and each timer fire re-broadcasts its own
/// freshest claim. Views and leadership must hold (the spam is
/// protocol-valid and idempotent); the measurable damage is discovery
/// byte inflation.
#[derive(Debug)]
pub struct Flooder {
    amplification: usize,
    intel: ClaimIntel,
}

impl Flooder {
    /// Amplifies discovery traffic `amplification`-fold.
    pub fn new(amplification: usize) -> Self {
        Flooder {
            amplification,
            intel: ClaimIntel::default(),
        }
    }
}

impl Byzantine for Flooder {
    fn name(&self) -> &'static str {
        "flood-amplification"
    }

    fn on_inbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        _from: PeerId,
        msg: &GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        self.intel.observe(channel, msg);
        Vec::new()
    }

    fn on_outbound(
        &mut self,
        ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        to: PeerId,
        msg: GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        let amplifiable = matches!(
            msg,
            GossipMsg::AliveMsg(_)
                | GossipMsg::MembershipRequest { .. }
                | GossipMsg::MembershipDigest { .. }
        );
        let mut out = vec![(channel, to, msg.clone())];
        if amplifiable {
            for _ in 1..self.amplification {
                if let Some(target) = ctx.pick(channel) {
                    out.push((channel, target, msg.clone()));
                }
            }
        }
        out
    }

    fn on_step(&mut self, ctx: &mut AttackCtx<'_>) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        let mut out = Vec::new();
        for c in 0..ctx.members.len() {
            let channel = ChannelId(c as u16);
            let Some(own) = self.intel.freshest_of(channel, ctx.self_id) else {
                continue;
            };
            for _ in 0..self.amplification {
                if let Some(target) = ctx.pick(channel) {
                    out.push((channel, target, GossipMsg::AliveMsg(own)));
                }
            }
        }
        out
    }
}

/// Attacker 5 — **eclipse**: the attacker answers a runtime joiner that
/// bootstrapped through it (see [`DiscoveryHarness::join_via`]) with an
/// attacker-only world: its anti-entropy toward the victim carries only
/// the attacker's own claim (the channel "is" just the two of them), and
/// its traffic toward honest peers is scrubbed of the victim's claims so
/// they never learn the joiner exists.
///
/// The eclipse **starves** rather than murders: forging obituaries for
/// the honest members would hand the victim a dead-map full of
/// tombstones, and the tombstone-probe machinery would then contact
/// exactly those "dead" peers — leaking the victim to the honest world
/// and collapsing the eclipse on its own. By showing the victim nothing
/// at all, it has nobody to probe. A fully eclipsed victim (no honest
/// bootstrap seed) therefore cannot escape; one honest seed breaks the
/// eclipse in measurable time, because the attacker only controls its
/// own wire.
#[derive(Debug)]
pub struct Eclipser {
    victim: PeerId,
    intel: ClaimIntel,
}

impl Eclipser {
    /// Eclipses `victim`.
    pub fn new(victim: PeerId) -> Self {
        Eclipser {
            victim,
            intel: ClaimIntel::default(),
        }
    }
}

impl Byzantine for Eclipser {
    fn name(&self) -> &'static str {
        "eclipse"
    }

    fn on_inbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        _from: PeerId,
        msg: &GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        self.intel.observe(channel, msg);
        Vec::new()
    }

    fn on_outbound(
        &mut self,
        ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        to: PeerId,
        msg: GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        if to == self.victim {
            // Any view the protocol would share with the victim is
            // replaced by the attacker-only world (no obituaries: a
            // tombstone would give the victim someone to probe).
            if msg.is_membership_exchange() {
                let entries: Vec<PeerAlive> = self
                    .intel
                    .freshest_of(channel, ctx.self_id)
                    .into_iter()
                    .collect();
                return vec![(
                    channel,
                    to,
                    GossipMsg::MembershipResponse {
                        entries,
                        dead: Vec::new(),
                    },
                )];
            }
            return vec![(channel, to, msg)];
        }
        // Toward honest peers: scrub every trace of the victim.
        let victim = self.victim;
        let scrub = |entries: Vec<PeerAlive>| -> Vec<PeerAlive> {
            entries.into_iter().filter(|c| c.peer != victim).collect()
        };
        let scrubbed = match msg {
            GossipMsg::AliveMsg(c) if c.peer == victim => return Vec::new(),
            GossipMsg::MembershipRequest { entries, dead } => GossipMsg::MembershipRequest {
                entries: scrub(entries),
                dead: scrub(dead),
            },
            GossipMsg::MembershipResponse { entries, dead } => GossipMsg::MembershipResponse {
                entries: scrub(entries),
                dead: scrub(dead),
            },
            GossipMsg::MembershipDigest { entries, dead } => GossipMsg::MembershipDigest {
                entries: scrub(entries),
                dead: scrub(dead),
            },
            GossipMsg::MembershipDelta { entries, dead } => GossipMsg::MembershipDelta {
                entries: scrub(entries),
                dead: scrub(dead),
            },
            other => other,
        };
        vec![(channel, to, scrubbed)]
    }
}

/// Zero-latency coordination between the members of a Byzantine
/// *coalition*: pooled wiretap intel plus a small board of named signals,
/// shared outside the gossip wire (colluding processes talk out of band).
/// Cloning the handle shares the underlying state, so every member wired
/// with the same `SideChannel` reads and writes one pool. The harness is
/// single-threaded (behaviors are plain `Box<dyn Byzantine>`), so an
/// `Rc<RefCell<…>>` is the honest model of that shared blackboard.
#[derive(Debug, Clone, Default)]
pub struct SideChannel {
    inner: Rc<RefCell<SideState>>,
}

#[derive(Debug, Default)]
struct SideState {
    intel: ClaimIntel,
    signals: BTreeMap<&'static str, u64>,
}

impl SideChannel {
    /// A fresh, empty coalition blackboard.
    pub fn new() -> Self {
        SideChannel::default()
    }

    /// Pools every claim carried by `msg` into the coalition's shared
    /// intel — what *any* member hears, every member knows.
    pub fn observe(&self, channel: ChannelId, msg: &GossipMsg) {
        self.inner.borrow_mut().intel.observe(channel, msg);
    }

    /// The freshest claim any coalition member ever heard about `peer`.
    pub fn freshest_of(&self, channel: ChannelId, peer: PeerId) -> Option<PeerAlive> {
        self.inner.borrow().intel.freshest_of(channel, peer)
    }

    /// The stalest pooled claim per peer — replay ammunition.
    pub fn stale_claims(&self, channel: ChannelId) -> Vec<PeerAlive> {
        self.inner.borrow().intel.stale_claims(channel)
    }

    /// Posts a named signal (e.g. the incarnation a forger just buried)
    /// for the rest of the coalition to read.
    pub fn post(&self, key: &'static str, value: u64) {
        self.inner.borrow_mut().signals.insert(key, value);
    }

    /// Reads a posted signal, if any member posted it.
    pub fn read(&self, key: &'static str) -> Option<u64> {
        self.inner.borrow().signals.get(key).copied()
    }
}

/// Coalition attacker — **obituary forgery over pooled intel**: like
/// [`ObituaryForger`], but the forged incarnation is the freshest claim
/// *any* coalition member has wiretapped (via the shared
/// [`SideChannel`]), and each shot posts the buried incarnation as the
/// `"forged-incarnation"` signal so [`RefutationSuppressor`]s know
/// exactly which refutation to hunt. Pair it with suppressors sitting on
/// other wires and the victim's incarnation bump must fight through a
/// thinner redundancy margin — the guarantee under test is that it still
/// wins, at a measurably longer disruption window.
#[derive(Debug)]
pub struct CoalitionForger {
    victim: PeerId,
    shots: u32,
    side: SideChannel,
}

impl CoalitionForger {
    /// Forges `shots` obituary broadcasts against `victim`, coordinating
    /// through `side`.
    pub fn new(victim: PeerId, shots: u32, side: SideChannel) -> Self {
        CoalitionForger {
            victim,
            shots,
            side,
        }
    }
}

impl Byzantine for CoalitionForger {
    fn name(&self) -> &'static str {
        "coalition-forger"
    }

    fn on_inbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        _from: PeerId,
        msg: &GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        self.side.observe(channel, msg);
        Vec::new()
    }

    fn on_step(&mut self, ctx: &mut AttackCtx<'_>) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        if self.shots == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for c in 0..ctx.members.len() {
            let channel = ChannelId(c as u16);
            let Some(claim) = self.side.freshest_of(channel, self.victim) else {
                continue;
            };
            let forged = PeerAlive {
                peer: self.victim,
                incarnation: claim.incarnation,
                seq: 0,
            };
            self.side.post("forged-incarnation", claim.incarnation);
            for target in ctx.honest(channel) {
                if target != self.victim {
                    out.push((
                        channel,
                        target,
                        GossipMsg::MembershipResponse {
                            entries: Vec::new(),
                            dead: vec![forged],
                        },
                    ));
                }
            }
        }
        if !out.is_empty() {
            self.shots -= 1;
        }
        out
    }
}

/// Coalition attacker — **refutation suppression**: feeds its wiretap
/// into the coalition's [`SideChannel`] and scrubs from its *own*
/// outbound anti-entropy every claim about the victim strictly fresher
/// than the incarnation the coalition's forger buried (the
/// `"forged-incarnation"` signal) — the refutation path, selectively.
/// Because [`Byzantine::on_inbound`] is wiretap-only (a compromised
/// process cannot stop a packet that already reached its honest engine),
/// the suppressor can only darken its own wire: the refutation must
/// survive on the redundancy of the remaining honest paths.
#[derive(Debug)]
pub struct RefutationSuppressor {
    victim: PeerId,
    side: SideChannel,
}

impl RefutationSuppressor {
    /// Suppresses `victim`'s refutations, coordinating through `side`.
    pub fn new(victim: PeerId, side: SideChannel) -> Self {
        RefutationSuppressor { victim, side }
    }
}

impl Byzantine for RefutationSuppressor {
    fn name(&self) -> &'static str {
        "refutation-suppressor"
    }

    fn on_inbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        _from: PeerId,
        msg: &GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        self.side.observe(channel, msg);
        Vec::new()
    }

    fn on_outbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        to: PeerId,
        msg: GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        let Some(floor) = self.side.read("forged-incarnation") else {
            return vec![(channel, to, msg)];
        };
        if !msg.is_membership_exchange() {
            return vec![(channel, to, msg)];
        }
        let victim = self.victim;
        let scrub = |entries: Vec<PeerAlive>| -> Vec<PeerAlive> {
            entries
                .into_iter()
                .filter(|c| c.peer != victim || c.incarnation <= floor)
                .collect()
        };
        let scrubbed = match msg {
            GossipMsg::MembershipRequest { entries, dead } => GossipMsg::MembershipRequest {
                entries: scrub(entries),
                dead,
            },
            GossipMsg::MembershipResponse { entries, dead } => GossipMsg::MembershipResponse {
                entries: scrub(entries),
                dead,
            },
            GossipMsg::MembershipDigest { entries, dead } => GossipMsg::MembershipDigest {
                entries: scrub(entries),
                dead,
            },
            GossipMsg::MembershipDelta { entries, dead } => GossipMsg::MembershipDelta {
                entries: scrub(entries),
                dead,
            },
            other => other,
        };
        vec![(channel, to, scrubbed)]
    }
}

/// An **adaptive** attacker: instead of running a fixed campaign it
/// watches the wire and decides each step from the observed state.
/// [`Adaptive::observe`] sees every message delivered to the compromised
/// peer; [`Adaptive::act`] fires on the attacker's own timers and returns
/// the traffic to inject. Wrap an implementation in [`Adaptively`] to
/// attach it through [`DiscoveryHarness::set_byzantine`].
pub trait Adaptive: fmt::Debug {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Wiretaps one delivery to the compromised peer.
    fn observe(&mut self, channel: ChannelId, from: PeerId, msg: &GossipMsg);

    /// One reactive campaign step, clocked by the attacker's own timers.
    fn act(&mut self, ctx: &mut AttackCtx<'_>) -> Vec<(ChannelId, PeerId, GossipMsg)>;
}

/// Adapter attaching an [`Adaptive`] campaign as a [`Byzantine`]
/// behavior: inbound deliveries feed [`Adaptive::observe`], each timer
/// fire runs [`Adaptive::act`], and outbound traffic passes untouched
/// (the adaptive family attacks with injections, not with its own wire).
#[derive(Debug)]
pub struct Adaptively<A: Adaptive>(pub A);

impl<A: Adaptive> Byzantine for Adaptively<A> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn on_inbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        from: PeerId,
        msg: &GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        self.0.observe(channel, from, msg);
        Vec::new()
    }

    fn on_step(&mut self, ctx: &mut AttackCtx<'_>) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        self.0.act(ctx)
    }
}

/// Adaptive attacker — **leader hunting**: wiretaps `LeaderHeartbeat`s to
/// learn who currently leads, forges *that* peer's obituary at the
/// freshest incarnation it has heard, and adapts on both axes the issue
/// demands: when leadership moves (say, because its own forgery deposed
/// the previous leader) it re-targets the successor, and when a victim
/// refutes by bumping its incarnation it re-forges at the bumped value —
/// each `(victim, incarnation)` pair is shot at most once, so the
/// campaign only ever acts on *new* observed state. `shots` bounds the
/// total. The guarantees under test: leadership recovers to exactly one
/// claimant and every deposed victim re-enters the view.
#[derive(Debug)]
pub struct LeaderHunter {
    shots: u32,
    intel: ClaimIntel,
    /// Current leader per channel, as wiretapped.
    leader: BTreeMap<u16, PeerId>,
    /// `(channel, victim, incarnation)` triples already shot — firing
    /// again would waste a shot on state the network already refuted.
    fired: HashSet<(u16, u32, u64)>,
}

impl LeaderHunter {
    /// Hunts leaders with a budget of `shots` forgeries.
    pub fn new(shots: u32) -> Self {
        LeaderHunter {
            shots,
            intel: ClaimIntel::default(),
            leader: BTreeMap::new(),
            fired: HashSet::new(),
        }
    }
}

impl Adaptive for LeaderHunter {
    fn name(&self) -> &'static str {
        "leader-hunter"
    }

    fn observe(&mut self, channel: ChannelId, _from: PeerId, msg: &GossipMsg) {
        self.intel.observe(channel, msg);
        if let GossipMsg::LeaderHeartbeat { leader } = msg {
            self.leader.insert(channel.0, *leader);
        }
    }

    fn act(&mut self, ctx: &mut AttackCtx<'_>) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        let mut out = Vec::new();
        for c in 0..ctx.members.len() {
            if self.shots == 0 {
                break;
            }
            let channel = ChannelId(c as u16);
            let Some(victim) = self.leader.get(&channel.0).copied() else {
                continue; // no leader observed yet: nothing to react to
            };
            if victim == ctx.self_id {
                continue;
            }
            let Some(claim) = self.intel.freshest_of(channel, victim) else {
                continue;
            };
            if !self.fired.insert((channel.0, victim.0, claim.incarnation)) {
                continue; // already shot this life; wait for new state
            }
            let forged = PeerAlive {
                peer: victim,
                incarnation: claim.incarnation,
                seq: 0,
            };
            for target in ctx.honest(channel) {
                if target != victim {
                    out.push((
                        channel,
                        target,
                        GossipMsg::MembershipResponse {
                            entries: Vec::new(),
                            dead: vec![forged],
                        },
                    ));
                }
            }
            self.shots -= 1;
        }
        out
    }
}

/// Dissemination-layer attacker — **withholding**: advertises blocks
/// honestly (push digests and pull digests flow, so targets form fetch
/// and pull plans around the attacker) but never serves the payload:
/// outbound [`GossipMsg::BlockPush`], [`GossipMsg::PullResponse`] and
/// [`GossipMsg::RecoveryResponse`] toward a target are dropped
/// ([`GossipMsg::carries_blocks`]). A stalled pull round re-offers the
/// block next round from a fresh random advertiser, and a stalled push
/// fetch rotates advertisers per retry — completeness must still reach
/// 1.0 through honest redundancy, measurably slower.
#[derive(Debug)]
pub struct Withholder {
    targets: Vec<PeerId>,
}

impl Withholder {
    /// Withholds payloads from `targets` (empty: from everyone).
    pub fn new(targets: Vec<PeerId>) -> Self {
        Withholder { targets }
    }
}

impl Byzantine for Withholder {
    fn name(&self) -> &'static str {
        "withholder"
    }

    fn on_outbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        to: PeerId,
        msg: GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        if msg.carries_blocks() && (self.targets.is_empty() || self.targets.contains(&to)) {
            Vec::new()
        } else {
            vec![(channel, to, msg)]
        }
    }
}

/// Dissemination-layer attacker — **equivocation**: serves *conflicting*
/// block payloads for the same height to different peers. The attacker
/// cannot forge the ordering service's signature over the header, so its
/// doctored payload keeps the original header (number, previous hash,
/// data hash) with tampered transactions — peers with even ids receive
/// the doctored copy, odd ids the genuine one. Hash verification
/// ([`fabric_types::block::Block::data_intact`]) must reject every
/// doctored payload at the receiver (counted in
/// [`crate::channel::PeerStats::invalid_payloads`]), the store must
/// never hold a non-matching block, and completeness must still reach
/// 1.0 through honest redundancy.
#[derive(Debug, Default)]
pub struct Equivocator;

impl Equivocator {
    /// The doctored copy of `block`: original header, tampered
    /// transaction list (an appended forged transaction the data hash
    /// does not cover).
    fn doctored(block: &BlockRef) -> BlockRef {
        let mut forged = (**block).clone();
        forged.txs.push(Transaction::new(
            TxId(u64::MAX),
            "equivocation",
            ClientId(u32::MAX),
            RwSet::default(),
        ));
        BlockRef::new(forged)
    }
}

impl Byzantine for Equivocator {
    fn name(&self) -> &'static str {
        "equivocator"
    }

    fn on_outbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        to: PeerId,
        msg: GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        if msg.carries_blocks() && to.0.is_multiple_of(2) {
            vec![(channel, to, msg.map_blocks(|b| Self::doctored(&b)))]
        } else {
            vec![(channel, to, msg)]
        }
    }
}

/// Attacker — **snapshot poisoning**: a malicious bootstrap server. Every
/// snapshot it serves has its state doctored *after* the checkpoint hash
/// was taken, so [`fabric_types::snapshot::Snapshot::verify`] must fail
/// at the joiner: the install is rejected, the in-flight transfer times
/// out, the server lands on the failed list and the joiner resumes from
/// another server (`snapshot_resumes` counts it). Chunked transfers are
/// simply never served — a poisoned chunk would be rejected at assembly
/// anyway; starving the transfer forces the same timeout-and-resume path.
#[derive(Debug, Default)]
pub struct SnapshotPoisoner;

impl Byzantine for SnapshotPoisoner {
    fn name(&self) -> &'static str {
        "snapshot-poisoner"
    }

    fn on_outbound(
        &mut self,
        _ctx: &mut AttackCtx<'_>,
        channel: ChannelId,
        to: PeerId,
        msg: GossipMsg,
    ) -> Vec<(ChannelId, PeerId, GossipMsg)> {
        match msg {
            GossipMsg::SnapshotResponse { snapshot } => {
                let mut forged = (*snapshot).clone();
                match forged.entries.first_mut() {
                    Some(entry) => entry.1 = fabric_types::rwset::Value::from_u64(u64::MAX),
                    // An empty state cannot be doctored under the same
                    // checkpoint; starve the transfer instead.
                    None => return Vec::new(),
                }
                vec![(
                    channel,
                    to,
                    GossipMsg::SnapshotResponse {
                        snapshot: fabric_types::snapshot::SnapshotRef::new(forged),
                    },
                )]
            }
            GossipMsg::SnapshotChunk { .. } => Vec::new(),
            other => vec![(channel, to, other)],
        }
    }
}

/// One step of a scenario script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOp {
    /// Runtime join: only the joiner acts (discovery announces it).
    Join {
        /// Channel index.
        channel: usize,
        /// The joining peer.
        peer: PeerId,
    },
    /// Runtime leave: the leaver goes silent; others detect by timeout.
    Leave {
        /// Channel index.
        channel: usize,
        /// The leaving peer.
        peer: PeerId,
    },
    /// Silent process crash: no leave, timers stop, inbound is dropped.
    /// The peer leaves the ground truth of every channel it was in.
    Crash {
        /// The crashing peer.
        peer: PeerId,
    },
    /// Partition the network into groups (cross-group links blocked;
    /// previously blocked links inside a group are restored — the loss
    /// rate is **not** touched).
    Partition {
        /// The groups; links between different groups are blocked.
        groups: Vec<Vec<PeerId>>,
    },
    /// Restore every link and stop message loss.
    Heal,
    /// Block one link, both directions.
    DropLink {
        /// One endpoint.
        a: PeerId,
        /// The other endpoint.
        b: PeerId,
    },
    /// Set the independent per-message loss probability, in thousandths
    /// (integer so generated scripts shrink cleanly).
    SetLoss {
        /// Loss in 1/1000 units (250 = 25 %).
        loss_milli: u32,
    },
    /// Let scripted time pass.
    Wait {
        /// Seconds to run.
        secs: u64,
    },
    /// Check an invariant; a failure aborts the script with the op index.
    Assert(Predicate),
}

/// A reusable invariant over the harness state.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Every current member's view equals the ground truth.
    ViewAgreement {
        /// Channel index.
        channel: usize,
    },
    /// Exactly one current member claims leadership (vacuous when the
    /// channel is empty).
    ExactlyOneLeader {
        /// Channel index.
        channel: usize,
    },
    /// No peer holds an alive claim at an incarnation less than or equal
    /// to an obituary *it itself* ever recorded for that peer — replays
    /// of a reaped life must stay dead.
    NoResurrectionBelowObituary {
        /// Channel index.
        channel: usize,
    },
    /// Every current member's store holds every injected block of the
    /// channel, gap-free up to the injection head.
    GapFreeCatchup {
        /// Channel index.
        channel: usize,
    },
    /// Views converge to the ground truth within the bound, advancing
    /// scripted time as needed.
    ConvergenceWithin {
        /// Channel index.
        channel: usize,
        /// The bound, in scripted seconds.
        secs: u64,
    },
}

/// Why a script aborted: which op, where, and what the predicate said.
#[derive(Debug, Clone)]
pub struct ScenarioError {
    /// Index of the failing op within the script (when known).
    pub op_index: Option<usize>,
    /// Rendering of the failing op.
    pub op: String,
    /// The predicate's failure message.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op_index {
            Some(i) => write!(f, "op #{i} {}: {}", self.op, self.message),
            None => write!(f, "{}: {}", self.op, self.message),
        }
    }
}

/// Shape of a seeded-random scenario (see [`random_scenario`]).
#[derive(Debug, Clone)]
pub struct ScenarioShape {
    /// The channel the ops act on.
    pub channel: usize,
    /// Ops may involve peers `0..deployment`.
    pub deployment: u32,
    /// Number of random ops before the settle-and-assert epilogue.
    pub ops: usize,
    /// Upper bound for generated `SetLoss` rates, in thousandths.
    pub max_loss_milli: u32,
    /// Whether `Crash` ops may be generated.
    pub allow_crash: bool,
    /// Whether `Partition` ops may be generated.
    pub allow_partition: bool,
    /// Peers that never leave or crash (e.g. an attached attacker).
    pub protected: Vec<PeerId>,
    /// The epilogue's settle window, in seconds.
    pub settle_secs: u64,
}

impl Default for ScenarioShape {
    fn default() -> Self {
        ScenarioShape {
            channel: 0,
            deployment: 8,
            ops: 12,
            max_loss_milli: 300,
            allow_crash: true,
            allow_partition: true,
            protected: Vec::new(),
            settle_secs: 30,
        }
    }
}

/// Generates a seeded-random scenario: `shape.ops` weighted fault ops
/// (each membership op followed by a short wait so incarnations stay
/// distinct), then a `Heal`, a settle window and the three core
/// invariant asserts. The same `(seed, initial, shape)` always yields
/// the same script.
pub fn random_scenario(seed: u64, initial: &[PeerId], shape: &ScenarioShape) -> Vec<ScenarioOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = shape.channel;
    let mut members: Vec<PeerId> = initial.to_vec();
    let mut crashed: HashSet<u32> = HashSet::new();
    let mut ops: Vec<ScenarioOp> = Vec::with_capacity(2 * shape.ops + 5);
    for _ in 0..shape.ops {
        let roll = rng.random_range(0u32..12);
        let op = match roll {
            0..=2 => ScenarioOp::Wait {
                secs: rng.random_range(1u64..4),
            },
            3 | 4 => {
                let candidates: Vec<PeerId> = (0..shape.deployment)
                    .map(PeerId)
                    .filter(|p| {
                        !members.contains(p)
                            && !crashed.contains(&p.0)
                            && !shape.protected.contains(p)
                    })
                    .collect();
                match candidates.is_empty() {
                    true => ScenarioOp::Wait { secs: 1 },
                    false => {
                        let peer = candidates[rng.random_range(0..candidates.len())];
                        members.push(peer);
                        ScenarioOp::Join { channel: c, peer }
                    }
                }
            }
            5 | 6 => match removable(&members, &shape.protected, &mut rng) {
                Some(peer) => {
                    members.retain(|m| *m != peer);
                    ScenarioOp::Leave { channel: c, peer }
                }
                None => ScenarioOp::Wait { secs: 1 },
            },
            7 => ScenarioOp::SetLoss {
                loss_milli: rng.random_range(0..shape.max_loss_milli.max(1)),
            },
            8 => match pick_two(&members, &mut rng) {
                Some((a, b)) => ScenarioOp::DropLink { a, b },
                None => ScenarioOp::Wait { secs: 1 },
            },
            9 => ScenarioOp::Heal,
            10 if shape.allow_crash => match removable(&members, &shape.protected, &mut rng) {
                Some(peer) => {
                    members.retain(|m| *m != peer);
                    crashed.insert(peer.0);
                    ScenarioOp::Crash { peer }
                }
                None => ScenarioOp::Wait { secs: 1 },
            },
            11 if shape.allow_partition && members.len() >= 2 => {
                let mut shuffled = members.clone();
                for i in (1..shuffled.len()).rev() {
                    let j = rng.random_range(0..i + 1);
                    shuffled.swap(i, j);
                }
                let cut = rng.random_range(1..shuffled.len());
                ScenarioOp::Partition {
                    groups: vec![shuffled[..cut].to_vec(), shuffled[cut..].to_vec()],
                }
            }
            _ => ScenarioOp::Wait { secs: 1 },
        };
        let membership_op = matches!(
            op,
            ScenarioOp::Join { .. } | ScenarioOp::Leave { .. } | ScenarioOp::Crash { .. }
        );
        ops.push(op);
        if membership_op {
            ops.push(ScenarioOp::Wait {
                secs: rng.random_range(1u64..3),
            });
        }
    }
    ops.push(ScenarioOp::Heal);
    ops.push(ScenarioOp::Wait {
        secs: shape.settle_secs,
    });
    ops.push(ScenarioOp::Assert(Predicate::ViewAgreement { channel: c }));
    ops.push(ScenarioOp::Assert(Predicate::ExactlyOneLeader {
        channel: c,
    }));
    ops.push(ScenarioOp::Assert(Predicate::NoResurrectionBelowObituary {
        channel: c,
    }));
    ops
}

/// A member that may leave or crash (keeps the channel ≥ 2 strong and
/// never touches protected peers).
fn removable(members: &[PeerId], protected: &[PeerId], rng: &mut StdRng) -> Option<PeerId> {
    if members.len() <= 2 {
        return None;
    }
    let candidates: Vec<PeerId> = members
        .iter()
        .copied()
        .filter(|m| !protected.contains(m))
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.random_range(0..candidates.len())])
    }
}

/// Two distinct members, if the channel has them.
fn pick_two(members: &[PeerId], rng: &mut StdRng) -> Option<(PeerId, PeerId)> {
    if members.len() < 2 {
        return None;
    }
    let a = rng.random_range(0..members.len());
    let mut b = rng.random_range(0..members.len() - 1);
    if b >= a {
        b += 1;
    }
    Some((members[a], members[b]))
}

/// A scripted multi-peer network for discovery-protocol tests and
/// adversarial scenarios.
///
/// Unlike the oracle-style lockstep routers used before the discovery
/// protocol existed, the harness **never** calls
/// [`GossipPeer::on_peer_joined`] / [`GossipPeer::on_peer_left`] on
/// sitting members: a join is only the joiner's own
/// [`GossipPeer::join_channel_live`] (whose discovery engine announces
/// it), and a leave is only the leaver dropping its instance — everyone
/// else must find out through gossip. The clock is scripted: timers fire
/// under [`DiscoveryHarness::run_for`] in deterministic `(time, arming)`
/// order, messages deliver with zero latency, and faults inject through
/// [`DiscoveryHarness::set_loss`], [`DiscoveryHarness::partition`],
/// [`DiscoveryHarness::crash`] and [`DiscoveryHarness::set_byzantine`].
/// See the [module docs](self) for the op DSL and the determinism
/// contract.
#[derive(Debug)]
pub struct DiscoveryHarness {
    peers: Vec<GossipPeer>,
    fxs: Vec<MockEffects>,
    now: Time,
    timers: BinaryHeap<Reverse<HarnessTimer>>,
    timer_seq: u64,
    /// Ground-truth membership per channel (what the script did), for
    /// convergence assertions.
    members: Vec<Vec<PeerId>>,
    /// Symmetric blocked links (partition injection).
    blocked: HashSet<(u32, u32)>,
    /// Independent per-message loss probability.
    loss: f64,
    loss_rng: StdRng,
    /// Count of loss-rate changes so far; reseeds `loss_rng` (see the
    /// module-level determinism contract).
    loss_epoch: u64,
    /// Crashed peers: timers dropped, inbound dropped, out of every
    /// ground truth.
    crashed: HashSet<usize>,
    /// Per-peer timer epoch; a crash bumps it to cancel armed timers.
    peer_epoch: Vec<u64>,
    /// Attached Byzantine behaviors, by peer index.
    byzantine: BTreeMap<usize, Box<dyn Byzantine>>,
    attack_rng: StdRng,
    /// Highest obituary incarnation each peer ever recorded, keyed by
    /// `(observer index, channel, subject)` — the ratchet behind
    /// [`Predicate::NoResurrectionBelowObituary`].
    obituary_floor: BTreeMap<(usize, u16, u32), u64>,
    /// Highest injected block number per channel.
    heads: Vec<u64>,
    /// Offered wire bytes per message kind (loss and blocks included:
    /// the attacker pays for traffic whether or not it lands).
    wire_bytes: BTreeMap<&'static str, u64>,
    outbox: VecDeque<(PeerId, ChannelId, PeerId, GossipMsg)>,
}

impl DiscoveryHarness {
    /// Base seed of the loss RNG stream.
    pub const LOSS_SEED: u64 = 77;
    /// Seed of the attacker-private RNG stream.
    pub const ATTACK_SEED: u64 = 4242;

    /// Builds and initializes `n` peers; peer `i` starts joined to every
    /// channel whose member list contains it. Every peer's timers are
    /// armed (discovery announces each initial member to its samples) and
    /// the resulting traffic is routed to quiescence at `t = 0`.
    pub fn new(n: usize, memberships: Vec<Vec<PeerId>>, cfg: &GossipConfig) -> Self {
        let peers: Vec<GossipPeer> = (0..n as u32)
            .map(|i| {
                let mut peer = GossipPeer::with_channels(PeerId(i), cfg.clone());
                for (c, members) in memberships.iter().enumerate() {
                    if members.contains(&PeerId(i)) {
                        peer = peer.join_channel(ChannelId(c as u16), members.clone());
                    }
                }
                peer
            })
            .collect();
        let fxs: Vec<MockEffects> = (0..n as u64).map(|i| MockEffects::new(9_000 + i)).collect();
        let channels = memberships.len();
        let mut harness = DiscoveryHarness {
            peers,
            fxs,
            now: Time::ZERO,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            members: memberships,
            blocked: HashSet::new(),
            loss: 0.0,
            loss_rng: StdRng::seed_from_u64(Self::LOSS_SEED),
            loss_epoch: 0,
            crashed: HashSet::new(),
            peer_epoch: vec![0; n],
            byzantine: BTreeMap::new(),
            attack_rng: StdRng::seed_from_u64(Self::ATTACK_SEED),
            obituary_floor: BTreeMap::new(),
            heads: vec![0; channels],
            wire_bytes: BTreeMap::new(),
            outbox: VecDeque::new(),
        };
        for i in 0..harness.peers.len() {
            harness.fxs[i].now = harness.now;
            harness.peers[i].init(&mut harness.fxs[i]);
            harness.drain_effects(i);
        }
        harness.route();
        harness
    }

    /// The scripted clock's current instant.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The gossip state of peer `i`.
    pub fn gossip(&self, i: usize) -> &GossipPeer {
        &self.peers[i]
    }

    /// The recorded effects of peer `i` (deliveries, discovery events...).
    pub fn effects(&self, i: usize) -> &MockEffects {
        &self.fxs[i]
    }

    /// Ground-truth members of channel `c` (what the script enacted).
    pub fn members(&self, c: usize) -> &[PeerId] {
        &self.members[c]
    }

    /// The current per-message loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Highest injected block number of channel `c`.
    pub fn head(&self, c: usize) -> u64 {
        self.heads[c]
    }

    /// Whether `peer` is crashed.
    pub fn is_crashed(&self, peer: PeerId) -> bool {
        self.crashed.contains(&peer.index())
    }

    /// Offered wire bytes of one message kind so far (blocked and lost
    /// messages included — they were put on the wire).
    pub fn wire_bytes_of_kind(&self, kind: &str) -> u64 {
        self.wire_bytes.get(kind).copied().unwrap_or(0)
    }

    /// Offered wire bytes of the discovery protocol (heartbeats plus all
    /// anti-entropy forms).
    pub fn discovery_wire_bytes(&self) -> u64 {
        [
            "alive-msg",
            "membership-request",
            "membership-response",
            "membership-digest",
            "membership-delta",
        ]
        .iter()
        .map(|k| self.wire_bytes_of_kind(k))
        .sum()
    }

    /// Sets the independent per-message loss probability.
    ///
    /// Reseeds the loss RNG as a pure function of
    /// [`DiscoveryHarness::LOSS_SEED`] and the number of loss-rate
    /// changes so far — see the module-level determinism contract.
    pub fn set_loss(&mut self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self.loss_epoch += 1;
        self.loss_rng = StdRng::seed_from_u64(
            Self::LOSS_SEED ^ self.loss_epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
    }

    /// Blocks (or unblocks) the link between `a` and `b`, both directions.
    pub fn set_link(&mut self, a: PeerId, b: PeerId, up: bool) {
        let key = (a.0.min(b.0), a.0.max(b.0));
        if up {
            self.blocked.remove(&key);
        } else {
            self.blocked.insert(key);
        }
    }

    /// Partitions the network into `groups`: every link between two
    /// different groups is blocked (links inside a group are restored).
    /// A configured loss rate keeps applying — partition and loss
    /// compose.
    pub fn partition(&mut self, groups: &[Vec<PeerId>]) {
        self.restore_links();
        for (gi, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(gi + 1) {
                for a in ga {
                    for b in gb {
                        self.set_link(*a, *b, false);
                    }
                }
            }
        }
    }

    /// Restores every blocked link; the loss rate is untouched.
    pub fn restore_links(&mut self) {
        self.blocked.clear();
    }

    /// Full fault recovery: restores every link **and** stops message
    /// loss (reseeding the loss stream, see
    /// [`DiscoveryHarness::set_loss`]).
    pub fn heal(&mut self) {
        self.restore_links();
        self.set_loss(0.0);
    }

    /// Attaches a Byzantine behavior to `peer` (replacing any previous
    /// one). The peer keeps running the honest protocol; the behavior
    /// wraps its wire.
    pub fn set_byzantine(&mut self, peer: PeerId, behavior: Box<dyn Byzantine>) {
        assert!(peer.index() < self.peers.len(), "no such peer");
        self.byzantine.insert(peer.index(), behavior);
    }

    /// Detaches the Byzantine behavior of `peer`, if any.
    pub fn clear_byzantine(&mut self, peer: PeerId) {
        self.byzantine.remove(&peer.index());
    }

    /// Runs the network for `d` of scripted time: fires every timer due in
    /// the window (in deterministic order), routing all resulting traffic
    /// with zero latency.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        loop {
            match self.timers.peek() {
                Some(Reverse(entry)) if entry.at <= deadline => {
                    let Reverse(entry) = self.timers.pop().expect("peeked");
                    let i = entry.peer;
                    if self.crashed.contains(&i) || self.peer_epoch[i] != entry.epoch {
                        continue;
                    }
                    self.now = self.now.max(entry.at);
                    self.fxs[i].now = self.now;
                    self.peers[i].on_channel_timer(&mut self.fxs[i], entry.channel, entry.timer);
                    self.drain_effects(i);
                    if self.byzantine.contains_key(&i) {
                        self.byzantine_step(i);
                    }
                    self.route();
                }
                _ => break,
            }
        }
        self.now = deadline;
    }

    /// Runtime join, discovery-style: **only the joiner acts** — it joins
    /// live with the sitting membership as its roster and its discovery
    /// engine announces the join; nobody else is told anything. A crashed
    /// peer rejoining is rebooted first (volatile state lost, stores
    /// kept).
    pub fn join(&mut self, c: usize, peer: PeerId) {
        let roster = self.members[c].clone();
        self.join_with_roster(c, peer, roster, false);
    }

    /// Runtime join whose bootstrap roster is `seeds` instead of the full
    /// sitting membership — the eclipse surface: a joiner that only knows
    /// the attacker can only learn the world through the attacker.
    pub fn join_via(&mut self, c: usize, peer: PeerId, seeds: &[PeerId]) {
        self.join_with_roster(c, peer, seeds.to_vec(), false);
    }

    /// Runtime join through the anchor-peer entry
    /// ([`GossipPeer::join_channel_anchored`]): the joiner knows exactly
    /// one seed and must learn the rest of the world through discovery
    /// push-pull. Requires protocol discovery.
    pub fn join_anchored(&mut self, c: usize, peer: PeerId, anchor: PeerId) {
        self.join_with_roster(c, peer, vec![anchor], true);
    }

    fn join_with_roster(&mut self, c: usize, peer: PeerId, roster: Vec<PeerId>, anchored: bool) {
        if self.members[c].contains(&peer) {
            return;
        }
        let idx = peer.index();
        if idx >= self.peers.len() {
            return;
        }
        if self.crashed.remove(&idx) {
            self.peers[idx].on_crash();
        }
        if self.peers[idx].has_channel(ChannelId(c as u16)) {
            self.peers[idx].leave_channel(ChannelId(c as u16));
        }
        // A fresh life starts with empty obituaries (clear_volatile /
        // a fresh engine), so its resurrection floor restarts too.
        self.clear_floors_of(idx, Some(c as u16));
        self.fxs[idx].now = self.now;
        if anchored {
            let anchor = roster[0];
            self.peers[idx].join_channel_anchored(&mut self.fxs[idx], ChannelId(c as u16), anchor);
        } else {
            self.peers[idx].join_channel_live(&mut self.fxs[idx], ChannelId(c as u16), roster);
        }
        self.drain_effects(idx);
        self.members[c].push(peer);
        self.route();
    }

    /// Publishes `snapshot` as the one `peer` serves on channel `c` (what
    /// the embedding does after its ledger emits a checkpoint). Returns
    /// whether the peer adopted it (see
    /// [`GossipPeer::publish_snapshot_on`]).
    pub fn publish_snapshot(
        &mut self,
        c: usize,
        peer: PeerId,
        snapshot: fabric_types::snapshot::SnapshotRef,
    ) -> bool {
        let idx = peer.index();
        if idx >= self.peers.len() || self.crashed.contains(&idx) {
            return false;
        }
        self.peers[idx].publish_snapshot_on(ChannelId(c as u16), snapshot)
    }

    /// Runtime leave, discovery-style: **only the leaver acts** — it drops
    /// its instance and goes silent; the sitting members must detect the
    /// departure by alive-timeout expiry and spread the obituary.
    pub fn leave(&mut self, c: usize, peer: PeerId) {
        let Some(pos) = self.members[c].iter().position(|m| *m == peer) else {
            return;
        };
        self.members[c].remove(pos);
        self.peers[peer.index()].leave_channel(ChannelId(c as u16));
        self.clear_floors_of(peer.index(), Some(c as u16));
    }

    /// Drops the resurrection floors of one observer (one channel or
    /// all): the floor tracks the obituaries of the observer's *current*
    /// life, and a leave, crash or reboot deliberately loses them.
    fn clear_floors_of(&mut self, observer: usize, channel: Option<u16>) {
        self.obituary_floor
            .retain(|(obs, chan, _), _| *obs != observer || channel.is_some_and(|c| *chan != c));
    }

    /// Silent crash: the peer stops cold — armed timers are cancelled,
    /// inbound messages fall on the floor, and no leave is announced. It
    /// exits the ground truth of every channel (the network must reap
    /// it); its instance state is kept so a later [`DiscoveryHarness::join`]
    /// models a reboot.
    pub fn crash(&mut self, peer: PeerId) {
        let idx = peer.index();
        if idx >= self.peers.len() || self.crashed.contains(&idx) {
            return;
        }
        self.crashed.insert(idx);
        self.peer_epoch[idx] += 1;
        for members in &mut self.members {
            members.retain(|m| *m != peer);
        }
        self.byzantine.remove(&idx);
        // The crash loses the volatile obituaries; the rebooted life's
        // resurrection floor must restart with them.
        self.clear_floors_of(idx, None);
    }

    /// Injects block `num` of channel `c` at its lowest current member (as
    /// the ordering service would) and routes to quiescence.
    pub fn inject(&mut self, c: usize, block: BlockRef) {
        let Some(seed_peer) = self.members[c].iter().min().copied() else {
            return;
        };
        self.heads[c] = self.heads[c].max(block.number());
        let idx = seed_peer.index();
        self.fxs[idx].now = self.now;
        self.peers[idx].on_block_from_orderer_on(&mut self.fxs[idx], ChannelId(c as u16), block);
        self.drain_effects(idx);
        self.route();
    }

    /// Peer `m`'s organization view of channel `c`, in id order.
    pub fn view_of(&self, m: PeerId, c: usize) -> Vec<PeerId> {
        let mut view = self.peers[m.index()]
            .membership_on(ChannelId(c as u16))
            .map(|mem| mem.peers().to_vec())
            .unwrap_or_default();
        view.sort_unstable();
        view
    }

    /// Whether every current member of channel `c` sees exactly the other
    /// current members — the convergence predicate of the discovery
    /// protocol.
    pub fn views_converged(&self, c: usize) -> bool {
        self.divergent_views(c).is_empty()
    }

    /// Members of channel `c` whose view does **not** match the ground
    /// truth, with their views — for assertion messages.
    pub fn divergent_views(&self, c: usize) -> Vec<(PeerId, Vec<PeerId>)> {
        self.members[c]
            .iter()
            .filter_map(|m| {
                let mut expected: Vec<PeerId> =
                    self.members[c].iter().copied().filter(|p| p != m).collect();
                expected.sort_unstable();
                let got = self.view_of(*m, c);
                (got != expected).then_some((*m, got))
            })
            .collect()
    }

    /// Whether every peer of `group` sees exactly `expected` (minus
    /// itself) on channel `c` — agreement over a subset, e.g. the honest
    /// majority under an eclipse.
    pub fn views_agree_among(&self, c: usize, group: &[PeerId], expected: &[PeerId]) -> bool {
        group.iter().all(|m| {
            let mut want: Vec<PeerId> = expected.iter().copied().filter(|p| p != m).collect();
            want.sort_unstable();
            self.view_of(*m, c) == want
        })
    }

    /// Current leaders of channel `c` among its current members.
    pub fn leaders(&self, c: usize) -> Vec<PeerId> {
        self.members[c]
            .iter()
            .copied()
            .filter(|m| self.peers[m.index()].is_leader_on(ChannelId(c as u16)))
            .collect()
    }

    /// Runs time forward (in 1 s steps) until the views of channel `c`
    /// converge, up to `limit_secs`. Returns the seconds it took, or
    /// `None` if the bound was exceeded.
    pub fn converge_within(&mut self, c: usize, limit_secs: u64) -> Option<u64> {
        for elapsed in 0..=limit_secs {
            if self.views_converged(c) {
                return Some(elapsed);
            }
            if elapsed < limit_secs {
                self.run_for(Duration::from_secs(1));
            }
        }
        None
    }

    /// Applies one scenario op; only a failed `Assert` returns an error.
    pub fn apply(&mut self, op: &ScenarioOp) -> Result<(), ScenarioError> {
        match op {
            ScenarioOp::Join { channel, peer } => self.join(*channel, *peer),
            ScenarioOp::Leave { channel, peer } => self.leave(*channel, *peer),
            ScenarioOp::Crash { peer } => self.crash(*peer),
            ScenarioOp::Partition { groups } => self.partition(groups),
            ScenarioOp::Heal => self.heal(),
            ScenarioOp::DropLink { a, b } => self.set_link(*a, *b, false),
            ScenarioOp::SetLoss { loss_milli } => self.set_loss(f64::from(*loss_milli) / 1000.0),
            ScenarioOp::Wait { secs } => self.run_for(Duration::from_secs(*secs)),
            ScenarioOp::Assert(pred) => {
                self.check(pred).map_err(|message| ScenarioError {
                    op_index: None,
                    op: format!("{op:?}"),
                    message,
                })?;
            }
        }
        Ok(())
    }

    /// Runs a whole script, aborting at the first failed `Assert` with
    /// its op index.
    pub fn run_script(&mut self, script: &[ScenarioOp]) -> Result<(), ScenarioError> {
        for (i, op) in script.iter().enumerate() {
            self.apply(op).map_err(|mut e| {
                e.op_index = Some(i);
                e
            })?;
        }
        Ok(())
    }

    /// Checks one invariant predicate against the current state
    /// ([`Predicate::ConvergenceWithin`] advances scripted time).
    pub fn check(&mut self, pred: &Predicate) -> Result<(), String> {
        match pred {
            Predicate::ViewAgreement { channel } => {
                let divergent = self.divergent_views(*channel);
                if divergent.is_empty() {
                    Ok(())
                } else {
                    Err(format!(
                        "views diverged from members {:?}: {divergent:?}",
                        self.members[*channel]
                    ))
                }
            }
            Predicate::ExactlyOneLeader { channel } => {
                if self.members[*channel].is_empty() {
                    return Ok(());
                }
                let leaders = self.leaders(*channel);
                if leaders.len() == 1 {
                    Ok(())
                } else {
                    Err(format!(
                        "want exactly one leader among {:?}, got {leaders:?}",
                        self.members[*channel]
                    ))
                }
            }
            Predicate::NoResurrectionBelowObituary { channel } => {
                let chan = ChannelId(*channel as u16);
                for i in 0..self.peers.len() {
                    let Some(engine) = self.peers[i].discovery_on(chan) else {
                        continue;
                    };
                    for claim in engine.claims() {
                        let floor = self.obituary_floor.get(&(i, chan.0, claim.peer.0));
                        if let Some(&floor) = floor {
                            if claim.incarnation <= floor {
                                return Err(format!(
                                    "peer {} holds {:?} at incarnation {} ≤ its own past \
                                     obituary {floor} — a resurrection below the obituary",
                                    i, claim.peer, claim.incarnation
                                ));
                            }
                        }
                    }
                }
                Ok(())
            }
            Predicate::GapFreeCatchup { channel } => {
                let head = self.heads[*channel];
                let chan = ChannelId(*channel as u16);
                for m in &self.members[*channel] {
                    let Some(store) = self.peers[m.index()].store_on(chan) else {
                        return Err(format!("member {m:?} has no store on channel {channel}"));
                    };
                    for num in 1..=head {
                        if !store.has(num) {
                            return Err(format!(
                                "member {m:?} is missing block {num} of {head} — catch-up gap"
                            ));
                        }
                    }
                }
                Ok(())
            }
            Predicate::ConvergenceWithin { channel, secs } => {
                match self.converge_within(*channel, *secs) {
                    Some(_) => Ok(()),
                    None => Err(format!(
                        "still divergent after {secs}s: {:?}",
                        self.divergent_views(*channel)
                    )),
                }
            }
        }
    }

    /// Moves peer `i`'s recorded sends and timers into the harness
    /// queues; a Byzantine peer's sends pass through its behavior first.
    fn drain_effects(&mut self, i: usize) {
        for (after, channel, timer) in self.fxs[i].take_scheduled_on() {
            self.timer_seq += 1;
            self.timers.push(Reverse(HarnessTimer {
                at: self.fxs[i].now + after,
                seq: self.timer_seq,
                peer: i,
                epoch: self.peer_epoch[i],
                channel,
                timer,
            }));
        }
        let sent = self.fxs[i].take_sent_on();
        if let Some(mut behavior) = self.byzantine.remove(&i) {
            let mut out = Vec::new();
            {
                let mut ctx = AttackCtx {
                    self_id: PeerId(i as u32),
                    now: self.now,
                    rng: &mut self.attack_rng,
                    members: &self.members,
                };
                for (channel, to, msg) in sent {
                    out.extend(behavior.on_outbound(&mut ctx, channel, to, msg));
                }
            }
            for (channel, to, msg) in out {
                self.outbox.push_back((PeerId(i as u32), channel, to, msg));
            }
            self.byzantine.insert(i, behavior);
        } else {
            for (channel, to, msg) in sent {
                self.outbox.push_back((PeerId(i as u32), channel, to, msg));
            }
        }
    }

    /// One injection opportunity for the behavior attached to peer `i`.
    fn byzantine_step(&mut self, i: usize) {
        let Some(mut behavior) = self.byzantine.remove(&i) else {
            return;
        };
        let out = {
            let mut ctx = AttackCtx {
                self_id: PeerId(i as u32),
                now: self.now,
                rng: &mut self.attack_rng,
                members: &self.members,
            };
            behavior.on_step(&mut ctx)
        };
        for (channel, to, msg) in out {
            self.outbox.push_back((PeerId(i as u32), channel, to, msg));
        }
        self.byzantine.insert(i, behavior);
    }

    /// Delivers queued messages (and whatever they trigger) until quiet,
    /// applying loss, blocked links and crashes, wiretapping deliveries
    /// to Byzantine peers, and accounting offered wire bytes.
    fn route(&mut self) {
        while let Some((from, channel, to, msg)) = self.outbox.pop_front() {
            *self.wire_bytes.entry(msg.kind()).or_insert(0) += msg.wire_size() as u64;
            let key = (from.0.min(to.0), from.0.max(to.0));
            if self.blocked.contains(&key) {
                continue;
            }
            if self.loss > 0.0 && self.loss_rng.random_bool(self.loss) {
                continue;
            }
            let i = to.index();
            if i >= self.peers.len() || self.crashed.contains(&i) {
                continue;
            }
            if self.byzantine.contains_key(&i) {
                let mut behavior = self.byzantine.remove(&i).expect("checked");
                let out = {
                    let mut ctx = AttackCtx {
                        self_id: to,
                        now: self.now,
                        rng: &mut self.attack_rng,
                        members: &self.members,
                    };
                    behavior.on_inbound(&mut ctx, channel, from, &msg)
                };
                for (c, t, m) in out {
                    self.outbox.push_back((to, c, t, m));
                }
                self.byzantine.insert(i, behavior);
            }
            self.fxs[i].now = self.now;
            self.peers[i].on_channel_message(&mut self.fxs[i], channel, from, msg);
            self.drain_effects(i);
        }
        self.record_obituary_floors();
    }

    /// Ratchets the per-observer obituary floors from every engine's
    /// current dead set.
    fn record_obituary_floors(&mut self) {
        for i in 0..self.peers.len() {
            for chan in self.peers[i].channel_ids() {
                let Some(engine) = self.peers[i].discovery_on(chan) else {
                    continue;
                };
                for (subject, incarnation) in engine.obituary_iter() {
                    let entry = self
                        .obituary_floor
                        .entry((i, chan.0, subject.0))
                        .or_insert(0);
                    *entry = (*entry).max(incarnation);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GossipConfig {
        let mut cfg = GossipConfig::enhanced_f4().with_discovery_protocol();
        cfg.discovery.heartbeat_interval = Duration::from_secs(1);
        cfg.discovery.anti_entropy_interval = Duration::from_secs(1);
        cfg.membership.alive_timeout = Duration::from_secs(5);
        cfg
    }

    #[test]
    fn partition_preserves_a_configured_loss_rate() {
        // Regression: partition() used to call heal(), silently zeroing
        // the loss rate — `set_loss(0.2); partition(...)` ran lossless.
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(4, vec![members.clone()], &cfg());
        net.set_loss(0.2);
        net.partition(&[vec![PeerId(0), PeerId(1)], vec![PeerId(2), PeerId(3)]]);
        assert_eq!(net.loss(), 0.2, "partition must not touch the loss rate");
        net.heal();
        assert_eq!(net.loss(), 0.0, "heal stops loss");
    }

    #[test]
    fn restore_links_is_heal_minus_loss() {
        let members: Vec<PeerId> = (0..3).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(3, vec![members], &cfg());
        net.set_loss(0.1);
        net.set_link(PeerId(0), PeerId(1), false);
        net.restore_links();
        assert_eq!(net.loss(), 0.1, "restore_links leaves loss in place");
    }

    #[test]
    fn identical_scripts_replay_bit_identically() {
        // The determinism contract, end to end: same config, same script
        // → identical views, leaders and byte accounting.
        let script = random_scenario(
            12345,
            &(0..5).map(PeerId).collect::<Vec<_>>(),
            &ScenarioShape::default(),
        );
        let run = || {
            let members: Vec<PeerId> = (0..5).map(PeerId).collect();
            let mut net = DiscoveryHarness::new(8, vec![members], &cfg());
            net.run_script(&script).expect("invariants hold");
            let views: Vec<Vec<PeerId>> = net
                .members(0)
                .to_vec()
                .into_iter()
                .map(|m| net.view_of(m, 0))
                .collect();
            (views, net.leaders(0), net.discovery_wire_bytes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_stream_reseeds_per_change_not_per_history() {
        // Two harnesses consume visibly different amounts of loss
        // randomness, then both make their second loss change: the
        // streams after it are the same pure function of (seed, epoch).
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut a = DiscoveryHarness::new(4, vec![members.clone()], &cfg());
        let mut b = DiscoveryHarness::new(4, vec![members], &cfg());
        a.set_loss(0.5);
        b.set_loss(0.5);
        a.run_for(Duration::from_secs(2)); // a consumes loss draws...
        b.run_for(Duration::from_secs(9)); // ...b consumes many more
        a.set_loss(0.0);
        b.set_loss(0.0);
        // Epoch counts now agree, so both rebuilt the same stream state;
        // nothing observable may depend on the divergent draw history.
        a.heal();
        b.heal();
        assert_eq!(a.loss(), b.loss());
    }

    #[test]
    fn a_crash_silences_without_a_leave_and_the_network_reaps_it() {
        let members: Vec<PeerId> = (0..5).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(5, vec![members], &cfg());
        net.run_for(Duration::from_secs(3));
        net.crash(PeerId(4));
        assert!(net.is_crashed(PeerId(4)));
        assert!(
            net.view_of(PeerId(0), 0).contains(&PeerId(4)),
            "a crash is silent: nobody is told"
        );
        net.run_for(Duration::from_secs(15));
        assert!(
            net.views_converged(0),
            "the crashed peer must be reaped: {:?}",
            net.divergent_views(0)
        );
        assert_eq!(net.leaders(0).len(), 1);
    }

    #[test]
    fn a_crashed_peer_reboots_through_join_with_a_new_life() {
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(4, vec![members], &cfg());
        net.run_for(Duration::from_secs(3));
        net.crash(PeerId(3));
        net.run_for(Duration::from_secs(15));
        assert!(net.views_converged(0));
        net.join(0, PeerId(3));
        net.run_for(Duration::from_secs(15));
        assert!(
            net.views_converged(0),
            "reboot must rejoin cleanly: {:?}",
            net.divergent_views(0)
        );
        assert!(net
            .check(&Predicate::NoResurrectionBelowObituary { channel: 0 })
            .is_ok());
    }

    #[test]
    fn random_scenarios_are_reproducible_and_well_formed() {
        let initial: Vec<PeerId> = (0..5).map(PeerId).collect();
        let shape = ScenarioShape::default();
        let a = random_scenario(7, &initial, &shape);
        let b = random_scenario(7, &initial, &shape);
        assert_eq!(a, b, "same seed, same script");
        let c = random_scenario(8, &initial, &shape);
        assert_ne!(a, c, "different seed, different script");
        assert!(
            matches!(a.last(), Some(ScenarioOp::Assert(_))),
            "scripts end in asserts"
        );
        // Protected peers never leave or crash.
        let protected_shape = ScenarioShape {
            protected: vec![PeerId(1)],
            ops: 40,
            ..ScenarioShape::default()
        };
        for seed in 0..10u64 {
            for op in random_scenario(seed, &initial, &protected_shape) {
                match op {
                    ScenarioOp::Leave { peer, .. } | ScenarioOp::Crash { peer } => {
                        assert_ne!(peer, PeerId(1), "protected peer was removed");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn side_channel_clones_share_intel_and_signals() {
        let side = SideChannel::new();
        let clone = side.clone();
        let claim = PeerAlive {
            peer: PeerId(3),
            incarnation: 7,
            seq: 2,
        };
        clone.observe(ChannelId(0), &GossipMsg::AliveMsg(claim));
        assert_eq!(
            side.freshest_of(ChannelId(0), PeerId(3)),
            Some(claim),
            "intel observed through one handle is visible through the other"
        );
        clone.post("forged-incarnation", 7);
        assert_eq!(side.read("forged-incarnation"), Some(7));
        assert_eq!(side.read("unposted"), None);
        assert_eq!(side.stale_claims(ChannelId(0)), vec![claim]);
    }

    #[test]
    fn equivocator_doctoring_keeps_the_header_and_breaks_the_data_hash() {
        use fabric_types::block::Block;
        use fabric_types::crypto::Hash256;
        let honest = BlockRef::new(Block::new(5, Hash256::ZERO, vec![]));
        let doctored = Equivocator::doctored(&honest);
        assert_eq!(doctored.hash(), honest.hash(), "header is signature-bound");
        assert!(honest.data_intact());
        assert!(
            !doctored.data_intact(),
            "tampered txs must not match the data hash"
        );
    }

    #[test]
    fn a_failed_assert_reports_its_op_index() {
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut net = DiscoveryHarness::new(4, vec![members], &cfg());
        // A leave with no settle time: views cannot agree yet.
        let script = vec![
            ScenarioOp::Wait { secs: 2 },
            ScenarioOp::Leave {
                channel: 0,
                peer: PeerId(3),
            },
            ScenarioOp::Assert(Predicate::ViewAgreement { channel: 0 }),
        ];
        let err = net.run_script(&script).expect_err("views still disagree");
        assert_eq!(err.op_index, Some(2));
        assert!(err.to_string().contains("ViewAgreement"), "{err}");
    }
}
