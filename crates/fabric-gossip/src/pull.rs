//! The four-phase pull engine of stock Fabric gossip:
//!
//! 1. **Hello** — solicit digests from `fin` random organization peers;
//! 2. **DigestResponse** — each responder advertises its recent blocks;
//! 3. **Request** — after the digest-wait window, ask one random advertiser
//!    per missing block;
//! 4. **Response** — the requested content (accepted by the dispatcher's
//!    common content path).
//!
//! The engine owns only pull-private state (the round nonce and the offers
//! gathered during the current digest window); everything shared lives in
//! the [`ChannelCore`] passed into every entry point.

use std::collections::BTreeMap;

use rand::RngExt;

use fabric_types::block::BlockRef;
use fabric_types::ids::PeerId;

use crate::channel::ChannelCore;
use crate::effects::Effects;
use crate::messages::{GossipMsg, GossipTimer};

/// Pull-phase state of one channel instance.
#[derive(Debug, Default)]
pub struct PullEngine {
    nonce: u64,
    /// Advertisers per missing block, gathered during the digest-wait
    /// window of the current pull round.
    offers: BTreeMap<u64, Vec<PeerId>>,
}

impl PullEngine {
    /// Drops the in-flight round a crash would lose (the nonce survives so
    /// a rebooted peer never confuses pre-crash digests for fresh ones).
    pub fn clear_volatile(&mut self) {
        self.offers.clear();
    }

    /// Phase 1 (the PullRound timer): open a round and solicit digests.
    pub fn on_round(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects) {
        let Some(pull) = core.cfg.pull.clone() else {
            return;
        };
        self.nonce += 1;
        self.offers.clear();
        core.stats.pull_rounds += 1;
        let nonce = self.nonce;
        let targets = core.membership.sample(fx.rng(), pull.fin);
        for t in targets {
            core.send(fx, t, GossipMsg::PullHello { nonce });
        }
        // Fabric's pull engine gathers digests for `digestWaitTime` before
        // deciding what to request from whom.
        core.schedule(fx, pull.digest_wait, GossipTimer::PullDigestWait { nonce });
        core.schedule(fx, pull.tpull, GossipTimer::PullRound);
    }

    /// Phase 2 (responder side): serve our recent block numbers.
    pub fn on_hello(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        nonce: u64,
    ) {
        let window = core
            .cfg
            .pull
            .as_ref()
            .map(|p| p.digest_window)
            .unwrap_or(64);
        let block_nums = core.store.recent(window);
        core.send(
            fx,
            from,
            GossipMsg::PullDigestResponse { nonce, block_nums },
        );
    }

    /// Phase 2 (requester side): collect an advertiser's digest.
    pub fn on_digest_response(
        &mut self,
        core: &mut ChannelCore,
        from: PeerId,
        nonce: u64,
        block_nums: Vec<u64>,
    ) {
        if nonce != self.nonce {
            return; // stale round
        }
        for num in block_nums {
            if !core.store.has(num) {
                let offers = self.offers.entry(num).or_default();
                if !offers.contains(&from) {
                    offers.push(from);
                }
            }
        }
    }

    /// Phase 3 (the PullDigestWait timer): pick a random advertiser per
    /// missing block and send the grouped requests.
    pub fn on_digest_wait(&mut self, core: &mut ChannelCore, fx: &mut dyn Effects, nonce: u64) {
        if nonce != self.nonce {
            return; // a newer round superseded this one
        }
        let offers = std::mem::take(&mut self.offers);
        let mut per_target: BTreeMap<PeerId, Vec<u64>> = BTreeMap::new();
        for (num, advertisers) in offers {
            if core.store.has(num) || advertisers.is_empty() {
                continue;
            }
            let pick = fx.rng().random_range(0..advertisers.len());
            per_target.entry(advertisers[pick]).or_default().push(num);
        }
        for (target, block_nums) in per_target {
            core.send(fx, target, GossipMsg::PullRequest { nonce, block_nums });
        }
    }

    /// Phase 3 (responder side): serve the requested blocks.
    pub fn on_request(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        from: PeerId,
        nonce: u64,
        block_nums: Vec<u64>,
    ) {
        let blocks: Vec<BlockRef> = block_nums
            .iter()
            .filter_map(|n| core.store.get(*n).cloned())
            .collect();
        if !blocks.is_empty() {
            core.stats.blocks_sent += blocks.len() as u64;
            core.send(fx, from, GossipMsg::PullResponse { nonce, blocks });
        }
    }

    /// Phase 4 (requester side): absorb the served content through the
    /// common accept path. A forged or conflicting payload is rejected and
    /// counted there ([`ChannelCore::accept_content`]); the block stays
    /// missing, so the next round's digest wait re-offers it — possibly
    /// from a different advertiser — and honest redundancy completes the
    /// transfer.
    pub fn on_response(
        &mut self,
        core: &mut ChannelCore,
        fx: &mut dyn Effects,
        blocks: Vec<BlockRef>,
    ) {
        for block in blocks {
            core.accept_content(fx, &block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GossipConfig;
    use crate::testing::MockEffects;
    use fabric_types::block::Block;
    use fabric_types::ids::ChannelId;

    fn core() -> ChannelCore {
        ChannelCore::new(
            ChannelId::DEFAULT,
            PeerId(1),
            (0..4).map(PeerId).collect(),
            GossipConfig::original_fabric(),
        )
    }

    fn block(num: u64) -> BlockRef {
        BlockRef::new(Block::new(num, fabric_types::crypto::Hash256::ZERO, vec![]))
    }

    #[test]
    fn engine_alone_runs_a_round_and_requests_missing_blocks() {
        let mut c = core();
        let mut e = PullEngine::default();
        let mut fx = MockEffects::new(1);
        e.on_round(&mut c, &mut fx);
        let hellos = fx.take_sent();
        assert_eq!(hellos.len(), 3, "fin = 3 hellos");
        e.on_digest_response(&mut c, PeerId(2), 1, vec![1, 2]);
        e.on_digest_wait(&mut c, &mut fx, 1);
        let requests = fx.take_sent();
        assert_eq!(requests.len(), 1);
        assert!(matches!(
            &requests[0].1,
            GossipMsg::PullRequest { block_nums, .. } if block_nums == &vec![1, 2]
        ));
        assert_eq!(c.stats.pull_rounds, 1);
    }

    #[test]
    fn stale_digests_are_dropped_and_requests_serve_the_store() {
        let mut c = core();
        let mut e = PullEngine::default();
        let mut fx = MockEffects::new(1);
        e.on_round(&mut c, &mut fx);
        fx.take_sent();
        e.on_round(&mut c, &mut fx); // nonce now 2; round 1 is stale
        fx.take_sent();
        e.on_digest_response(&mut c, PeerId(2), 1, vec![1]);
        e.on_digest_wait(&mut c, &mut fx, 1);
        assert!(fx.take_sent().is_empty(), "stale round must stay silent");

        c.store.insert(block(1));
        e.on_request(&mut c, &mut fx, PeerId(3), 2, vec![1, 9]);
        let sent = fx.take_sent();
        assert_eq!(sent.len(), 1);
        assert!(matches!(
            &sent[0].1,
            GossipMsg::PullResponse { blocks, .. } if blocks.len() == 1
        ));
        assert_eq!(c.stats.blocks_sent, 1);
    }
}
