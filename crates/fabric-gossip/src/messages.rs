//! Wire messages of the gossip layer.
//!
//! Sizes approximate Fabric's protobuf envelopes: every message carries a
//! fixed framing overhead, digests are tens of bytes, and block-bearing
//! messages are dominated by the block payload. The byte accounting of the
//! bandwidth figures rests on these sizes.

use std::sync::OnceLock;

use desim::KindId;
use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};
use fabric_types::snapshot::{Checkpoint, SnapshotChunk, SnapshotRef};

/// Framing overhead per gossip envelope (signature, channel MAC, tags).
///
/// The channel MAC is part of this fixed overhead, so routing a message on
/// a non-default channel does not change its wire size — byte accounting is
/// identical whether a deployment runs one channel or many.
///
/// `pub(crate)` so the chunked snapshot server can budget chunk payloads at
/// `chunk_size - ENVELOPE`, guaranteeing no chunk *message* exceeds the
/// configured `chunk_size`.
pub(crate) const ENVELOPE: usize = 16;

/// The wire unit between two peers: a [`GossipMsg`] tagged with the channel
/// it belongs to.
///
/// Fabric scopes gossip per channel; the envelope's channel MAC (already
/// counted in `ENVELOPE`) is what carries that scope on the wire, so the
/// tag adds no bytes — [`desim::Message::wire_size`] delegates to the
/// payload unchanged.
#[derive(Debug, Clone)]
pub struct ChannelMsg {
    /// The channel this envelope belongs to.
    pub channel: ChannelId,
    /// The gossip payload.
    pub msg: GossipMsg,
}

impl desim::Message for ChannelMsg {
    fn wire_size(&self) -> usize {
        self.msg.wire_size()
    }

    fn kind(&self) -> &'static str {
        self.msg.kind()
    }

    fn kind_id(&self) -> KindId {
        self.msg.kind_id()
    }
}

/// One peer's liveness claim, as carried by the discovery protocol.
///
/// Freshness is judged lexicographically on `(incarnation, seq)`:
/// `incarnation` is fixed for one life of the peer on the channel (a
/// rejoin or reboot picks a strictly higher one), `seq` increments with
/// every heartbeat of that life. A claim only displaces a stored one when
/// strictly fresher, so stale relays can never resurrect a reaped peer —
/// only a genuinely new life (higher incarnation) can.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAlive {
    /// The peer the claim is about (not necessarily the sender: anti-
    /// entropy relays third-party claims).
    pub peer: PeerId,
    /// The claimed life of the peer; strictly increases across rejoins.
    pub incarnation: u64,
    /// Heartbeat counter within the incarnation.
    pub seq: u64,
}

impl PeerAlive {
    /// Whether this claim is strictly fresher than `other` (same peer
    /// assumed).
    pub fn fresher_than(&self, other: &PeerAlive) -> bool {
        (self.incarnation, self.seq) > (other.incarnation, other.seq)
    }

    /// Wire bytes of one serialized claim (peer id + incarnation + seq).
    pub(crate) const WIRE: usize = 24;

    /// Wire bytes of one claim in the delta anti-entropy's compact digest
    /// encoding: the peer id plus a varint-packed `(incarnation, seq)`
    /// freshness word — incarnations are wall-clock-derived and seqs
    /// small, so the pair packs into 8 bytes in practice.
    pub(crate) const DIGEST_WIRE: usize = 12;
}

/// A gossip message between two peers of the same organization.
#[derive(Debug, Clone)]
pub enum GossipMsg {
    /// Full block content pushed with a dissemination counter (the counter
    /// is 0 for the orderer→leader-initiated send and is ignored by the
    /// infect-and-die protocol).
    BlockPush {
        /// The block being disseminated.
        block: BlockRef,
        /// The infect-upon-contagion round counter.
        counter: u32,
    },
    /// Enhanced push phase: announce a block instead of sending it.
    PushDigest {
        /// Number of the announced block.
        block_num: u64,
        /// The infect-upon-contagion round counter.
        counter: u32,
    },
    /// Enhanced push phase: request content after a [`GossipMsg::PushDigest`].
    PushRequest {
        /// Number of the requested block.
        block_num: u64,
        /// Counter copied from the digest, echoed back with the content.
        counter: u32,
    },
    /// Pull engine, phase 1: solicit digests.
    PullHello {
        /// Round nonce correlating the four pull phases.
        nonce: u64,
    },
    /// Pull engine, phase 2: recent block numbers held by the responder.
    PullDigestResponse {
        /// Echoed round nonce.
        nonce: u64,
        /// Block numbers the responder can serve.
        block_nums: Vec<u64>,
    },
    /// Pull engine, phase 3: request missing blocks.
    PullRequest {
        /// Echoed round nonce.
        nonce: u64,
        /// Block numbers the requester lacks.
        block_nums: Vec<u64>,
    },
    /// Pull engine, phase 4: the requested blocks.
    PullResponse {
        /// Echoed round nonce.
        nonce: u64,
        /// The served blocks.
        blocks: Vec<BlockRef>,
    },
    /// Ledger-height metadata, input to the recovery component.
    StateInfo {
        /// The sender's contiguous ledger height.
        height: u64,
        /// The sender's latest ledger checkpoint, when snapshot bootstrap
        /// is on ([`crate::config::SnapshotConfig::enabled`]) and one
        /// exists. `None` adds zero wire bytes, so the default-off format
        /// is byte-identical to the pre-snapshot one.
        checkpoint: Option<Checkpoint>,
    },
    /// Recovery: request blocks `[from, to]` (inclusive).
    RecoveryRequest {
        /// First missing block number.
        from: u64,
        /// Last requested block number.
        to: u64,
    },
    /// Recovery: consecutive blocks answering a request.
    RecoveryResponse {
        /// The served blocks, in height order.
        blocks: Vec<BlockRef>,
    },
    /// Snapshot bootstrap: request the snapshot behind an advertised
    /// checkpoint.
    SnapshotRequest {
        /// Height of the checkpoint whose snapshot is wanted.
        height: u64,
        /// Resume offset under chunked transfer: serve chunks starting at
        /// this index (0: the whole snapshot). A non-zero offset requires
        /// the server to hold *exactly* the requested checkpoint — chunk
        /// plans only line up across servers at identical checkpoints.
        from_chunk: u32,
    },
    /// Snapshot bootstrap: the served snapshot (full state at its
    /// checkpoint height; the requester verifies the state hash before
    /// installing).
    SnapshotResponse {
        /// The served snapshot (a shared handle — serving N joiners clones
        /// a reference count, not the state).
        snapshot: SnapshotRef,
    },
    /// Chunked snapshot bootstrap: one slice of a snapshot transfer
    /// ([`crate::config::SnapshotConfig::chunked`]). The receiver
    /// reassembles the full plan, verifies the state hash, then installs
    /// atomically.
    SnapshotChunk {
        /// The served chunk (an entry-range view over a shared snapshot —
        /// serving N chunks clones a reference count, not the entries).
        chunk: SnapshotChunk,
    },
    /// Membership heartbeat (legacy oracle-mode liveness traffic; carries
    /// no payload — reception alone refreshes the sender's entry).
    Alive,
    /// Discovery-protocol heartbeat: the sender's own liveness claim.
    /// Replaces [`GossipMsg::Alive`] when
    /// [`crate::config::DiscoveryConfig::protocol`] is on.
    AliveMsg(PeerAlive),
    /// Discovery anti-entropy, phase 1: the requester pushes its full
    /// alive view and obituaries and solicits the responder's. Also sent
    /// as a **tombstone probe** to one reaped peer per round — if that
    /// peer is in fact alive (a false death), the obituary it finds in
    /// here lets it refute, which is what reconnects healed partitions.
    MembershipRequest {
        /// Every alive claim the requester holds (its own included).
        entries: Vec<PeerAlive>,
        /// Reaped peers with the incarnation they died at.
        dead: Vec<PeerAlive>,
    },
    /// Discovery anti-entropy, phase 2: the responder's view plus its
    /// obituaries.
    MembershipResponse {
        /// Every alive claim the responder holds (its own included).
        entries: Vec<PeerAlive>,
        /// Reaped peers with the incarnation they died at; receivers apply
        /// the death unless they know a strictly higher incarnation.
        dead: Vec<PeerAlive>,
    },
    /// Delta anti-entropy, phase 1 (replaces [`GossipMsg::MembershipRequest`]
    /// when [`crate::config::DiscoveryConfig::delta`] is on): the
    /// requester's **view digest** — every claim it holds, compactly
    /// encoded ([`PeerAlive::DIGEST_WIRE`] bytes per entry instead of
    /// [`PeerAlive::WIRE`]) — plus its obituaries. The digest carries the
    /// full `(incarnation, seq)` freshness of each claim, so the responder
    /// both *learns* from it (exactly as it would from a full-view
    /// request) and can answer with only what the requester is missing.
    /// Also serves as the tombstone probe: a "dead" peer that finds its
    /// own obituary in `dead` refutes it, reconnecting healed partitions.
    MembershipDigest {
        /// Every claim the requester holds (its own included), digest-
        /// encoded.
        entries: Vec<PeerAlive>,
        /// Reaped peers with the incarnation they died at, digest-encoded.
        dead: Vec<PeerAlive>,
    },
    /// Delta anti-entropy, phase 2: only the claims the requester's digest
    /// was missing or held stale, plus the obituaries it lacked — in a
    /// converged quiet channel this is one or two entries instead of the
    /// whole membership.
    MembershipDelta {
        /// Claims strictly fresher than (or absent from) the digest.
        entries: Vec<PeerAlive>,
        /// Obituaries the requester did not know, digest-encoded.
        dead: Vec<PeerAlive>,
    },
    /// Leader-election heartbeat from the peer currently acting as leader.
    LeaderHeartbeat {
        /// The claiming leader (equals the sender; explicit for clarity).
        leader: PeerId,
    },
}

impl GossipMsg {
    /// Whether this is a discovery anti-entropy exchange — the four
    /// membership view-swap variants (full and delta, both phases).
    /// Byzantine wiretap code classifies traffic through this instead of
    /// enumerating variants, so a new exchange kind extends every attacker
    /// at once.
    pub fn is_membership_exchange(&self) -> bool {
        matches!(
            self,
            GossipMsg::MembershipRequest { .. }
                | GossipMsg::MembershipResponse { .. }
                | GossipMsg::MembershipDigest { .. }
                | GossipMsg::MembershipDelta { .. }
        )
    }

    /// Whether this message carries full block payloads — push content,
    /// pull phase 4, or recovery content. This is the dissemination
    /// surface a withholding or equivocating attacker targets; digests and
    /// requests deliberately stay out so advertisement traffic keeps
    /// flowing while the payload is suppressed.
    pub fn carries_blocks(&self) -> bool {
        matches!(
            self,
            GossipMsg::BlockPush { .. }
                | GossipMsg::PullResponse { .. }
                | GossipMsg::RecoveryResponse { .. }
        )
    }

    /// Applies `f` to every block payload this message carries, leaving
    /// payload-free messages untouched — the wiretap hook a dissemination
    /// attacker uses to doctor served content without re-implementing the
    /// wire format.
    pub fn map_blocks(self, mut f: impl FnMut(BlockRef) -> BlockRef) -> GossipMsg {
        match self {
            GossipMsg::BlockPush { block, counter } => GossipMsg::BlockPush {
                block: f(block),
                counter,
            },
            GossipMsg::PullResponse { nonce, blocks } => GossipMsg::PullResponse {
                nonce,
                blocks: blocks.into_iter().map(&mut f).collect(),
            },
            GossipMsg::RecoveryResponse { blocks } => GossipMsg::RecoveryResponse {
                blocks: blocks.into_iter().map(&mut f).collect(),
            },
            other => other,
        }
    }
}

impl desim::Message for GossipMsg {
    fn wire_size(&self) -> usize {
        match self {
            GossipMsg::BlockPush { block, .. } => ENVELOPE + 12 + block.wire_size(),
            GossipMsg::PushDigest { .. } => ENVELOPE + 12,
            GossipMsg::PushRequest { .. } => ENVELOPE + 12,
            GossipMsg::PullHello { .. } => ENVELOPE + 8,
            GossipMsg::PullDigestResponse { block_nums, .. } => ENVELOPE + 8 + 8 * block_nums.len(),
            GossipMsg::PullRequest { block_nums, .. } => ENVELOPE + 8 + 8 * block_nums.len(),
            GossipMsg::PullResponse { blocks, .. } => {
                ENVELOPE + 8 + blocks.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            // StateInfo carries channel MAC, ledger height and a signature;
            // an advertised checkpoint piggybacks its height + state hash.
            GossipMsg::StateInfo { checkpoint, .. } => {
                ENVELOPE + 104 + checkpoint.map_or(0, |_| Checkpoint::WIRE)
            }
            GossipMsg::RecoveryRequest { .. } => ENVELOPE + 16,
            GossipMsg::RecoveryResponse { blocks } => {
                ENVELOPE + 8 + blocks.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            GossipMsg::SnapshotRequest { .. } => ENVELOPE + 20,
            GossipMsg::SnapshotResponse { snapshot } => ENVELOPE + snapshot.wire_size(),
            GossipMsg::SnapshotChunk { chunk } => ENVELOPE + chunk.wire_size(),
            // Alive messages carry identity, endpoint and a signature.
            GossipMsg::Alive => ENVELOPE + 134,
            // AliveMsg adds the (incarnation, seq) pair to the legacy
            // identity + endpoint + signature payload.
            GossipMsg::AliveMsg(_) => ENVELOPE + 134 + 16,
            GossipMsg::MembershipRequest { entries, dead } => {
                ENVELOPE + 8 + PeerAlive::WIRE * (entries.len() + dead.len())
            }
            GossipMsg::MembershipResponse { entries, dead } => {
                ENVELOPE + 8 + PeerAlive::WIRE * (entries.len() + dead.len())
            }
            GossipMsg::MembershipDigest { entries, dead } => {
                ENVELOPE + 8 + PeerAlive::DIGEST_WIRE * (entries.len() + dead.len())
            }
            GossipMsg::MembershipDelta { entries, dead } => {
                ENVELOPE + 8 + PeerAlive::WIRE * entries.len() + PeerAlive::DIGEST_WIRE * dead.len()
            }
            GossipMsg::LeaderHeartbeat { .. } => ENVELOPE + 48,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            GossipMsg::BlockPush { .. } => "block",
            GossipMsg::PushDigest { .. } => "push-digest",
            GossipMsg::PushRequest { .. } => "push-request",
            GossipMsg::PullHello { .. } => "pull-hello",
            GossipMsg::PullDigestResponse { .. } => "pull-digest",
            GossipMsg::PullRequest { .. } => "pull-request",
            GossipMsg::PullResponse { .. } => "block-pull",
            GossipMsg::StateInfo { .. } => "state-info",
            GossipMsg::RecoveryRequest { .. } => "recovery-request",
            GossipMsg::RecoveryResponse { .. } => "block-recovery",
            GossipMsg::SnapshotRequest { .. } => "snapshot-request",
            GossipMsg::SnapshotResponse { .. } => "snapshot",
            GossipMsg::SnapshotChunk { .. } => "snapshot-chunk",
            GossipMsg::Alive => "alive",
            GossipMsg::AliveMsg(_) => "alive-msg",
            GossipMsg::MembershipRequest { .. } => "membership-request",
            GossipMsg::MembershipResponse { .. } => "membership-response",
            GossipMsg::MembershipDigest { .. } => "membership-digest",
            GossipMsg::MembershipDelta { .. } => "membership-delta",
            GossipMsg::LeaderHeartbeat { .. } => "leadership",
        }
    }

    fn kind_id(&self) -> KindId {
        let ids = GossipKindIds::get();
        match self {
            GossipMsg::BlockPush { .. } => ids.block,
            GossipMsg::PushDigest { .. } => ids.push_digest,
            GossipMsg::PushRequest { .. } => ids.push_request,
            GossipMsg::PullHello { .. } => ids.pull_hello,
            GossipMsg::PullDigestResponse { .. } => ids.pull_digest,
            GossipMsg::PullRequest { .. } => ids.pull_request,
            GossipMsg::PullResponse { .. } => ids.block_pull,
            GossipMsg::StateInfo { .. } => ids.state_info,
            GossipMsg::RecoveryRequest { .. } => ids.recovery_request,
            GossipMsg::RecoveryResponse { .. } => ids.block_recovery,
            GossipMsg::SnapshotRequest { .. } => ids.snapshot_request,
            GossipMsg::SnapshotResponse { .. } => ids.snapshot,
            GossipMsg::SnapshotChunk { .. } => ids.snapshot_chunk,
            GossipMsg::Alive => ids.alive,
            GossipMsg::AliveMsg(_) => ids.alive_msg,
            GossipMsg::MembershipRequest { .. } => ids.membership_request,
            GossipMsg::MembershipResponse { .. } => ids.membership_response,
            GossipMsg::MembershipDigest { .. } => ids.membership_digest,
            GossipMsg::MembershipDelta { .. } => ids.membership_delta,
            GossipMsg::LeaderHeartbeat { .. } => ids.leadership,
        }
    }
}

/// Interned [`KindId`]s of every gossip kind, resolved once per process so
/// the per-send metrics tag is an atomic load plus a match instead of a
/// registry lookup.
#[derive(Debug)]
struct GossipKindIds {
    block: KindId,
    push_digest: KindId,
    push_request: KindId,
    pull_hello: KindId,
    pull_digest: KindId,
    pull_request: KindId,
    block_pull: KindId,
    state_info: KindId,
    recovery_request: KindId,
    block_recovery: KindId,
    snapshot_request: KindId,
    snapshot: KindId,
    snapshot_chunk: KindId,
    alive: KindId,
    alive_msg: KindId,
    membership_request: KindId,
    membership_response: KindId,
    membership_digest: KindId,
    membership_delta: KindId,
    leadership: KindId,
}

impl GossipKindIds {
    fn get() -> &'static GossipKindIds {
        static IDS: OnceLock<GossipKindIds> = OnceLock::new();
        IDS.get_or_init(|| GossipKindIds {
            block: KindId::intern("block"),
            push_digest: KindId::intern("push-digest"),
            push_request: KindId::intern("push-request"),
            pull_hello: KindId::intern("pull-hello"),
            pull_digest: KindId::intern("pull-digest"),
            pull_request: KindId::intern("pull-request"),
            block_pull: KindId::intern("block-pull"),
            state_info: KindId::intern("state-info"),
            recovery_request: KindId::intern("recovery-request"),
            block_recovery: KindId::intern("block-recovery"),
            snapshot_request: KindId::intern("snapshot-request"),
            snapshot: KindId::intern("snapshot"),
            snapshot_chunk: KindId::intern("snapshot-chunk"),
            alive: KindId::intern("alive"),
            alive_msg: KindId::intern("alive-msg"),
            membership_request: KindId::intern("membership-request"),
            membership_response: KindId::intern("membership-response"),
            membership_digest: KindId::intern("membership-digest"),
            membership_delta: KindId::intern("membership-delta"),
            leadership: KindId::intern("leadership"),
        })
    }
}

/// Timers a gossip peer arms for itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipTimer {
    /// Flush the push buffer (`tpush`).
    PushFlush,
    /// Start a pull round (`tpull`).
    PullRound,
    /// The digest-gathering window of pull round `nonce` closed; send the
    /// block requests.
    PullDigestWait {
        /// The round this wait belongs to (stale rounds are ignored).
        nonce: u64,
    },
    /// Run the recovery check (`t_recovery`).
    RecoveryRound,
    /// Broadcast StateInfo metadata.
    StateInfoRound,
    /// Send membership heartbeats.
    AliveRound,
    /// Discovery protocol: emit an [`GossipMsg::AliveMsg`] heartbeat and
    /// run the expiry/reap sweep.
    DiscoveryRound,
    /// Discovery protocol: exchange membership digests with one random
    /// peer.
    AntiEntropyRound,
    /// Leader-election bookkeeping tick.
    ElectionTick,
    /// Retry fetching block content announced by a digest.
    FetchRetry {
        /// The block whose content is still missing.
        block_num: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Message as _;
    use fabric_types::block::Block;
    fn block(padding: u32) -> BlockRef {
        BlockRef::new(Block::genesis().with_padding(padding))
    }

    #[test]
    fn block_push_size_is_dominated_by_payload() {
        let msg = GossipMsg::BlockPush {
            block: block(160_000),
            counter: 3,
        };
        assert!(msg.wire_size() > 160_000);
        assert!(msg.wire_size() < 161_000);
        assert_eq!(msg.kind(), "block");
    }

    #[test]
    fn digests_are_small() {
        let d = GossipMsg::PushDigest {
            block_num: 7,
            counter: 5,
        };
        assert!(d.wire_size() < 64);
        assert_eq!(d.kind(), "push-digest");
        let r = GossipMsg::PushRequest {
            block_num: 7,
            counter: 5,
        };
        assert!(r.wire_size() < 64);
    }

    #[test]
    fn pull_sizes_scale_with_content() {
        let digest = GossipMsg::PullDigestResponse {
            nonce: 1,
            block_nums: vec![1, 2, 3],
        };
        let digest_bigger = GossipMsg::PullDigestResponse {
            nonce: 1,
            block_nums: (0..10).collect(),
        };
        assert!(digest_bigger.wire_size() > digest.wire_size());
        let resp = GossipMsg::PullResponse {
            nonce: 1,
            blocks: vec![block(1000), block(1000)],
        };
        assert!(resp.wire_size() > 2000);
        assert_eq!(resp.kind(), "block-pull");
    }

    #[test]
    fn metadata_sizes_are_fixed() {
        let info = |height| GossipMsg::StateInfo {
            height,
            checkpoint: None,
        };
        assert_eq!(info(9).wire_size(), info(1_000_000).wire_size());
        assert_eq!(GossipMsg::Alive.wire_size(), 150);
        assert_eq!(GossipMsg::Alive.kind(), "alive");
    }

    #[test]
    fn state_info_checkpoint_costs_bytes_only_when_present() {
        use fabric_types::crypto::Hash256;
        let bare = GossipMsg::StateInfo {
            height: 64,
            checkpoint: None,
        };
        let advertising = GossipMsg::StateInfo {
            height: 64,
            checkpoint: Some(Checkpoint {
                height: 64,
                state_hash: Hash256([5; 32]),
            }),
        };
        // None is byte-identical to the pre-snapshot wire format.
        assert_eq!(bare.wire_size(), 16 + 104);
        assert_eq!(advertising.wire_size(), bare.wire_size() + Checkpoint::WIRE);
        assert_eq!(advertising.kind(), "state-info");
    }

    #[test]
    fn snapshot_messages_size_and_kind() {
        use fabric_types::crypto::Hash256;
        use fabric_types::rwset::{Key, Value, Version};
        use fabric_types::snapshot::{hash_state_entries, Snapshot};
        let req = GossipMsg::SnapshotRequest {
            height: 128,
            from_chunk: 0,
        };
        assert_eq!(req.wire_size(), 16 + 20, "height + resume offset");
        assert_eq!(req.kind(), "snapshot-request");

        let entries: Vec<_> = (0..10)
            .map(|i| {
                (
                    Key::from(format!("k{i}").as_str()),
                    Value::from_u64(i),
                    Version::new(i, 0),
                )
            })
            .collect();
        let state_hash = hash_state_entries(entries.iter().map(|(k, v, ver)| (k, v, *ver)));
        let snap = SnapshotRef::new(Snapshot {
            checkpoint: Checkpoint {
                height: 10,
                state_hash,
            },
            last_block_hash: Hash256([7; 32]),
            entries,
        });
        let resp = GossipMsg::SnapshotResponse {
            snapshot: snap.clone(),
        };
        // The response is dominated by the state payload, and serving it
        // again reuses the same allocation.
        assert_eq!(resp.wire_size(), 16 + snap.wire_size());
        assert_eq!(resp.kind(), "snapshot");
        if let GossipMsg::SnapshotResponse { snapshot } = &resp {
            assert!(SnapshotRef::ptr_eq(snapshot, &snap));
        }

        // Chunk messages: header + their entry slice, never the whole state.
        let chunks = SnapshotChunk::plan(&snap, SnapshotChunk::HEADER + 80);
        assert!(chunks.len() > 1);
        let total: usize = chunks
            .iter()
            .map(|c| {
                let msg = GossipMsg::SnapshotChunk { chunk: c.clone() };
                assert_eq!(msg.kind(), "snapshot-chunk");
                assert_eq!(msg.wire_size(), 16 + c.wire_size());
                assert!(msg.wire_size() < resp.wire_size());
                c.entries().len()
            })
            .sum();
        assert_eq!(total, snap.entries.len());
    }

    #[test]
    fn discovery_sizes_scale_with_entries_and_freshness_orders() {
        let entry = |inc, seq| PeerAlive {
            peer: PeerId(3),
            incarnation: inc,
            seq,
        };
        // A heartbeat costs one fixed claim; digests grow per entry.
        assert_eq!(GossipMsg::AliveMsg(entry(1, 1)).wire_size(), 166);
        let small = GossipMsg::MembershipRequest {
            entries: vec![entry(1, 1); 2],
            dead: vec![],
        };
        let large = GossipMsg::MembershipRequest {
            entries: vec![entry(1, 1); 10],
            dead: vec![],
        };
        assert_eq!(large.wire_size() - small.wire_size(), 8 * PeerAlive::WIRE);
        let resp = GossipMsg::MembershipResponse {
            entries: vec![entry(1, 1); 3],
            dead: vec![entry(2, 0); 2],
        };
        assert_eq!(resp.wire_size(), 16 + 8 + 5 * PeerAlive::WIRE);
        assert_eq!(resp.kind(), "membership-response");
        // Freshness: incarnation dominates, then seq.
        assert!(entry(2, 0).fresher_than(&entry(1, 99)));
        assert!(entry(1, 2).fresher_than(&entry(1, 1)));
        assert!(!entry(1, 1).fresher_than(&entry(1, 1)));
    }

    #[test]
    fn channel_tag_is_free_on_the_wire() {
        // The channel MAC lives inside ENVELOPE: tagging an envelope with
        // any channel must not change its size or kind — single-channel
        // byte accounting stays identical to the pre-channel wire format.
        let payload = GossipMsg::BlockPush {
            block: block(4_096),
            counter: 1,
        };
        let tagged = ChannelMsg {
            channel: ChannelId(7),
            msg: payload.clone(),
        };
        assert_eq!(tagged.wire_size(), payload.wire_size());
        assert_eq!(tagged.kind(), payload.kind());
        let default_tag = ChannelMsg {
            channel: ChannelId::DEFAULT,
            msg: payload.clone(),
        };
        assert_eq!(default_tag.wire_size(), tagged.wire_size());
    }

    #[test]
    fn every_variant_has_a_distinct_kind() {
        let kinds = [
            GossipMsg::BlockPush {
                block: block(0),
                counter: 0,
            }
            .kind(),
            GossipMsg::PushDigest {
                block_num: 0,
                counter: 0,
            }
            .kind(),
            GossipMsg::PushRequest {
                block_num: 0,
                counter: 0,
            }
            .kind(),
            GossipMsg::PullHello { nonce: 0 }.kind(),
            GossipMsg::PullDigestResponse {
                nonce: 0,
                block_nums: vec![],
            }
            .kind(),
            GossipMsg::PullRequest {
                nonce: 0,
                block_nums: vec![],
            }
            .kind(),
            GossipMsg::PullResponse {
                nonce: 0,
                blocks: vec![],
            }
            .kind(),
            GossipMsg::StateInfo {
                height: 0,
                checkpoint: None,
            }
            .kind(),
            GossipMsg::RecoveryRequest { from: 0, to: 0 }.kind(),
            GossipMsg::RecoveryResponse { blocks: vec![] }.kind(),
            GossipMsg::SnapshotRequest {
                height: 0,
                from_chunk: 0,
            }
            .kind(),
            GossipMsg::SnapshotResponse {
                snapshot: SnapshotRef::new(fabric_types::snapshot::Snapshot {
                    checkpoint: Checkpoint {
                        height: 0,
                        state_hash: fabric_types::crypto::Hash256::ZERO,
                    },
                    last_block_hash: fabric_types::crypto::Hash256::ZERO,
                    entries: vec![],
                }),
            }
            .kind(),
            GossipMsg::SnapshotChunk {
                chunk: SnapshotChunk::plan(
                    &SnapshotRef::new(fabric_types::snapshot::Snapshot {
                        checkpoint: Checkpoint {
                            height: 0,
                            state_hash: fabric_types::crypto::Hash256::ZERO,
                        },
                        last_block_hash: fabric_types::crypto::Hash256::ZERO,
                        entries: vec![],
                    }),
                    1024,
                )
                .remove(0),
            }
            .kind(),
            GossipMsg::Alive.kind(),
            GossipMsg::AliveMsg(PeerAlive {
                peer: PeerId(0),
                incarnation: 0,
                seq: 0,
            })
            .kind(),
            GossipMsg::MembershipRequest {
                entries: vec![],
                dead: vec![],
            }
            .kind(),
            GossipMsg::MembershipResponse {
                entries: vec![],
                dead: vec![],
            }
            .kind(),
            GossipMsg::MembershipDigest {
                entries: vec![],
                dead: vec![],
            }
            .kind(),
            GossipMsg::MembershipDelta {
                entries: vec![],
                dead: vec![],
            }
            .kind(),
            GossipMsg::LeaderHeartbeat { leader: PeerId(0) }.kind(),
        ];
        let mut unique = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn kind_ids_agree_with_kind_names() {
        use desim::KindId;
        let samples = [
            GossipMsg::BlockPush {
                block: block(0),
                counter: 0,
            },
            GossipMsg::PullHello { nonce: 0 },
            GossipMsg::AliveMsg(PeerAlive {
                peer: PeerId(0),
                incarnation: 1,
                seq: 1,
            }),
            GossipMsg::MembershipDigest {
                entries: vec![],
                dead: vec![],
            },
            GossipMsg::MembershipDelta {
                entries: vec![],
                dead: vec![],
            },
            GossipMsg::LeaderHeartbeat { leader: PeerId(0) },
            GossipMsg::SnapshotRequest {
                height: 1,
                from_chunk: 0,
            },
            GossipMsg::SnapshotResponse {
                snapshot: SnapshotRef::new(fabric_types::snapshot::Snapshot {
                    checkpoint: Checkpoint {
                        height: 0,
                        state_hash: fabric_types::crypto::Hash256::ZERO,
                    },
                    last_block_hash: fabric_types::crypto::Hash256::ZERO,
                    entries: vec![],
                }),
            },
            GossipMsg::SnapshotChunk {
                chunk: SnapshotChunk::plan(
                    &SnapshotRef::new(fabric_types::snapshot::Snapshot {
                        checkpoint: Checkpoint {
                            height: 0,
                            state_hash: fabric_types::crypto::Hash256::ZERO,
                        },
                        last_block_hash: fabric_types::crypto::Hash256::ZERO,
                        entries: vec![],
                    }),
                    1024,
                )
                .remove(0),
            },
        ];
        for msg in samples {
            assert_eq!(msg.kind_id(), KindId::intern(msg.kind()), "{}", msg.kind());
        }
        let tagged = ChannelMsg {
            channel: ChannelId(3),
            msg: GossipMsg::PullHello { nonce: 1 },
        };
        assert_eq!(tagged.kind_id(), KindId::intern("pull-hello"));
    }

    #[test]
    fn digest_and_delta_are_cheaper_than_the_full_exchange() {
        let entry = |inc, seq| PeerAlive {
            peer: PeerId(3),
            incarnation: inc,
            seq,
        };
        let n = 20;
        let full_request = GossipMsg::MembershipRequest {
            entries: vec![entry(1, 1); n],
            dead: vec![entry(2, 0); 2],
        };
        let digest = GossipMsg::MembershipDigest {
            entries: vec![entry(1, 1); n],
            dead: vec![entry(2, 0); 2],
        };
        // The digest carries the same claims at half the per-entry cost.
        assert_eq!(
            digest.wire_size(),
            16 + 8 + PeerAlive::DIGEST_WIRE * (n + 2)
        );
        assert!(digest.wire_size() < full_request.wire_size());

        // A converged responder answers with one fresher entry instead of
        // the whole view.
        let full_response = GossipMsg::MembershipResponse {
            entries: vec![entry(1, 1); n],
            dead: vec![],
        };
        let delta = GossipMsg::MembershipDelta {
            entries: vec![entry(1, 2)],
            dead: vec![],
        };
        assert_eq!(delta.wire_size(), 16 + 8 + PeerAlive::WIRE);
        assert!(delta.wire_size() * 5 < full_response.wire_size());
        assert_eq!(digest.kind(), "membership-digest");
        assert_eq!(delta.kind(), "membership-delta");
    }
}
