//! Wire messages of the gossip layer.
//!
//! Sizes approximate Fabric's protobuf envelopes: every message carries a
//! fixed framing overhead, digests are tens of bytes, and block-bearing
//! messages are dominated by the block payload. The byte accounting of the
//! bandwidth figures rests on these sizes.

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};

/// Framing overhead per gossip envelope (signature, channel MAC, tags).
///
/// The channel MAC is part of this fixed overhead, so routing a message on
/// a non-default channel does not change its wire size — byte accounting is
/// identical whether a deployment runs one channel or many.
const ENVELOPE: usize = 16;

/// The wire unit between two peers: a [`GossipMsg`] tagged with the channel
/// it belongs to.
///
/// Fabric scopes gossip per channel; the envelope's channel MAC (already
/// counted in `ENVELOPE`) is what carries that scope on the wire, so the
/// tag adds no bytes — [`desim::Message::wire_size`] delegates to the
/// payload unchanged.
#[derive(Debug, Clone)]
pub struct ChannelMsg {
    /// The channel this envelope belongs to.
    pub channel: ChannelId,
    /// The gossip payload.
    pub msg: GossipMsg,
}

impl desim::Message for ChannelMsg {
    fn wire_size(&self) -> usize {
        self.msg.wire_size()
    }

    fn kind(&self) -> &'static str {
        self.msg.kind()
    }
}

/// A gossip message between two peers of the same organization.
#[derive(Debug, Clone)]
pub enum GossipMsg {
    /// Full block content pushed with a dissemination counter (the counter
    /// is 0 for the orderer→leader-initiated send and is ignored by the
    /// infect-and-die protocol).
    BlockPush {
        /// The block being disseminated.
        block: BlockRef,
        /// The infect-upon-contagion round counter.
        counter: u32,
    },
    /// Enhanced push phase: announce a block instead of sending it.
    PushDigest {
        /// Number of the announced block.
        block_num: u64,
        /// The infect-upon-contagion round counter.
        counter: u32,
    },
    /// Enhanced push phase: request content after a [`GossipMsg::PushDigest`].
    PushRequest {
        /// Number of the requested block.
        block_num: u64,
        /// Counter copied from the digest, echoed back with the content.
        counter: u32,
    },
    /// Pull engine, phase 1: solicit digests.
    PullHello {
        /// Round nonce correlating the four pull phases.
        nonce: u64,
    },
    /// Pull engine, phase 2: recent block numbers held by the responder.
    PullDigestResponse {
        /// Echoed round nonce.
        nonce: u64,
        /// Block numbers the responder can serve.
        block_nums: Vec<u64>,
    },
    /// Pull engine, phase 3: request missing blocks.
    PullRequest {
        /// Echoed round nonce.
        nonce: u64,
        /// Block numbers the requester lacks.
        block_nums: Vec<u64>,
    },
    /// Pull engine, phase 4: the requested blocks.
    PullResponse {
        /// Echoed round nonce.
        nonce: u64,
        /// The served blocks.
        blocks: Vec<BlockRef>,
    },
    /// Ledger-height metadata, input to the recovery component.
    StateInfo {
        /// The sender's contiguous ledger height.
        height: u64,
    },
    /// Recovery: request blocks `[from, to]` (inclusive).
    RecoveryRequest {
        /// First missing block number.
        from: u64,
        /// Last requested block number.
        to: u64,
    },
    /// Recovery: consecutive blocks answering a request.
    RecoveryResponse {
        /// The served blocks, in height order.
        blocks: Vec<BlockRef>,
    },
    /// Membership heartbeat.
    Alive,
    /// Leader-election heartbeat from the peer currently acting as leader.
    LeaderHeartbeat {
        /// The claiming leader (equals the sender; explicit for clarity).
        leader: PeerId,
    },
}

impl desim::Message for GossipMsg {
    fn wire_size(&self) -> usize {
        match self {
            GossipMsg::BlockPush { block, .. } => ENVELOPE + 12 + block.wire_size(),
            GossipMsg::PushDigest { .. } => ENVELOPE + 12,
            GossipMsg::PushRequest { .. } => ENVELOPE + 12,
            GossipMsg::PullHello { .. } => ENVELOPE + 8,
            GossipMsg::PullDigestResponse { block_nums, .. } => ENVELOPE + 8 + 8 * block_nums.len(),
            GossipMsg::PullRequest { block_nums, .. } => ENVELOPE + 8 + 8 * block_nums.len(),
            GossipMsg::PullResponse { blocks, .. } => {
                ENVELOPE + 8 + blocks.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            // StateInfo carries channel MAC, ledger height and a signature.
            GossipMsg::StateInfo { .. } => ENVELOPE + 104,
            GossipMsg::RecoveryRequest { .. } => ENVELOPE + 16,
            GossipMsg::RecoveryResponse { blocks } => {
                ENVELOPE + 8 + blocks.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            // Alive messages carry identity, endpoint and a signature.
            GossipMsg::Alive => ENVELOPE + 134,
            GossipMsg::LeaderHeartbeat { .. } => ENVELOPE + 48,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            GossipMsg::BlockPush { .. } => "block",
            GossipMsg::PushDigest { .. } => "push-digest",
            GossipMsg::PushRequest { .. } => "push-request",
            GossipMsg::PullHello { .. } => "pull-hello",
            GossipMsg::PullDigestResponse { .. } => "pull-digest",
            GossipMsg::PullRequest { .. } => "pull-request",
            GossipMsg::PullResponse { .. } => "block-pull",
            GossipMsg::StateInfo { .. } => "state-info",
            GossipMsg::RecoveryRequest { .. } => "recovery-request",
            GossipMsg::RecoveryResponse { .. } => "block-recovery",
            GossipMsg::Alive => "alive",
            GossipMsg::LeaderHeartbeat { .. } => "leadership",
        }
    }
}

/// Timers a gossip peer arms for itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipTimer {
    /// Flush the push buffer (`tpush`).
    PushFlush,
    /// Start a pull round (`tpull`).
    PullRound,
    /// The digest-gathering window of pull round `nonce` closed; send the
    /// block requests.
    PullDigestWait {
        /// The round this wait belongs to (stale rounds are ignored).
        nonce: u64,
    },
    /// Run the recovery check (`t_recovery`).
    RecoveryRound,
    /// Broadcast StateInfo metadata.
    StateInfoRound,
    /// Send membership heartbeats.
    AliveRound,
    /// Leader-election bookkeeping tick.
    ElectionTick,
    /// Retry fetching block content announced by a digest.
    FetchRetry {
        /// The block whose content is still missing.
        block_num: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Message as _;
    use fabric_types::block::Block;
    fn block(padding: u32) -> BlockRef {
        BlockRef::new(Block::genesis().with_padding(padding))
    }

    #[test]
    fn block_push_size_is_dominated_by_payload() {
        let msg = GossipMsg::BlockPush {
            block: block(160_000),
            counter: 3,
        };
        assert!(msg.wire_size() > 160_000);
        assert!(msg.wire_size() < 161_000);
        assert_eq!(msg.kind(), "block");
    }

    #[test]
    fn digests_are_small() {
        let d = GossipMsg::PushDigest {
            block_num: 7,
            counter: 5,
        };
        assert!(d.wire_size() < 64);
        assert_eq!(d.kind(), "push-digest");
        let r = GossipMsg::PushRequest {
            block_num: 7,
            counter: 5,
        };
        assert!(r.wire_size() < 64);
    }

    #[test]
    fn pull_sizes_scale_with_content() {
        let digest = GossipMsg::PullDigestResponse {
            nonce: 1,
            block_nums: vec![1, 2, 3],
        };
        let digest_bigger = GossipMsg::PullDigestResponse {
            nonce: 1,
            block_nums: (0..10).collect(),
        };
        assert!(digest_bigger.wire_size() > digest.wire_size());
        let resp = GossipMsg::PullResponse {
            nonce: 1,
            blocks: vec![block(1000), block(1000)],
        };
        assert!(resp.wire_size() > 2000);
        assert_eq!(resp.kind(), "block-pull");
    }

    #[test]
    fn metadata_sizes_are_fixed() {
        assert_eq!(
            GossipMsg::StateInfo { height: 9 }.wire_size(),
            GossipMsg::StateInfo { height: 1_000_000 }.wire_size()
        );
        assert_eq!(GossipMsg::Alive.wire_size(), 150);
        assert_eq!(GossipMsg::Alive.kind(), "alive");
    }

    #[test]
    fn channel_tag_is_free_on_the_wire() {
        // The channel MAC lives inside ENVELOPE: tagging an envelope with
        // any channel must not change its size or kind — single-channel
        // byte accounting stays identical to the pre-channel wire format.
        let payload = GossipMsg::BlockPush {
            block: block(4_096),
            counter: 1,
        };
        let tagged = ChannelMsg {
            channel: ChannelId(7),
            msg: payload.clone(),
        };
        assert_eq!(tagged.wire_size(), payload.wire_size());
        assert_eq!(tagged.kind(), payload.kind());
        let default_tag = ChannelMsg {
            channel: ChannelId::DEFAULT,
            msg: payload.clone(),
        };
        assert_eq!(default_tag.wire_size(), tagged.wire_size());
    }

    #[test]
    fn every_variant_has_a_distinct_kind() {
        let kinds = [
            GossipMsg::BlockPush {
                block: block(0),
                counter: 0,
            }
            .kind(),
            GossipMsg::PushDigest {
                block_num: 0,
                counter: 0,
            }
            .kind(),
            GossipMsg::PushRequest {
                block_num: 0,
                counter: 0,
            }
            .kind(),
            GossipMsg::PullHello { nonce: 0 }.kind(),
            GossipMsg::PullDigestResponse {
                nonce: 0,
                block_nums: vec![],
            }
            .kind(),
            GossipMsg::PullRequest {
                nonce: 0,
                block_nums: vec![],
            }
            .kind(),
            GossipMsg::PullResponse {
                nonce: 0,
                blocks: vec![],
            }
            .kind(),
            GossipMsg::StateInfo { height: 0 }.kind(),
            GossipMsg::RecoveryRequest { from: 0, to: 0 }.kind(),
            GossipMsg::RecoveryResponse { blocks: vec![] }.kind(),
            GossipMsg::Alive.kind(),
            GossipMsg::LeaderHeartbeat { leader: PeerId(0) }.kind(),
        ];
        let mut unique = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}
