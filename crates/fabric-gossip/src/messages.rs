//! Wire messages of the gossip layer.
//!
//! Sizes approximate Fabric's protobuf envelopes: every message carries a
//! fixed framing overhead, digests are tens of bytes, and block-bearing
//! messages are dominated by the block payload. The byte accounting of the
//! bandwidth figures rests on these sizes.

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};

/// Framing overhead per gossip envelope (signature, channel MAC, tags).
///
/// The channel MAC is part of this fixed overhead, so routing a message on
/// a non-default channel does not change its wire size — byte accounting is
/// identical whether a deployment runs one channel or many.
const ENVELOPE: usize = 16;

/// The wire unit between two peers: a [`GossipMsg`] tagged with the channel
/// it belongs to.
///
/// Fabric scopes gossip per channel; the envelope's channel MAC (already
/// counted in `ENVELOPE`) is what carries that scope on the wire, so the
/// tag adds no bytes — [`desim::Message::wire_size`] delegates to the
/// payload unchanged.
#[derive(Debug, Clone)]
pub struct ChannelMsg {
    /// The channel this envelope belongs to.
    pub channel: ChannelId,
    /// The gossip payload.
    pub msg: GossipMsg,
}

impl desim::Message for ChannelMsg {
    fn wire_size(&self) -> usize {
        self.msg.wire_size()
    }

    fn kind(&self) -> &'static str {
        self.msg.kind()
    }
}

/// One peer's liveness claim, as carried by the discovery protocol.
///
/// Freshness is judged lexicographically on `(incarnation, seq)`:
/// `incarnation` is fixed for one life of the peer on the channel (a
/// rejoin or reboot picks a strictly higher one), `seq` increments with
/// every heartbeat of that life. A claim only displaces a stored one when
/// strictly fresher, so stale relays can never resurrect a reaped peer —
/// only a genuinely new life (higher incarnation) can.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAlive {
    /// The peer the claim is about (not necessarily the sender: anti-
    /// entropy relays third-party claims).
    pub peer: PeerId,
    /// The claimed life of the peer; strictly increases across rejoins.
    pub incarnation: u64,
    /// Heartbeat counter within the incarnation.
    pub seq: u64,
}

impl PeerAlive {
    /// Whether this claim is strictly fresher than `other` (same peer
    /// assumed).
    pub fn fresher_than(&self, other: &PeerAlive) -> bool {
        (self.incarnation, self.seq) > (other.incarnation, other.seq)
    }

    /// Wire bytes of one serialized claim (peer id + incarnation + seq).
    pub(crate) const WIRE: usize = 24;
}

/// A gossip message between two peers of the same organization.
#[derive(Debug, Clone)]
pub enum GossipMsg {
    /// Full block content pushed with a dissemination counter (the counter
    /// is 0 for the orderer→leader-initiated send and is ignored by the
    /// infect-and-die protocol).
    BlockPush {
        /// The block being disseminated.
        block: BlockRef,
        /// The infect-upon-contagion round counter.
        counter: u32,
    },
    /// Enhanced push phase: announce a block instead of sending it.
    PushDigest {
        /// Number of the announced block.
        block_num: u64,
        /// The infect-upon-contagion round counter.
        counter: u32,
    },
    /// Enhanced push phase: request content after a [`GossipMsg::PushDigest`].
    PushRequest {
        /// Number of the requested block.
        block_num: u64,
        /// Counter copied from the digest, echoed back with the content.
        counter: u32,
    },
    /// Pull engine, phase 1: solicit digests.
    PullHello {
        /// Round nonce correlating the four pull phases.
        nonce: u64,
    },
    /// Pull engine, phase 2: recent block numbers held by the responder.
    PullDigestResponse {
        /// Echoed round nonce.
        nonce: u64,
        /// Block numbers the responder can serve.
        block_nums: Vec<u64>,
    },
    /// Pull engine, phase 3: request missing blocks.
    PullRequest {
        /// Echoed round nonce.
        nonce: u64,
        /// Block numbers the requester lacks.
        block_nums: Vec<u64>,
    },
    /// Pull engine, phase 4: the requested blocks.
    PullResponse {
        /// Echoed round nonce.
        nonce: u64,
        /// The served blocks.
        blocks: Vec<BlockRef>,
    },
    /// Ledger-height metadata, input to the recovery component.
    StateInfo {
        /// The sender's contiguous ledger height.
        height: u64,
    },
    /// Recovery: request blocks `[from, to]` (inclusive).
    RecoveryRequest {
        /// First missing block number.
        from: u64,
        /// Last requested block number.
        to: u64,
    },
    /// Recovery: consecutive blocks answering a request.
    RecoveryResponse {
        /// The served blocks, in height order.
        blocks: Vec<BlockRef>,
    },
    /// Membership heartbeat (legacy oracle-mode liveness traffic; carries
    /// no payload — reception alone refreshes the sender's entry).
    Alive,
    /// Discovery-protocol heartbeat: the sender's own liveness claim.
    /// Replaces [`GossipMsg::Alive`] when
    /// [`crate::config::DiscoveryConfig::protocol`] is on.
    AliveMsg(PeerAlive),
    /// Discovery anti-entropy, phase 1: the requester pushes its full
    /// alive view and obituaries and solicits the responder's. Also sent
    /// as a **tombstone probe** to one reaped peer per round — if that
    /// peer is in fact alive (a false death), the obituary it finds in
    /// here lets it refute, which is what reconnects healed partitions.
    MembershipRequest {
        /// Every alive claim the requester holds (its own included).
        entries: Vec<PeerAlive>,
        /// Reaped peers with the incarnation they died at.
        dead: Vec<PeerAlive>,
    },
    /// Discovery anti-entropy, phase 2: the responder's view plus its
    /// obituaries.
    MembershipResponse {
        /// Every alive claim the responder holds (its own included).
        entries: Vec<PeerAlive>,
        /// Reaped peers with the incarnation they died at; receivers apply
        /// the death unless they know a strictly higher incarnation.
        dead: Vec<PeerAlive>,
    },
    /// Leader-election heartbeat from the peer currently acting as leader.
    LeaderHeartbeat {
        /// The claiming leader (equals the sender; explicit for clarity).
        leader: PeerId,
    },
}

impl desim::Message for GossipMsg {
    fn wire_size(&self) -> usize {
        match self {
            GossipMsg::BlockPush { block, .. } => ENVELOPE + 12 + block.wire_size(),
            GossipMsg::PushDigest { .. } => ENVELOPE + 12,
            GossipMsg::PushRequest { .. } => ENVELOPE + 12,
            GossipMsg::PullHello { .. } => ENVELOPE + 8,
            GossipMsg::PullDigestResponse { block_nums, .. } => ENVELOPE + 8 + 8 * block_nums.len(),
            GossipMsg::PullRequest { block_nums, .. } => ENVELOPE + 8 + 8 * block_nums.len(),
            GossipMsg::PullResponse { blocks, .. } => {
                ENVELOPE + 8 + blocks.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            // StateInfo carries channel MAC, ledger height and a signature.
            GossipMsg::StateInfo { .. } => ENVELOPE + 104,
            GossipMsg::RecoveryRequest { .. } => ENVELOPE + 16,
            GossipMsg::RecoveryResponse { blocks } => {
                ENVELOPE + 8 + blocks.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            // Alive messages carry identity, endpoint and a signature.
            GossipMsg::Alive => ENVELOPE + 134,
            // AliveMsg adds the (incarnation, seq) pair to the legacy
            // identity + endpoint + signature payload.
            GossipMsg::AliveMsg(_) => ENVELOPE + 134 + 16,
            GossipMsg::MembershipRequest { entries, dead } => {
                ENVELOPE + 8 + PeerAlive::WIRE * (entries.len() + dead.len())
            }
            GossipMsg::MembershipResponse { entries, dead } => {
                ENVELOPE + 8 + PeerAlive::WIRE * (entries.len() + dead.len())
            }
            GossipMsg::LeaderHeartbeat { .. } => ENVELOPE + 48,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            GossipMsg::BlockPush { .. } => "block",
            GossipMsg::PushDigest { .. } => "push-digest",
            GossipMsg::PushRequest { .. } => "push-request",
            GossipMsg::PullHello { .. } => "pull-hello",
            GossipMsg::PullDigestResponse { .. } => "pull-digest",
            GossipMsg::PullRequest { .. } => "pull-request",
            GossipMsg::PullResponse { .. } => "block-pull",
            GossipMsg::StateInfo { .. } => "state-info",
            GossipMsg::RecoveryRequest { .. } => "recovery-request",
            GossipMsg::RecoveryResponse { .. } => "block-recovery",
            GossipMsg::Alive => "alive",
            GossipMsg::AliveMsg(_) => "alive-msg",
            GossipMsg::MembershipRequest { .. } => "membership-request",
            GossipMsg::MembershipResponse { .. } => "membership-response",
            GossipMsg::LeaderHeartbeat { .. } => "leadership",
        }
    }
}

/// Timers a gossip peer arms for itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipTimer {
    /// Flush the push buffer (`tpush`).
    PushFlush,
    /// Start a pull round (`tpull`).
    PullRound,
    /// The digest-gathering window of pull round `nonce` closed; send the
    /// block requests.
    PullDigestWait {
        /// The round this wait belongs to (stale rounds are ignored).
        nonce: u64,
    },
    /// Run the recovery check (`t_recovery`).
    RecoveryRound,
    /// Broadcast StateInfo metadata.
    StateInfoRound,
    /// Send membership heartbeats.
    AliveRound,
    /// Discovery protocol: emit an [`GossipMsg::AliveMsg`] heartbeat and
    /// run the expiry/reap sweep.
    DiscoveryRound,
    /// Discovery protocol: exchange membership digests with one random
    /// peer.
    AntiEntropyRound,
    /// Leader-election bookkeeping tick.
    ElectionTick,
    /// Retry fetching block content announced by a digest.
    FetchRetry {
        /// The block whose content is still missing.
        block_num: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Message as _;
    use fabric_types::block::Block;
    fn block(padding: u32) -> BlockRef {
        BlockRef::new(Block::genesis().with_padding(padding))
    }

    #[test]
    fn block_push_size_is_dominated_by_payload() {
        let msg = GossipMsg::BlockPush {
            block: block(160_000),
            counter: 3,
        };
        assert!(msg.wire_size() > 160_000);
        assert!(msg.wire_size() < 161_000);
        assert_eq!(msg.kind(), "block");
    }

    #[test]
    fn digests_are_small() {
        let d = GossipMsg::PushDigest {
            block_num: 7,
            counter: 5,
        };
        assert!(d.wire_size() < 64);
        assert_eq!(d.kind(), "push-digest");
        let r = GossipMsg::PushRequest {
            block_num: 7,
            counter: 5,
        };
        assert!(r.wire_size() < 64);
    }

    #[test]
    fn pull_sizes_scale_with_content() {
        let digest = GossipMsg::PullDigestResponse {
            nonce: 1,
            block_nums: vec![1, 2, 3],
        };
        let digest_bigger = GossipMsg::PullDigestResponse {
            nonce: 1,
            block_nums: (0..10).collect(),
        };
        assert!(digest_bigger.wire_size() > digest.wire_size());
        let resp = GossipMsg::PullResponse {
            nonce: 1,
            blocks: vec![block(1000), block(1000)],
        };
        assert!(resp.wire_size() > 2000);
        assert_eq!(resp.kind(), "block-pull");
    }

    #[test]
    fn metadata_sizes_are_fixed() {
        assert_eq!(
            GossipMsg::StateInfo { height: 9 }.wire_size(),
            GossipMsg::StateInfo { height: 1_000_000 }.wire_size()
        );
        assert_eq!(GossipMsg::Alive.wire_size(), 150);
        assert_eq!(GossipMsg::Alive.kind(), "alive");
    }

    #[test]
    fn discovery_sizes_scale_with_entries_and_freshness_orders() {
        let entry = |inc, seq| PeerAlive {
            peer: PeerId(3),
            incarnation: inc,
            seq,
        };
        // A heartbeat costs one fixed claim; digests grow per entry.
        assert_eq!(GossipMsg::AliveMsg(entry(1, 1)).wire_size(), 166);
        let small = GossipMsg::MembershipRequest {
            entries: vec![entry(1, 1); 2],
            dead: vec![],
        };
        let large = GossipMsg::MembershipRequest {
            entries: vec![entry(1, 1); 10],
            dead: vec![],
        };
        assert_eq!(large.wire_size() - small.wire_size(), 8 * PeerAlive::WIRE);
        let resp = GossipMsg::MembershipResponse {
            entries: vec![entry(1, 1); 3],
            dead: vec![entry(2, 0); 2],
        };
        assert_eq!(resp.wire_size(), 16 + 8 + 5 * PeerAlive::WIRE);
        assert_eq!(resp.kind(), "membership-response");
        // Freshness: incarnation dominates, then seq.
        assert!(entry(2, 0).fresher_than(&entry(1, 99)));
        assert!(entry(1, 2).fresher_than(&entry(1, 1)));
        assert!(!entry(1, 1).fresher_than(&entry(1, 1)));
    }

    #[test]
    fn channel_tag_is_free_on_the_wire() {
        // The channel MAC lives inside ENVELOPE: tagging an envelope with
        // any channel must not change its size or kind — single-channel
        // byte accounting stays identical to the pre-channel wire format.
        let payload = GossipMsg::BlockPush {
            block: block(4_096),
            counter: 1,
        };
        let tagged = ChannelMsg {
            channel: ChannelId(7),
            msg: payload.clone(),
        };
        assert_eq!(tagged.wire_size(), payload.wire_size());
        assert_eq!(tagged.kind(), payload.kind());
        let default_tag = ChannelMsg {
            channel: ChannelId::DEFAULT,
            msg: payload.clone(),
        };
        assert_eq!(default_tag.wire_size(), tagged.wire_size());
    }

    #[test]
    fn every_variant_has_a_distinct_kind() {
        let kinds = [
            GossipMsg::BlockPush {
                block: block(0),
                counter: 0,
            }
            .kind(),
            GossipMsg::PushDigest {
                block_num: 0,
                counter: 0,
            }
            .kind(),
            GossipMsg::PushRequest {
                block_num: 0,
                counter: 0,
            }
            .kind(),
            GossipMsg::PullHello { nonce: 0 }.kind(),
            GossipMsg::PullDigestResponse {
                nonce: 0,
                block_nums: vec![],
            }
            .kind(),
            GossipMsg::PullRequest {
                nonce: 0,
                block_nums: vec![],
            }
            .kind(),
            GossipMsg::PullResponse {
                nonce: 0,
                blocks: vec![],
            }
            .kind(),
            GossipMsg::StateInfo { height: 0 }.kind(),
            GossipMsg::RecoveryRequest { from: 0, to: 0 }.kind(),
            GossipMsg::RecoveryResponse { blocks: vec![] }.kind(),
            GossipMsg::Alive.kind(),
            GossipMsg::AliveMsg(PeerAlive {
                peer: PeerId(0),
                incarnation: 0,
                seq: 0,
            })
            .kind(),
            GossipMsg::MembershipRequest {
                entries: vec![],
                dead: vec![],
            }
            .kind(),
            GossipMsg::MembershipResponse {
                entries: vec![],
                dead: vec![],
            }
            .kind(),
            GossipMsg::LeaderHeartbeat { leader: PeerId(0) }.kind(),
        ];
        let mut unique = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}
